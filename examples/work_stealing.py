#!/usr/bin/env python
"""Distributed dynamic load balancing with remote atomics and the GAS.

A bag of 64 unevenly sized tasks lives in a global address space; a
single global ticket counter on rank 0 hands out task indices via remote
fetch-and-add.  Every rank loops: take a ticket, memget the task
descriptor, "compute" for the task's duration — no master process, no
message matching, just one-sided operations.  Compare with a static
block partition of the same tasks: dynamic balancing finishes close to
the theoretical optimum even though task sizes are skewed.

Run:  python examples/work_stealing.py
"""

import struct

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.runtime import gas_allocate
from repro.util import to_us

RANKS = 4
N_TASKS = 64


def task_cost_ns(i: int) -> int:
    """Skewed task sizes: the heavy tasks cluster at the front of the
    bag (skewed data locality), which is what breaks static partitions."""
    return 300_000 if i < 8 else 10_000 + (i * 977) % 20_000


def main() -> None:
    cluster = build_cluster(RANKS, params="ib-fdr")
    ph = photon_init(cluster)
    gas = gas_allocate(ph, total=N_TASKS * 8, block_size=256)
    counter = ph[0].buffer(8)
    scratch = [ep.buffer(4096) for ep in ph]

    # rank 0 publishes the task table into the GAS
    def publish(env):
        for i in range(N_TASKS):
            yield from gas[0].memput(i * 8,
                                     struct.pack("<q", task_cost_ns(i)),
                                     scratch[0].addr)

    p = cluster.env.process(publish(cluster.env))
    cluster.env.run(until=p)

    done_at = {}
    tasks_by = {r: 0 for r in range(RANKS)}

    def worker(env, rank):
        ep = ph[rank]
        while True:
            ticket = yield from ep.fetch_add_blocking(
                0, counter.addr, counter.rkey, 1)
            if ticket >= N_TASKS:
                break
            raw = yield from gas[rank].memget(ticket * 8, 8,
                                              scratch[rank].addr)
            cost, = struct.unpack("<q", raw)
            yield env.timeout(cost)  # "compute"
            tasks_by[rank] += 1
        done_at[rank] = env.now

    t0 = cluster.env.now
    procs = [cluster.env.process(worker(cluster.env, r))
             for r in range(RANKS)]
    cluster.env.run(until=cluster.env.all_of(procs))
    dynamic = max(done_at.values()) - t0

    # static baseline: contiguous blocks, no balancing
    per_rank = [sum(task_cost_ns(i)
                    for i in range(r * N_TASKS // RANKS,
                                   (r + 1) * N_TASKS // RANKS))
                for r in range(RANKS)]
    static = max(per_rank)
    ideal = sum(task_cost_ns(i) for i in range(N_TASKS)) / RANKS

    print(f"{N_TASKS} skewed tasks on {RANKS} ranks\n")
    print(f"{'rank':>4}  {'tasks taken':>11}  {'finished at':>12}")
    for r in range(RANKS):
        print(f"{r:>4}  {tasks_by[r]:>11}  {to_us(done_at[r] - t0):>10.1f}us")
    print()
    print(f"dynamic (atomic tickets) : {to_us(dynamic):8.1f} us")
    print(f"static block partition   : {to_us(static):8.1f} us "
          f"(compute only, zero comm)")
    print(f"perfect balance would be : {to_us(int(ideal)):8.1f} us")
    print(f"\ndynamic balancing is within "
          f"{100 * (dynamic - ideal) / ideal:.0f}% of ideal despite paying "
          f"a remote atomic per task;")
    print("the static partition loses "
          f"{100 * (static - ideal) / ideal:.0f}% to skew.")
    assert dynamic < static


if __name__ == "__main__":
    main()
