#!/usr/bin/env python
"""Bandwidth sweep: Photon put stream vs minimpi isend stream.

Sweeps message sizes from 1 KiB to 1 MiB and prints an ASCII rendering
of the R2 bandwidth figure, showing the mid-range gap where MPI's
rendezvous handshake is not yet amortised and the convergence to link
rate at large sizes.

Run:  python examples/bandwidth_sweep.py
"""

from repro.bench import bandwidth_mpi, bandwidth_photon
from repro.fabric import preset
from repro.util import format_series, format_size

SIZES = [1024, 4096, 16384, 65536, 262144, 1 << 20]


def main() -> None:
    link = preset("ib-fdr").link.bandwidth_gbps
    print(f"unidirectional stream, window=8, ib-fdr "
          f"(nominal link {link:.0f} Gbit/s)\n")
    labels = [format_size(s) for s in SIZES]
    photon = []
    mpi = []
    for size in SIZES:
        photon.append(bandwidth_photon(size, count=32, window=8))
        mpi.append(bandwidth_mpi(size, count=32, window=8))
        print(f"  measured {format_size(size):>7}: "
              f"photon {photon[-1]:6.2f}  mpi {mpi[-1]:6.2f} Gbit/s")
    print()
    print(format_series("photon put stream (Gbit/s)", labels, photon))
    print()
    print(format_series("mpi isend stream (Gbit/s)", labels, mpi))
    print()
    crossover = next((format_size(s) for s, a, b in
                      zip(SIZES, photon, mpi) if a / b < 1.05), "none")
    print(f"first size where MPI is within 5% of photon: {crossover}")


if __name__ == "__main__":
    main()
