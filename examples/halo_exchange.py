#!/usr/bin/env python
"""Halo exchange: a 2-D Jacobi stencil on Photon vs minimpi.

Runs the same 64x48 grid for 10 iterations on 4 simulated ranks with
both transports, verifies each against the sequential reference, and
prints the per-iteration time and communication fraction — a miniature
of experiment R9.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.apps import (
    assemble,
    initial_grid,
    reference_jacobi,
    run_stencil_mpi,
    run_stencil_photon,
)
from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init

RANKS = 4
ROWS, COLS, ITERS = 64, 48, 10


def run(transport: str):
    cluster = build_cluster(RANKS, params="ib-fdr")
    if transport == "photon":
        endpoints = photon_init(cluster)
        programs, results = run_stencil_photon(cluster, endpoints,
                                               ROWS, COLS, ITERS)
    else:
        comms = mpi_init(cluster)
        programs, results = run_stencil_mpi(cluster, comms,
                                            ROWS, COLS, ITERS)
    procs = [cluster.env.process(p) for p in programs]
    cluster.env.run(until=cluster.env.all_of(procs))
    return cluster, results


def main() -> None:
    reference = reference_jacobi(initial_grid(ROWS, COLS), ITERS)
    print(f"2-D Jacobi, {ROWS}x{COLS} grid, {ITERS} iterations, "
          f"{RANKS} ranks\n")
    print(f"{'transport':<10} {'us/iter':>9} {'comm %':>7}  verified")
    for transport in ("photon", "mpi"):
        cluster, results = run(transport)
        got = assemble(results, ROWS, COLS, RANKS)
        ok = np.array_equal(got, reference)
        elapsed = max(r.elapsed_ns for r in results)
        comm = max(r.comm_ns for r in results)
        print(f"{transport:<10} {elapsed / ITERS / 1000:9.2f} "
              f"{100 * comm / elapsed:7.1f}  "
              f"{'bit-identical to reference' if ok else 'MISMATCH!'}")
        assert ok
    print("\nThe photon variant puts halo rows straight into the "
          "neighbour's exposed buffer\n(no matching, no rendezvous); "
          "the completion id doubles as the iteration tag.")


if __name__ == "__main__":
    main()
