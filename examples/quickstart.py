#!/usr/bin/env python
"""Quickstart: Photon put-with-completion between two simulated ranks.

Builds a two-rank InfiniBand-FDR cluster, exposes a buffer on rank 1,
and has rank 0 write into it with a PWC put.  Rank 1 never posts a
receive — it discovers the data purely by probing its completion stream,
which is the active-message pattern runtimes build on.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.util import to_us


def main() -> None:
    # 1. a simulated two-rank cluster on the ib-fdr preset
    cluster = build_cluster(2, params="ib-fdr")
    env = cluster.env

    # 2. one Photon endpoint per rank (QP mesh + ledgers wired at t=0)
    ph = photon_init(cluster)

    # 3. registered buffers; (addr, rkey) is what a peer needs to target it
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)
    message = b"hello from rank 0 via RDMA put-with-completion"
    cluster[0].memory.write(src.addr, message)

    timeline = {}

    def rank0(env):
        timeline["posted"] = env.now
        # local_cid surfaces here when the source buffer is reusable;
        # remote_cid surfaces at rank 1 when the data is visible there.
        yield from ph[0].put_pwc(
            dst=1, local_addr=src.addr, size=len(message),
            remote_addr=dst.addr, rkey=dst.rkey,
            local_cid=100, remote_cid=200)
        completion = yield from ph[0].wait_completion("local")
        timeline["local_done"] = env.now
        print(f"[rank 0] t={to_us(env.now):7.3f}us  local completion "
              f"cid={completion.cid} (source buffer reusable)")

    def rank1(env):
        completion = yield from ph[1].wait_completion("remote")
        timeline["remote_done"] = env.now
        data = cluster[1].memory.read_bytes(dst.addr, len(message))
        print(f"[rank 1] t={to_us(env.now):7.3f}us  remote completion "
              f"cid={completion.cid} from rank {completion.src}")
        print(f"[rank 1] payload: {data.decode()!r}")
        assert data == message

    p0 = env.process(rank0(env))
    p1 = env.process(rank1(env))
    env.run(until=env.all_of([p0, p1]))

    print()
    print(f"one-way delivery latency : "
          f"{to_us(timeline['remote_done'] - timeline['posted']):.3f} us")
    print(f"source-release latency   : "
          f"{to_us(timeline['local_done'] - timeline['posted']):.3f} us "
          f"(includes the transport ack)")
    print(f"wire traffic             : "
          f"{cluster.counters.get('nic.tx_bytes')} payload bytes, "
          f"{cluster.counters.get('nic.tx_msgs')} messages")


if __name__ == "__main__":
    main()
