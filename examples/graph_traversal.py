#!/usr/bin/env python
"""Distributed BFS with parcels over Photon — the runtime integration demo.

Builds a 500-vertex random graph, partitions it over 4 simulated ranks,
and runs level-synchronous BFS where frontier expansion travels as
parcels on the Photon-PWC transport (and, for comparison, as alltoallv
exchanges on minimpi).  Depths verify against a sequential BFS.

Run:  python examples/graph_traversal.py
"""

from repro.apps import (
    make_graph,
    merge_depths,
    reference_depths,
    run_bfs_mpi,
    run_bfs_photon,
)
from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init

RANKS = 4
VERTICES = 500
DEGREE = 8.0
ROOT = 0


def run(transport: str, adj):
    cluster = build_cluster(RANKS, params="ib-fdr")
    if transport == "photon":
        endpoints = photon_init(cluster)
        programs, results = run_bfs_photon(cluster, endpoints, adj, ROOT)
    else:
        comms = mpi_init(cluster)
        programs, results = run_bfs_mpi(cluster, comms, adj, ROOT)
    procs = [cluster.env.process(p) for p in programs]
    cluster.env.run(until=cluster.env.all_of(procs))
    return results


def main() -> None:
    adj = make_graph(VERTICES, DEGREE, seed=7)
    want = reference_depths(adj, ROOT)
    reached = sum(1 for d in want.values() if d >= 0)
    print(f"BFS on |V|={VERTICES}, avg degree ~{DEGREE}, root={ROOT}: "
          f"{reached} reachable vertices, "
          f"{max(want.values())} levels\n")

    print(f"{'transport':<10} {'time (ms)':>10} {'levels':>7} "
          f"{'msgs':>6}  verified")
    times = {}
    for transport in ("photon", "mpi"):
        results = run(transport, adj)
        got = merge_depths(results)
        ok = got == want
        elapsed = max(r.elapsed_ns for r in results)
        times[transport] = elapsed
        print(f"{transport:<10} {elapsed / 1e6:10.3f} "
              f"{results[0].levels:7d} "
              f"{sum(r.parcels for r in results):6d}  "
              f"{'matches reference' if ok else 'MISMATCH!'}")
        assert ok
    print(f"\nphoton/mpi speedup: "
          f"{times['mpi'] / times['photon']:.2f}x — frontier batches are "
          f"many small irregular messages,\nthe regime matching-free "
          f"one-sided delivery is built for.")


if __name__ == "__main__":
    main()
