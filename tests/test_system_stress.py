"""Whole-system stress tests: every feature interleaved, multi-rank.

These are the "does the whole stack hold together" tests: PWC puts,
eager sends, rendezvous transfers, atomics and collectives all in flight
at once across four ranks, on clean and lossy fabrics, with payload
integrity and counter invariants asserted at the end.
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.photon.rcache import assert_reg_balance
from repro.sim import SimulationError

TIMEOUT = 10 ** 12
N = 4
ROUNDS = 6


def build(drop=0.0, seed=0, rcache=True):
    from repro.photon import PhotonConfig
    kw = {}
    if drop:
        kw = {"link__drop_rate": drop}
    cl = build_cluster(N, params="ib-fdr", seed=seed, **kw)
    ph = photon_init(cl, PhotonConfig(rcache_enabled=rcache))
    return cl, ph


def assert_no_pin_leaks(cl, ph):
    """End-of-test pin-leak guard: every acquire was released and every
    registration was deregistered or is still owned somewhere."""

    def drain(env):
        # let straggling retries/acks settle and spawned deregs finish
        yield env.timeout(10 ** 10)
        for ep in ph:
            yield from ep.rcache.flush()

    p = cl.env.process(drain(cl.env))
    cl.env.run(until=p)
    for ep in ph:
        assert ep.rcache.held_refs == 0, \
            f"rank {ep.rank}: leaked acquire references"
        assert ep.rcache.pending_evictions == 0
    assert_reg_balance(cl.counters,
                       [cl.ranks[r].context for r in range(len(cl.ranks))])


@pytest.mark.parametrize("drop,rcache", [(0.0, True), (0.03, True),
                                         (0.0, False)])
def test_everything_everywhere_all_at_once(drop, rcache):
    cl, ph = build(drop=drop, rcache=rcache)
    # disjoint regions per rank: rendezvous source, put-landing, landing
    rdv_src = [ep.buffer(1 << 16) for ep in ph]
    put_src = [ep.buffer(4096) for ep in ph]
    put_dst = [ep.buffer(1 << 14) for ep in ph]
    counter = ph[0].buffer(8)
    landing = [ep.buffer(1 << 16) for ep in ph]
    errors = []

    def program(rank):
        ep = ph[rank]
        env = cl.env
        right = (rank + 1) % N
        left = (rank - 1) % N
        big = bytes(((rank + 1) * 37 + i) & 0xFF for i in range(40_000))
        cl.ranks[rank].memory.write(rdv_src[rank].addr, big)
        cl.ranks[rank].memory.write(put_src[rank].addr, bytes([rank]) * 512)
        for rnd in range(ROUNDS):
            # 1) pwc put into the right neighbour's buffer
            yield from ep.put_pwc(right, put_src[rank].addr, 512,
                                  put_dst[right].addr + 1024 * (rank % 8),
                                  put_dst[right].rkey,
                                  remote_cid=(rnd << 8) | rank)
            # 2) eager message to the left neighbour
            yield from ep.send_pwc(left, bytes([rank, rnd]) * 64,
                                   remote_cid=(1 << 20) | (rnd << 8) | rank)
            # 3) rendezvous send of the big buffer to the right neighbour
            rid = yield from ep.send_rdma(right, rdv_src[rank].addr,
                                          40_000, tag=rnd)
            # 4) a remote atomic on the global counter
            yield from ep.fetch_add_blocking(0, counter.addr, counter.rkey,
                                             1)
            # 5) consume what the neighbours sent us
            c = yield from ep.wait_completion("remote", timeout_ns=TIMEOUT)
            if c is None:
                errors.append((rank, rnd, "pwc completion lost"))
                return
            m = yield from ep.wait_message(
                lambda s, cid: cid & (1 << 20), timeout_ns=TIMEOUT)
            if m is None or m[2] != bytes([m[0], rnd]) * 64:
                errors.append((rank, rnd, "eager payload wrong"))
                return
            info = yield from ep.wait_recv_info(src=left, tag=rnd,
                                                timeout_ns=TIMEOUT)
            if info is None:
                errors.append((rank, rnd, "rendezvous info lost"))
                return
            got = yield from ep.recv_rdma(info, landing[rank].addr)
            raw = cl.ranks[rank].memory.read(landing[rank].addr, got)
            want = bytes(((left + 1) * 37 + i) & 0xFF
                         for i in range(40_000))
            if raw != want:
                errors.append((rank, rnd, "rendezvous payload wrong"))
                return
            yield from ep.wait(rid, timeout_ns=TIMEOUT)
            ep.free_request(rid)
            # 6) a collective to close the round
            total = yield from ep.allreduce(
                np.array([rank + rnd], dtype=np.int64), "sum")
            expect = sum(r + rnd for r in range(N))
            if int(total[0]) != expect:
                errors.append((rank, rnd, f"allreduce {total[0]}"))
                return

    procs = [cl.env.process(program(r)) for r in range(N)]
    cl.env.run(until=cl.env.all_of(procs))
    assert errors == []
    # the global counter saw exactly N * ROUNDS atomic increments
    assert cl.ranks[0].memory.read_u64(counter.addr) == N * ROUNDS
    # no RNR events: photon never posts an unready receive path
    assert cl.counters.get("verbs.rnr_stalls") == 0
    assert_no_pin_leaks(cl, ph)


def test_outstanding_cap_enforced_under_flood():
    """max_outstanding bounds in-flight ops per peer; the flood still
    completes and the bound is never exceeded."""
    from repro.photon import PhotonConfig
    cfg = PhotonConfig(max_outstanding=8)
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)
    peak = []

    def sender(env):
        for i in range(100):
            yield from ph[0].put_pwc(1, src.addr, 64, dst.addr, dst.rkey,
                                     local_cid=i)
            peak.append(ph[0].peers[1].outstanding)
        got = 0
        while got < 100:
            c = yield from ph[0].wait_completion("local",
                                                 timeout_ns=TIMEOUT)
            assert c is not None
            got += 1

    p = cl.env.process(sender(cl.env))
    cl.env.run(until=p)
    assert max(peak) <= cfg.max_outstanding
    assert ph[0].peers[1].outstanding == 0
    assert_no_pin_leaks(cl, ph)


def test_bidirectional_flood_no_deadlock():
    """Both ranks flood each other through shallow rings simultaneously;
    credit-based flow control must not deadlock."""
    from repro.photon import PhotonConfig
    cfg = PhotonConfig(eager_slots=4, completion_entries=4,
                       max_outstanding=16)
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    n_msgs = 60

    def side(rank):
        ep = ph[rank]
        other = 1 - rank
        sent = 0
        got = 0
        while sent < n_msgs or got < n_msgs:
            if sent < n_msgs:
                yield from ep.send_pwc(other, bytes([rank]) * 32,
                                       remote_cid=sent)
                sent += 1
            m = yield from ep.probe_message()
            if m is not None:
                got += 1
        return got

    p0 = cl.env.process(side(0))
    p1 = cl.env.process(side(1))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p0.value == n_msgs and p1.value == n_msgs
    assert_no_pin_leaks(cl, ph)


def test_torus_all_pairs_traffic():
    """Every ordered pair exchanges a put on a 3x3 torus; all land."""
    cl = build_cluster(9, params="gemini")
    ph = photon_init(cl)
    srcs = [ep.buffer(64) for ep in ph]
    bufs = [ep.buffer(4096) for ep in ph]

    def program(rank):
        ep = ph[rank]
        for dst in range(9):
            if dst == rank:
                continue
            yield from ep.put_pwc(dst, srcs[rank].addr, 16,
                                  bufs[dst].addr + 16 * rank,
                                  bufs[dst].rkey, remote_cid=rank)
        got = 0
        while got < 8:
            c = yield from ep.wait_completion("remote", timeout_ns=TIMEOUT)
            assert c is not None
            got += 1

    for r in range(9):
        cl.ranks[r].memory.write(srcs[r].addr, bytes([r]) * 16)
    procs = [cl.env.process(program(r)) for r in range(9)]
    cl.env.run(until=cl.env.all_of(procs))
    for dst in range(9):
        for src in range(9):
            if src == dst:
                continue
            assert cl.ranks[dst].memory.read(
                bufs[dst].addr + 16 * src, 16) == bytes([src]) * 16
    assert_no_pin_leaks(cl, ph)
