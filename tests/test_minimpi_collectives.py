"""Integration tests for minimpi collectives and RMA windows."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.minimpi import MPIConfig, mpi_init, win_allocate
from repro.sim import SimulationError


def spmd(n, body, config=None, **kw):
    cl = build_cluster(n, **kw)
    comms = mpi_init(cl, config)
    procs = [cl.env.process(body(comms[r], r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    return cl, comms, [p.value for p in procs]


@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8])
def test_barrier_all_sizes(n):
    def body(comm, rank):
        yield from comm.barrier()
        return comm.env.now

    spmd(n, body)


def test_barrier_synchronises():
    enter = {}
    exit_ = {}

    def body(comm, rank):
        yield comm.env.timeout(rank * 50_000)
        enter[rank] = comm.env.now
        yield from comm.barrier()
        exit_[rank] = comm.env.now

    spmd(4, body)
    for r in range(4):
        assert exit_[r] >= enter[3]


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_bcast(n):
    def body(comm, rank):
        if rank == 2 % n:
            arr = np.arange(32, dtype=np.float64)
        else:
            arr = np.zeros(32, dtype=np.float64)
        out = yield from comm.bcast(arr, root=2 % n)
        return out

    cl, comms, res = spmd(n, body)
    for out in res:
        np.testing.assert_allclose(out, np.arange(32))


@pytest.mark.parametrize("n", [2, 3, 4, 7])
def test_allreduce_sum(n):
    def body(comm, rank):
        arr = np.full(8, float(rank + 1))
        out = yield from comm.allreduce(arr, "sum")
        return out

    cl, comms, res = spmd(n, body)
    for out in res:
        np.testing.assert_allclose(out, np.full(8, sum(range(1, n + 1))))


def test_allreduce_min():
    def body(comm, rank):
        arr = np.array([float(rank), float(-rank)])
        out = yield from comm.allreduce(arr, "min")
        return out

    cl, comms, res = spmd(4, body)
    for out in res:
        np.testing.assert_allclose(out, [0.0, -3.0])


def test_reduce_root_only():
    def body(comm, rank):
        arr = np.array([1.0])
        out = yield from comm.reduce(arr, "sum", root=1)
        return out

    cl, comms, res = spmd(3, body)
    assert res[0] is None and res[2] is None
    np.testing.assert_allclose(res[1], [3.0])


@pytest.mark.parametrize("n", [2, 4, 5])
def test_allgather(n):
    def body(comm, rank):
        out = yield from comm.allgather(bytes([rank]) * 16)
        return out

    cl, comms, res = spmd(n, body)
    for out in res:
        assert out == [bytes([r]) * 16 for r in range(n)]


def test_alltoall_variable_sizes():
    def body(comm, rank):
        blobs = [bytes([rank]) * (dst + 1) for dst in range(comm.size)]
        out = yield from comm.alltoall(blobs)
        return out

    cl, comms, res = spmd(3, body)
    for rank, out in enumerate(res):
        for src in range(3):
            assert out[src] == bytes([src]) * (rank + 1)


def test_unknown_reduce_op_rejected():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    with pytest.raises(SimulationError):
        list(comms[0].allreduce(np.zeros(2), "bogus"))


def test_collective_sequence_no_crosstalk():
    def body(comm, rank):
        yield from comm.barrier()
        a = yield from comm.allreduce(np.array([rank + 1.0]), "sum")
        g = yield from comm.allgather(bytes([rank]))
        b = yield from comm.bcast(np.array([a[0] * 2]), root=0)
        yield from comm.barrier()
        return float(a[0]), g, float(b[0])

    cl, comms, res = spmd(4, body)
    for a, g, b in res:
        assert a == 10.0
        assert g == [b"\x00", b"\x01", b"\x02", b"\x03"]
        assert b == 20.0


# ---------------------------------------------------------------- RMA


def test_win_put_fence():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 4096)
    src = cl[0].memory.alloc(256)
    cl[0].memory.write(src, b"rma put" * 8)

    def origin(env):
        yield from wins[0].put(src, 56, rank=1, offset=128)
        yield from wins[0].fence()

    def target(env):
        yield from wins[1].fence()

    p0 = cl.env.process(origin(cl.env))
    p1 = cl.env.process(target(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert cl[1].memory.read(wins[1].addr + 128, 56) == b"rma put" * 8


def test_win_get():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 4096)
    dst = cl[0].memory.alloc(256)
    cl[1].memory.write(wins[1].addr, b"window data!")

    def origin(env):
        yield from wins[0].get(dst, 12, rank=1, offset=0)
        yield from wins[0].flush()

    p0 = cl.env.process(origin(cl.env))
    cl.env.run(until=p0)
    assert cl[0].memory.read(dst, 12) == b"window data!"


def test_win_fetch_add():
    cl = build_cluster(3)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 64)
    cl[0].memory.write_u64(wins[0].addr, 100)

    def origin(env, rank):
        scratch = cl[rank].memory.alloc(8)
        for _ in range(5):
            yield from wins[rank].fetch_add(scratch, rank=0, offset=0,
                                            operand=2)
            yield from wins[rank].flush()

    p1 = cl.env.process(origin(cl.env, 1))
    p2 = cl.env.process(origin(cl.env, 2))
    cl.env.run(until=cl.env.all_of([p1, p2]))
    assert cl[0].memory.read_u64(wins[0].addr) == 100 + 20


def test_win_bounds_checked():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 64)
    src = cl[0].memory.alloc(256)
    with pytest.raises(SimulationError):
        list(wins[0].put(src, 128, rank=1, offset=0))


def test_win_loopback_rejected():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 64)
    src = cl[0].memory.alloc(64)
    with pytest.raises(SimulationError):
        list(wins[0].put(src, 8, rank=0))
