"""Integration tests for the parcel runtime over both transports."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init
from repro.runtime import (
    ActionRegistry,
    AndGate,
    Future,
    Parcel,
    ReduceLCO,
    build_runtime,
    gas_allocate,
)
from repro.sim import SimulationError

TIMEOUT = 200_000_000


def make(n=2, transport="photon"):
    cl = build_cluster(n)
    registry = ActionRegistry()
    if transport == "photon":
        ph = photon_init(cl)
        rts = build_runtime(cl, registry, "photon", photon=ph)
    else:
        comms = mpi_init(cl)
        rts = build_runtime(cl, registry, "mpi", comms=comms)
    return cl, registry, rts


def run_all(cl, procs):
    return cl.env.run(until=cl.env.all_of(procs))


# ------------------------------------------------------------- parcels


def test_parcel_encode_decode_roundtrip():
    p = Parcel(action=3, src=1, payload=b"payload bytes")
    assert Parcel.decode(p.encode()) == p


def test_parcel_decode_short_raises():
    with pytest.raises(SimulationError):
        Parcel.decode(b"abc")


@pytest.mark.parametrize("transport", ["photon", "mpi"])
def test_remote_parcel_runs_handler(transport):
    cl, registry, rts = make(transport=transport)
    seen = []
    registry.register("hello", lambda rt, src, data: seen.append(
        (rt.rank, src, bytes(data))))

    def sender(env):
        yield from rts[0].send(1, "hello", b"hi there")

    def receiver(env):
        ok = yield from rts[1].process_n(1, timeout_ns=TIMEOUT)
        return ok

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value
    assert seen == [(1, 0, b"hi there")]


@pytest.mark.parametrize("transport", ["photon", "mpi"])
def test_large_parcel_roundtrip(transport):
    cl, registry, rts = make(transport=transport)
    seen = []
    registry.register("big", lambda rt, src, data: seen.append(len(data)))
    big = bytes(200_000)

    def sender(env):
        yield from rts[0].send(1, "big", big)

    def receiver(env):
        yield from rts[1].process_n(1, timeout_ns=TIMEOUT)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert seen == [200_000]


def test_local_parcel_short_circuits():
    cl, registry, rts = make()
    seen = []
    registry.register("loc", lambda rt, src, data: seen.append(src))

    def prog(env):
        yield from rts[0].send(0, "loc")
        yield from rts[0].process_n(1, timeout_ns=TIMEOUT)

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert seen == [0]
    assert cl.counters.get("nic.tx_msgs") == 0  # nothing hit the wire


def test_generator_handler_can_reply():
    """Handlers may themselves send parcels (request/response pattern)."""
    cl, registry, rts = make()
    answers = []

    def ping(rt, src, data):
        yield from rt.send(src, "pong", data + b"!")

    registry.register("ping", ping)
    registry.register("pong", lambda rt, src, data: answers.append(data))

    def rank0(env):
        yield from rts[0].send(1, "ping", b"marco")
        yield from rts[0].process_n(1, timeout_ns=TIMEOUT)

    def rank1(env):
        yield from rts[1].process_n(1, timeout_ns=TIMEOUT)

    p0 = cl.env.process(rank0(cl.env))
    p1 = cl.env.process(rank1(cl.env))
    run_all(cl, [p0, p1])
    assert answers == [b"marco!"]


def test_parcel_flood_all_delivered():
    cl, registry, rts = make()
    count = [0]
    registry.register("inc", lambda rt, src, data: count.__setitem__(
        0, count[0] + 1))
    n_parcels = 100

    def sender(env):
        for i in range(n_parcels):
            yield from rts[0].send(1, "inc", bytes([i % 256]) * 64)

    def receiver(env):
        yield from rts[1].process_n(n_parcels, timeout_ns=TIMEOUT)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert count[0] == n_parcels


def test_unknown_action_rejected():
    cl, registry, rts = make()
    with pytest.raises(SimulationError):
        list(rts[0].send(1, "nope"))


# ------------------------------------------------------------- LCOs


def test_future_set_by_handler():
    cl, registry, rts = make()
    fut = Future()
    registry.register("fulfill", lambda rt, src, data: fut.set(bytes(data)))

    def rank0(env):
        value = yield from fut.wait(rts[0], timeout_ns=TIMEOUT)
        return value

    def rank1(env):
        yield from rts[1].send(0, "fulfill", b"result")

    p0 = cl.env.process(rank0(cl.env))
    p1 = cl.env.process(rank1(cl.env))
    run_all(cl, [p0, p1])
    assert p0.value == b"result"


def test_future_double_set_rejected():
    f = Future()
    f.set(1)
    with pytest.raises(SimulationError):
        f.set(2)


def test_andgate_counts_arrivals():
    cl, registry, rts = make(n=4)
    gate = AndGate(3)
    registry.register("arrive", lambda rt, src, data: gate.arrive())

    def rank0(env):
        yield from gate.wait(rts[0], timeout_ns=TIMEOUT)
        return rts[0].parcels_run

    def other(env, r):
        yield from rts[r].send(0, "arrive")

    procs = [cl.env.process(other(cl.env, r)) for r in (1, 2, 3)]
    procs.append(cl.env.process(rank0(cl.env)))
    run_all(cl, procs)
    assert gate.ready


def test_reduce_lco():
    cl, registry, rts = make(n=3)
    red = ReduceLCO(2, lambda a, b: a + b, 0)
    registry.register("contrib", lambda rt, src, data: red.contribute(
        int.from_bytes(data, "little")))

    def rank0(env):
        val = yield from red.wait(rts[0], timeout_ns=TIMEOUT)
        return val

    def other(env, r):
        yield from rts[r].send(0, "contrib", (r * 10).to_bytes(8, "little"))

    procs = [cl.env.process(other(cl.env, r)) for r in (1, 2)]
    p0 = cl.env.process(rank0(cl.env))
    run_all(cl, procs + [p0])
    assert p0.value == 30


# ------------------------------------------------------------- GAS


def test_gas_memput_memget_roundtrip():
    cl = build_cluster(4)
    ph = photon_init(cl)
    gas = gas_allocate(ph, total=64 * 1024, block_size=4096)
    scratch = [ph[r].buffer(16 * 1024) for r in range(4)]

    def writer(env):
        yield from gas[0].memput(10_000, b"gas data " * 3, scratch[0].addr)

    def reader(env):
        yield cl.env.process(writer(cl.env))
        data = yield from gas[1].memget(10_000, 27, scratch[1].addr)
        return data

    p = cl.env.process(reader(cl.env))
    run_all(cl, [p])
    assert p.value == b"gas data " * 3


def test_gas_block_cyclic_homes():
    cl = build_cluster(4)
    ph = photon_init(cl)
    gas = gas_allocate(ph, total=16 * 4096, block_size=4096)
    homes = [gas[0].home_of(b * 4096) for b in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_gas_straddling_put_splits_blocks():
    cl = build_cluster(2)
    ph = photon_init(cl)
    gas = gas_allocate(ph, total=8 * 4096, block_size=4096)
    scratch = ph[0].buffer(16 * 1024)
    data = bytes(range(256)) * 32  # 8 KiB spans 2+ blocks

    def prog(env):
        yield from gas[0].memput(4000, data, scratch.addr)
        got = yield from gas[0].memget(4000, len(data), scratch.addr + 8192)
        return got

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value == data


def test_gas_memput_pwc_notifies_home():
    cl = build_cluster(2)
    ph = photon_init(cl)
    gas = gas_allocate(ph, total=8 * 4096, block_size=4096)
    scratch = ph[0].buffer(4096)

    def writer(env):
        # block 1 lives on rank 1
        yield from gas[0].memput_pwc(4096, b"notified!", scratch.addr,
                                     remote_cid=42)

    def home(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(writer(cl.env))
    p1 = cl.env.process(home(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value.cid == 42


def test_gas_out_of_range_rejected():
    cl = build_cluster(2)
    ph = photon_init(cl)
    gas = gas_allocate(ph, total=4096, block_size=1024)
    with pytest.raises(SimulationError):
        gas[0].locate(5000)
