"""Heartbeat service and phi-accrual failure detection.

Unit level: detector math (phi growth, EWMA adaptation, reset) and
membership semantics (monotonic versions, sticky DEAD).  End to end: a
powered-off NIC starves real heartbeats until the survivor declares the
peer dead, and the photon / minimpi consumers settle pending work with
a dead-peer status instead of burning their full retry budgets.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import PhotonConfig, photon_init
from repro.runtime.health import (ALIVE, DEAD, SUSPECT, HealthConfig,
                                  MembershipView, PhiAccrualDetector,
                                  build_health)
from repro.verbs.enums import WCStatus

WAIT = 10 ** 12
#: phi-accrual detection budget at default tuning (phi_dead * period * ln 10)
DETECT_BUDGET_NS = int(6.0 * 50_000 * math.log(10.0))


# --------------------------------------------------------------------------
# detector + membership units
# --------------------------------------------------------------------------

def test_phi_grows_with_silence_and_resets_on_heartbeat():
    det = PhiAccrualDetector(HealthConfig(), now=0)
    assert det.phi(0) == 0.0
    early, late = det.phi(100_000), det.phi(500_000)
    assert 0.0 < early < late
    det.sample(500_000)
    assert det.phi(500_000) == 0.0


def test_detector_ewma_adapts_to_slow_heartbeats():
    det = PhiAccrualDetector(HealthConfig(), now=0)
    t = 0
    for _ in range(50):
        t += 200_000  # 4x the nominal period, steadily
        det.sample(t)
    # the mean tracked the real cadence, so a 400 us gap is mild suspicion
    assert det.mean_ns > 150_000
    assert det.phi(t + 400_000) < 3.0


def test_membership_versions_monotonic_and_dead_sticky():
    view = MembershipView(3)
    assert view.transition(1, SUSPECT)
    assert view.transition(1, ALIVE)
    assert view.transition(1, DEAD)
    v = view.version
    assert not view.transition(1, DEAD)  # same-state: no version burn
    assert view.version == v
    assert view.transition(1, ALIVE, incarnation=2)
    versions = [h[0] for h in view.history]
    assert versions == sorted(versions) and len(set(versions)) == len(versions)
    assert view.incarnation[1] == 2


def test_health_config_validation():
    with pytest.raises(ValueError):
        HealthConfig(period_ns=0).validate()
    with pytest.raises(ValueError):
        HealthConfig(ewma_alpha=0.0).validate()
    with pytest.raises(ValueError):
        HealthConfig(phi_suspect=6.0, phi_dead=2.0).validate()


# --------------------------------------------------------------------------
# end to end over the real fabric
# --------------------------------------------------------------------------

def test_crash_detected_and_rejoin_clears_dead():
    cl = build_cluster(2, "ib-fdr", seed=1, spans=True)
    mons = build_health(cl)
    cl.env.run(until=1_000_000)
    assert mons[0].view.status[1] == ALIVE
    assert cl.counters.get("health.heartbeats") > 0

    mons[1].halt()
    cl[1].nic.power_off()
    t_crash = cl.env.now

    def until_dead(env):
        while not mons[0].is_dead(1):
            yield env.timeout(10_000)
    cl.env.run(until=cl.env.process(until_dead(cl.env)))
    assert cl.env.now - t_crash < 2 * DETECT_BUDGET_NS
    assert cl.counters.get("health.deaths") == 1
    assert cl.metrics.span_durations("health.detect")

    # restart: the new incarnation is the only legal way out of DEAD
    cl[1].nic.power_on()
    mons[1].resume()

    def until_alive(env):
        while mons[0].is_dead(1):
            yield env.timeout(10_000)
    cl.env.run(until=cl.env.process(until_alive(cl.env)))
    assert mons[0].view.incarnation[1] == 2
    assert cl.counters.get("health.joins") == 1
    assert cl.metrics.span_durations("health.outage")


def test_gray_silence_suspects_then_one_heartbeat_recovers():
    cl = build_cluster(2, "ib-fdr", seed=2)
    mons = build_health(cl)
    cl.env.run(until=500_000)
    # silence short of the death threshold: suspect only
    mons[1].halted = True
    cl.env.run(until=cl.env.now + 350_000)
    assert mons[0].view.status[1] == SUSPECT
    assert cl.counters.get("health.suspects") >= 1
    mons[1].halted = False
    cl.env.run(until=cl.env.now + 200_000)
    assert mons[0].view.status[1] == ALIVE
    assert cl.counters.get("health.recoveries") >= 1
    assert cl.counters.get("health.deaths") == 0


def test_photon_pending_op_settles_peer_dead():
    """An op against a crashed peer settles PEER_DEAD at detection time,
    not after the full deadline+retry budget."""
    cl = build_cluster(2, "ib-fdr", seed=3)
    ph = photon_init(cl, PhotonConfig(use_imm=False, max_op_retries=5,
                                      op_timeout_ns=400_000,
                                      backoff_base_ns=20_000))
    mons = build_health(cl)
    for r in range(2):
        ph[r].attach_health(mons[r])
    a, b = ph[0].buffer(4096), ph[1].buffer(4096)
    out = {}

    def prog(env):
        yield env.timeout(500_000)  # detectors warmed up
        mons[1].halt()
        ph[1].crash_local()
        cl[1].nic.power_off()
        t0 = env.now
        yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                 local_cid=1, remote_cid=1)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["status"], out["settle"] = c.status, env.now - t0
        # a second op posted after detection fails at post time
        t0 = env.now
        yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                 local_cid=2, remote_cid=2)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["status2"], out["settle2"] = c.status, env.now - t0

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert out["status"] is WCStatus.PEER_DEAD
    assert out["settle"] < 2 * DETECT_BUDGET_NS   # ~0.7ms, not ~2.5ms
    assert out["status2"] is WCStatus.PEER_DEAD
    assert out["settle2"] < 100_000
    assert cl.counters.get("photon.dead_peer_fails") >= 2
    assert cl.counters.get("photon.peer_dead_events") == 1


def test_minimpi_requests_fail_with_peer_dead():
    cl = build_cluster(2, "ib-fdr", seed=4)
    mm = mpi_init(cl)
    mons = build_health(cl)
    for r in range(2):
        mm[r].engine.attach_health(mons[r])
    src = cl[0].memory.alloc(64)
    cl[0].memory.write(src, b"\xaa" * 64)
    out = {}

    def prog(env):
        yield env.timeout(500_000)
        mons[1].halt()
        cl[1].nic.power_off()
        # pending at crash: settles via the on_dead callback at detection
        req = yield from mm[0].isend(src, 64, 1, tag=0)
        yield from mm[0].engine.wait(req, timeout_ns=WAIT)
        out["err1"], out["done1"] = req.error, req.done
        # posted after detection: fast-fails at post time
        req2 = yield from mm[0].isend(src, 64, 1, tag=1)
        out["err2"], out["done2"] = req2.error, req2.done

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert out["done1"] and out["err1"] == "peer_dead"
    assert out["done2"] and out["err2"] == "peer_dead"
    assert cl.counters.get("mpi.dead_peer_fails") >= 2
