"""Tests for the bench harness: result container, microbench sanity,
backend registry, and experiment determinism."""

import pytest

from repro.bench import (
    ExperimentResult,
    bandwidth_photon,
    msgrate_photon,
    overlap_mpi,
    overlap_photon,
    pingpong_mpi,
    pingpong_photon,
)
from repro.photon.backends import BACKENDS, backend, build_photon_cluster


# ---------------------------------------------------------------- result


def make_result(checks):
    return ExperimentResult(exp_id="RX", title="t", headers=["a", "b"],
                            rows=[[1, 2.5]], checks=checks)


def test_result_checks_aggregate():
    ok = make_result({"x": True, "y": True})
    assert ok.all_checks_pass and ok.failed_checks() == []
    bad = make_result({"x": True, "y": False})
    assert not bad.all_checks_pass
    assert bad.failed_checks() == ["y"]


def test_result_render_contains_table_and_checks():
    r = make_result({"works": True})
    out = r.render()
    assert "[RX] t" in out
    assert "check PASS: works" in out


def test_result_markdown_shape():
    r = make_result({"works": False})
    md = r.to_markdown()
    assert md.startswith("### RX")
    assert "| a | b |" in md
    assert "❌ works" in md


# ---------------------------------------------------------------- microbench


def test_pingpong_deterministic_across_runs():
    a = pingpong_photon(64, reps=5, seed=3).samples
    b = pingpong_photon(64, reps=5, seed=3).samples
    assert a == b


def test_pingpong_latency_stats():
    st = pingpong_photon(8, reps=5)
    assert len(st.samples) == 5
    assert st.mean_us == pytest.approx(st.mean_ns / 1000)


def test_mpi_pingpong_slower_with_more_sw_overhead():
    from repro.minimpi import MPIConfig
    fast = pingpong_mpi(64, reps=5,
                        config=MPIConfig(sw_overhead_ns=0)).mean_ns
    slow = pingpong_mpi(64, reps=5,
                        config=MPIConfig(sw_overhead_ns=500)).mean_ns
    assert slow > fast


def test_bandwidth_bounded_by_link():
    gbps = bandwidth_photon(256 * 1024, count=16, window=8)
    assert 0 < gbps <= 54.0


def test_msgrate_positive():
    assert msgrate_photon(16, count=100) > 0


def test_overlap_photon_flat_under_transfer_time():
    base = overlap_photon(1 << 20, 0)
    with_compute = overlap_photon(1 << 20, base // 2)
    assert with_compute <= base * 1.05


def test_overlap_mpi_additive_beyond_handshake():
    base = overlap_mpi(1 << 20, 0)
    with_compute = overlap_mpi(1 << 20, 2 * base)
    assert with_compute >= 2 * base


# ---------------------------------------------------------------- backends


def test_backend_registry_names():
    assert set(BACKENDS) == {"verbs", "verbs-edr", "ugni", "roce", "sw"}


def test_backend_lookup_error_lists_known():
    with pytest.raises(KeyError, match="verbs"):
        backend("tcp")


def test_build_photon_cluster_end_to_end():
    cl, ph = build_photon_cluster(2, "ugni")
    assert cl.params.name == "gemini"
    assert ph[0].config.use_imm is False
    src = ph[0].buffer(64)
    dst = ph[1].buffer(64)
    cl[0].memory.write(src.addr, b"backend!")

    def prog(env):
        yield from ph[0].put_pwc(1, src.addr, 8, dst.addr, dst.rkey,
                                 remote_cid=1)

    def recv(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=10 ** 10)
        return c

    p0 = cl.env.process(prog(cl.env))
    p1 = cl.env.process(recv(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p1.value.cid == 1
    assert cl[1].memory.read(dst.addr, 8) == b"backend!"


def test_sw_backend_slower_than_verbs():
    sw = pingpong_photon(64, reps=5, mode="pwc",
                         params=backend("sw").fabric,
                         config=backend("sw").config).mean_ns
    ib = pingpong_photon(64, reps=5, mode="pwc").mean_ns
    assert sw > 3 * ib


# ---------------------------------------------------------------- experiments


def test_quick_experiment_runs_and_checks(capsys):
    from repro.bench.experiments import r3_msgrate
    result = r3_msgrate.run(quick=True)
    assert result.exp_id == "R3"
    assert result.all_checks_pass, result.failed_checks()
    assert len(result.rows) >= 2


def test_cli_selected_experiment(capsys):
    from repro.bench.__main__ import main
    rc = main(["r6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[R6]" in out
    assert "all shape checks passed" in out


def test_cli_unknown_experiment_rejected():
    from repro.bench.__main__ import main
    with pytest.raises(SystemExit):
        main(["r99"])


def test_latency_stats_percentiles():
    st = pingpong_photon(8, reps=10)
    assert st.min_us <= st.median_us <= st.p99_us
    assert st.min_us <= st.mean_us <= st.p99_us
