"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Store
from repro.sim.rng import RngRegistry


@given(delays=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                       min_size=1, max_size=30))
def test_clock_is_monotone_and_ends_at_total(delays):
    env = Environment()
    observed = []

    def prog(env):
        for d in delays:
            yield env.timeout(d)
            observed.append(env.now)

    env.process(prog(env))
    env.run()
    assert observed == sorted(observed)
    assert env.now == sum(delays)


@given(st.data())
def test_parallel_processes_finish_at_their_own_sums(data):
    n = data.draw(st.integers(min_value=1, max_value=5))
    all_delays = [data.draw(st.lists(
        st.integers(min_value=0, max_value=1000), min_size=1, max_size=8))
        for _ in range(n)]
    env = Environment()

    def prog(env, delays):
        for d in delays:
            yield env.timeout(d)
        return env.now

    procs = [env.process(prog(env, d)) for d in all_delays]
    env.run()
    for proc, delays in zip(procs, all_delays):
        assert proc.value == sum(delays)
    assert env.now == max(sum(d) for d in all_delays)


@given(items=st.lists(st.integers(), min_size=0, max_size=50),
       capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=50)
def test_store_preserves_order_and_content_under_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(len(items)):
            got = yield store.get()
            out.append(got)
            yield env.timeout(3)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       name=st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible_and_independent(seed, name):
    a = RngRegistry(seed).stream(name)
    b = RngRegistry(seed).stream(name)
    assert a.integers(0, 1 << 30, size=8).tolist() == \
        b.integers(0, 1 << 30, size=8).tolist()
    other = RngRegistry(seed).stream(name + "-x")
    # different names give (overwhelmingly likely) different draws
    assert other.integers(0, 1 << 30, size=8).tolist() != \
        RngRegistry(seed).stream(name).integers(0, 1 << 30, size=8).tolist()


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=20))
@settings(max_examples=50)
def test_same_time_events_fire_in_scheduling_order(events):
    """Ties on the clock break by scheduling order, deterministically."""
    env = Environment()
    fired = []

    for idx, (delay, _) in enumerate(events):
        def cb(ev, idx=idx):
            fired.append(idx)

        env.timeout(delay).add_callback(cb)
    env.run()
    # stable sort by delay must equal the firing order
    expected = [i for i, _ in sorted(enumerate(e[0] for e in events),
                                     key=lambda p: p[1])]
    assert fired == expected
