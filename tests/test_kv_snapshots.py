"""Snapshots under chaos, end to end: restart rejoin, live moves.

Two module-scoped scenario runs (leader-crash and follower-crash), both
driving the full R21 composition — sustained writes, a partitioned
follower the leaders trim past, a crash→restart of a replica that must
rejoin through InstallSnapshot, and one live shard move flipped under
the writers' feet.  The tests then assert the contract piecewise so a
failure names the broken property, not just "the experiment failed".

A final guard checks the pay-for-what-you-build rule: snapshot
machinery armed (it always is on a built store) but never *due* takes
no snapshots, streams no chunks and bumps no snapshot counters.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments.r21_snapshots import (COMPACT_MARGIN,
                                                   COMPACT_THRESHOLD,
                                                   SAMPLER_SLACK,
                                                   run_chaos_move)
from repro.chaos.invariants import (InvariantViolation, check_log_bounded,
                                    check_membership_monotonic)
from repro.cluster import build_cluster
from repro.kv import KVClient, KVConfig, build_kv
from repro.photon import photon_init


@pytest.fixture(scope="module")
def leader_crash():
    return run_chaos_move(quick=True, crash="leader")


@pytest.fixture(scope="module")
def follower_crash():
    return run_chaos_move(quick=True, crash="follower", seed=405)


@pytest.mark.parametrize("scen", ["leader_crash", "follower_crash"])
def test_every_acked_write_survives_on_every_final_owner_replica(
        scen, request):
    r = request.getfixturevalue(scen)
    assert r["acked"] == r["n_ops"] + 20  # writers + post-move probes
    assert len(r["lost_per_replica"]) == 3  # audit covered all replicas
    for rank, missing in r["lost_per_replica"].items():
        assert missing == [], \
            f"rank {rank} lost acked writes {missing[:5]}"


@pytest.mark.parametrize("scen", ["leader_crash", "follower_crash"])
def test_restarted_replica_rejoins_via_snapshot_install(scen, request):
    r = request.getfixturevalue(scen)
    victim = r["victim"]
    assert r["victim_installs"] >= 1
    # the rejoined replica converged: its machines are byte-identical
    # with the other replicas' at quiescence
    nodes = r["nodes"]
    smap = nodes[0].shard_map
    for g in (0, 1):
        if victim not in smap.replicas(g):
            continue
        blobs = {nodes[rank].machines[g].serialize()
                 for rank in smap.replicas(g)}
        assert len(blobs) == 1, f"group {g} replicas diverged"


def test_snapshot_install_happened_during_the_write_burst(leader_crash):
    r = leader_crash
    # install spans were recorded by repro.obs, and they fired while the
    # writers were still in flight — not in the post-run drain
    assert len(r["install_spans"]) >= 2  # victim + partitioned lagger
    assert r["snapshot_bytes"] > 0


def test_partitioned_follower_catches_up_by_snapshot(leader_crash):
    assert leader_crash["lagger_installs"] >= 1


@pytest.mark.parametrize("scen", ["leader_crash", "follower_crash"])
def test_retained_logs_stay_bounded(scen, request):
    r = request.getfixturevalue(scen)
    bound = COMPACT_THRESHOLD + COMPACT_MARGIN
    assert 0 < r["max_retained"] <= bound + SAMPLER_SLACK
    check_log_bounded(r["nodes"], slack=0)  # quiescent: no slack at all


def test_live_move_is_invisible_in_the_ack_ledger(leader_crash):
    r = leader_crash
    move = r["move"]
    assert move["epoch"] == 1 and move["moved_bytes"] > 0
    # in-flight writers crossed the flip and recovered via WRONG_EPOCH
    assert r["wrong_epoch"] >= 1 and r["map_refreshes"] >= 1
    # the source group is purged and unsealed; the new owner serves
    nodes = r["nodes"]
    for rank in nodes[0].shard_map.replicas(1):
        sm = nodes[rank].machines[1]
        assert len(sm.data) == 0 and not sm.sealed
    assert r["post_move_ok"] == 20


@pytest.mark.parametrize("scen", ["leader_crash", "follower_crash"])
def test_membership_monotonic_on_every_monitor(scen, request):
    for mon in request.getfixturevalue(scen)["monitors"]:
        check_membership_monotonic(mon)


def test_log_bound_checker_rejects_an_overrun():
    class _Cfg:
        compact_threshold = 8
        compact_margin = 2

    class _RN:
        config = _Cfg()
        snapshot_fn = staticmethod(lambda: b"")
        base_index = 0
        last_applied = 11

    class _Node:
        rank = 0
        raft = {0: _RN()}

    with pytest.raises(InvariantViolation):
        check_log_bounded([_Node()])
    _RN.last_applied = 10  # exactly at the bound: fine
    check_log_bounded([_Node()])
    _RN.snapshot_fn = None  # disarmed replicas are exempt by design
    _RN.last_applied = 999
    check_log_bounded([_Node()])


def test_armed_but_idle_snapshots_cost_nothing():
    """A built store always has snapshot_fn armed; with fewer applied
    entries than compact_threshold nothing may fire: no snapshots, no
    chunks, no installs, no obs counters."""
    cl = build_cluster(3, "ib-fdr", seed=71)
    ph = photon_init(cl)
    nodes = build_kv(cl, ph, KVConfig(n_groups=1, rf=3))
    out = {}

    def body(env):
        while not any(n.is_leader(0) for n in nodes):
            yield env.timeout(50_000)
        c = KVClient(nodes[0], client_id=1)
        for i in range(20):  # far below compact_threshold (256)
            yield from c.put(f"idle:{i}".encode(), b"v")
        yield env.timeout(500_000)
        out["ok"] = True

    done = cl.env.process(body(cl.env), name="kv.idle")
    cl.env.run(until=done)
    assert out["ok"]
    for n in nodes:
        rn = n.raft[0]
        assert rn.snapshot_fn is not None  # armed ...
        assert rn.snapshots_taken == 0     # ... but never fired
        assert rn.snapshot_chunks_sent == 0
        assert rn.snapshot_installs == 0
        assert rn.base_index == 0
    for r in range(3):
        vals = cl.scope(r).values
        assert vals.get("kv.snapshots_taken", 0) == 0
        assert vals.get("kv.snapshot_installs", 0) == 0
        assert vals.get("kv.raft.snapshot_bytes", 0) == 0
    assert cl.metrics.span_durations("kv.raft.install") == []
