"""Photon engine internals: progress accounting, credits, request table.

These pin the *cost-model* behaviour of the middleware — the properties
the benchmark results rest on — rather than end-to-end data movement.
"""

import pytest

from repro.cluster import build_cluster
from repro.photon import PhotonConfig, photon_init
from repro.photon.request import RequestKind, RequestState, RequestTable
from repro.sim import SimulationError

TIMEOUT = 10 ** 12


# ---------------------------------------------------------------- requests


def test_request_table_lifecycle():
    t = RequestTable(rank=0)
    req = t.create(RequestKind.OS_PUT, peer=1, size=64, tag=0, now=100)
    assert req.state is RequestState.PENDING
    assert t.pending == 1
    done = t.complete(req.rid, now=500)
    assert done.completed and done.t_completed == 500
    assert t.pending == 0
    t.free(req.rid)
    with pytest.raises(SimulationError):
        t.get(req.rid)


def test_request_double_complete_rejected():
    t = RequestTable(rank=0)
    req = t.create(RequestKind.OS_GET, 1, 8, 0, 0)
    t.complete(req.rid, 10)
    with pytest.raises(SimulationError):
        t.complete(req.rid, 20)


def test_request_ids_unique_and_dense():
    t = RequestTable(rank=0)
    rids = [t.create(RequestKind.OS_PUT, 1, 8, 0, 0).rid for _ in range(5)]
    assert len(set(rids)) == 5
    assert t.total_created == 5


# ---------------------------------------------------------------- progress


def test_progress_pass_charges_time():
    cl = build_cluster(2)
    ph = photon_init(cl)

    def prog(env):
        t0 = env.now
        yield from ph[0]._progress_once()
        return env.now - t0

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value >= ph[0].config.progress_poll_ns


def test_progress_cost_scales_with_completions():
    """Reaping k completions costs ~k * cqe_poll more than an empty pass."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)

    def prog(env):
        for i in range(8):
            yield from ph[0].put_pwc(1, src.addr, 32, dst.addr, dst.rkey,
                                     local_cid=i)
        # let all acks arrive without touching the engine
        yield env.timeout(1_000_000)
        t0 = env.now
        yield from ph[0]._progress_once()
        loaded = env.now - t0
        t0 = env.now
        yield from ph[0]._progress_once()
        empty = env.now - t0
        return loaded, empty

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    loaded, empty = p.value
    cqe = cl.params.nic.cqe_poll_ns
    assert loaded >= empty + 8 * cqe


def test_credit_word_reflects_consumption():
    """After the consumer drains past the credit fraction, the producer's
    local credit word advances."""
    cfg = PhotonConfig(eager_slots=8, credit_fraction=0.5)
    cl = build_cluster(2)
    ph = photon_init(cl, cfg)

    def sender(env):
        for i in range(6):
            yield from ph[0].send_pwc(1, b"z" * 16, remote_cid=i)

    def receiver(env):
        for _ in range(6):
            m = yield from ph[1].wait_message(timeout_ns=TIMEOUT)
            assert m is not None
        # give the credit write time to land
        yield env.timeout(100_000)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    ring = ph[0].peers[1].remote["eager"]
    assert ring.credit >= 4  # at least one credit return of >= half ring
    assert ring.available() >= 6


def test_ledger_mode_and_imm_mode_agree_on_results():
    """The two completion-delivery mechanisms produce identical outcomes
    (different timing, same semantics)."""

    def run(use_imm):
        cl = build_cluster(2)
        ph = photon_init(cl, PhotonConfig(use_imm=use_imm))
        src = ph[0].buffer(256)
        dst = ph[1].buffer(256)
        cl[0].memory.write(src.addr, b"M" * 256)
        got = []

        def sender(env):
            for i in range(5):
                yield from ph[0].put_pwc(1, src.addr, 256, dst.addr,
                                         dst.rkey, remote_cid=100 + i)

        def receiver(env):
            for _ in range(5):
                c = yield from ph[1].wait_completion("remote",
                                                     timeout_ns=TIMEOUT)
                got.append((c.cid, c.src))

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return got, cl[1].memory.read(dst.addr, 256)

    ledger = run(False)
    imm = run(True)
    assert ledger == imm


def test_peer_lookup_rejects_unknown_rank():
    cl = build_cluster(2)
    ph = photon_init(cl)
    with pytest.raises(SimulationError):
        ph[0]._peer(7)


def test_eager_entry_too_big_for_slot_rejected():
    """Internal guard: a ring entry larger than the slot is a model bug."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    peer = ph[0].peers[1]

    def prog(env):
        yield from ph[0]._post_ring_entry(
            peer, "cmp", b"x" * 1000)  # cmp slots are 24B

    p = cl.env.process(prog(cl.env))
    with pytest.raises(SimulationError, match="exceeds"):
        cl.env.run(until=p)


def test_rendezvous_info_ring_backpressure():
    """More concurrent advertisements than info slots: senders stall on
    credits but nothing is lost."""
    cfg = PhotonConfig(info_entries=2)
    cl = build_cluster(2)
    ph = photon_init(cl, cfg)
    size = 16 * 1024
    src = ph[0].buffer(size * 8)
    dst = ph[1].buffer(size)

    def sender(env):
        rids = []
        for i in range(8):
            rid = yield from ph[0].send_rdma(1, src.addr + i * size, size,
                                             tag=i)
            rids.append(rid)
        yield from ph[0].wait_all(rids, timeout_ns=TIMEOUT)
        return True

    def receiver(env):
        for i in range(8):
            info = yield from ph[1].wait_recv_info(src=0, tag=i,
                                                   timeout_ns=TIMEOUT)
            assert info is not None
            yield from ph[1].recv_rdma(info, dst.addr)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p0.value is True
    assert cl.counters.get("photon.info_stalls") > 0
