"""Correctness tests for the mini-apps (both transports vs references)."""

import numpy as np
import pytest

from repro.apps import (
    assemble,
    initial_grid,
    make_graph,
    merge_depths,
    partition_rows,
    reference_depths,
    reference_jacobi,
    run_bfs_mpi,
    run_bfs_photon,
    run_gups_mpi_p2p,
    run_gups_mpi_rma,
    run_gups_photon,
    run_stencil_mpi,
    run_stencil_photon,
)
from repro.cluster import build_cluster
from repro.minimpi import mpi_init, win_allocate
from repro.photon import photon_init


def run_programs(cl, programs):
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))


# ------------------------------------------------------------- stencil


def test_partition_rows_covers_grid():
    parts = partition_rows(10, 3)
    assert [p.stop - p.start for p in parts] == [4, 3, 3]
    assert parts[0].start == 0 and parts[-1].stop == 10


@pytest.mark.parametrize("n", [2, 3])
def test_stencil_photon_matches_reference(n):
    rows, cols, iters = 24, 16, 5
    cl = build_cluster(n)
    ph = photon_init(cl)
    programs, results = run_stencil_photon(cl, ph, rows, cols, iters)
    run_programs(cl, programs)
    got = assemble(results, rows, cols, n)
    want = reference_jacobi(initial_grid(rows, cols), iters)
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("n", [2, 4])
def test_stencil_mpi_matches_reference(n):
    rows, cols, iters = 24, 16, 5
    cl = build_cluster(n)
    comms = mpi_init(cl)
    programs, results = run_stencil_mpi(cl, comms, rows, cols, iters)
    run_programs(cl, programs)
    got = assemble(results, rows, cols, n)
    want = reference_jacobi(initial_grid(rows, cols), iters)
    np.testing.assert_array_equal(got, want)


def test_stencil_single_rank():
    rows, cols, iters = 12, 12, 3
    cl = build_cluster(1)
    ph = photon_init(cl)
    programs, results = run_stencil_photon(cl, ph, rows, cols, iters)
    run_programs(cl, programs)
    got = assemble(results, rows, cols, 1)
    want = reference_jacobi(initial_grid(rows, cols), iters)
    np.testing.assert_array_equal(got, want)


def test_stencil_records_comm_time():
    cl = build_cluster(2)
    ph = photon_init(cl)
    programs, results = run_stencil_photon(cl, ph, 16, 16, 4)
    run_programs(cl, programs)
    for res in results:
        assert 0 < res.comm_ns < res.elapsed_ns


# ------------------------------------------------------------- bfs


def test_graph_generator_deterministic():
    a = make_graph(100, 4.0, seed=3)
    b = make_graph(100, 4.0, seed=3)
    assert a == b
    assert make_graph(100, 4.0, seed=4) != a


def test_graph_is_undirected():
    adj = make_graph(50, 3.0, seed=1)
    for v, nbrs in adj.items():
        for w in nbrs:
            assert v in adj[w]


def test_reference_depths_matches_networkx():
    nx = pytest.importorskip("networkx")
    adj = make_graph(200, 4.0, seed=2)
    g = nx.Graph()
    g.add_nodes_from(adj)
    g.add_edges_from((u, v) for u, ns in adj.items() for v in ns)
    want = dict(nx.single_source_shortest_path_length(g, 0))
    got = reference_depths(adj, 0)
    for v, d in got.items():
        if d >= 0:
            assert want[v] == d
        else:
            assert v not in want


@pytest.mark.parametrize("n", [2, 3])
def test_bfs_photon_matches_reference(n):
    adj = make_graph(120, 4.0, seed=5)
    cl = build_cluster(n)
    ph = photon_init(cl)
    programs, results = run_bfs_photon(cl, ph, adj, root=0)
    run_programs(cl, programs)
    got = merge_depths(results)
    assert got == reference_depths(adj, 0)


@pytest.mark.parametrize("n", [2, 4])
def test_bfs_mpi_matches_reference(n):
    adj = make_graph(120, 4.0, seed=5)
    cl = build_cluster(n)
    comms = mpi_init(cl)
    programs, results = run_bfs_mpi(cl, comms, adj, root=0)
    run_programs(cl, programs)
    got = merge_depths(results)
    assert got == reference_depths(adj, 0)


def test_bfs_transports_agree():
    adj = make_graph(80, 3.0, seed=9)
    cl1 = build_cluster(2)
    ph = photon_init(cl1)
    progs1, res1 = run_bfs_photon(cl1, ph, adj, root=3)
    run_programs(cl1, progs1)
    cl2 = build_cluster(2)
    comms = mpi_init(cl2)
    progs2, res2 = run_bfs_mpi(cl2, comms, adj, root=3)
    run_programs(cl2, progs2)
    assert merge_depths(res1) == merge_depths(res2)


# ------------------------------------------------------------- gups


def test_gups_photon_updates_land():
    cl = build_cluster(3)
    ph = photon_init(cl)
    programs, results, tables = run_gups_photon(cl, ph, n_updates=40,
                                                slots_per_rank=64)
    run_programs(cl, programs)
    landed = 0
    for r in range(3):
        for s in range(64):
            if cl[r].memory.read_u64(tables[r].addr + s * 8) != 0:
                landed += 1
    assert landed > 0
    for res in results:
        assert res.updates_issued == 40
        assert res.updates_per_sec > 0


def test_gups_mpi_rma_runs():
    cl = build_cluster(3)
    comms = mpi_init(cl)
    wins = win_allocate(comms, 64 * 8)
    programs, results = run_gups_mpi_rma(cl, comms, wins, n_updates=40,
                                         slots_per_rank=64)
    run_programs(cl, programs)
    for res in results:
        assert res.updates_issued == 40


def test_gups_mpi_p2p_all_received():
    cl = build_cluster(3)
    comms = mpi_init(cl)
    programs, results, tables = run_gups_mpi_p2p(cl, comms, n_updates=30,
                                                 slots_per_rank=64)
    run_programs(cl, programs)
    for res in results:
        assert res.updates_issued == 30


def test_gups_photon_faster_than_p2p():
    """The paper's qualitative claim: one-sided random updates beat
    two-sided (owner CPU off the critical path)."""

    def photon_time():
        cl = build_cluster(2)
        ph = photon_init(cl)
        programs, results, _ = run_gups_photon(cl, ph, n_updates=100,
                                               slots_per_rank=128)
        run_programs(cl, programs)
        return max(r.elapsed_ns for r in results)

    def p2p_time():
        cl = build_cluster(2)
        comms = mpi_init(cl)
        programs, results, _ = run_gups_mpi_p2p(cl, comms, n_updates=100,
                                                slots_per_rank=128)
        run_programs(cl, programs)
        return max(r.elapsed_ns for r in results)

    assert photon_time() < p2p_time()
