"""Unit tests for Store / Resource / Signal (repro.sim.resources)."""

import pytest

from repro.sim import Environment, Resource, Signal, SimulationError, Store


# ---------------------------------------------------------------- Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def prog(env):
        yield store.put("item")
        got = yield store.get()
        return got

    p = env.process(prog(env))
    env.run()
    assert p.value == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (item, env.now)

    def producer(env):
        yield env.timeout(100)
        yield store.put(7)

    c = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert c.value == (7, 100)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for i in range(5):
            yield store.put(i)

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_capacity_backpressure():
    env = Environment()
    store = Store(env, capacity=2)
    put_times = []

    def producer(env):
        for i in range(4):
            yield store.put(i)
            put_times.append(env.now)

    def consumer(env):
        yield env.timeout(50)
        for _ in range(4):
            yield store.get()
            yield env.timeout(10)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # first two puts admitted immediately; third waits for first get (t=50),
    # fourth waits for the second get (t=60).
    assert put_times == [0, 0, 50, 60]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def prog(env):
        yield store.put("x")

    env.process(prog(env))
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)

    def prog(env):
        yield store.put(1)
        yield store.put(2)

    env.process(prog(env))
    env.run()
    assert len(store) == 2


def test_multiple_consumers_fifo_grant():
    env = Environment()
    store = Store(env)
    grants = []

    def consumer(env, ident):
        item = yield store.get()
        grants.append((ident, item))

    def producer(env):
        yield env.timeout(10)
        yield store.put("a")
        yield store.put("b")

    env.process(consumer(env, 0))
    env.process(consumer(env, 1))
    env.process(producer(env))
    env.run()
    assert grants == [(0, "a"), (1, "b")]


# ---------------------------------------------------------------- Resource


def test_resource_serialises_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def worker(env, ident):
        req = yield res.request()
        start = env.now
        yield env.timeout(10)
        res.release(req)
        spans.append((ident, start, env.now))

    for i in range(3):
        env.process(worker(env, i))
    env.run()
    assert spans == [(0, 0, 10), (1, 10, 20), (2, 20, 30)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def worker(env, ident):
        req = yield res.request()
        starts.append((ident, env.now))
        yield env.timeout(10)
        res.release(req)

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    assert starts == [(0, 0), (1, 0), (2, 10), (3, 10)]


def test_resource_release_via_request_handle():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        req = yield res.request()
        yield env.timeout(5)
        req.release()
        return res.count

    p = env.process(worker(env))
    env.run()
    assert p.value == 0


def test_resource_double_release_rejected():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        req = yield res.request()
        res.release(req)
        res.release(req)

    env.process(worker(env))
    with pytest.raises(SimulationError):
        env.run()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


# ---------------------------------------------------------------- Signal


def test_signal_wakes_all_waiters():
    env = Environment()
    sig = Signal(env)
    woken = []

    def waiter(env, ident):
        val = yield sig.wait()
        woken.append((ident, val, env.now))

    def firer(env):
        yield env.timeout(30)
        n = sig.fire("go")
        assert n == 2

    env.process(waiter(env, 0))
    env.process(waiter(env, 1))
    env.process(firer(env))
    env.run()
    assert woken == [(0, "go", 30), (1, "go", 30)]


def test_signal_rearms_after_fire():
    env = Environment()
    sig = Signal(env)
    wakes = []

    def waiter(env):
        for _ in range(2):
            yield sig.wait()
            wakes.append(env.now)

    def firer(env):
        yield env.timeout(10)
        sig.fire()
        yield env.timeout(10)
        sig.fire()

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert wakes == [10, 20]


def test_signal_fire_with_no_waiters():
    env = Environment()
    sig = Signal(env)
    assert sig.fire() == 0
