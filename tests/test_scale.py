"""Scale tests: the stack at 16 ranks (largest configuration exercised).

Checks that nothing in the bootstrap (O(n²) QP mesh + ledgers) or the
protocols degrades into error at the rank counts the full experiments
use, and that collective latency scales sub-linearly.
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.util import MiB

TIMEOUT = 10 ** 12


def test_sixteen_rank_bootstrap_and_barrier():
    cl = build_cluster(16, mem_size=96 * MiB)
    ph = photon_init(cl)
    times = []

    def body(rank):
        yield from ph[rank].barrier()
        times.append(cl.env.now)

    procs = [cl.env.process(body(r)) for r in range(16)]
    cl.env.run(until=cl.env.all_of(procs))
    assert len(times) == 16
    # dissemination: 4 rounds; must be far cheaper than 15 sequential RTTs
    assert max(times) < 15 * 3_000


def test_sixteen_rank_allreduce_correct():
    cl = build_cluster(16, mem_size=96 * MiB)
    ph = photon_init(cl)
    results = []

    def body(rank):
        out = yield from ph[rank].allreduce(
            np.array([rank * 1.0, 1.0]), "sum")
        results.append(out)

    procs = [cl.env.process(body(r)) for r in range(16)]
    cl.env.run(until=cl.env.all_of(procs))
    for out in results:
        np.testing.assert_allclose(out, [sum(range(16)), 16.0])


def test_barrier_scales_sublinearly():
    def barrier_time(n):
        cl = build_cluster(n, mem_size=96 * MiB)
        ph = photon_init(cl)
        out = {}

        def body(rank):
            yield from ph[rank].barrier()  # warm
            t0 = cl.env.now
            yield from ph[rank].barrier()
            if rank == 0:
                out["t"] = cl.env.now - t0

        procs = [cl.env.process(body(r)) for r in range(n)]
        cl.env.run(until=cl.env.all_of(procs))
        return out["t"]

    t4 = barrier_time(4)
    t16 = barrier_time(16)
    # 4x the ranks -> ~2x the rounds (log2), allow queueing slack
    assert t16 < 3.2 * t4


def test_all_to_all_pwc_on_sixteen_ranks():
    """Every rank puts 64B to every other; 240 transfers all land."""
    cl = build_cluster(16, mem_size=96 * MiB)
    ph = photon_init(cl)
    srcs = [ep.buffer(64) for ep in ph]
    dsts = [ep.buffer(64 * 16) for ep in ph]
    for r in range(16):
        cl.ranks[r].memory.write(srcs[r].addr, bytes([r]) * 64)

    def body(rank):
        ep = ph[rank]
        for dst in range(16):
            if dst == rank:
                continue
            yield from ep.put_pwc(dst, srcs[rank].addr, 64,
                                  dsts[dst].addr + 64 * rank,
                                  dsts[dst].rkey, remote_cid=rank)
        got = 0
        while got < 15:
            c = yield from ep.wait_completion("remote", timeout_ns=TIMEOUT)
            assert c is not None
            got += 1

    procs = [cl.env.process(body(r)) for r in range(16)]
    cl.env.run(until=cl.env.all_of(procs))
    for dst in range(16):
        for src in range(16):
            if src == dst:
                continue
            got = cl.ranks[dst].memory.read(dsts[dst].addr + 64 * src, 64)
            assert got == bytes([src]) * 64
    assert cl.counters.get("verbs.rnr_stalls") == 0
