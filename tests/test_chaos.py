"""Chaos orchestration: schedules, controller, invariants, determinism.

The headline property is at the top: a chaos controller armed with an
*empty* schedule reproduces the golden trace hashes bit for bit, on the
clean and the lossy fabric — chaos is pay-for-what-you-schedule.
"""

from __future__ import annotations

import types

import pytest

from repro.bench.experiments import r19_chaos
from repro.chaos import (ChaosController, CrashRank, FaultSchedule,
                         FlapLink, GrayLink, HealEvent, InvariantViolation,
                         PartitionEvent, RestartRank, check_all,
                         check_breaker_legality, check_membership_monotonic,
                         check_no_duplicate_delivery)
from repro.cluster import build_cluster
from repro.photon import PhotonConfig, photon_init
from repro.runtime.health import DEAD, ALIVE, MembershipView
from repro.sim.rng import RngRegistry
from repro.verbs.enums import WCStatus

from tests.test_determinism_golden import (GOLDEN, _photon_clean_workload,
                                           _photon_lossy_workload,
                                           _trace_fingerprint)

WAIT = 10 ** 12


def _arm_idle(cl):
    ChaosController(cl, FaultSchedule([])).arm()


# --------------------------------------------------------------------------
# determinism
# --------------------------------------------------------------------------

def test_armed_idle_schedule_keeps_golden_traces_bit_identical():
    """Armed-but-empty chaos: the exact golden hashes, clean and lossy."""
    assert _trace_fingerprint(_photon_clean_workload(chaos_hook=_arm_idle)) \
        == GOLDEN["photon_clean_trace"]
    assert _trace_fingerprint(_photon_lossy_workload(chaos_hook=_arm_idle)) \
        == GOLDEN["photon_lossy_trace"]


def test_chaos_rng_streams_are_independent():
    """Materialising and consuming chaos streams never shifts the draws
    any other named stream produces (satellite: per-mode streams)."""
    def link_draws(touch_chaos: bool):
        rng = RngRegistry(123)
        if touch_chaos:
            ns = rng.namespace("chaos")
            ns.stream("jitter.up0").integers(0, 1000, size=64)
            ns.stream("flap.up0").integers(0, 1000, size=64)
        s = rng.stream("link.up0")
        return [int(s.integers(0, 1 << 30)) for _ in range(16)]

    assert link_draws(False) == link_draws(True)

    rng = RngRegistry(123)
    ns = rng.namespace("chaos")
    jit = [int(ns.stream("jitter.up0").integers(0, 1 << 30))
           for _ in range(8)]
    flap = [int(ns.stream("flap.up0").integers(0, 1 << 30))
            for _ in range(8)]
    assert jit != flap  # distinct modes, distinct streams

    # a namespace is pure name prefixing — same seed, same stream
    rng2 = RngRegistry(123)
    assert jit == [int(rng2.stream("chaos.jitter.up0").integers(0, 1 << 30))
                   for _ in range(8)]


def test_gray_jitter_is_deterministic_per_seed():
    def fingerprint():
        cl = build_cluster(2, "ib-fdr", seed=21, trace=True)
        ph = photon_init(cl)
        ctrl = ChaosController(cl, FaultSchedule(
            [GrayLink(0, "up0", jitter_ns=5_000)]))
        ctrl.arm()
        a, b = ph[0].buffer(4096), ph[1].buffer(4096)

        def prog(env):
            for i in range(4):
                yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                         local_cid=i + 1, remote_cid=i + 1)
                c = yield from ph[0].wait_completion("local",
                                                     timeout_ns=WAIT)
                assert c is not None and c.ok
        cl.env.run(until=cl.env.process(prog(cl.env)))
        return _trace_fingerprint(cl)

    assert fingerprint() == fingerprint()


# --------------------------------------------------------------------------
# schedules
# --------------------------------------------------------------------------

def test_schedule_orders_and_validates():
    s = FaultSchedule([RestartRank(5_000, 0), CrashRank(2_000, 0)])
    assert [e.t_ns for e in s.events] == [2_000, 5_000]
    assert not s.empty and s.horizon_ns() == 5_000
    assert FaultSchedule([]).empty
    with pytest.raises(ValueError):
        FaultSchedule([GrayLink(0, "up0", bw_scale=0.0)])
    with pytest.raises(ValueError):
        FaultSchedule([FlapLink(0, "up0", period_ns=0)])
    with pytest.raises(ValueError):
        FaultSchedule([FlapLink(0, "up0", period_ns=100, duty=1.0)])
    with pytest.raises(ValueError):
        FaultSchedule([CrashRank(-1, 0)])


# --------------------------------------------------------------------------
# partitions and gray links
# --------------------------------------------------------------------------

def test_partition_blocks_traffic_and_heal_restores():
    cl = build_cluster(2, "ib-fdr", seed=9)
    ph = photon_init(cl, PhotonConfig(use_imm=False, max_op_retries=1,
                                      op_timeout_ns=100_000,
                                      backoff_base_ns=10_000))
    a, b = ph[0].buffer(4096), ph[1].buffer(4096)
    cl[0].memory.write(a.addr, b"\x42" * 4096)
    ctrl = ChaosController(cl, FaultSchedule(
        [PartitionEvent(0, (0,), (1,)), HealEvent(1_000_000)]))
    ctrl.arm()
    out = {}

    def prog(env):
        yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                 local_cid=1, remote_cid=1)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["cut_status"] = c.status
        out["cut_reachable"] = cl.topology.reachable(0, 1)
        if env.now < 1_100_000:
            yield env.timeout(1_100_000 - env.now)
        out["heal_reachable"] = cl.topology.reachable(0, 1)
        yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                 local_cid=2, remote_cid=2)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["heal_status"] = c.status

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert out["cut_status"] is WCStatus.RETRY_EXC_ERR
    assert not out["cut_reachable"] and out["heal_reachable"]
    assert out["heal_status"] is WCStatus.SUCCESS
    assert cl.counters.get("fabric.partition_drops") > 0
    assert cl.counters.get("chaos.events") == 2
    assert cl[1].memory.read(b.addr, 4096) == b"\x42" * 4096
    assert len(ctrl.applied) == 2


def test_gray_link_latency_inflation_is_visible():
    def put_latency(schedule):
        cl = build_cluster(2, "ib-fdr", seed=13)
        ph = photon_init(cl)
        ChaosController(cl, schedule).arm()
        a, b = ph[0].buffer(4096), ph[1].buffer(4096)
        out = {}

        def prog(env):
            t0 = env.now
            yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                     local_cid=1, remote_cid=1)
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            assert c is not None and c.ok
            out["t"] = env.now - t0
        cl.env.run(until=cl.env.process(prog(cl.env)))
        return out["t"]

    base = put_latency(FaultSchedule([]))
    slow = put_latency(FaultSchedule(
        [GrayLink(0, "up0", latency_add_ns=50_000)]))
    assert slow >= base + 50_000


def test_gray_link_self_clears_after_duration():
    cl = build_cluster(2, "ib-fdr", seed=14)
    ctrl = ChaosController(cl, FaultSchedule(
        [GrayLink(0, "up0", latency_add_ns=10_000, duration_ns=300_000)]))
    ctrl.arm()
    cl.env.run(until=100_000)
    assert cl.topology.link("up0").chaos is not None
    cl.env.run(until=400_000)
    assert cl.topology.link("up0").chaos is None


def test_flapping_link_drops_then_recovers():
    """Ops posted into down windows are replayed across flaps and all
    complete once the flap clears."""
    cl = build_cluster(2, "ib-fdr", seed=17)
    ph = photon_init(cl, PhotonConfig(use_imm=False, max_op_retries=10,
                                      op_timeout_ns=150_000,
                                      backoff_base_ns=20_000,
                                      backoff_jitter_ns=40_000))
    a, b = ph[0].buffer(4096), ph[1].buffer(4096)
    cl[0].memory.write(a.addr, b"\x7e" * 4096)
    ctrl = ChaosController(cl, FaultSchedule(
        [FlapLink(0, "up0", period_ns=200_000, duty=0.5,
                  duration_ns=900_000)]))
    ctrl.arm()

    def prog(env):
        for i in range(3):
            yield from ph[0].put_pwc(1, a.addr, 4096, b.addr, b.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            assert c is not None and c.ok, f"put {i} lost to the flap"

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert cl.counters.get("link.chaos_drops") > 0
    assert cl.counters.get("photon.op_retries") > 0
    cl.env.run(until=1_200_000)
    assert cl.topology.link("up0").chaos is None  # flap cleaned up
    assert cl[1].memory.read(b.addr, 4096) == b"\x7e" * 4096


# --------------------------------------------------------------------------
# retry-storm decorrelation (satellite: backoff_jitter_ns)
# --------------------------------------------------------------------------

def test_retry_jitter_decorrelates_concurrent_retries():
    """No two retries of distinct ops land on the same tick with the
    widened jitter window, and the window widens beyond the historical
    one-backoff_base_ns default."""
    def retry_ticks(config):
        cl = build_cluster(2, "ib-fdr", seed=23)
        ph = photon_init(cl, config)
        peer = ph[0].peers[1]
        ticks = []
        for i in range(8):
            op = ph[0]._new_reliable_op(peer, "put", i + 1)
            op.attempts = 1
            ph[0]._op_attempt_failed(op)
            ticks.append(op.next_retry_at)
        return ticks

    wide = retry_ticks(PhotonConfig(backoff_base_ns=20_000,
                                    backoff_jitter_ns=80_000))
    assert len(set(wide)) == len(wide)
    assert max(wide) - min(wide) > 20_000       # wider than one base
    assert all(20_000 <= t < 100_000 for t in wide)

    # historical default: draws stay inside one backoff_base_ns window
    legacy = retry_ticks(PhotonConfig(backoff_base_ns=20_000))
    assert all(20_000 <= t < 40_000 for t in legacy)


# --------------------------------------------------------------------------
# crash / restart end to end + invariants
# --------------------------------------------------------------------------

def test_crash_restart_scenario_and_invariants():
    r = r19_chaos.run_scenario(quick=True)
    # safety: no dup delivery, reg balance, breaker legality, membership
    check_all(r["cluster"], delivered=r["delivered"],
              transports=[r["transport"]],
              monitors=[r["monitors"][0], r["monitors"][1]])
    assert r["probe_status"] is WCStatus.PEER_DEAD
    assert r["probe_settle_ns"] < 1_200_000
    assert r["fast_status"] is WCStatus.PEER_DEAD
    assert r["fast_settle_ns"] < 100_000
    assert r["side_ok"]
    assert r["rejoin_put_ok"] and r["rejoin_payload_ok"] and r["back_ok"]
    assert len(r["detect_ns"]) == 2 and len(r["outage_ns"]) == 2
    cl = r["cluster"]
    assert cl.counters.get("photon.crashes") == 1
    assert cl.counters.get("photon.rejoins") == 1
    assert cl.counters.get("photon.peer_rearms") == 2
    assert cl.counters.get("chaos.events") == 2
    # chaos events went through the trace (JSONL export source)
    cats = [rec.category for rec in cl.tracer.records]
    assert "chaos.crash" in cats and "chaos.restart" in cats


def test_controller_rejects_double_crash_and_unknown_restart():
    from repro.sim.core import SimulationError
    cl = build_cluster(2, "ib-fdr", seed=25)
    ph = photon_init(cl)
    ctrl = ChaosController(cl, FaultSchedule(
        [CrashRank(1_000, 1), CrashRank(2_000, 1)]), photon=ph)
    ctrl.arm()
    with pytest.raises(SimulationError):
        cl.env.run(until=10_000)

    cl2 = build_cluster(2, "ib-fdr", seed=25)
    ph2 = photon_init(cl2)
    ctrl2 = ChaosController(cl2, FaultSchedule([RestartRank(1_000, 1)]),
                            photon=ph2)
    ctrl2.arm()
    with pytest.raises(SimulationError):
        cl2.env.run(until=10_000)


# --------------------------------------------------------------------------
# invariant checkers reject violations
# --------------------------------------------------------------------------

def test_no_duplicate_delivery_checker():
    check_no_duplicate_delivery([(0, 1), (0, 2), (1, 1)])
    with pytest.raises(InvariantViolation):
        check_no_duplicate_delivery([(0, 1), (0, 1)])


def test_breaker_legality_checker():
    check_breaker_legality([(0, 1, "closed", "open"),
                            (5, 1, "open", "half-open"),
                            (9, 1, "half-open", "closed")])
    with pytest.raises(InvariantViolation):  # illegal edge
        check_breaker_legality([(0, 1, "closed", "half-open")])
    with pytest.raises(InvariantViolation):  # discontinuous chain
        check_breaker_legality([(0, 1, "closed", "open"),
                                (5, 1, "closed", "open")])


def test_membership_monotonicity_checker():
    good = MembershipView(2)
    good.transition(1, DEAD)
    good.transition(1, ALIVE, incarnation=2)
    check_membership_monotonic(types.SimpleNamespace(view=good))

    bad = MembershipView(2)
    bad.transition(1, DEAD)
    bad.transition(1, ALIVE)  # no incarnation bump: illegal resurrection
    with pytest.raises(InvariantViolation):
        check_membership_monotonic(types.SimpleNamespace(view=bad))
