"""Tests for cluster assembly, tracing, counters and photon config."""

import pytest

from repro.cluster import build_cluster
from repro.photon import PhotonConfig, photon_init
from repro.sim import Counters, Tracer
from repro.sim.trace import TraceRecord


# ---------------------------------------------------------------- cluster


def test_build_cluster_by_preset_name():
    cl = build_cluster(3, params="gemini")
    assert cl.n == 3
    assert cl.params.name == "gemini"
    assert cl.topology.__class__.__name__ == "Torus2D"


def test_build_cluster_topology_override():
    cl = build_cluster(4, params="gemini", topology="star")
    assert cl.topology.__class__.__name__ == "Star"


def test_build_cluster_param_overrides():
    cl = build_cluster(2, params="ib-fdr", link__mtu=1024,
                       nic__max_inline=0)
    assert cl.params.link.mtu == 1024
    assert cl.params.nic.max_inline == 0


def test_cluster_indexing_and_ranks():
    cl = build_cluster(2)
    assert cl[0].rank == 0
    assert cl[1].context.rank == 1
    assert cl[0].memory is not cl[1].memory


def test_run_spmd_collects_results():
    cl = build_cluster(3)

    def program(cluster, rank):
        yield cluster.env.timeout(rank * 10)
        return rank * 2

    results = cl.run_spmd(program)
    assert results == [0, 2, 4]


def test_cluster_seed_controls_rng():
    a = build_cluster(2, seed=5).rng.stream("x").integers(0, 100, 4).tolist()
    b = build_cluster(2, seed=5).rng.stream("x").integers(0, 100, 4).tolist()
    c = build_cluster(2, seed=6).rng.stream("x").integers(0, 100, 4).tolist()
    assert a == b != c


# ---------------------------------------------------------------- tracer


def test_tracer_disabled_is_noop():
    t = Tracer(enabled=False)
    t.log(10, "nic.tx", size=4)
    assert list(t.records) == []


def test_tracer_records_and_selects():
    t = Tracer(enabled=True)
    t.log(10, "nic.tx", size=4)
    t.log(20, "nic.rx", size=8)
    t.log(30, "qp.post")
    assert len(t.records) == 3
    assert len(t.select("nic.")) == 2
    rec = t.select("nic.rx")[0]
    assert rec.as_dict() == {"time": 20, "category": "nic.rx", "size": 8}
    t.clear()
    assert list(t.records) == []


def test_tracer_ring_cap_drops_oldest():
    t = Tracer(enabled=True, max_records=3)
    for i in range(5):
        t.log(i, "nic.tx", seq=i)
    assert len(t.records) == 3
    assert t.dropped == 2
    assert [r.time for r in t.records] == [2, 3, 4]
    t.clear()
    assert t.dropped == 0
    with pytest.raises(ValueError):
        Tracer(max_records=0)


def test_tracer_category_filter():
    t = Tracer(enabled=True, categories=["nic"])
    t.log(1, "nic.tx")
    t.log(2, "qp.post")
    assert len(t.records) == 1


def test_cluster_trace_captures_nic_events():
    cl = build_cluster(2, trace=True)
    ph = photon_init(cl)
    dst = ph[1].buffer(64)

    def prog(env):
        yield from ph[0].put_pwc(1, 0, 0, dst.addr, dst.rkey, remote_cid=1)

    p = cl.env.process(prog(cl.env))
    cl.env.run()
    assert len(cl.tracer.select("nic.tx")) >= 1
    assert len(cl.tracer.select("nic.rx")) >= 1


# ---------------------------------------------------------------- counters


def test_counters_accumulate_and_snapshot():
    c = Counters()
    c.add("x")
    c.add("x", 4)
    c.add("y", 2)
    assert c.get("x") == 5
    assert c.get("missing") == 0
    snap = c.snapshot()
    assert snap == {"x": 5, "y": 2}
    c.clear()
    assert c.get("x") == 0


# ---------------------------------------------------------------- config


def test_photon_config_validation():
    with pytest.raises(ValueError):
        PhotonConfig(eager_limit=0).validate()
    with pytest.raises(ValueError):
        PhotonConfig(eager_slots=1).validate()
    with pytest.raises(ValueError):
        PhotonConfig(credit_fraction=0.0).validate()
    PhotonConfig().validate()  # defaults valid


def test_photon_config_replace():
    cfg = PhotonConfig().replace(eager_limit=1024)
    assert cfg.eager_limit == 1024
    assert PhotonConfig().eager_limit == 8192  # original untouched


def test_mpi_config_validation():
    from repro.minimpi import MPIConfig
    with pytest.raises(ValueError):
        MPIConfig(eager_threshold=-1).validate()
    with pytest.raises(ValueError):
        MPIConfig(prepost=1).validate()
    MPIConfig().validate()
