"""Integration tests for Photon PWC operations (2+ ranks, full stack)."""

import pytest

from repro.cluster import build_cluster
from repro.photon import PhotonConfig, photon_init
from repro.sim import SimulationError

TIMEOUT = 50_000_000  # 50 ms of simulated time: generous deadlock guard


def setup(n=2, config=None, **kw):
    cl = build_cluster(n, **kw)
    ph = photon_init(cl, config)
    return cl, ph


def run_all(cl, procs):
    return cl.env.run(until=cl.env.all_of(procs))


def test_put_pwc_delivers_data_and_both_completions():
    cl, ph = setup()
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)
    payload = b"0123456789abcdef" * 16  # 256B
    cl[0].memory.write(src.addr, payload)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, len(payload), dst.addr,
                                 dst.rkey, local_cid=101, remote_cid=202)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p0.value.kind == "local" and p0.value.cid == 101
    assert p1.value.kind == "remote" and p1.value.cid == 202
    assert p1.value.src == 0
    assert cl[1].memory.read(dst.addr, len(payload)) == payload


def test_remote_completion_implies_data_visible():
    """The paper's key ordering guarantee: when the target sees the remote
    cid, the payload is already in place."""
    cl, ph = setup()
    src = ph[0].buffer(65536)
    dst = ph[1].buffer(65536)
    size = 60000  # multi-chunk
    cl[0].memory.write(src.addr, bytes([7]) * size)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                 remote_cid=1)

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        # check data at the *instant* the completion surfaced
        data = cl[1].memory.read(dst.addr, size)
        return c, data

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    c, data = p1.value
    assert c.cid == 1
    assert data == bytes([7]) * size


def test_put_without_remote_cid_is_pure_one_sided():
    """Target does nothing at all; data still lands."""
    cl, ph = setup()
    src = ph[0].buffer(128)
    dst = ph[1].buffer(128)
    cl[0].memory.write(src.addr, b"Z" * 128)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, 128, dst.addr, dst.rkey,
                                 local_cid=5)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    run_all(cl, [p0])
    assert p0.value.cid == 5
    assert cl[1].memory.read(dst.addr, 128) == b"Z" * 128
    assert len(ph[1].remote_cids) == 0


def test_zero_byte_put_signals_remote():
    cl, ph = setup()
    dst = ph[1].buffer(64)

    def sender(env):
        yield from ph[0].put_pwc(1, 0, 0, dst.addr, dst.rkey,
                                 local_cid=9, remote_cid=10)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p0.value.cid == 9
    assert p1.value.cid == 10


def test_get_pwc_fetches_and_notifies_target():
    cl, ph = setup()
    local = ph[0].buffer(4096)
    remote = ph[1].buffer(4096)
    cl[1].memory.write(remote.addr, b"remote payload--" * 8)

    def getter(env):
        yield from ph[0].get_pwc(1, local.addr, 128, remote.addr,
                                 remote.rkey, local_cid=31, remote_cid=32)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    def target(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(getter(cl.env))
    p1 = cl.env.process(target(cl.env))
    run_all(cl, [p0, p1])
    assert p0.value.cid == 31
    assert p1.value.cid == 32
    assert cl[0].memory.read(local.addr, 128) == b"remote payload--" * 8


def test_send_pwc_eager_message():
    cl, ph = setup()
    payload = b"parcel bytes" * 100  # 1200B, eager

    def sender(env):
        yield from ph[0].send_pwc(1, payload, remote_cid=77, local_cid=78)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    def receiver(env):
        m = yield from ph[1].wait_message(timeout_ns=TIMEOUT)
        return m

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    src, cid, data = p1.value
    assert (src, cid) == (0, 77)
    assert data == payload
    assert p0.value.cid == 78


def test_send_pwc_beyond_eager_limit_rejected():
    cl, ph = setup()
    with pytest.raises(SimulationError, match="eager limit"):
        list(ph[0].send_pwc(1, bytes(ph[0].config.eager_limit + 1),
                            remote_cid=1))


def test_eager_ring_backpressure_does_not_lose_messages():
    """Flood more messages than the ring has slots; all arrive in order."""
    cfg = PhotonConfig(eager_slots=4, completion_entries=8)
    cl, ph = setup(config=cfg)
    n_msgs = 40

    def sender(env):
        for i in range(n_msgs):
            yield from ph[0].send_pwc(1, bytes([i]) * 32, remote_cid=i)

    def receiver(env):
        got = []
        while len(got) < n_msgs:
            m = yield from ph[1].wait_message(timeout_ns=TIMEOUT)
            assert m is not None, f"lost message after {len(got)}"
            got.append(m)
        return got

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    cids = [cid for _, cid, _ in p1.value]
    assert cids == list(range(n_msgs))
    for _, cid, data in p1.value:
        assert data == bytes([cid]) * 32
    assert cl.counters.get("photon.credit_writes") > 0


def test_completion_ring_backpressure():
    cfg = PhotonConfig(completion_entries=4)
    cl, ph = setup(config=cfg)
    dst = ph[1].buffer(8192)
    src = ph[0].buffer(8192)
    n_ops = 30

    def sender(env):
        for i in range(n_ops):
            yield from ph[0].put_pwc(1, src.addr, 8, dst.addr, dst.rkey,
                                     remote_cid=1000 + i)

    def receiver(env):
        got = []
        while len(got) < n_ops:
            c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
            assert c is not None
            got.append(c.cid)
        return got

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value == [1000 + i for i in range(n_ops)]


def test_probe_completion_returns_none_when_idle():
    cl, ph = setup()

    def prog(env):
        c = yield from ph[0].probe_completion()
        return c

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value is None


def test_wait_completion_timeout_returns_none():
    cl, ph = setup()

    def prog(env):
        c = yield from ph[0].wait_completion(timeout_ns=100_000)
        return (c, env.now)

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    c, t = p.value
    assert c is None
    assert t >= 100_000


def test_self_put_and_send():
    cl, ph = setup()
    a = ph[0].buffer(256)
    b = ph[0].buffer(256)
    cl[0].memory.write(a.addr, b"self-transfer...")

    def prog(env):
        yield from ph[0].put_pwc(0, a.addr, 16, b.addr, b.rkey,
                                 local_cid=1, remote_cid=2)
        yield from ph[0].send_pwc(0, b"loop msg", remote_cid=3)
        c1 = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        c2 = yield from ph[0].wait_completion("remote", timeout_ns=TIMEOUT)
        m = yield from ph[0].wait_message(timeout_ns=TIMEOUT)
        return c1, c2, m

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    c1, c2, m = p.value
    assert c1.cid == 1 and c2.cid == 2
    assert m == (0, 3, b"loop msg")
    assert cl[0].memory.read(b.addr, 16) == b"self-transfer..."


def test_imm_mode_delivers_remote_completions():
    cfg = PhotonConfig(use_imm=True)
    cl, ph = setup(config=cfg)
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)
    cl[0].memory.write(src.addr, b"imm mode" * 8)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, 64, dst.addr, dst.rkey,
                                 local_cid=7, remote_cid=8)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p0.value.cid == 7
    assert p1.value.cid == 8
    assert cl[1].memory.read(dst.addr, 64) == b"imm mode" * 8


def test_imm_mode_rejects_wide_cids():
    cfg = PhotonConfig(use_imm=True)
    cl, ph = setup(config=cfg)
    dst = ph[1].buffer(64)
    with pytest.raises(SimulationError, match="32 bits"):
        list(ph[0].put_pwc(1, 0, 0, dst.addr, dst.rkey, remote_cid=1 << 40))


def test_pwc_on_gemini_torus():
    """Full PWC path also works on the uGNI-flavoured torus fabric."""
    cl, ph = setup(n=4, params="gemini")
    src = ph[0].buffer(1024)
    dst = ph[3].buffer(1024)
    cl[0].memory.write(src.addr, b"torus" * 20)

    def sender(env):
        yield from ph[0].put_pwc(3, src.addr, 100, dst.addr, dst.rkey,
                                 remote_cid=5)

    def receiver(env):
        c = yield from ph[3].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value.cid == 5
    assert cl[3].memory.read(dst.addr, 100) == b"torus" * 20


def test_many_concurrent_peers():
    """All-to-one puts from 3 senders complete with distinct cids."""
    cl, ph = setup(n=4)
    dst = ph[0].buffer(4096)
    srcs = [ph[r].buffer(64) for r in range(4)]

    def sender(env, r):
        cl[r].memory.write(srcs[r].addr, bytes([r]) * 64)
        yield from ph[r].put_pwc(0, srcs[r].addr, 64,
                                 dst.addr + r * 64, dst.rkey,
                                 remote_cid=100 + r)

    def receiver(env):
        got = set()
        while len(got) < 3:
            c = yield from ph[0].wait_completion("remote", timeout_ns=TIMEOUT)
            assert c is not None
            got.add((c.cid, c.src))
        return got

    procs = [cl.env.process(sender(cl.env, r)) for r in (1, 2, 3)]
    procs.append(cl.env.process(receiver(cl.env)))
    run_all(cl, procs)
    assert procs[-1].value == {(101, 1), (102, 2), (103, 3)}
    for r in (1, 2, 3):
        assert cl[0].memory.read(dst.addr + r * 64, 64) == bytes([r]) * 64
