"""Tests for the parcel-coalescing transport layer."""

import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.runtime import (
    ActionRegistry,
    CoalescingTransport,
    PhotonTransport,
    Runtime,
)
from repro.sim import SimulationError

TIMEOUT = 10 ** 12


def make(flush_bytes=4096, flush_count=16, max_delay_ns=5_000):
    cl = build_cluster(2)
    ph = photon_init(cl)
    tps = [CoalescingTransport(PhotonTransport(ph[r]),
                               flush_bytes=flush_bytes,
                               flush_count=flush_count,
                               max_delay_ns=max_delay_ns)
           for r in range(2)]
    return cl, tps


def pump(cl, tps, n, sender_gen):
    got = []

    def receiver(env):
        while len(got) < n:
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw)
            else:
                yield env.timeout(200)

    p0 = cl.env.process(sender_gen(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    return got


def test_batch_flushes_at_count_threshold():
    cl, tps = make(flush_count=4, max_delay_ns=10 ** 9)

    def sender(env):
        for i in range(8):
            yield from tps[0].send(1, bytes([i]) * 16)

    got = pump(cl, tps, 8, sender)
    assert [g[0] for g in got] == list(range(8))
    assert tps[0].batches_sent == 2  # 8 parcels / 4 per batch


def test_batch_flushes_at_byte_threshold():
    cl, tps = make(flush_bytes=256, flush_count=1000, max_delay_ns=10 ** 9)

    def sender(env):
        for i in range(10):
            yield from tps[0].send(1, bytes([i]) * 100)
        yield from tps[0].flush()  # ship the final partial batch

    got = pump(cl, tps, 10, sender)
    assert len(got) == 10
    assert tps[0].batches_sent >= 4  # ~2 x 104B per 256B batch


def test_stale_batch_flushes_on_poll():
    """A partially filled batch ships after max_delay even if the sender
    goes quiet (latency bound)."""
    cl, tps = make(flush_count=100, max_delay_ns=2_000)

    def sender(env):
        yield from tps[0].send(1, b"lonely parcel")
        # sender keeps polling (as a runtime loop would) but sends nothing
        for _ in range(50):
            yield from tps[0].poll()
            yield env.timeout(500)

    got = pump(cl, tps, 1, sender)
    assert got == [b"lonely parcel"]


def test_explicit_flush():
    cl, tps = make(flush_count=100, max_delay_ns=10 ** 9)

    def sender(env):
        yield from tps[0].send(1, b"a")
        yield from tps[0].send(1, b"bb")
        yield from tps[0].flush()

    got = pump(cl, tps, 2, sender)
    assert got == [b"a", b"bb"]
    assert tps[0].batches_sent == 1


def test_oversized_parcel_ships_alone():
    cl, tps = make(flush_bytes=512, flush_count=100, max_delay_ns=10 ** 9)

    def sender(env):
        yield from tps[0].send(1, b"s" * 16)
        yield from tps[0].send(1, b"L" * 2000)  # exceeds flush_bytes
        yield from tps[0].flush()

    got = pump(cl, tps, 2, sender)
    assert sorted(len(g) for g in got) == [16, 2000]


def test_bad_thresholds_rejected():
    cl = build_cluster(2)
    ph = photon_init(cl)
    with pytest.raises(SimulationError):
        CoalescingTransport(PhotonTransport(ph[0]), flush_bytes=1)


def test_runtime_over_coalescing_transport():
    """The Runtime works unchanged over the coalescing layer."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    registry = ActionRegistry()
    seen = []
    registry.register("tick", lambda rt, src, data: seen.append(data[0]))
    rts = [Runtime(r, cl.env,
                   CoalescingTransport(PhotonTransport(ph[r]),
                                       flush_count=8),
                   registry, counters=cl.counters) for r in range(2)]

    def sender(env):
        for i in range(24):
            yield from rts[0].send(1, "tick", bytes([i]))
        yield from rts[0].transport.flush()

    def receiver(env):
        yield from rts[1].process_n(24, timeout_ns=TIMEOUT)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert seen == list(range(24))
    # fewer wire messages than parcels
    assert rts[0].transport.batches_sent < 24


def test_coalescing_improves_small_parcel_rate():
    """The reason the layer exists: higher delivered parcel rate."""

    def flood(coalesce: bool):
        cl = build_cluster(2)
        ph = photon_init(cl)
        tp0 = PhotonTransport(ph[0])
        tp1 = PhotonTransport(ph[1])
        if coalesce:
            tp0 = CoalescingTransport(tp0, flush_count=16)
            tp1 = CoalescingTransport(tp1, flush_count=16)
        n = 300
        out = {}

        def sender(env):
            for i in range(n):
                yield from tp0.send(1, b"x" * 24)
            if coalesce:
                yield from tp0.flush()

        def receiver(env):
            got = 0
            t0 = None
            while got < n:
                raw = yield from tp1.poll()
                if raw is not None:
                    if t0 is None:
                        t0 = env.now
                    got += 1
                else:
                    yield env.timeout(100)
            out["rate"] = (n - 1) / ((env.now - t0) / 1e9)

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return out["rate"]

    assert flood(True) > 1.5 * flood(False)


# ---------------------------------------------------------------------------
# breaker-trip accounting (regression: batches used to vanish silently)
# ---------------------------------------------------------------------------

def test_batch_shed_on_breaker_trip_is_accounted():
    """Regression: _ship popped the batch before inner.send, so a
    PeerDownError made the whole batch vanish with no accounting.  Shed
    mode (the default) now counts every parcel and re-raises."""
    from repro.runtime import PeerDownError

    cl = build_cluster(2)
    ph = photon_init(cl)
    inner = PhotonTransport(ph[0], breaker_threshold=1,
                            breaker_cooldown_ns=10 ** 9)
    tp = CoalescingTransport(inner, flush_count=4)
    inner._record_failure(1)  # breaker open for the next 1 s
    assert inner.peer_is_down(1)

    def prog(env):
        yield from tp.send(1, b"a" * 16)
        yield from tp.send(1, b"b" * 16)
        yield from tp.send(1, b"c" * 16)
        with pytest.raises(PeerDownError):
            yield from tp.send(1, b"d" * 16)  # 4th parcel trips _ship

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert tp.parcels_dropped == 4
    assert cl.counters.get("coalesce.parcels_dropped") == 4
    assert not tp._open  # nothing silently retained either


def test_batch_requeued_when_peer_recovers():
    """Requeue mode: the tripped batch goes back into the open batch and
    ships once the breaker lets a probe through."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    inner0 = PhotonTransport(ph[0], breaker_threshold=1,
                             breaker_cooldown_ns=200_000)
    tp0 = CoalescingTransport(inner0, flush_count=2, max_delay_ns=10 ** 9,
                              requeue_on_peer_down=True, max_requeues=2)
    tp1 = CoalescingTransport(PhotonTransport(ph[1]), flush_count=2)
    inner0._record_failure(1)
    got = []

    def sender(env):
        yield from tp0.send(1, b"one!")
        yield from tp0.send(1, b"two!")  # trips _ship -> requeued, no raise
        assert tp0.parcels_dropped == 0
        assert cl.counters.get("coalesce.parcels_requeued") == 2
        yield env.timeout(300_000)  # breaker cooldown expires
        yield from tp0.flush()

    def receiver(env):
        while len(got) < 2:
            raw = yield from tp1.poll()
            if raw is not None:
                got.append(raw)
            else:
                yield env.timeout(500)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert got == [b"one!", b"two!"]
    assert tp0.parcels_dropped == 0


def test_stale_flush_swallows_peer_down():
    """flush_stale (poll- or scheduler-driven) must never propagate a
    tripped breaker: in shed mode the loss is counted and polling
    continues."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    inner = PhotonTransport(ph[0], breaker_threshold=1,
                            breaker_cooldown_ns=10 ** 9)
    tp = CoalescingTransport(inner, flush_count=100, max_delay_ns=1_000)

    def prog(env):
        yield from tp.send(1, b"doomed")
        inner._record_failure(1)  # peer dies with the batch open
        yield env.timeout(5_000)  # batch is now stale
        raw = yield from tp.poll()  # must not raise
        assert raw is None

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert tp.parcels_dropped == 1
    assert cl.counters.get("coalesce.parcels_dropped") == 1
