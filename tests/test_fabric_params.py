"""Unit tests for fabric parameter presets and overrides."""

import dataclasses

import pytest

from repro.fabric import (
    ETH_10G,
    GEMINI,
    IB_EDR,
    IB_FDR,
    PRESETS,
    ROCE,
    preset,
)


def test_presets_registered():
    assert set(PRESETS) == {"ib-fdr", "ib-edr", "gemini", "roce", "eth-10g"}


def test_preset_lookup():
    assert preset("ib-fdr") is IB_FDR
    with pytest.raises(KeyError, match="eth-10g"):
        preset("myrinet")


def test_presets_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        IB_FDR.name = "x"
    with pytest.raises(dataclasses.FrozenInstanceError):
        IB_FDR.link.mtu = 1


def test_with_overrides_nested():
    p = IB_FDR.with_overrides(link__mtu=1024, nic__max_inline=0)
    assert p.link.mtu == 1024
    assert p.nic.max_inline == 0
    # original untouched
    assert IB_FDR.link.mtu == 4096


def test_with_overrides_toplevel():
    p = IB_FDR.with_overrides(name="custom", topology="torus2d")
    assert p.name == "custom"
    assert p.topology == "torus2d"


def test_edr_faster_than_fdr():
    assert IB_EDR.link.bandwidth_gbps > IB_FDR.link.bandwidth_gbps
    assert IB_EDR.link.latency_ns <= IB_FDR.link.latency_ns


def test_gemini_has_bulk_engine_and_torus():
    assert GEMINI.nic.bulk_threshold is not None
    assert GEMINI.nic.bulk_startup_ns > 0
    assert GEMINI.topology == "torus2d"
    assert IB_FDR.nic.bulk_threshold is None


def test_eth_models_software_stack():
    assert ETH_10G.nic.max_inline == 0
    assert ETH_10G.nic.post_overhead_ns > 5 * IB_FDR.nic.post_overhead_ns
    assert ETH_10G.host.reg_base_ns == 0  # no pinning for sockets


def test_roce_smaller_mtu_bigger_headers():
    assert ROCE.link.mtu < IB_FDR.link.mtu
    assert ROCE.link.header_bytes > IB_FDR.link.header_bytes


def test_all_presets_have_sane_invariants():
    for p in PRESETS.values():
        assert p.link.bandwidth_gbps > 0
        assert p.link.latency_ns >= 0
        assert p.link.mtu >= 256
        assert p.nic.dma_gbps > 0
        assert p.host.memcpy_gbps > 0
        assert p.host.page_size in (4096,)
        assert p.topology in ("star", "torus2d")
