"""Link-level accounting under faults.

Pins the occupancy/byte bookkeeping of :class:`Link`'s faulty server:
``_busy_ns`` must grow by one serialisation per *attempt* (failed or
not), ``link.bytes`` must stay goodput-only with wasted attempts tallied
under ``link.retrans_bytes`` / ``link.lost_bytes``, and recovery delay
must land deliveries at the exact modelled instant.  A scripted RNG makes
the drop sequence deterministic.
"""

from __future__ import annotations

from repro.fabric.link import Chunk, Link
from repro.fabric.params import LinkParams
from repro.sim.core import Environment
from repro.sim.trace import Counters
from repro.util.units import serialization_ns


class ScriptedRng:
    """random() returns the scripted values in order (then 1.0 = no drop)."""

    def __init__(self, values):
        self._values = list(values)

    def random(self) -> float:
        return self._values.pop(0) if self._values else 1.0


def _mk_link(env, counters, rng, drop_rate=0.5, loss_mode="reliable",
             retransmit_ns=12_000, latency_ns=500, bandwidth_gbps=8.0):
    params = LinkParams(bandwidth_gbps=bandwidth_gbps, latency_ns=latency_ns,
                        mtu=4096, drop_rate=drop_rate,
                        retransmit_ns=retransmit_ns, loss_mode=loss_mode)
    link = Link(env, params, "uut", counters=counters, rng=rng)
    delivered = []
    link.sink = lambda chunk: delivered.append((env.now, chunk))
    return link, delivered


def _chunk(link, wire_bytes=1000):
    return Chunk(msg=None, offset=0, size=wire_bytes - 30,
                 wire_bytes=wire_bytes, is_first=True, is_last=True,
                 path=[link])


def test_reliable_retransmit_accounting():
    env = Environment()
    counters = Counters()
    # chunk 1: clean (0.9 >= rate); chunk 2: two drops, then through
    rng = ScriptedRng([0.9, 0.1, 0.2, 0.9])
    link, delivered = _mk_link(env, counters, rng)
    wire = 1000
    ser = serialization_ns(wire, 8.0)

    c1, c2 = _chunk(link, wire), _chunk(link, wire)
    link.inbox.put_discard(c1)
    link.inbox.put_discard(c2)
    env.run(until=10_000_000)

    assert [c for _, c in delivered] == [c1, c2]
    # every attempt occupies the wire: 1 (c1) + 2 failed + 1 good (c2)
    assert link.occupancy_ns() == 4 * ser
    # goodput-only bytes; wasted attempts tallied separately
    assert link._bytes == 2 * wire
    snap = counters.snapshot()
    assert snap["link.bytes"] == 2 * wire
    assert snap["link.retrans_bytes"] == 2 * wire
    assert snap["link.drops"] == 2
    assert snap["link.chunks"] == 2
    assert link._drops == 2
    assert "link.lost_bytes" not in snap
    # delivery instants: c1 = ser + latency; c2 starts at ser (queued
    # behind c1), pays two recovery rounds of (ser + retransmit_ns),
    # then its final serialisation and the propagation latency
    assert delivered[0][0] == ser + 500
    assert delivered[1][0] == ser + 2 * (ser + 12_000) + ser + 500


def test_reliable_clean_path_accounting():
    env = Environment()
    counters = Counters()
    link, delivered = _mk_link(env, counters, ScriptedRng([0.9, 0.9]))
    wire = 1000
    ser = serialization_ns(wire, 8.0)
    for _ in range(2):
        link.inbox.put_discard(_chunk(link, wire))
    env.run(until=1_000_000)
    assert len(delivered) == 2
    assert link.occupancy_ns() == 2 * ser
    snap = counters.snapshot()
    assert snap["link.bytes"] == 2 * wire
    assert "link.retrans_bytes" not in snap
    assert "link.drops" not in snap


def test_lossy_drop_accounting():
    env = Environment()
    counters = Counters()
    # chunk 1 dropped, chunk 2 through
    rng = ScriptedRng([0.1, 0.9])
    link, delivered = _mk_link(env, counters, rng, loss_mode="lossy")
    wire = 1000
    ser = serialization_ns(wire, 8.0)
    c1, c2 = _chunk(link, wire), _chunk(link, wire)
    link.inbox.put_discard(c1)
    link.inbox.put_discard(c2)
    env.run(until=1_000_000)

    # the lost chunk vanishes but still occupied the wire for one
    # serialisation; only the survivor counts toward goodput
    assert [c for _, c in delivered] == [c2]
    assert link.occupancy_ns() == 2 * ser
    assert link._bytes == wire
    snap = counters.snapshot()
    assert snap["link.bytes"] == wire
    assert snap["link.lost_bytes"] == wire
    assert snap["link.drops"] == 1
    assert snap["link.chunks"] == 1
    assert delivered[0][0] == 2 * ser + 500
