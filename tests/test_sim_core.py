"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_custom_initial_time():
    env = Environment(initial_time=500)
    assert env.now == 500


def test_timeout_advances_clock():
    env = Environment()

    def prog(env):
        yield env.timeout(100)
        return env.now

    proc = env.process(prog(env))
    env.run()
    assert proc.value == 100
    assert env.now == 100


def test_timeout_value_passthrough():
    env = Environment()

    def prog(env):
        got = yield env.timeout(5, value="hello")
        return got

    proc = env.process(prog(env))
    env.run()
    assert proc.value == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def prog(env):
        for d in (10, 20, 30):
            yield env.timeout(d)
            times.append(env.now)

    env.process(prog(env))
    env.run()
    assert times == [10, 30, 60]


def test_same_time_fifo_order():
    """Events at the same timestamp fire in scheduling order."""
    env = Environment()
    order = []

    def prog(env, tag):
        yield env.timeout(50)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(prog(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(42)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (result, env.now)

    p = env.process(parent(env))
    env.run()
    assert p.value == ("done", 42)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        val = yield gate
        return (val, env.now)

    def firer(env):
        yield env.timeout(7)
        gate.succeed("ping")

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert w.value == ("ping", 7)


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def firer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert w.value == "caught boom"


def test_unhandled_process_crash_surfaces():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_handled_process_crash_does_not_surface():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    def parent(env):
        try:
            yield env.process(bad(env))
        except RuntimeError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_run_until_event_returns_value():
    env = Environment()

    def prog(env):
        yield env.timeout(10)
        return 99

    proc = env.process(prog(env))
    assert env.run(until=proc) == 99


def test_run_until_deadline_stops_clock():
    env = Environment()

    def prog(env):
        yield env.timeout(1000)

    env.process(prog(env))
    env.run(until=500)
    assert env.now == 500
    env.run()
    assert env.now == 1000


def test_run_until_event_deadlock_detected():
    env = Environment()
    gate = env.event()  # never fired

    def waiter(env):
        yield gate

    p = env.process(waiter(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_yield_non_event_rejected():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_all_of_waits_for_all():
    env = Environment()

    def prog(env):
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(30, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, [v for _, v in results])

    p = env.process(prog(env))
    env.run()
    assert p.value == (30, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def prog(env):
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(30, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, [v for _, v in results])

    p = env.process(prog(env))
    env.run()
    assert p.value == (10, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def prog(env):
        yield AllOf(env, [])
        return env.now

    p = env.process(prog(env))
    env.run()
    assert p.value == 0


def test_interrupt_raises_in_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(1000)
            return "slept"
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    def killer(env, victim):
        yield env.timeout(10)
        victim.interrupt("enough")

    v = env.process(sleeper(env))
    env.process(killer(env, v))
    env.run()
    assert v.value == ("interrupted", "enough", 10)


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_add_callback_after_fire_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_peek_and_step():
    env = Environment()
    env.timeout(25)
    assert env.peek() == 25
    env.step()
    assert env.now == 25
    assert env.peek() is None
    with pytest.raises(SimulationError):
        env.step()


def test_many_processes_deterministic():
    """The same program yields an identical trace on two fresh runs."""

    def run_once():
        env = Environment()
        trace = []

        def worker(env, ident, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, ident, i))

        for ident, delay in ((0, 7), (1, 11), (2, 13)):
            env.process(worker(env, ident, delay))
        env.run()
        return trace

    assert run_once() == run_once()
