"""Failure-injection tests: lossy links, QP errors, retry/recovery.

``LinkParams.drop_rate`` has two modes.  In the default ``"reliable"``
mode every dropped chunk is recovered by the link itself (data is
delayed, never lost) — the first half of this file asserts payload
integrity and time cost under that model.  In ``"lossy"`` mode chunks
genuinely vanish and recovery is end-to-end: the NIC's ARQ, the verbs
error states and Photon's reliability layer (deadline + backoff +
idempotent replay + dedup).  The second half drives that whole fault
domain: recovery under real loss, retry exhaustion surfacing as error
completions, QP error/flush/reconnect round trips, exactly-once replay
dedup, the runtime circuit breaker, and seeded determinism of the
retry schedule.
"""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import PhotonConfig, photon_init
from repro.sim import SimulationError

TIMEOUT = 10 ** 12


def lossy_cluster(n=2, drop=0.05, seed=1):
    return build_cluster(n, params="ib-fdr", seed=seed,
                         link__drop_rate=drop,
                         link__retransmit_ns=12_000)


def test_pwc_survives_lossy_links():
    cl = lossy_cluster(drop=0.1)
    ph = photon_init(cl)
    src = ph[0].buffer(1 << 16)
    dst = ph[1].buffer(1 << 16)
    payload = bytes((i * 3) & 0xFF for i in range(1 << 16))
    cl[0].memory.write(src.addr, payload)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, len(payload), dst.addr,
                                 dst.rkey, remote_cid=1)

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p1.value.cid == 1
    assert cl[1].memory.read(dst.addr, len(payload)) == payload
    assert cl.counters.get("link.drops") > 0


def test_loss_costs_time_but_not_data():
    def transfer_time(drop):
        cl = lossy_cluster(drop=drop)
        ph = photon_init(cl)
        src = ph[0].buffer(1 << 18)
        dst = ph[1].buffer(1 << 18)
        done = {}

        def sender(env):
            yield from ph[0].put_pwc(1, src.addr, 1 << 18, dst.addr,
                                     dst.rkey, remote_cid=1)

        def receiver(env):
            yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
            done["t"] = env.now

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return done["t"]

    clean = transfer_time(0.0)
    lossy = transfer_time(0.15)
    assert lossy > clean * 1.1


def test_mpi_rendezvous_survives_lossy_links():
    cl = lossy_cluster(drop=0.08)
    comms = mpi_init(cl)
    size = 128 * 1024
    s = cl[0].memory.alloc(size)
    r = cl[1].memory.alloc(size)
    cl[0].memory.write(s, bytes(range(256)) * (size // 256))

    def sender(env):
        yield from comms[0].send(s, size, 1, tag=1)

    def receiver(env):
        st = yield from comms[1].recv(r, size, 0, tag=1)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert cl[1].memory.read(r, size) == bytes(range(256)) * (size // 256)


def test_lossy_runs_are_deterministic_per_seed():
    def run(seed):
        cl = lossy_cluster(drop=0.1, seed=seed)
        ph = photon_init(cl)
        src = ph[0].buffer(1 << 16)
        dst = ph[1].buffer(1 << 16)
        done = {}

        def sender(env):
            yield from ph[0].put_pwc(1, src.addr, 1 << 16, dst.addr,
                                     dst.rkey, remote_cid=1)

        def receiver(env):
            yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
            done["t"] = env.now

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return done["t"], cl.counters.get("link.drops")

    assert run(3) == run(3)
    # different seeds see different drop patterns (overwhelmingly likely)
    assert run(3) != run(4)


def test_collectives_survive_loss():
    import numpy as np
    cl = lossy_cluster(n=4, drop=0.05)
    ph = photon_init(cl)
    results = []

    def body(rank):
        out = yield from ph[rank].allreduce(
            np.array([float(rank + 1)]), "sum")
        results.append(float(out[0]))

    procs = [cl.env.process(body(r)) for r in range(4)]
    cl.env.run(until=cl.env.all_of(procs))
    assert results == [10.0] * 4


def test_wait_timeout_fires_when_peer_never_sends():
    cl = build_cluster(2)
    ph = photon_init(cl)

    def prog(env):
        c = yield from ph[0].wait_completion(timeout_ns=1_000_000)
        m = yield from ph[0].wait_message(timeout_ns=1_000_000)
        info = yield from ph[0].wait_recv_info(timeout_ns=1_000_000)
        return c, m, info

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value == (None, None, None)
    assert cl.env.now >= 3_000_000


def test_memory_exhaustion_is_loud():
    from repro.fabric import OutOfMemory
    cl = build_cluster(2, mem_size=1 << 20)
    with pytest.raises(OutOfMemory):
        cl[0].memory.alloc(2 << 20)

# --------------------------------------------------------------------------
# lossy mode: genuine chunk loss, end-to-end recovery
# --------------------------------------------------------------------------

def real_loss_cluster(n=2, drop=1e-3, seed=7, **kw):
    """Lossy fabric with the NIC's own ARQ disabled, so every drop is
    surfaced to the middleware recovery paths under test."""
    return build_cluster(n, params="ib-fdr", seed=seed,
                         link__loss_mode="lossy", link__drop_rate=drop,
                         nic__transport_retries=0, **kw)


def put_stream(cl, ph, n_msgs, size=1 << 16):
    """Run a stop-and-wait put_pwc stream; returns (statuses, remote cids)."""
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    payload = bytes(range(256)) * (size // 256)
    cl[0].memory.write(src.addr, payload)
    statuses, got = [], []

    def sender(env):
        for i in range(n_msgs):
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
            statuses.append(c.status)
            if not c.ok:
                return

    def receiver(env):
        while True:
            c = yield from ph[1].wait_completion("remote",
                                                 timeout_ns=5 * 10 ** 7)
            if c is None:
                return
            got.append(c.cid)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert cl[1].memory.read(dst.addr, size) == payload
    return statuses, got


def test_put_pwc_recovers_from_real_loss():
    """64KiB puts at 1e-3 chunk loss: every message completes with the
    correct payload, and at least one needed a Photon-level replay."""
    cl = real_loss_cluster(drop=1e-3, seed=7)
    ph = photon_init(cl, PhotonConfig(max_op_retries=5))
    statuses, got = put_stream(cl, ph, 20)
    assert all(bool(s is not None and s.name == "SUCCESS") for s in statuses)
    assert len(statuses) == 20 and got == list(range(1, 21))
    assert cl.counters.get("link.drops") > 0
    assert cl.counters.get("photon.op_retries") > 0
    assert cl.counters.get("photon.op_failures") == 0
    tele = ph[0].telemetry()
    assert tele["photon.op_retries"] == cl.counters.get("photon.op_retries")
    assert tele["reliable_ops_inflight"] == 0


def test_retry_exhaustion_surfaces_error_not_hang():
    """Same fabric, zero retry budget: the first lost message completes
    with RETRY_EXC_ERR within the op deadline instead of hanging."""
    from repro.verbs import WCStatus
    cl = real_loss_cluster(drop=1e-3, seed=7)
    ph = photon_init(cl, PhotonConfig(max_op_retries=0))
    size = 1 << 16
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    cl[0].memory.write(src.addr, bytes(range(256)) * (size // 256))
    out = {}

    def sender(env):
        for i in range(20):
            t0 = env.now
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
            if not c.ok:
                out["status"] = c.status
                out["elapsed"] = env.now - t0
                return

    def receiver(env):
        while True:
            c = yield from ph[1].wait_completion("remote",
                                                 timeout_ns=5 * 10 ** 7)
            if c is None:
                return

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert out["status"] is WCStatus.RETRY_EXC_ERR
    assert out["elapsed"] <= ph[0].config.op_timeout_ns
    assert cl.counters.get("photon.op_failures") == 1
    assert cl.counters.get("photon.op_retries") == 0


def test_replayed_entries_deduped_exactly_once():
    """Completion-ledger puts under heavy loss: replays produce duplicate
    ledger entries, the target dedups them, delivery is exactly-once."""
    cl = real_loss_cluster(drop=0.05, seed=1)
    # use_imm=False routes the completion through a second ledger write,
    # the path where a replay can duplicate an already-delivered entry
    ph = photon_init(cl, PhotonConfig(max_op_retries=8, use_imm=False))
    n = 40
    statuses, got = put_stream(cl, ph, n, size=8192)
    assert len(statuses) == n and all(s.name == "SUCCESS" for s in statuses)
    assert sorted(got) == list(range(1, n + 1))  # exactly once, all of them
    assert cl.counters.get("photon.op_retries") > 0
    assert cl.counters.get("photon.dup_drops") > 0
    # lost ledger writes were repaired in place (ring liveness)
    assert cl.counters.get("photon.entry_drops") == 0


def test_qp_error_flush_reconnect_roundtrip():
    """WR retry exhaustion errors the QP; posts flush; reset_and_reconnect
    re-arms the pair and traffic flows again once the fabric heals."""
    from repro.verbs import (Access, Opcode, QPState, SendWR, WCStatus)
    cl = build_cluster(2, link__loss_mode="lossy", link__drop_rate=1.0,
                       nic__transport_retries=0)
    setups = []
    for r in (0, 1):
        node = cl[r]
        pd = node.context.alloc_pd()
        heap = node.memory.alloc(1 << 16)
        mr = node.context.reg_mr_sync(pd, heap, 1 << 16, Access.ALL)
        cq = node.context.create_cq()
        setups.append((pd, heap, mr, cq))
    qps = [cl[r].context.create_qp(setups[r][0], setups[r][3], setups[r][3])
           for r in (0, 1)]
    qps[0].connect(qps[1])
    (_, heap0, mr0, cq0), (_, heap1, mr1, _) = setups
    cl[0].memory.write(heap0, b"fault-domain-data")

    def drain(n):
        def waiter(env):
            got = []
            while len(got) < n:
                yield cq0.wait_nonempty()
                got.extend(cq0.poll())
            return got
        return cl.env.run(until=cl.env.process(waiter(cl.env)))

    wr = SendWR(opcode=Opcode.RDMA_WRITE, wr_id=1, local_addr=heap0,
                length=17, remote_addr=heap1, rkey=mr1.rkey)
    qps[0].post_send(wr)
    wcs = drain(1)
    assert wcs[0].status is WCStatus.RETRY_EXC_ERR
    assert qps[0].state is QPState.ERROR
    # posting to an errored QP flushes immediately
    qps[0].post_send(SendWR(opcode=Opcode.RDMA_WRITE, wr_id=2,
                            local_addr=heap0, length=17,
                            remote_addr=heap1, rkey=mr1.rkey))
    wcs = drain(1)
    assert wcs[0].status is WCStatus.WR_FLUSH_ERR
    assert cl.counters.get("qp.flushes") >= 1
    # re-arm and heal the fabric: the same WR now goes through
    qps[0].reset_and_reconnect()
    assert qps[0].state is QPState.READY
    assert cl.counters.get("qp.reconnects") == 1
    object.__setattr__(cl.params.link, "drop_rate", 0.0)
    qps[0].post_send(SendWR(opcode=Opcode.RDMA_WRITE, wr_id=3,
                            local_addr=heap0, length=17,
                            remote_addr=heap1, rkey=mr1.rkey))
    wcs = drain(1)
    assert wcs[0].ok
    assert cl[1].memory.read(heap1, 17) == b"fault-domain-data"


def test_circuit_breaker_trips_and_recovers():
    """Total outage trips the per-peer breaker (fail-fast sends); after
    the fabric heals, the half-open probe closes it and parcels flow."""
    from repro.runtime.transport import PeerDownError, PhotonTransport
    cl = build_cluster(2, seed=11, link__loss_mode="lossy",
                       link__drop_rate=1.0, nic__transport_retries=0)
    # fail fast: no op replays, short deadline, breaker after 2 failures
    ph = photon_init(cl, PhotonConfig(max_op_retries=0,
                                      op_timeout_ns=100_000))
    tps = [PhotonTransport(ph[r], max_send_retries=0, breaker_threshold=2,
                           breaker_cooldown_ns=1_000_000) for r in range(2)]
    got = []

    def prog(env):
        for i in range(2):
            yield from tps[0].send(1, bytes([i]) * 64)
            for _ in range(200):
                yield env.timeout(10_000)
                yield from tps[0].poll()
                if tps[0].peer_is_down(1) or (
                        cl.counters.get("transport.parcel_failures") > i):
                    break
        assert tps[0].peer_is_down(1)
        assert cl.counters.get("transport.peer_down") == 1
        with pytest.raises(PeerDownError):
            yield from tps[0].send(1, b"nope" + bytes(60))
        assert cl.counters.get("transport.fast_fails") == 1
        # outage ends; cooldown expires; one probe send is let through
        object.__setattr__(cl.params.link, "drop_rate", 0.0)
        yield env.timeout(1_200_000)
        assert not tps[0].peer_is_down(1)
        yield from tps[0].send(1, b"probe!" + bytes(58))
        for _ in range(300):
            yield env.timeout(10_000)
            yield from tps[0].poll()
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(bytes(raw[:6]))
            if cl.counters.get("transport.peer_up") and b"probe!" in got:
                break

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert b"probe!" in got
    assert cl.counters.get("transport.peer_up") == 1
    assert tps[0]._health[1].state == "closed"


def test_same_seed_identical_retry_schedule():
    """The whole fault domain is deterministic: two same-seed runs produce
    identical counter snapshots, two different seeds do not."""
    def run(seed):
        cl = real_loss_cluster(drop=0.02, seed=seed)
        ph = photon_init(cl, PhotonConfig(max_op_retries=8))
        put_stream(cl, ph, 25)
        return cl.counters.snapshot()

    a, b = run(5), run(5)
    assert a == b
    assert a["photon.op_retries"] > 0
    assert run(6) != a


def test_qp_reconnect_under_rapid_flaps():
    """Partition-heal-partition inside one backoff window: a flapping
    link forces repeated QP error/flush/reconnect cycles, and every op
    still lands exactly once.  The src registration is rcache-pinned
    before the first flap and must survive every reconnect (hits, not
    re-registrations)."""
    from repro.chaos import ChaosController, FaultSchedule, FlapLink
    # a hair of built-in loss arms the NIC ARQ machinery so flap drops
    # surface as ack timeouts -> RETRY_EXC_ERR -> QP ERROR -> reconnect
    cl = build_cluster(2, params="ib-fdr", seed=31,
                       link__loss_mode="lossy", link__drop_rate=1e-9,
                       nic__transport_retries=0)
    ph = photon_init(cl, PhotonConfig(use_imm=False, max_op_retries=12,
                                      op_timeout_ns=150_000,
                                      backoff_base_ns=40_000,
                                      backoff_jitter_ns=60_000))
    size = 4096
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    ctrl = ChaosController(cl, FaultSchedule(
        [FlapLink(20_000, "up0", period_ns=120_000, duty=0.5,
                  duration_ns=1_200_000)]))
    ctrl.arm()
    hits_before = ph[0].rcache.hits

    def prog(env):
        for i in range(6):
            payload = bytes([i + 1]) * size
            cl[0].memory.write(src.addr, payload)
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr,
                                     dst.rkey, local_cid=i + 1,
                                     remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local",
                                                 timeout_ns=TIMEOUT)
            assert c is not None and c.ok, f"put {i} lost across flaps"
            assert cl[1].memory.read(dst.addr, size) == payload

    cl.env.run(until=cl.env.process(prog(cl.env)))
    assert cl.counters.get("link.chaos_drops") > 0
    assert cl.counters.get("photon.qp_reconnects") >= 1
    assert cl.counters.get("qp.reconnects") >= 1
    # the cached src registration served every put after the first
    assert ph[0].rcache.hits - hits_before >= 5
    cl.env.run(until=2_000_000)
    assert cl.topology.link("up0").chaos is None
