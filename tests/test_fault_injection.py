"""Failure-injection tests: lossy links, resource exhaustion, timeouts.

The lossy-link model (``LinkParams.drop_rate``) recovers every dropped
chunk (reliable-transport semantics: data is delayed, never lost), so
these tests assert (a) payload integrity is preserved under loss, (b)
loss costs time, and (c) the middleware's timeout paths behave.
"""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init
from repro.sim import SimulationError

TIMEOUT = 10 ** 12


def lossy_cluster(n=2, drop=0.05, seed=1):
    return build_cluster(n, params="ib-fdr", seed=seed,
                         link__drop_rate=drop,
                         link__retransmit_ns=12_000)


def test_pwc_survives_lossy_links():
    cl = lossy_cluster(drop=0.1)
    ph = photon_init(cl)
    src = ph[0].buffer(1 << 16)
    dst = ph[1].buffer(1 << 16)
    payload = bytes((i * 3) & 0xFF for i in range(1 << 16))
    cl[0].memory.write(src.addr, payload)

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, len(payload), dst.addr,
                                 dst.rkey, remote_cid=1)

    def receiver(env):
        c = yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
        return c

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p1.value.cid == 1
    assert cl[1].memory.read(dst.addr, len(payload)) == payload
    assert cl.counters.get("link.drops") > 0


def test_loss_costs_time_but_not_data():
    def transfer_time(drop):
        cl = lossy_cluster(drop=drop)
        ph = photon_init(cl)
        src = ph[0].buffer(1 << 18)
        dst = ph[1].buffer(1 << 18)
        done = {}

        def sender(env):
            yield from ph[0].put_pwc(1, src.addr, 1 << 18, dst.addr,
                                     dst.rkey, remote_cid=1)

        def receiver(env):
            yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
            done["t"] = env.now

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return done["t"]

    clean = transfer_time(0.0)
    lossy = transfer_time(0.15)
    assert lossy > clean * 1.1


def test_mpi_rendezvous_survives_lossy_links():
    cl = lossy_cluster(drop=0.08)
    comms = mpi_init(cl)
    size = 128 * 1024
    s = cl[0].memory.alloc(size)
    r = cl[1].memory.alloc(size)
    cl[0].memory.write(s, bytes(range(256)) * (size // 256))

    def sender(env):
        yield from comms[0].send(s, size, 1, tag=1)

    def receiver(env):
        st = yield from comms[1].recv(r, size, 0, tag=1)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert cl[1].memory.read(r, size) == bytes(range(256)) * (size // 256)


def test_lossy_runs_are_deterministic_per_seed():
    def run(seed):
        cl = lossy_cluster(drop=0.1, seed=seed)
        ph = photon_init(cl)
        src = ph[0].buffer(1 << 16)
        dst = ph[1].buffer(1 << 16)
        done = {}

        def sender(env):
            yield from ph[0].put_pwc(1, src.addr, 1 << 16, dst.addr,
                                     dst.rkey, remote_cid=1)

        def receiver(env):
            yield from ph[1].wait_completion("remote", timeout_ns=TIMEOUT)
            done["t"] = env.now

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return done["t"], cl.counters.get("link.drops")

    assert run(3) == run(3)
    # different seeds see different drop patterns (overwhelmingly likely)
    assert run(3) != run(4)


def test_collectives_survive_loss():
    import numpy as np
    cl = lossy_cluster(n=4, drop=0.05)
    ph = photon_init(cl)
    results = []

    def body(rank):
        out = yield from ph[rank].allreduce(
            np.array([float(rank + 1)]), "sum")
        results.append(float(out[0]))

    procs = [cl.env.process(body(r)) for r in range(4)]
    cl.env.run(until=cl.env.all_of(procs))
    assert results == [10.0] * 4


def test_wait_timeout_fires_when_peer_never_sends():
    cl = build_cluster(2)
    ph = photon_init(cl)

    def prog(env):
        c = yield from ph[0].wait_completion(timeout_ns=1_000_000)
        m = yield from ph[0].wait_message(timeout_ns=1_000_000)
        info = yield from ph[0].wait_recv_info(timeout_ns=1_000_000)
        return c, m, info

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value == (None, None, None)
    assert cl.env.now >= 3_000_000


def test_memory_exhaustion_is_loud():
    from repro.fabric import OutOfMemory
    cl = build_cluster(2, mem_size=1 << 20)
    with pytest.raises(OutOfMemory):
        cl[0].memory.alloc(2 << 20)
