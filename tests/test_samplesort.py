"""Correctness tests for the distributed sample sort app."""

import numpy as np
import pytest

from repro.apps import (
    make_keys,
    run_samplesort_mpi,
    run_samplesort_photon,
    verify_sorted,
)
from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init


def run_programs(cl, programs):
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))


def test_make_keys_deterministic_and_partitioned():
    a = make_keys(1000, 4, seed=1)
    b = make_keys(1000, 4, seed=1)
    assert all(np.array_equal(x, y) for x, y in zip(a, b))
    assert sum(k.size for k in a) == 1000
    assert not np.array_equal(make_keys(1000, 4, seed=2)[0], a[0])


@pytest.mark.parametrize("n", [2, 3, 4])
def test_samplesort_photon_verifies(n):
    inputs = make_keys(4000, n, seed=5)
    cl = build_cluster(n)
    ph = photon_init(cl)
    programs, results = run_samplesort_photon(cl, ph, inputs)
    run_programs(cl, programs)
    assert verify_sorted(results, inputs)


@pytest.mark.parametrize("n", [2, 4])
def test_samplesort_mpi_verifies(n):
    inputs = make_keys(4000, n, seed=5)
    cl = build_cluster(n)
    comms = mpi_init(cl)
    programs, results = run_samplesort_mpi(cl, comms, inputs)
    run_programs(cl, programs)
    assert verify_sorted(results, inputs)


def test_samplesort_agrees_with_numpy():
    inputs = make_keys(2000, 2, seed=9)
    cl = build_cluster(2)
    ph = photon_init(cl)
    programs, results = run_samplesort_photon(cl, ph, inputs)
    run_programs(cl, programs)
    merged = np.concatenate([r.keys for r in
                             sorted(results, key=lambda r: r.rank)])
    np.testing.assert_array_equal(merged,
                                  np.sort(np.concatenate(inputs)))


def test_samplesort_records_exchange_metrics():
    inputs = make_keys(2000, 2, seed=9)
    cl = build_cluster(2)
    ph = photon_init(cl)
    programs, results = run_samplesort_photon(cl, ph, inputs)
    run_programs(cl, programs)
    for r in results:
        assert 0 < r.exchange_ns < r.elapsed_ns
        assert r.bytes_exchanged > 0


def test_verify_sorted_catches_corruption():
    inputs = make_keys(1000, 2, seed=3)
    cl = build_cluster(2)
    ph = photon_init(cl)
    programs, results = run_samplesort_photon(cl, ph, inputs)
    run_programs(cl, programs)
    # corrupt one key: verification must fail
    results[0].keys[0] += 1
    assert not verify_sorted(results, inputs)
