"""repro.kv: Raft core, sharding, sessions, end-to-end store ops.

The Raft protocol properties (single-leader elections, log replication,
the current-term commit restriction, conflict-suffix repair, read
leases, compaction) are checked on pure-logic :class:`RaftNode`
instances driven over a synchronous in-memory bus — instant delivery,
caller-owned clock, no simulator.  The end-to-end tests then run the
real store on the simulated fabric through :func:`build_kv` and
:class:`KVClient`.

The golden-trace guard at the bottom re-asserts the pinned R1/R4/R17
fingerprints with ``repro.kv`` imported: the tenant must be strictly
pay-for-what-you-build — importing it consumes no RNG draws and
schedules nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import r1_latency, r4_ledger, r17_faults
from repro.cluster import build_cluster
from repro.kv import (Command, KVClient, KVConfig, KVStateMachine,
                      RaftConfig, RaftNode, ShardMap, build_kv,
                      decode_command, encode_command)
from repro.kv.raft import (LEADER, MSG_APPEND, MSG_APPEND_REPLY, MSG_SNAP,
                           MSG_SNAP_REPLY, MSG_VOTE_REPLY, MSG_VOTE_REQ,
                           RaftMsg, decode_msg, encode_msg)
from repro.kv.shard import (CodecError, OP_CAS, OP_PUT, ST_CAS_FAIL,
                            ST_MISS, ST_OK)
from repro.kv.workload import WorkloadStats, ZipfKeys
from repro.obs.report import build_snapshot
from repro.photon import photon_init
from repro.runtime.health import HealthConfig, build_health
from repro.sim.rng import RngRegistry

from tests.test_determinism_golden import (GOLDEN, _photon_clean_workload,
                                           _photon_lossy_workload,
                                           _result_fingerprint,
                                           _trace_fingerprint)

HB = 50_000


# --------------------------------------------------------------------------
# synchronous bus for pure-logic Raft tests
# --------------------------------------------------------------------------

class Bus:
    """Drives a Raft group with instant delivery and a manual clock."""

    def __init__(self, n: int = 3, seed: int = 1, cfg: RaftConfig = None):
        ns = RngRegistry(seed).namespace("kv.raft.test")
        cfg = cfg or RaftConfig()
        self.nodes = {r: RaftNode(0, r, list(range(n)), cfg,
                                  ns.stream(f"r{r}")) for r in range(n)}
        self.now = 0
        self.cut: set = set()  # ranks isolated from the wire

    def deliver(self) -> None:
        for _ in range(10_000):
            moved = False
            for node in self.nodes.values():
                pending, node.outbox[:] = list(node.outbox), []
                if node.rank in self.cut:
                    continue
                for dst, raw in pending:
                    if dst in self.cut:
                        continue
                    self.nodes[dst].on_message(decode_msg(raw), self.now)
                    moved = True
            if not moved:
                return
        raise AssertionError("bus did not quiesce")

    def step(self, dt: int = HB) -> None:
        self.now += dt
        for node in self.nodes.values():
            node.tick(self.now)
        self.deliver()

    def run_until(self, pred, max_steps: int = 400, dt: int = HB) -> None:
        for _ in range(max_steps):
            if pred():
                return
            self.step(dt)
        raise AssertionError("predicate never held")

    def leader(self) -> RaftNode:
        live = [n for n in self.nodes.values()
                if n.role == LEADER and n.rank not in self.cut]
        assert len(live) <= 1 or len({n.term for n in live}) == len(live), \
            "two leaders in one term"
        return max(live, key=lambda n: n.term) if live else None

    def elect(self) -> RaftNode:
        self.run_until(lambda: self.leader() is not None)
        # settle the first heartbeat round so the leader has fresh acks
        self.step()
        return self.leader()


# --------------------------------------------------------------------------
# raft: codecs
# --------------------------------------------------------------------------

def test_raft_message_codecs_roundtrip():
    msgs = [
        RaftMsg(MSG_VOTE_REQ, 3, 7, 1, last_log_index=12, last_log_term=6),
        RaftMsg(MSG_VOTE_REPLY, 3, 7, 2, granted=True),
        RaftMsg(MSG_APPEND, 0, 9, 0, prev_index=4, prev_term=8, commit=3,
                sent_ns=123_456, entries=((8, b"alpha"), (9, b""))),
        RaftMsg(MSG_APPEND_REPLY, 0, 9, 2, success=False, match_index=4,
                sent_ns=123_456),
        RaftMsg(MSG_SNAP, 0, 9, 1, snap_index=40, snap_term=8, offset=4096,
                total=5000, done=True, chunk=b"z" * 904, sent_ns=7),
        RaftMsg(MSG_SNAP_REPLY, 0, 9, 2, snap_index=40, next_offset=5000,
                sent_ns=7),
    ]
    for msg in msgs:
        assert decode_msg(encode_msg(msg)) == msg


def test_raft_decode_rejects_malformed_frames():
    """Truncated, overgrown and unknown frames raise a typed CodecError
    instead of struct.error / silent garbage."""
    good = encode_msg(RaftMsg(MSG_APPEND, 0, 9, 0, prev_index=4,
                              prev_term=8, commit=3, sent_ns=1,
                              entries=((8, b"alpha"),)))
    with pytest.raises(CodecError):
        decode_msg(b"")
    with pytest.raises(CodecError):
        decode_msg(good[:1])          # no header
    with pytest.raises(CodecError):
        decode_msg(good[:-3])         # truncated entry payload
    with pytest.raises(CodecError):
        decode_msg(good + b"\x00")    # trailing bytes
    with pytest.raises(CodecError):
        decode_msg(b"\xff" + good[1:])  # unknown kind
    snap = encode_msg(RaftMsg(MSG_SNAP, 0, 9, 1, snap_index=4, snap_term=2,
                              offset=0, total=10, done=False,
                              chunk=b"abcde", sent_ns=1))
    with pytest.raises(CodecError):
        decode_msg(snap[:-2])         # truncated chunk
    with pytest.raises(CodecError):
        decode_msg(snap + b"!")       # overlong chunk frame


# --------------------------------------------------------------------------
# raft: elections and replication
# --------------------------------------------------------------------------

def test_bootstrap_elects_exactly_one_leader():
    bus = Bus(n=3)
    leader = bus.elect()
    assert leader.term >= 1
    assert sum(1 for n in bus.nodes.values() if n.role == LEADER) == 1
    for n in bus.nodes.values():
        assert n.leader == leader.rank


def test_replication_applies_same_commands_everywhere():
    bus = Bus(n=3)
    leader = bus.elect()
    applied = {r: [] for r in bus.nodes}
    cmds = [f"cmd{i}".encode() for i in range(5)]
    for cmd in cmds:
        assert leader.propose(cmd, bus.now) is not None
    assert bus.nodes[(leader.rank + 1) % 3].propose(b"x", bus.now) is None
    bus.run_until(lambda: all(n.last_applied == leader.last_index
                              for n in bus.nodes.values()))
    for r, node in bus.nodes.items():
        applied[r] += [cmd for _idx, cmd in node.take_applied()]
    # same commands, same order, no-ops filtered out
    assert all(applied[r] == cmds for r in bus.nodes)


def test_catch_up_after_partition_heals():
    bus = Bus(n=3)
    leader = bus.elect()
    straggler = (leader.rank + 1) % 3
    bus.cut.add(straggler)
    for i in range(4):
        leader.propose(f"while-away{i}".encode(), bus.now)
    bus.run_until(lambda: leader.commit_index == leader.last_index,
                  max_steps=50)
    assert bus.nodes[straggler].last_applied < leader.last_applied
    bus.cut.clear()
    bus.run_until(lambda: bus.nodes[straggler].last_applied
                  == leader.last_applied, max_steps=50)
    assert ([e for e in bus.nodes[straggler].log]
            == [e for e in leader.log])


def test_detection_driven_election_beats_the_timeout():
    bus = Bus(n=3)
    leader = bus.elect()
    victim = leader.rank
    bus.cut.add(victim)
    t0 = bus.now
    for node in bus.nodes.values():
        if node.rank != victim:
            node.on_peer_dead(victim, bus.now)
    bus.run_until(lambda: bus.leader() is not None, dt=25_000)
    cfg = leader.config
    fast_bound = cfg.fast_election_ns + cfg.election_jitter_ns + 50_000
    assert bus.now - t0 <= fast_bound
    assert bus.now - t0 < cfg.election_timeout_ns


def test_lease_granted_by_acked_rounds_and_expires():
    bus = Bus(n=3)
    leader = bus.elect()
    assert leader.lease_valid(bus.now)
    # silence: peers stop acking, the lease must run out on its own
    bus.cut.update(r for r in bus.nodes if r != leader.rank)
    horizon = bus.now + leader.config.lease_ns + leader.config.heartbeat_ns
    while bus.now <= horizon:
        bus.step(dt=25_000)
    assert not leader.lease_valid(bus.now)
    followers = [n for n in bus.nodes.values() if n.rank != leader.rank]
    assert not any(f.lease_valid(bus.now) for f in followers)


def test_failed_append_replies_do_not_extend_the_lease():
    """A log-mismatch (success=False) AE reply proves the peer is alive,
    not that it follows this leader's log — it must not feed the lease,
    or a conflict-repairing new leader could serve stale reads."""
    ns = RngRegistry(11).namespace("kv.raft.test")
    node = RaftNode(0, 0, [0, 1, 2], RaftConfig(), ns.stream("lease"))
    node.term = 2
    node.role = LEADER
    node.next_index = {1: 1, 2: 1}
    node.match_index = {1: 0, 2: 0}
    node._ack_round = {1: 0, 2: 0}
    t = 1_000_000
    node._inflight = {1: t, 2: t}
    nack = RaftMsg(MSG_APPEND_REPLY, 0, 2, 1, success=False,
                   match_index=0, sent_ns=t)
    node.on_message(nack, now=t)
    assert node._ack_round[1] == 0
    assert not node.lease_valid(t + 1)
    ack = RaftMsg(MSG_APPEND_REPLY, 0, 2, 2, success=True,
                  match_index=0, sent_ns=t)
    node.on_message(ack, now=t)
    assert node._ack_round[2] == t
    assert node.lease_valid(t + 1)  # self + one successful ack = majority


def test_read_barrier_requires_current_term_commit_and_apply():
    """Raft §8: a new leader must not answer reads until an entry of its
    own term is committed *and* the applied output is drained — before
    that its state machine may lag the old leader's acked writes."""
    ns = RngRegistry(13).namespace("kv.raft.test")
    node = RaftNode(0, 0, [0, 1, 2], RaftConfig(), ns.stream("rb"))
    node.term = 2
    node.role = LEADER
    node.log = [(1, b"inherited")]
    node.next_index = {1: 2, 2: 2}
    node.match_index = {1: 1, 2: 1}
    node._advance_commit()
    assert node.commit_index == 0
    assert not node.read_barrier_ok()  # nothing of term 2 committed yet
    node.log.append((2, b""))  # the election no-op
    node.match_index = {1: 2, 2: 2}
    node._advance_commit()
    assert node.commit_index == 2
    assert not node.read_barrier_ok()  # applied entries not drained yet
    node.take_applied()
    assert node.read_barrier_ok()


def test_elected_leader_passes_the_read_barrier():
    bus = Bus(n=3)
    leader = bus.elect()
    leader.take_applied()
    assert leader.lease_valid(bus.now)
    assert leader.read_barrier_ok()


def test_single_replica_group_commits_without_peers():
    ns = RngRegistry(15).namespace("kv.raft.test")
    node = RaftNode(0, 0, [0], RaftConfig(), ns.stream("solo"))
    node.tick(node.election_due)  # immediate uncontested self-election
    assert node.role == LEADER
    assert node.commit_index == node.last_index  # no-op committed solo
    idx = node.propose(b"solo-cmd", node.election_due)
    assert idx is not None and node.commit_index == idx
    assert [cmd for _i, cmd in node.take_applied()] == [b"solo-cmd"]
    assert node.read_barrier_ok()


def test_commit_restriction_needs_a_current_term_entry():
    ns = RngRegistry(7).namespace("kv.raft.test")
    node = RaftNode(0, 0, [0, 1, 2], RaftConfig(), ns.stream("cr"))
    node.term = 2
    node.role = LEADER
    node.log = [(1, b"inherited")]
    node.next_index = {1: 2, 2: 2}
    node.match_index = {1: 1, 2: 1}  # old-term entry matched on a majority
    node._advance_commit()
    assert node.commit_index == 0  # majority match alone must not commit
    node.log.append((2, b""))  # the new leader's no-op
    node.match_index = {1: 2, 2: 2}
    node._advance_commit()
    # committing the current-term no-op carries the inherited entry
    assert node.commit_index == 2


def test_append_truncates_conflicting_suffix():
    ns = RngRegistry(9).namespace("kv.raft.test")
    node = RaftNode(0, 1, [0, 1, 2], RaftConfig(), ns.stream("tr"))
    node.term = 2
    node.log = [(1, b"a"), (2, b"bogusB"), (2, b"bogusC")]
    ae = RaftMsg(MSG_APPEND, 0, 3, 0, prev_index=1, prev_term=1, commit=2,
                 sent_ns=5, entries=((3, b"realB"), (3, b"realC")))
    node.on_message(ae, now=5)
    assert node.log == [(1, b"a"), (3, b"realB"), (3, b"realC")]
    assert node.commit_index == 2
    reply = decode_msg(node.outbox[-1][1])
    assert reply.success and reply.match_index == 3


def _arm_snapshots(bus, payload: bytes = b"machine-state") -> None:
    """Give every Bus node a trivial serializer so compaction can fire
    (no snapshot_fn → compaction disarmed, the pure-logic default)."""
    for n in bus.nodes.values():
        n.snapshot_fn = lambda: payload


def _drain_all(bus) -> None:
    for n in bus.nodes.values():
        n.take_applied()
        n.take_installed()


def test_compaction_trims_the_applied_prefix():
    cfg = RaftConfig(compact_threshold=8, compact_margin=2)
    bus = Bus(n=3, cfg=cfg)
    _arm_snapshots(bus)
    leader = bus.elect()
    for i in range(30):
        leader.propose(f"c{i:03d}".encode(), bus.now)
        bus.step(dt=10_000)
        _drain_all(bus)  # snapshots wait for the caller to drain applies
    bus.run_until(lambda: (_drain_all(bus) or all(
        n.last_applied == leader.last_index for n in bus.nodes.values())))
    bus.step()
    assert leader.base_index > 0
    assert leader.snapshots_taken >= 1
    assert leader.compactions >= 1
    assert len(leader.log) < 30
    # the retained applied suffix is bounded by threshold + margin ...
    for n in bus.nodes.values():
        assert (n.last_applied - n.base_index
                <= cfg.compact_threshold + cfg.compact_margin)
    # ... and healthy followers converged on the plain AE path: the
    # margin kept enough entries that nobody needed a snapshot install
    assert all(n.snapshot_installs == 0 for n in bus.nodes.values())
    assert all(n.last_index == leader.last_index
               for n in bus.nodes.values())


def test_snapshot_streams_to_a_partitioned_follower():
    """Trimming past a laggard is safe because the laggard is caught up
    by InstallSnapshot: cut a follower, overrun the threshold, heal —
    the follower must converge via a streamed snapshot, not AE repair."""
    cfg = RaftConfig(compact_threshold=8, compact_margin=2,
                     snapshot_chunk=7)  # force a multi-chunk transfer
    bus = Bus(n=3, cfg=cfg)
    _arm_snapshots(bus, payload=b"s" * 40)
    leader = bus.elect()
    lag = bus.nodes[(leader.rank + 1) % 3]
    bus.cut.add(lag.rank)
    for i in range(30):
        leader.propose(f"c{i:03d}".encode(), bus.now)
        bus.step(dt=10_000)
        _drain_all(bus)
    # the leader trimmed past the cut follower's position
    assert leader.base_index > lag.last_index
    assert leader.snapshot_index > 0
    bus.cut.discard(lag.rank)
    bus.run_until(lambda: (_drain_all(bus) or
                           lag.last_applied == leader.last_index))
    assert lag.snapshot_installs >= 1
    assert leader.snapshot_chunks_sent >= 2     # 40B / 7B chunks
    assert lag.base_index == lag.snapshot_index > 0
    assert lag.last_index == leader.last_index
    # the installed blob is retained so *this* node could serve installs
    # were it to become leader
    assert lag.snapshot_blob == b"s" * 40


def test_snapshot_install_reports_blob_to_caller():
    """A follower that installs a snapshot surfaces (index, term, blob)
    through take_installed() exactly once, and its applied cursor jumps
    to the snapshot point without replaying the trimmed prefix."""
    cfg = RaftConfig(compact_threshold=4, compact_margin=1)
    bus = Bus(n=3, cfg=cfg)
    _arm_snapshots(bus, payload=b"full-machine")
    leader = bus.elect()
    lag = bus.nodes[(leader.rank + 1) % 3]
    bus.cut.add(lag.rank)
    for i in range(12):
        leader.propose(f"c{i:03d}".encode(), bus.now)
        bus.step(dt=10_000)
        for n in bus.nodes.values():
            n.take_applied()
    bus.cut.discard(lag.rank)
    bus.run_until(lambda: bool(lag._installed_out))
    installed = lag.take_installed()
    assert len(installed) == 1
    index, term, blob, _t0 = installed[0]
    assert blob == b"full-machine"
    assert index == lag.base_index == lag.last_applied
    assert term <= leader.term
    assert lag.take_installed() == []  # drained exactly once


# --------------------------------------------------------------------------
# sharding and the state machine
# --------------------------------------------------------------------------

def test_shard_map_placement_and_balance():
    sm = ShardMap(n_groups=4, n_ranks=6, rf=3)
    keys = [f"key:{i}".encode() for i in range(2000)]
    assert all(sm.group_of(k) == sm.group_of(k) for k in keys[:50])
    dist = sm.key_distribution(keys)
    assert sum(dist.values()) == len(keys)
    assert all(count > 0 for count in dist.values())
    for g in range(4):
        reps = sm.replicas(g)
        assert len(set(reps)) == 3
        assert all(g in sm.groups_on(r) for r in reps)


def test_consistent_hashing_moves_only_to_the_new_group():
    before = ShardMap(n_groups=4, n_ranks=8, rf=3)
    after = ShardMap(n_groups=5, n_ranks=8, rf=3)
    keys = [f"key:{i}".encode() for i in range(2000)]
    moved = [k for k in keys if before.group_of(k) != after.group_of(k)]
    assert 0 < len(moved) < len(keys) // 2
    # the ring property: growing the group count only moves keys *to*
    # the new group, never between the old ones
    assert all(after.group_of(k) == 4 for k in moved)


def test_command_codec_roundtrip():
    cmd = Command(op=OP_CAS, client=42, seq=7, key=b"k", value=b"v" * 100,
                  expected=b"old")
    assert decode_command(encode_command(cmd)) == cmd


def test_command_decode_rejects_malformed_frames():
    good = encode_command(Command(op=OP_PUT, client=1, seq=2, key=b"key",
                                  value=b"value"))
    with pytest.raises(CodecError):
        decode_command(b"")
    with pytest.raises(CodecError):
        decode_command(good[:4])       # truncated header
    with pytest.raises(CodecError):
        decode_command(good[:-1])      # body shorter than lengths claim
    with pytest.raises(CodecError):
        decode_command(good + b"xx")   # body longer than lengths claim


def test_shard_map_reassign_flips_ownership_and_epoch():
    sm = ShardMap(n_groups=4, n_ranks=6, rf=3)
    keys = [f"key:{i}".encode() for i in range(2000)]
    src = sm.group_of(keys[0])
    dst = (src + 1) % 4
    owned = [k for k in keys if sm.group_of(k) == src]
    view0 = sm.freeze()
    assert sm.epoch == 0 and view0.epoch == 0
    epoch = sm.reassign(src, dst)
    assert epoch == sm.epoch == 1
    # every key the source owned now routes to the destination ...
    assert all(sm.group_of(k) == dst for k in owned)
    # ... nothing else moved ...
    assert all(sm.group_of(k) != src for k in keys)
    # ... and the frozen pre-move view still routes the old way
    assert view0.group_of(keys[0]) == src
    assert sm.moves == [(1, src, dst)]


def test_state_machine_serialize_roundtrip_and_merge():
    m = KVStateMachine(0)
    m.apply(Command(OP_PUT, 1, 1, b"a", b"v1"))
    m.apply(Command(OP_PUT, 2, 1, b"b", b"v2"))
    m.apply(Command(OP_CAS, 1, 2, b"a", b"v3", expected=b"wrong"))
    from repro.kv.shard import OP_DELETE
    m.apply(Command(OP_DELETE, 2, 2, b"b"))
    blob = m.serialize()
    # byte-determinism: same state → same blob
    assert m.serialize() == blob
    clone = KVStateMachine.deserialize(0, blob)
    assert clone.get(b"a") == b"v1" and clone.get(b"b") is None
    # deleted keys keep their version (monotonic-read guard survives)
    assert clone.version[b"b"] == m.version[b"b"] > 0
    assert clone.ops_applied == m.ops_applied
    # sessions survive: a replayed uid still dedups after the roundtrip
    before = clone.ops_applied
    assert clone.apply(Command(OP_CAS, 1, 2, b"a", b"v3",
                               expected=b"wrong"))[0] == ST_CAS_FAIL
    assert clone.ops_applied == before and clone.dup_skips == 1
    # merge overlays into a machine that has its own keys
    other = KVStateMachine(1)
    other.apply(Command(OP_PUT, 3, 1, b"c", b"v4"))
    other.merge_from(blob)
    assert other.get(b"a") == b"v1" and other.get(b"c") == b"v4"
    assert (1, 2) in other.applied_uids and (3, 1) in other.applied_uids
    with pytest.raises(CodecError):
        KVStateMachine.deserialize(0, blob[:-2])
    with pytest.raises(CodecError):
        KVStateMachine.deserialize(0, blob + b"\x00")


def test_state_machine_seal_rejects_writes_without_burning_sessions():
    from repro.kv.shard import OP_SEAL, ST_SEALED
    m = KVStateMachine(0)
    m.apply(Command(OP_PUT, 1, 1, b"k", b"v1"))
    assert m.apply(Command(OP_SEAL, 9, 1, b""))[0] == ST_OK
    assert m.sealed
    st, _ = m.apply(Command(OP_PUT, 1, 2, b"k", b"v2"))
    assert st == ST_SEALED
    # the rejected write must NOT be recorded as applied: the client's
    # retry has to be able to land at the destination group post-move
    assert (1, 2) not in m.applied_uids
    assert m.get(b"k") == b"v1"
    # reads of frozen state keep working; replays of pre-seal writes too
    assert m.apply(Command(OP_PUT, 1, 1, b"k", b"zzz")) == (ST_OK, b"")
    assert m.get(b"k") == b"v1"


def test_state_machine_ops_and_exactly_once_sessions():
    m = KVStateMachine(0)
    assert m.apply(Command(OP_PUT, 1, 1, b"k", b"v1")) == (ST_OK, b"")
    assert m.get(b"k") == b"v1"
    st, witness = m.apply(Command(OP_CAS, 1, 2, b"k", b"v2",
                                  expected=b"wrong"))
    assert (st, witness) == (ST_CAS_FAIL, b"v1")
    assert m.apply(Command(OP_CAS, 1, 3, b"k", b"v2",
                           expected=b"v1")) == (ST_OK, b"")
    assert m.get(b"k") == b"v2"
    # replay of an applied uid: retained result, no re-execution
    ops_before = m.ops_applied
    assert m.apply(Command(OP_PUT, 1, 1, b"k", b"SHOULD-NOT-LAND")) \
        == (ST_OK, b"")
    assert m.get(b"k") == b"v2"
    assert m.ops_applied == ops_before and m.dup_skips == 1
    assert (1, 3) in m.applied_uids


def test_zipf_skew_and_stats_percentiles():
    rng = RngRegistry(3).stream("zipf")
    z = ZipfKeys(64, 1.2, rng)
    draws = [z.sample() for _ in range(4000)]
    top = max(set(draws), key=draws.count)
    assert top == z.keys[0]  # rank-0 key dominates under skew
    assert draws.count(top) > 3 * (len(draws) // 64)
    stats = WorkloadStats()
    for i in range(100):
        stats.record("get", 0, (i + 1) * 1000, ST_OK)
    assert stats.completed == 100
    assert stats.pct_us("get", 50) < stats.pct_us("get", 99)


# --------------------------------------------------------------------------
# end to end on the simulated fabric
# --------------------------------------------------------------------------

def _run_kv(body, n_ranks=3, n_groups=1, seed=21):
    cl = build_cluster(n_ranks, "ib-fdr", seed=seed)
    ph = photon_init(cl)
    monitors = build_health(cl, HealthConfig(period_ns=HB, phi_dead=6.0))
    nodes = build_kv(cl, ph, KVConfig(n_groups=n_groups,
                                      rf=min(3, n_ranks)),
                     monitors=monitors)
    out = {}

    def driver(env):
        while not all(any(n.is_leader(g) for n in nodes)
                      for g in range(n_groups)):
            yield env.timeout(HB)
        yield from body(env, cl, nodes, out)

    done = cl.env.process(driver(cl.env), name="kv.test.driver")
    cl.env.run(until=done)
    return cl, nodes, out


def test_end_to_end_put_get_cas_delete():
    def body(env, cl, nodes, out):
        c = KVClient(nodes[0], client_id=1)
        out["put"] = yield from c.put(b"k1", b"v1")
        out["get1"] = yield from c.get(b"k1")
        out["cas_fail"] = yield from c.cas(b"k1", b"wrong", b"v2")
        out["cas_ok"] = yield from c.cas(b"k1", b"v1", b"v2")
        out["get2"] = yield from c.get(b"k1")
        out["del"] = yield from c.delete(b"k1")
        out["get3"] = yield from c.get(b"k1")
        out["del_miss"] = yield from c.delete(b"nope")

    _cl, _nodes, out = _run_kv(body)
    assert out["put"] == ST_OK
    assert out["get1"] == (ST_OK, b"v1")
    assert out["cas_fail"] == (ST_CAS_FAIL, b"v1")
    assert out["cas_ok"] == (ST_OK, b"")
    assert out["get2"] == (ST_OK, b"v2")
    assert out["del"] == ST_OK
    assert out["get3"][0] == ST_MISS
    assert out["del_miss"] == ST_MISS


def test_one_sided_read_path_serves_from_the_slot_table():
    def body(env, cl, nodes, out):
        writer = KVClient(nodes[0], client_id=1)
        reader = KVClient(nodes[-1], client_id=2, read_mode="onesided")
        yield from writer.put(b"hot", b"payload")
        out["reads"] = []
        for _ in range(3):
            out["reads"].append((yield from reader.get(b"hot")))
        out["reader"] = reader

    _cl, _nodes, out = _run_kv(body)
    assert all(r == (ST_OK, b"payload") for r in out["reads"])
    stats = out["reader"].stats
    assert stats.onesided_reads == 3
    assert stats.loc_lookups == 1  # the location is cached after one RPC
    assert stats.onesided_fallbacks == 0


def test_duplicate_seq_is_applied_exactly_once():
    def body(env, cl, nodes, out):
        c = KVClient(nodes[0], client_id=5)
        yield from c.put(b"once", b"first")
        c.seq -= 1  # replay the same (client, seq) uid
        out["replay"] = yield from c.put(b"once", b"second")
        out["read"] = yield from c.get(b"once")
        yield env.timeout(20 * HB)  # let follower apply loops drain

    _cl, nodes, out = _run_kv(body)
    assert out["replay"] == ST_OK  # retained first result, not an error
    assert out["read"] == (ST_OK, b"first")
    group = nodes[0].shard_map.group_of(b"once")
    machines = [n.machines[group] for n in nodes
                if group in n.machines]
    assert machines
    for m in machines:
        assert m.get(b"once") == b"first"
        assert m.version[b"once"] == 1


def test_multi_group_store_spreads_keys():
    def body(env, cl, nodes, out):
        c = KVClient(nodes[0], client_id=1)
        for i in range(24):
            yield from c.put(f"spread:{i}".encode(), b"x")
        out["ok"] = True

    _cl, nodes, out = _run_kv(body, n_ranks=4, n_groups=3, seed=23)
    assert out["ok"]
    per_group = {g: sum(m.stats()["keys"]
                        for n in nodes for gg, m in n.machines.items()
                        if gg == g) for g in range(3)}
    assert all(count > 0 for count in per_group.values())


def test_onesided_loc_cache_revalidates_in_the_background():
    def body(env, cl, nodes, out):
        writer = KVClient(nodes[0], client_id=1)
        reader = KVClient(nodes[-1], client_id=2, read_mode="onesided",
                          loc_ttl_ns=1)
        yield from writer.put(b"ttl", b"v")
        out["r1"] = yield from reader.get(b"ttl")
        yield env.timeout(10)
        # the cached loc is past its TTL: this read is still served
        # one-sided (stale-while-revalidate) and kicks off a refresh
        out["r2"] = yield from reader.get(b"ttl")
        yield env.timeout(200_000)  # let the background refresh land
        out["refreshed_at"] = reader._loc[b"ttl"][4]
        out["stats"] = reader.stats
        out["refreshing"] = set(reader._refreshing)

    _cl, _nodes, out = _run_kv(body)
    assert out["r1"] == (ST_OK, b"v") and out["r2"] == (ST_OK, b"v")
    # the expired location was re-resolved through the RPC path — what
    # bounds staleness against a deposed-but-alive leader — without
    # putting the loc round-trip on the read's latency path
    assert out["stats"].loc_lookups == 2
    assert out["stats"].onesided_reads == 2
    assert out["refreshed_at"] > 0 and out["refreshing"] == set()


def test_onesided_version_regression_falls_back_to_rpc():
    def body(env, cl, nodes, out):
        writer = KVClient(nodes[0], client_id=1)
        reader = KVClient(nodes[-1], client_id=2, read_mode="onesided")
        yield from writer.put(b"mono", b"v1")
        out["r1"] = yield from reader.get(b"mono")
        # pretend the session already observed a newer version than the
        # slot carries (what reading a lagging replica looks like): the
        # monotonic-reads guard must refuse the one-sided value
        reader._seen_ver[b"mono"] = 99
        out["r2"] = yield from reader.get(b"mono")
        out["stats"] = reader.stats

    _cl, _nodes, out = _run_kv(body)
    assert out["r1"] == (ST_OK, b"v1")
    assert out["r2"] == (ST_OK, b"v1")  # authoritative RPC answer
    assert out["stats"].onesided_fallbacks == 1
    assert out["stats"].rpc_reads == 1


def test_hub_gc_sweeps_unclaimed_responses():
    from repro.kv.store import pack_response

    def body(env, cl, nodes, out):
        c = KVClient(nodes[0], client_id=9)
        yield from c.put(b"gc", b"v")
        # a response no client will ever claim — e.g. a duplicate answer
        # to a retried attempt that already completed
        nodes[0].handle_response(0, pack_response(0, 0, 999, 1, b"zombie"))
        assert (999, 1) in nodes[0].hub
        yield env.timeout(3 * nodes[0].config.hub_ttl_ns)
        out["backlog"] = dict(nodes[0].hub)

    _cl, _nodes, out = _run_kv(body)
    assert (999, 1) not in out["backlog"]
    assert out["backlog"] == {}


def test_redirect_bounce_backs_off_instead_of_burning_attempts():
    """Two replicas whose leader hints point at each other must not eat
    the whole attempt budget at wire speed: after the first followed
    hint every further redirect pays the same exponential backoff as
    the hint-less path, so the retry loop outlives an election."""
    from repro.kv.store import RESP_FAIL, RESP_NOT_LEADER

    cl = build_cluster(2, "ib-fdr", seed=41)
    env = cl.env
    hub = {}
    sends = {"n": 0}

    class _Runtime:
        @staticmethod
        def send(dst, action, payload):
            sends["n"] += 1
            from repro.kv.store import unpack_request
            _kind, client, seq, _group, _epoch, _body = \
                unpack_request(payload)
            hub[(client, seq)] = (RESP_NOT_LEADER, 1 - dst, b"", env.now)
            yield env.timeout(50)

    class _Photon:
        @staticmethod
        def buffer(size):
            return type("B", (), {"addr": 0})()

    node = type("N", (), {})()
    node.env = env
    node.hub = hub
    node.runtime = _Runtime()
    node.photon = _Photon()
    node.config = type("C", (), {"slot_size": 160})()
    node.shard_map = ShardMap(1, 2, rf=2)

    c = KVClient(node, client_id=1)
    out = {}

    def driver(e):
        t0 = e.now
        out["result"] = yield from c._get_rpc(b"bounce")
        out["elapsed"] = e.now - t0

    done = env.process(driver(env), name="kv.test.bounce")
    env.run(until=done)
    assert out["result"][0] == RESP_FAIL
    assert c.stats.redirects == c.max_attempts
    assert sends["n"] == c.max_attempts
    # without backoff 24 wire-speed hops take ~1 µs; with it the loop
    # spans well over a millisecond — longer than a leaderless window
    assert out["elapsed"] >= 1_000_000


# --------------------------------------------------------------------------
# observability: dead ranks in the merged snapshot
# --------------------------------------------------------------------------

def test_build_snapshot_tolerates_dead_ranks():
    cl = build_cluster(2, "ib-fdr", seed=31)
    ph = photon_init(cl)
    ph[1].crash_local()
    # a caller that nulls out the crashed slot
    snap = build_snapshot(cl, photons=[ph[0], None])
    assert snap["ranks"]["1"]["dead"] is True
    assert snap["ranks"]["1"]["photon"] is None
    assert "dead" not in snap["ranks"]["0"]
    # a caller that passes the crashed endpoint as-is
    snap2 = build_snapshot(cl, photons=[ph[0], ph[1]])
    assert snap2["ranks"]["1"]["dead"] is True
    json.dumps(snap)
    json.dumps(snap2)


# --------------------------------------------------------------------------
# golden-trace guard: the tenant is pay-for-what-you-build
# --------------------------------------------------------------------------

def test_golden_fingerprints_survive_kv_import():
    """With ``repro.kv`` imported (top of this module) but idle, the
    pinned R1/R4/R17 tables and the clean/lossy photon traces stay bit
    identical — no RNG draws, no scheduling, no counter writes."""
    assert _result_fingerprint(r1_latency.run(quick=True)) \
        == GOLDEN["r1_table"]
    assert _result_fingerprint(r4_ledger.run(quick=True)) \
        == GOLDEN["r4_table"]
    assert _result_fingerprint(r17_faults.run(quick=True)) \
        == GOLDEN["r17_table"]
    assert _trace_fingerprint(_photon_clean_workload()) \
        == GOLDEN["photon_clean_trace"]
    assert _trace_fingerprint(_photon_lossy_workload()) \
        == GOLDEN["photon_lossy_trace"]
