"""Leader failover under chaos: the acked-write survival contract.

One scenario, shared by every test here (module-scoped fixture): a
5-rank single-group store takes a client write burst while a chaos
schedule crashes the Raft leader mid-burst.  The phi-accrual detector
declares the death, the detection-driven fast election installs a new
leader, the client retries onto it with the same session uids, and the
suite asserts the whole contract:

* a new leader exists, and it is not the victim;
* the election lands within the phi detection budget plus the fast
  election delay (not the full election timeout);
* every acknowledged write is present on the new leader *and* on every
  surviving replica — audited uid by uid, the linearizability
  spot-check the issue asks for;
* surviving membership views stayed monotonic (the chaos invariant
  checker).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments.r20_kvstore import (DETECT_BUDGET_NS,
                                                 run_failover)
from repro.chaos.invariants import check_membership_monotonic


@pytest.fixture(scope="module")
def fo():
    return run_failover(quick=True)


def test_burst_made_progress_before_and_after_the_crash(fo):
    # every op in the burst was eventually acknowledged (retries are
    # exactly-once, so the count is exact, not a lower bound)
    assert fo["acked"] == fo["n_ops"]
    assert fo["acked"] > 0


def test_new_leader_is_elected_and_is_not_the_victim(fo):
    assert fo["t_new_leader"] is not None
    assert fo["new_leader"] != fo["leader_before"]


def test_election_within_the_detection_bound(fo):
    # crash -> new leader must be driven by detection (phi budget plus a
    # fast election), far under the idle election timeout
    assert fo["failover_ns"] is not None
    assert fo["failover_ns"] < 2 * DETECT_BUDGET_NS + 500_000
    detections = fo["detect_ns"]
    assert detections and max(detections) <= 2 * DETECT_BUDGET_NS


def test_zero_acked_write_loss_on_every_survivor(fo):
    assert fo["lost_on_new_leader"] == []
    assert fo["lost_per_survivor"]  # the audit actually covered replicas
    for rank, missing in fo["lost_per_survivor"].items():
        assert missing == [], f"rank {rank} lost acked writes {missing[:5]}"


def test_membership_monotonic_on_survivors(fo):
    for monitor in fo["survivor_monitors"]:
        check_membership_monotonic(monitor)
