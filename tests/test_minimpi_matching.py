"""Unit tests for the tag-matching engine (pure data structure)."""

from repro.minimpi import ANY_SOURCE, ANY_TAG, MatchEngine, PostedRecv, UnexpectedMsg


def posted(src, tag, rid=0):
    return PostedRecv(request=rid, src=src, tag=tag, addr=0, length=64)


def msg(src, tag, payload=b"x"):
    return UnexpectedMsg(src=src, tag=tag, payload=payload)


def test_exact_match():
    m = MatchEngine()
    m.post(posted(1, 5))
    assert m.match_arrival(1, 5) is not None
    assert m.match_arrival(1, 5) is None


def test_wildcard_source():
    m = MatchEngine()
    m.post(posted(ANY_SOURCE, 5))
    assert m.match_arrival(3, 5) is not None


def test_wildcard_tag():
    m = MatchEngine()
    m.post(posted(2, ANY_TAG))
    assert m.match_arrival(2, 99) is not None


def test_full_wildcard():
    m = MatchEngine()
    m.post(posted(ANY_SOURCE, ANY_TAG))
    assert m.match_arrival(7, 7) is not None


def test_no_match_wrong_tag():
    m = MatchEngine()
    m.post(posted(1, 5))
    assert m.match_arrival(1, 6) is None
    assert len(m.posted) == 1


def test_posted_order_preserved():
    m = MatchEngine()
    m.post(posted(1, 5, rid="first"))
    m.post(posted(1, 5, rid="second"))
    assert m.match_arrival(1, 5).request == "first"
    assert m.match_arrival(1, 5).request == "second"


def test_wildcard_does_not_steal_earlier_specific():
    """Posted order decides: the earliest matching recv wins."""
    m = MatchEngine()
    m.post(posted(2, 5, rid="specific"))
    m.post(posted(ANY_SOURCE, ANY_TAG, rid="wild"))
    assert m.match_arrival(2, 5).request == "specific"
    assert m.match_arrival(9, 9).request == "wild"


def test_unexpected_arrival_order():
    m = MatchEngine()
    m.add_unexpected(msg(1, 5, b"a"))
    m.add_unexpected(msg(1, 5, b"b"))
    assert m.match_posted(1, 5).payload == b"a"
    assert m.match_posted(1, 5).payload == b"b"


def test_unexpected_wildcard_recv():
    m = MatchEngine()
    m.add_unexpected(msg(3, 7))
    got = m.match_posted(ANY_SOURCE, ANY_TAG)
    assert got is not None and got.src == 3 and got.tag == 7


def test_peek_does_not_remove():
    m = MatchEngine()
    m.add_unexpected(msg(1, 1))
    assert m.peek_unexpected(1, 1) is not None
    assert m.peek_unexpected(1, 1) is not None
    assert m.match_posted(1, 1) is not None
    assert m.peek_unexpected(1, 1) is None


def test_rts_flag():
    rts = UnexpectedMsg(src=0, tag=0, payload=None, remote_addr=64,
                        remote_key=9, size=1 << 20, sreq=4)
    assert rts.is_rts
    assert not msg(0, 0).is_rts


def test_max_unexpected_highwater():
    m = MatchEngine()
    for i in range(5):
        m.add_unexpected(msg(0, i))
    m.match_posted(0, 0)
    m.add_unexpected(msg(0, 9))
    assert m.max_unexpected == 5
