"""Unit tests for runtime building blocks: actions, parcels, scheduler,
GAS addressing, LCO edge cases."""

import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.runtime import (
    ActionRegistry,
    AndGate,
    Future,
    Parcel,
    ReduceLCO,
    build_runtime,
    gas_allocate,
)
from repro.runtime.gas import GlobalAddressSpace
from repro.sim import SimulationError


# ---------------------------------------------------------------- actions


def test_registry_assigns_dense_ids():
    reg = ActionRegistry()
    a = reg.register("a", lambda *args: None)
    b = reg.register("b", lambda *args: None)
    assert (a, b) == (0, 1)
    assert reg.id_of("a") == 0
    assert reg.name_of(1) == "b"
    assert len(reg) == 2


def test_registry_duplicate_rejected():
    reg = ActionRegistry()
    reg.register("x", lambda *args: None)
    with pytest.raises(SimulationError):
        reg.register("x", lambda *args: None)


def test_registry_unknown_lookups_rejected():
    reg = ActionRegistry()
    with pytest.raises(SimulationError):
        reg.id_of("nope")
    with pytest.raises(SimulationError):
        reg.handler(0)


def test_registry_decorator_form():
    reg = ActionRegistry()

    @reg.action("decorated")
    def handler(rt, src, data):
        return None

    assert reg.id_of("decorated") == 0
    assert reg.handler(0) is handler


# ---------------------------------------------------------------- parcels


def test_parcel_empty_payload():
    p = Parcel(action=0, src=3, payload=b"")
    assert Parcel.decode(p.encode()) == p


def test_parcel_trailing_garbage_ignored_by_size_field():
    p = Parcel(action=1, src=0, payload=b"abc")
    raw = p.encode() + b"JUNK"
    assert Parcel.decode(raw).payload == b"abc"


def test_parcel_truncated_payload_rejected():
    p = Parcel(action=1, src=0, payload=b"abcdef")
    with pytest.raises(SimulationError):
        Parcel.decode(p.encode()[:-2])


# ---------------------------------------------------------------- scheduler


def test_progress_returns_false_when_idle():
    cl = build_cluster(2)
    ph = photon_init(cl)
    reg = ActionRegistry()
    rts = build_runtime(cl, reg, "photon", photon=ph)

    def prog(env):
        busy = yield from rts[0].progress()
        return busy

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value is False


def test_local_queue_drains_before_wire():
    cl = build_cluster(2)
    ph = photon_init(cl)
    reg = ActionRegistry()
    order = []
    reg.register("n", lambda rt, src, data: order.append(data[0]))
    rts = build_runtime(cl, reg, "photon", photon=ph)

    def prog(env):
        yield from rts[0].send(0, "n", b"\x01")
        yield from rts[0].send(0, "n", b"\x02")
        yield from rts[0].process_n(2, timeout_ns=10 ** 10)

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert order == [1, 2]


def test_process_until_timeout_returns_false():
    cl = build_cluster(2)
    ph = photon_init(cl)
    reg = ActionRegistry()
    rts = build_runtime(cl, reg, "photon", photon=ph)

    def prog(env):
        ok = yield from rts[0].process_until(lambda: False,
                                             timeout_ns=500_000)
        return ok, env.now

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    ok, t = p.value
    assert not ok and t >= 500_000


# ---------------------------------------------------------------- GAS


def gas_fixture(n=4, total=64 * 1024, block=4096):
    cl = build_cluster(n)
    ph = photon_init(cl)
    return cl, ph, gas_allocate(ph, total=total, block_size=block)


def test_locate_straddle_rejected():
    cl, ph, gas = gas_fixture()
    with pytest.raises(SimulationError, match="straddles"):
        gas[0].locate(4090, 16)


def test_block_span_partitions_exactly():
    cl, ph, gas = gas_fixture()
    spans = gas[0].block_span(4090, 10000)
    assert sum(s for _, s in spans) == 10000
    assert spans[0] == (4090, 6)
    for addr, size in spans:
        # no piece straddles a block
        assert addr % 4096 + size <= 4096


def test_gas_alloc_invalid_params():
    cl = build_cluster(2)
    ph = photon_init(cl)
    with pytest.raises(SimulationError):
        gas_allocate(ph, total=0)


def test_gas_memput_pwc_straddle_rejected():
    cl, ph, gas = gas_fixture()
    scratch = ph[0].buffer(8192)

    def prog(env):
        yield from gas[0].memput_pwc(4090, bytes(100), scratch.addr,
                                     remote_cid=1)

    p = cl.env.process(prog(cl.env))
    with pytest.raises(SimulationError):
        cl.env.run(until=p)


# ---------------------------------------------------------------- LCOs


def test_andgate_over_arrival_rejected():
    g = AndGate(1)
    g.arrive()
    with pytest.raises(SimulationError):
        g.arrive()


def test_andgate_zero_is_immediately_ready():
    assert AndGate(0).ready


def test_reduce_lco_over_contribution_rejected():
    r = ReduceLCO(1, lambda a, b: a + b, 0)
    r.contribute(5)
    with pytest.raises(SimulationError):
        r.contribute(5)


def test_future_get_before_set_rejected():
    with pytest.raises(SimulationError):
        Future().get()
