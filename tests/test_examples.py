"""The examples must run end-to-end (they self-verify internally)."""

import runpy
import sys

import pytest


@pytest.mark.parametrize("script", [
    "examples/quickstart.py",
    "examples/halo_exchange.py",
    "examples/graph_traversal.py",
    "examples/work_stealing.py",
])
def test_example_runs(script, capsys):
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert "MISMATCH" not in out
    assert len(out) > 50


def test_bandwidth_sweep_module(capsys, monkeypatch):
    """Run the sweep example on a trimmed size list to keep CI fast."""
    sys.path.insert(0, "examples")
    try:
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "bandwidth_sweep", "examples/bandwidth_sweep.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        monkeypatch.setattr(mod, "SIZES", [4096, 65536])
        mod.main()
        out = capsys.readouterr().out
        assert "photon put stream" in out
        assert "Gbit/s" in out
    finally:
        sys.path.remove("examples")
