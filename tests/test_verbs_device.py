"""Unit tests for the verbs device layer: contexts, PDs, directory, MRs."""

import pytest

from repro.cluster import build_cluster
from repro.verbs import (
    Access,
    ProtectionError,
    VerbsError,
)
from repro.verbs.device import Directory


def test_directory_registers_contexts_once():
    cl = build_cluster(3)
    assert cl.directory.n == 3
    assert cl.directory.lookup(2) is cl[2].context
    with pytest.raises(VerbsError):
        cl.directory.lookup(9)


def test_directory_duplicate_rank_rejected():
    d = Directory()

    class Fake:
        rank = 0

    d.register(Fake())
    with pytest.raises(VerbsError):
        d.register(Fake())


def test_pd_find_local_respects_permissions():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    addr = cl[0].memory.alloc(4096)
    ctx.reg_mr_sync(pd, addr, 4096, Access.REMOTE_READ)
    # readable MR found with no permission requirement
    assert pd.find_local(addr, 64) is not None
    # but not as a LOCAL_WRITE target
    with pytest.raises(ProtectionError):
        pd.find_local(addr, 64, Access.LOCAL_WRITE)


def test_pd_find_local_unregistered_range_rejected():
    cl = build_cluster(2)
    pd = cl[0].context.alloc_pd()
    with pytest.raises(ProtectionError):
        pd.find_local(12345, 8)


def test_mr_keys_unique_per_context():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    a = cl[0].memory.alloc(4096)
    b = cl[0].memory.alloc(4096)
    mr1 = ctx.reg_mr_sync(pd, a, 4096)
    mr2 = ctx.reg_mr_sync(pd, b, 4096)
    assert mr1.rkey != mr2.rkey


def test_check_remote_validates_permission_and_range():
    cl = build_cluster(2)
    ctx = cl[1].context
    pd = ctx.alloc_pd()
    addr = cl[1].memory.alloc(4096)
    mr = ctx.reg_mr_sync(pd, addr, 4096, Access.REMOTE_WRITE)
    assert ctx.check_remote(mr.rkey, addr, 64, Access.REMOTE_WRITE) is mr
    with pytest.raises(ProtectionError):
        ctx.check_remote(mr.rkey, addr, 64, Access.REMOTE_ATOMIC)
    with pytest.raises(ProtectionError):
        ctx.check_remote(mr.rkey, addr + 4090, 64, Access.REMOTE_WRITE)
    with pytest.raises(ProtectionError):
        ctx.check_remote(999999, addr, 64, Access.REMOTE_WRITE)


def test_mr_zero_length_rejected():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    addr = cl[0].memory.alloc(64)
    with pytest.raises(ProtectionError):
        ctx.reg_mr_sync(pd, addr, 0)


def test_mr_registration_pins_pages():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    addr = cl[0].memory.alloc(8192, align=4096)
    before = cl[0].memory.pinned_pages
    ctx.reg_mr_sync(pd, addr, 8192)
    assert cl[0].memory.pinned_pages == before + 2


def test_mr_local_read_write_helpers():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    addr = cl[0].memory.alloc(64)
    mr = ctx.reg_mr_sync(pd, addr, 64, Access.ALL)
    mr.write(addr, b"abc")
    assert mr.read(addr, 3) == b"abc"
    with pytest.raises(ProtectionError):
        mr.read(addr + 62, 8)  # out of range


def test_mr_write_needs_local_write():
    cl = build_cluster(2)
    ctx = cl[0].context
    pd = ctx.alloc_pd()
    addr = cl[0].memory.alloc(64)
    mr = ctx.reg_mr_sync(pd, addr, 64, Access.REMOTE_READ)
    with pytest.raises(ProtectionError):
        mr.write(addr, b"no")
