"""Integration tests for Photon's rendezvous messaging and os_put/get."""

import pytest

from repro.cluster import build_cluster
from repro.photon import ANY, photon_init
from repro.photon.request import RequestKind, RequestState
from repro.sim import SimulationError

TIMEOUT = 100_000_000


def setup(n=2, **kw):
    cl = build_cluster(n, **kw)
    ph = photon_init(cl)
    return cl, ph


def run_all(cl, procs):
    return cl.env.run(until=cl.env.all_of(procs))


# ------------------------------------------------------------- os put/get


def test_os_put_wait():
    cl, ph = setup()
    src = ph[0].buffer(1024)
    dst = ph[1].buffer(1024)
    cl[0].memory.write(src.addr, b"q" * 1024)

    def prog(env):
        rid = yield from ph[0].post_os_put(1, src.addr, 1024, dst.addr,
                                           dst.rkey)
        assert not ph[0].test(rid)
        ok = yield from ph[0].wait(rid, timeout_ns=TIMEOUT)
        info = ph[0].request_info(rid)
        ph[0].free_request(rid)
        return ok, info.kind

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    ok, kind = p.value
    assert ok and kind is RequestKind.OS_PUT
    assert cl[1].memory.read(dst.addr, 1024) == b"q" * 1024


def test_os_get_wait():
    cl, ph = setup()
    local = ph[0].buffer(2048)
    remote = ph[1].buffer(2048)
    cl[1].memory.write(remote.addr, b"G" * 2048)

    def prog(env):
        rid = yield from ph[0].post_os_get(1, local.addr, 2048, remote.addr,
                                           remote.rkey)
        yield from ph[0].wait(rid, timeout_ns=TIMEOUT)
        return rid

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert cl[0].memory.read(local.addr, 2048) == b"G" * 2048


def test_wait_all_multiple_requests():
    cl, ph = setup()
    src = ph[0].buffer(4096)
    dst = ph[1].buffer(4096)

    def prog(env):
        rids = []
        for i in range(4):
            rid = yield from ph[0].post_os_put(
                1, src.addr + i * 64, 64, dst.addr + i * 64, dst.rkey)
            rids.append(rid)
        ok = yield from ph[0].wait_all(rids, timeout_ns=TIMEOUT)
        return ok

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value


def test_free_unknown_request_rejected():
    cl, ph = setup()
    with pytest.raises(SimulationError):
        ph[0].free_request(12345)


# ------------------------------------------------------------- rendezvous


def test_rendezvous_send_recv_roundtrip():
    cl, ph = setup()
    size = 256 * 1024  # far beyond eager
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    cl[0].memory.write(src.addr, bytes(range(256)) * 1024)

    def sender(env):
        rid = yield from ph[0].send_rdma(1, src.addr, size, tag=7)
        ok = yield from ph[0].wait(rid, timeout_ns=TIMEOUT)
        return ok, env.now

    def receiver(env):
        info = yield from ph[1].wait_recv_info(src=0, tag=7,
                                               timeout_ns=TIMEOUT)
        assert info is not None and info.size == size
        n = yield from ph[1].recv_rdma(info, dst.addr)
        return n, env.now

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert bool(p0.value[0])  # TimeoutStatus.OK is truthy
    assert p1.value[0] == size
    assert cl[1].memory.read(dst.addr, size) == bytes(range(256)) * 1024
    # sender's FIN arrives after receiver finished the get
    assert p0.value[1] >= p1.value[1]


def test_rendezvous_tag_matching():
    """Receiver can pick a specific tag among several advertisements."""
    cl, ph = setup()
    a = ph[0].buffer(4096)
    b = ph[0].buffer(4096)
    dst = ph[1].buffer(8192)
    cl[0].memory.write(a.addr, b"A" * 4096)
    cl[0].memory.write(b.addr, b"B" * 4096)

    def sender(env):
        r1 = yield from ph[0].send_rdma(1, a.addr, 4096, tag=1)
        r2 = yield from ph[0].send_rdma(1, b.addr, 4096, tag=2)
        yield from ph[0].wait_all([r1, r2], timeout_ns=TIMEOUT)

    def receiver(env):
        info2 = yield from ph[1].wait_recv_info(src=0, tag=2,
                                                timeout_ns=TIMEOUT)
        yield from ph[1].recv_rdma(info2, dst.addr)
        info1 = yield from ph[1].wait_recv_info(src=0, tag=1,
                                                timeout_ns=TIMEOUT)
        yield from ph[1].recv_rdma(info1, dst.addr + 4096)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert cl[1].memory.read(dst.addr, 4096) == b"B" * 4096
    assert cl[1].memory.read(dst.addr + 4096, 4096) == b"A" * 4096


def test_wildcard_recv_info():
    cl, ph = setup(n=3)
    src = ph[2].buffer(1024)

    def sender(env):
        rid = yield from ph[2].send_rdma(0, src.addr, 1024, tag=9)
        yield from ph[2].wait(rid, timeout_ns=TIMEOUT)

    def receiver(env):
        info = yield from ph[0].wait_recv_info(src=ANY, tag=ANY,
                                               timeout_ns=TIMEOUT)
        dst = ph[0].buffer(1024)
        yield from ph[0].recv_rdma(info, dst.addr)
        return info.src, info.tag

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value == (2, 9)


def test_send_msg_picks_eager_for_small():
    cl, ph = setup()

    def sender(env):
        yield from ph[0].send_msg(1, b"tiny", tag=3)

    def receiver(env):
        m = yield from ph[1].recv_msg(src=0, tag=3, timeout_ns=TIMEOUT)
        return m

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value == (0, 3, b"tiny")
    assert cl.counters.get("photon.eager_msgs") == 1
    assert cl.counters.get("photon.rendezvous_sends") == 0


def test_send_msg_picks_rendezvous_for_large():
    cl, ph = setup()
    big = bytes(64) * 1024  # 64 KiB
    s_scratch = ph[0].buffer(len(big))
    r_scratch = ph[1].buffer(len(big))

    def sender(env):
        yield from ph[0].send_msg(1, big, tag=4, scratch_addr=s_scratch.addr)

    def receiver(env):
        m = yield from ph[1].recv_msg(src=0, tag=4,
                                      scratch_addr=r_scratch.addr,
                                      timeout_ns=TIMEOUT)
        return m

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    src, tag, data = p1.value
    assert (src, tag) == (0, 4)
    assert data == big
    assert cl.counters.get("photon.rendezvous_sends") == 1


def test_send_msg_large_without_scratch_rejected():
    cl, ph = setup()

    def sender(env):
        yield from ph[0].send_msg(1, bytes(100_000), tag=1)

    p = cl.env.process(sender(cl.env))
    with pytest.raises(SimulationError, match="scratch"):
        run_all(cl, [p])


def test_self_send_msg_roundtrip():
    cl, ph = setup()
    big = b"x" * 50_000
    scratch = ph[0].buffer(len(big))

    def prog(env):
        yield from ph[0].send_msg(0, big, tag=5, scratch_addr=scratch.addr)
        m = yield from ph[0].recv_msg(src=0, tag=5, timeout_ns=TIMEOUT)
        return m

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value == (0, 5, big)


def test_rendezvous_faster_than_two_eager_copies_for_large():
    """Rendezvous get is zero-copy: one wire traversal at full bandwidth."""
    cl, ph = setup()
    size = 1 << 20
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)

    def sender(env):
        rid = yield from ph[0].send_rdma(1, src.addr, size, tag=1)
        yield from ph[0].wait(rid, timeout_ns=TIMEOUT)

    def receiver(env):
        info = yield from ph[1].wait_recv_info(src=0, tag=1,
                                               timeout_ns=TIMEOUT)
        t0 = env.now
        yield from ph[1].recv_rdma(info, dst.addr)
        return env.now - t0

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    # 1 MiB at 54 Gbit/s ~ 155 us; allow protocol overhead up to 2x
    assert p1.value < 400_000
