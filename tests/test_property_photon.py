"""Property-based tests for Photon data structures and end-to-end paths."""

from hypothesis import given, settings, strategies as st

from repro.cluster import build_cluster
from repro.fabric import IB_FDR, Memory
from repro.photon import photon_init
from repro.photon.ledger import LocalRing, RemoteRing, RingSpec
from repro.photon.wire import (
    COMPLETION_ENTRY_SIZE,
    CompletionEntry,
    EagerHeader,
    FinEntry,
    InfoEntry,
)


# ---------------------------------------------------------------- wire


@given(seq=st.integers(min_value=0, max_value=2 ** 64 - 1),
       cid=st.integers(min_value=0, max_value=2 ** 64 - 1),
       src=st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_completion_entry_roundtrip_property(seq, cid, src):
    e = CompletionEntry(seq=seq, cid=cid, src=src)
    assert CompletionEntry.unpack(e.pack()) == e


@given(seq=st.integers(min_value=0, max_value=2 ** 64 - 1),
       req=st.integers(min_value=0, max_value=2 ** 64 - 1),
       tag=st.integers(min_value=0, max_value=2 ** 63 - 1),
       addr=st.integers(min_value=0, max_value=2 ** 63 - 1),
       size=st.integers(min_value=0, max_value=2 ** 63 - 1),
       rkey=st.integers(min_value=0, max_value=2 ** 63 - 1),
       src=st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_info_entry_roundtrip_property(seq, req, tag, addr, size, rkey, src):
    e = InfoEntry(seq=seq, req=req, tag=tag, addr=addr, size=size,
                  rkey=rkey, src=src)
    assert InfoEntry.unpack(e.pack()) == e


@given(seq=st.integers(min_value=0, max_value=2 ** 64 - 1),
       req=st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_fin_entry_roundtrip_property(seq, req):
    e = FinEntry(seq=seq, req=req)
    assert FinEntry.unpack(e.pack()) == e


# ---------------------------------------------------------------- rings


@given(nslots=st.integers(min_value=2, max_value=32),
       ops=st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=50)
def test_ring_produced_consumed_invariant(nslots, ops):
    """Random interleavings of produce/consume never violate
    0 <= produced - consumed <= nslots, and sequences stay dense."""
    mem = Memory(1 << 18, IB_FDR.host)
    spec = RingSpec("p", nslots, COMPLETION_ENTRY_SIZE)
    base = mem.alloc(spec.nbytes)
    staging = mem.alloc(spec.nbytes)
    credit = mem.alloc(8)
    prod = RemoteRing(spec, base, 1, staging, credit, mem)
    cons = LocalRing(spec, base, mem, credit, 1, 0.5)
    seen = []
    for do_produce in ops:
        if do_produce:
            if prod.available() > 0:
                seq, _, remote = prod.claim()
                mem.write(remote, CompletionEntry(seq, seq, 0).pack())
        else:
            if cons.ready():
                seen.append(CompletionEntry.unpack(cons.read_head()).seq)
                cons.advance()
                # credit returned instantly in this model
                mem.write_u64(credit, cons.consumed)
        gap = prod.produced - cons.consumed
        assert 0 <= gap <= nslots
    assert seen == list(range(1, len(seen) + 1))


# ---------------------------------------------------------------- end-to-end


@settings(max_examples=15, deadline=None)
@given(payloads=st.lists(st.binary(min_size=0, max_size=2048),
                         min_size=1, max_size=15),
       seed=st.integers(min_value=0, max_value=100))
def test_eager_messages_arrive_intact_in_order(payloads, seed):
    """Any sequence of eager payloads arrives intact, in order."""
    cl = build_cluster(2, seed=seed)
    ph = photon_init(cl)
    received = []

    def sender(env):
        for i, p in enumerate(payloads):
            yield from ph[0].send_pwc(1, p, remote_cid=i)

    def receiver(env):
        while len(received) < len(payloads):
            m = yield from ph[1].wait_message(timeout_ns=10 ** 12)
            received.append(m)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert [m[1] for m in received] == list(range(len(payloads)))
    assert [m[2] for m in received] == [bytes(p) for p in payloads]


@settings(max_examples=15, deadline=None)
@given(spans=st.lists(
    st.tuples(st.integers(min_value=0, max_value=4000),
              st.integers(min_value=1, max_value=96)),
    min_size=1, max_size=10))
def test_random_put_sequences_preserve_memory_contents(spans):
    """Arbitrary (offset, size) puts produce exactly the same bytes at the
    target as a local mirror of the writes."""
    cl = build_cluster(2)
    ph = photon_init(cl)
    src = ph[0].buffer(8192)
    dst = ph[1].buffer(8192)
    mirror = bytearray(8192)
    pattern = bytes((i * 13 + 7) & 0xFF for i in range(8192))
    cl[0].memory.write(src.addr, pattern)

    def prog(env):
        for i, (off, size) in enumerate(spans):
            size = min(size, 8192 - off)
            mirror[off:off + size] = pattern[off:off + size]
            yield from ph[0].put_pwc(1, src.addr + off, size,
                                     dst.addr + off, dst.rkey,
                                     local_cid=i)
            c = yield from ph[0].wait_completion("local",
                                                 timeout_ns=10 ** 12)
            assert c is not None

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert cl[1].memory.read(dst.addr, 8192) == bytes(mirror)


@settings(max_examples=10, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=100_000),
                      min_size=1, max_size=5))
def test_rendezvous_any_size_intact(sizes):
    cl = build_cluster(2)
    ph = photon_init(cl)
    total = sum(sizes)
    src = ph[0].buffer(max(total, 8))
    dst = ph[1].buffer(max(max(sizes), 8))
    blob = bytes((i * 31 + 5) & 0xFF for i in range(total))
    cl[0].memory.write(src.addr, blob)

    def sender(env):
        off = 0
        rids = []
        for i, size in enumerate(sizes):
            rid = yield from ph[0].send_rdma(1, src.addr + off, size, tag=i)
            rids.append(rid)
            off += size
        yield from ph[0].wait_all(rids, timeout_ns=10 ** 12)

    got = []

    def receiver(env):
        for i, size in enumerate(sizes):
            info = yield from ph[1].wait_recv_info(src=0, tag=i,
                                                   timeout_ns=10 ** 12)
            yield from ph[1].recv_rdma(info, dst.addr)
            # read_bytes: dst is reused for every message, so each retained
            # payload needs an owned snapshot
            got.append(cl[1].memory.read_bytes(dst.addr, size))

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    off = 0
    for size, data in zip(sizes, got):
        assert data == blob[off:off + size]
        off += size
