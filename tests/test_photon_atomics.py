"""Tests for Photon remote atomics and endpoint telemetry."""

import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.sim import SimulationError

TIMEOUT = 10_000_000_000


def setup(n=2):
    cl = build_cluster(n)
    ph = photon_init(cl)
    return cl, ph


def run_all(cl, procs):
    return cl.env.run(until=cl.env.all_of(procs))


def test_fetch_add_returns_old_value():
    cl, ph = setup()
    tgt = ph[1].buffer(64)
    cl[1].memory.write_u64(tgt.addr, 100)

    def prog(env):
        old = yield from ph[0].fetch_add_blocking(1, tgt.addr, tgt.rkey, 5)
        return old

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value == 100
    assert cl[1].memory.read_u64(tgt.addr) == 105


def test_atomic_fadd_with_cid_and_result_lookup():
    cl, ph = setup()
    tgt = ph[1].buffer(8)
    cl[1].memory.write_u64(tgt.addr, 7)

    def prog(env):
        yield from ph[0].atomic_fadd(1, tgt.addr, tgt.rkey, 3,
                                     local_cid=99)
        c = yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        return c, ph[0].atomic_result(99)

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    c, old = p.value
    assert c.cid == 99 and old == 7
    assert cl[1].memory.read_u64(tgt.addr) == 10


def test_atomic_cswap_success_and_failure():
    cl, ph = setup()
    tgt = ph[1].buffer(8)
    cl[1].memory.write_u64(tgt.addr, 1)

    def prog(env):
        yield from ph[0].atomic_cswap(1, tgt.addr, tgt.rkey,
                                      compare=1, swap=50, local_cid=1)
        yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        first = ph[0].atomic_result(1)
        yield from ph[0].atomic_cswap(1, tgt.addr, tgt.rkey,
                                      compare=1, swap=99, local_cid=2)
        yield from ph[0].wait_completion("local", timeout_ns=TIMEOUT)
        second = ph[0].atomic_result(2)
        return first, second

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value == (1, 50)  # second compare failed, old value returned
    assert cl[1].memory.read_u64(tgt.addr) == 50


def test_concurrent_atomics_from_many_ranks_never_lose_updates():
    cl, ph = setup(n=4)
    tgt = ph[0].buffer(8)
    cl[0].memory.write_u64(tgt.addr, 0)

    def prog(env, rank):
        for _ in range(10):
            yield from ph[rank].fetch_add_blocking(0, tgt.addr, tgt.rkey, 1)

    procs = [cl.env.process(prog(cl.env, r)) for r in (1, 2, 3)]
    run_all(cl, procs)
    assert cl[0].memory.read_u64(tgt.addr) == 30


def test_self_atomic():
    cl, ph = setup()
    tgt = ph[0].buffer(8)
    cl[0].memory.write_u64(tgt.addr, 11)

    def prog(env):
        old = yield from ph[0].fetch_add_blocking(0, tgt.addr, tgt.rkey, 4)
        return old

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value == 11
    assert cl[0].memory.read_u64(tgt.addr) == 15


def test_atomic_result_unknown_cid_rejected():
    cl, ph = setup()
    with pytest.raises(SimulationError, match="atomic result"):
        ph[0].atomic_result(12345)


def test_distributed_counter_pattern():
    """The runtime pattern atomics exist for: a global ticket counter."""
    cl, ph = setup(n=3)
    counter = ph[0].buffer(8)
    tickets = {1: [], 2: []}

    def prog(env, rank):
        for _ in range(5):
            t = yield from ph[rank].fetch_add_blocking(
                0, counter.addr, counter.rkey, 1)
            tickets[rank].append(t)

    procs = [cl.env.process(prog(cl.env, r)) for r in (1, 2)]
    run_all(cl, procs)
    allt = sorted(tickets[1] + tickets[2])
    assert allt == list(range(10))  # unique, dense tickets


def test_stats_snapshot():
    cl, ph = setup()
    tgt = ph[1].buffer(64)

    def prog(env):
        yield from ph[0].put_pwc(1, 0, 0, tgt.addr, tgt.rkey, remote_cid=1)
        yield from ph[0]._progress_once()

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    s = ph[0].stats()
    assert s["rank"] == 0
    assert "1" in s["outstanding_by_peer"]
    assert 0.0 <= s["rcache"]["hit_rate"] <= 1.0
    assert all(v >= 0
               for rings in s["ledger_credits"].values()
               for v in rings.values())
    # the whole snapshot must be JSON-clean (string keys throughout)
    import json
    json.dumps(s)
    r1 = ph[1].stats()
    assert r1["rank"] == 1
