"""Integration tests for the NIC + link + topology pipeline."""

import pytest

from repro.fabric import IB_FDR, Memory, Nic, Star, WireMsg
from repro.sim import Counters, Environment
from repro.util import MiB, serialization_ns, to_gbps


def build(n=2, params=IB_FDR, mem_size=8 * MiB):
    env = Environment()
    counters = Counters()
    topo = Star(env, n, params.link, counters)
    mems = [Memory(mem_size, params.host, rank=r) for r in range(n)]
    nics = [Nic(env, r, params, mems[r], topo, counters) for r in range(n)]
    return env, topo, mems, nics, counters


def put_msg(mems, src, dst, data, dst_addr, on_delivered=None,
            on_acked=None, ack=False):
    """Build an RDMA-write-style message placing bytes at dst_addr."""
    return WireMsg(
        src=src, dst=dst, nbytes=len(data), kind="write",
        fetch=lambda off, size, d=data: d[off:off + size],
        place=lambda off, chunk, m=mems[dst], a=dst_addr: m.write(a + off, chunk),
        on_delivered=on_delivered, on_acked=on_acked, ack=ack)


def test_write_places_bytes_at_destination():
    env, topo, mems, nics, _ = build()
    dst_addr = mems[1].alloc(64)
    payload = bytes(range(64))
    done = []
    msg = put_msg(mems, 0, 1, payload, dst_addr,
                  on_delivered=lambda nic, m: done.append(env.now))
    nics[0].transmit(msg)
    env.run()
    assert mems[1].read(dst_addr, 64) == payload
    assert len(done) == 1


def test_small_write_latency_in_realistic_band():
    """A 64B write on IB-FDR should land in roughly 0.5-2.5 us."""
    env, topo, mems, nics, _ = build()
    dst_addr = mems[1].alloc(64)
    done = []
    msg = put_msg(mems, 0, 1, b"x" * 64, dst_addr,
                  on_delivered=lambda nic, m: done.append(env.now))
    nics[0].transmit(msg)
    env.run()
    assert 500 <= done[0] <= 2500


def test_ack_fires_after_delivery():
    env, topo, mems, nics, _ = build()
    dst_addr = mems[1].alloc(8)
    times = {}
    msg = put_msg(mems, 0, 1, b"12345678", dst_addr,
                  on_delivered=lambda nic, m: times.setdefault("del", env.now),
                  on_acked=lambda: times.setdefault("ack", env.now),
                  ack=True)
    nics[0].transmit(msg)
    env.run()
    assert times["ack"] > times["del"]
    # ack delay = return path latency + ack overhead
    expected = (topo.path_latency_ns(1, 0) + IB_FDR.nic.ack_overhead_ns)
    assert times["ack"] - times["del"] == expected


def test_large_transfer_achieves_near_link_bandwidth():
    env, topo, mems, nics, _ = build()
    size = 4 * MiB
    dst_addr = mems[1].alloc(size)
    payload = bytes(size)
    done = []
    msg = put_msg(mems, 0, 1, payload, dst_addr,
                  on_delivered=lambda nic, m: done.append(env.now))
    nics[0].transmit(msg)
    env.run()
    gbps = to_gbps(size, done[0])
    # within 70%..101% of the nominal 54 Gbit/s link
    assert 0.70 * IB_FDR.link.bandwidth_gbps <= gbps <= 1.01 * IB_FDR.link.bandwidth_gbps


def test_zero_byte_message_delivers():
    env, topo, mems, nics, _ = build()
    seen = []
    msg = WireMsg(src=0, dst=1, nbytes=0, kind="ctrl",
                  on_delivered=lambda nic, m: seen.append(m.kind))
    nics[0].transmit(msg)
    env.run()
    assert seen == ["ctrl"]


def test_send_style_message_buffers_payload():
    env, topo, mems, nics, _ = build()
    payload = b"two-sided payload bytes!" * 10
    got = []
    msg = WireMsg(src=0, dst=1, nbytes=len(payload), kind="send",
                  inline_data=payload,
                  on_delivered=lambda nic, m: got.append(m.collect_rx()))
    nics[0].transmit(msg)
    env.run()
    assert got == [payload]


def test_loopback_transfer():
    env, topo, mems, nics, _ = build()
    src = mems[0].alloc(32)
    dst = mems[0].alloc(32)
    mems[0].write(src, b"B" * 32)
    done = []
    msg = WireMsg(
        src=0, dst=0, nbytes=32, kind="write",
        fetch=lambda off, size: mems[0].read(src + off, size),
        place=lambda off, chunk: mems[0].write(dst + off, chunk),
        on_delivered=lambda nic, m: done.append(env.now),
        on_acked=lambda: done.append(env.now), ack=True)
    nics[0].transmit(msg)
    env.run()
    assert mems[0].read(dst, 32) == b"B" * 32
    assert len(done) == 2


def test_messages_delivered_in_fifo_order():
    env, topo, mems, nics, _ = build()
    order = []
    for i in range(8):
        dst_addr = mems[1].alloc(16)
        msg = put_msg(mems, 0, 1, bytes([i]) * 16, dst_addr,
                      on_delivered=lambda nic, m, i=i: order.append(i))
        nics[0].transmit(msg)
    env.run()
    assert order == list(range(8))


def test_responder_path_does_not_use_requester_queue():
    """Responder messages are transmitted even when queued from ingress
    context (READ responses)."""
    env, topo, mems, nics, _ = build()
    # rank 0 asks rank 1 for data via a ctrl msg; rank 1's NIC responds.
    src_data = mems[1].alloc(128)
    mems[1].write(src_data, b"R" * 128)
    landing = mems[0].alloc(128)
    got = []

    def on_request(nic, m):
        resp = WireMsg(
            src=1, dst=0, nbytes=128, kind="read_resp",
            fetch=lambda off, size: mems[1].read(src_data + off, size),
            place=lambda off, chunk: mems[0].write(landing + off, chunk),
            on_delivered=lambda n2, m2: got.append(env.now))
        nic.respond(resp)

    req = WireMsg(src=0, dst=1, nbytes=0, kind="read_req",
                  on_delivered=on_request)
    nics[0].transmit(req)
    env.run()
    assert mems[0].read(landing, 128) == b"R" * 128
    assert len(got) == 1


def test_incast_contention_slows_delivery():
    """Two senders to one receiver share the victim downlink."""
    size = 256 * 1024
    # solo run
    env, topo, mems, nics, _ = build(n=3)
    addr = mems[2].alloc(2 * size)
    solo_done = []
    nics[0].transmit(put_msg(mems, 0, 2, bytes(size), addr,
                             on_delivered=lambda n, m: solo_done.append(env.now)))
    env.run()
    solo = solo_done[0]

    # incast run
    env, topo, mems, nics, _ = build(n=3)
    addr = mems[2].alloc(2 * size)
    done = []
    nics[0].transmit(put_msg(mems, 0, 2, bytes(size), addr,
                             on_delivered=lambda n, m: done.append(env.now)))
    nics[1].transmit(put_msg(mems, 1, 2, bytes(size), addr + size,
                             on_delivered=lambda n, m: done.append(env.now)))
    env.run()
    # the later finisher should be markedly slower than the solo transfer
    assert max(done) > 1.5 * solo


def test_counters_track_traffic():
    env, topo, mems, nics, counters = build()
    dst_addr = mems[1].alloc(1024)
    nics[0].transmit(put_msg(mems, 0, 1, bytes(1024), dst_addr))
    env.run()
    assert counters.get("nic.tx_msgs") == 1
    assert counters.get("nic.tx_bytes") == 1024
    assert counters.get("nic.rx_msgs") == 1
