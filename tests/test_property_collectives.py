"""Property-based tests: photon collectives against numpy oracles, and
kernel condition-failure propagation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.sim import AllOf, AnyOf, Environment


# ------------------------------------------------------- collectives oracle


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_allreduce_matches_numpy_oracle(data):
    n = data.draw(st.integers(min_value=2, max_value=5))
    op = data.draw(st.sampled_from(["sum", "min", "max"]))
    elems = data.draw(st.integers(min_value=1, max_value=32))
    dtype = data.draw(st.sampled_from([np.int64, np.float64]))
    values = [data.draw(st.lists(
        st.integers(min_value=-10 ** 6, max_value=10 ** 6),
        min_size=elems, max_size=elems)) for _ in range(n)]

    cl = build_cluster(n)
    ph = photon_init(cl)
    results = []

    def body(rank):
        arr = np.array(values[rank], dtype=dtype)
        out = yield from ph[rank].allreduce(arr, op)
        results.append(out)

    procs = [cl.env.process(body(r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    stack = np.array(values, dtype=dtype)
    oracle = {"sum": stack.sum(axis=0),
              "min": stack.min(axis=0),
              "max": stack.max(axis=0)}[op]
    for out in results:
        np.testing.assert_array_equal(out, oracle)
        assert out.dtype == dtype


@settings(max_examples=8, deadline=None)
@given(n=st.integers(min_value=2, max_value=5),
       blob_len=st.integers(min_value=0, max_value=64),
       seed=st.integers(min_value=0, max_value=20))
def test_allgather_property(n, blob_len, seed):
    cl = build_cluster(n, seed=seed)
    ph = photon_init(cl)
    results = []

    def body(rank):
        out = yield from ph[rank].allgather(bytes([rank % 256]) * blob_len)
        results.append(out)

    procs = [cl.env.process(body(r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    expected = [bytes([r % 256]) * blob_len for r in range(n)]
    for out in results:
        assert out == expected


# ------------------------------------------------------- kernel conditions


def test_allof_fails_if_member_fails():
    env = Environment()
    good = env.timeout(10)
    bad = env.event()

    def failer(env):
        yield env.timeout(5)
        bad.fail(ValueError("member failed"))

    def waiter(env):
        try:
            yield AllOf(env, [good, bad])
        except ValueError as exc:
            return f"caught {exc}"

    env.process(failer(env))
    p = env.process(waiter(env))
    env.run()
    assert p.value == "caught member failed"


def test_anyof_success_beats_later_failure():
    env = Environment()
    fast = env.timeout(1, value="fast")
    slow_fail = env.event()

    def failer(env):
        yield env.timeout(100)
        if not slow_fail.triggered:
            slow_fail.fail(RuntimeError("late"))

    def waiter(env):
        results = yield AnyOf(env, [fast, slow_fail])
        return [v for _, v in results]

    env.process(failer(env))
    p = env.process(waiter(env))
    # the already-satisfied condition absorbs the late failure (its stale
    # callback observes and ignores it), so the run completes cleanly
    env.run()
    assert p.value == ["fast"]


@settings(max_examples=30)
@given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                       min_size=1, max_size=10))
def test_allof_completes_at_max_delay(delays):
    env = Environment()

    def prog(env):
        events = [env.timeout(d) for d in delays]
        yield AllOf(env, events)
        return env.now

    p = env.process(prog(env))
    env.run()
    assert p.value == max(delays)


@settings(max_examples=30)
@given(delays=st.lists(st.integers(min_value=1, max_value=1000),
                       min_size=1, max_size=10))
def test_anyof_completes_at_min_delay(delays):
    env = Environment()

    def prog(env):
        events = [env.timeout(d) for d in delays]
        yield AnyOf(env, events)
        return env.now

    p = env.process(prog(env))
    env.run()
    assert p.value == min(delays)
