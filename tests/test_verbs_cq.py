"""Unit tests for completion queues and verbs enums."""

import pytest

from repro.sim import Environment
from repro.verbs import (
    Access,
    CompletionQueue,
    QueueFullError,
    WCOpcode,
    WCStatus,
    WorkCompletion,
)


def wc(wr_id=1):
    return WorkCompletion(wr_id=wr_id, opcode=WCOpcode.SEND)


def test_push_poll_fifo():
    env = Environment()
    cq = CompletionQueue(env)
    for i in range(5):
        cq.push(wc(i))
    got = cq.poll(max_entries=3)
    assert [w.wr_id for w in got] == [0, 1, 2]
    got = cq.poll()
    assert [w.wr_id for w in got] == [3, 4]
    assert list(cq.poll()) == []


def test_len_tracks_entries():
    env = Environment()
    cq = CompletionQueue(env)
    cq.push(wc())
    assert len(cq) == 1
    cq.poll()
    assert len(cq) == 0


def test_overrun_raises_and_counts():
    env = Environment()
    cq = CompletionQueue(env, capacity=2)
    cq.push(wc(1))
    cq.push(wc(2))
    with pytest.raises(QueueFullError):
        cq.push(wc(3))
    assert cq.overruns == 1


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(QueueFullError):
        CompletionQueue(env, capacity=0)


def test_wait_nonempty_fires_on_push():
    env = Environment()
    cq = CompletionQueue(env)

    def waiter(env):
        yield cq.wait_nonempty()
        return env.now

    def pusher(env):
        yield env.timeout(500)
        cq.push(wc())

    p = env.process(waiter(env))
    env.process(pusher(env))
    env.run()
    assert p.value == 500


def test_wait_nonempty_immediate_when_entries_present():
    env = Environment()
    cq = CompletionQueue(env)
    cq.push(wc())

    def waiter(env):
        yield cq.wait_nonempty()
        return env.now

    p = env.process(waiter(env))
    env.run()
    assert p.value == 0


def test_wc_ok_property():
    assert wc().ok
    bad = WorkCompletion(wr_id=1, opcode=WCOpcode.RECV,
                         status=WCStatus.LOC_LEN_ERR)
    assert not bad.ok


def test_wc_is_immutable():
    with pytest.raises(Exception):
        wc().wr_id = 5


def test_access_flags_compose():
    combo = Access.REMOTE_READ | Access.REMOTE_WRITE
    assert combo & Access.REMOTE_READ
    assert not (combo & Access.REMOTE_ATOMIC)
    assert Access.ALL & Access.LOCAL_WRITE
