"""Unit tests for repro.util (units, stats, formatting)."""

import math

import pytest

from repro.util import (
    KiB,
    MiB,
    Summary,
    format_series,
    format_size,
    format_table,
    gbps_to_bytes_per_ns,
    mean,
    median,
    percentile,
    serialization_ns,
    stddev,
    to_gbps,
    to_us,
    us,
)


# ---------------------------------------------------------------- units


def test_time_conversions():
    assert us(1.5) == 1500
    assert to_us(2500) == 2.5


def test_gbps_to_bytes_per_ns():
    assert gbps_to_bytes_per_ns(8.0) == 1.0  # 8 Gbit/s = 1 B/ns
    assert gbps_to_bytes_per_ns(56.0) == 7.0


def test_serialization_rounding_up():
    # 100 bytes at 8 Gbit/s = exactly 100 ns
    assert serialization_ns(100, 8.0) == 100
    # 1 byte on a fast link still costs at least 1 ns
    assert serialization_ns(1, 1000.0) == 1
    assert serialization_ns(0, 8.0) == 0


def test_to_gbps_inverse_of_serialization():
    ns = serialization_ns(1 * MiB, 54.0)
    # ceil-rounding in serialization_ns loses at most 1 ns
    assert to_gbps(1 * MiB, ns) == pytest.approx(54.0, rel=1e-5)


def test_to_gbps_zero_time():
    assert to_gbps(100, 0) == float("inf")


# ---------------------------------------------------------------- stats


def test_mean_median():
    assert mean([1, 2, 3]) == 2
    assert median([1, 2, 3, 4]) == 2.5


def test_mean_empty_rejected():
    with pytest.raises(ValueError):
        mean([])


def test_percentile_bounds():
    xs = list(range(101))
    assert percentile(xs, 0) == 0
    assert percentile(xs, 100) == 100
    assert percentile(xs, 50) == 50
    with pytest.raises(ValueError):
        percentile(xs, 101)


def test_percentile_interpolates():
    assert percentile([0, 10], 25) == 2.5


def test_stddev():
    assert stddev([5]) == 0.0
    assert stddev([2, 4]) == pytest.approx(math.sqrt(2))


def test_summary():
    s = Summary([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.min == 1.0 and s.max == 4.0
    assert "Summary" in repr(s)
    with pytest.raises(ValueError):
        Summary([])


# ---------------------------------------------------------------- fmt


def test_format_size():
    assert format_size(100) == "100B"
    assert format_size(KiB) == "1KiB"
    assert format_size(4 * KiB) == "4KiB"
    assert format_size(MiB) == "1MiB"
    assert format_size(1536) == "1.5KiB"


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["bb", 22.5]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert all(len(line) == len(lines[1].rstrip()) or True
               for line in lines)
    assert "22.50" in out


def test_format_table_bad_row_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_series_bars_scale():
    out = format_series("s", ["x", "y"], [1.0, 2.0], width=10)
    lines = out.splitlines()
    assert lines[0] == "s:"
    assert lines[2].count("#") == 10  # the max gets the full width
    assert lines[1].count("#") == 5


def test_format_series_mismatched_lengths():
    with pytest.raises(ValueError):
        format_series("s", ["x"], [1.0, 2.0])


def test_format_series_empty():
    assert "(empty)" in format_series("s", [], [])
