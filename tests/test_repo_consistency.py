"""Repository self-consistency: experiments ↔ benchmarks ↔ docs.

Keeps the deliverables honest: every registered experiment has a
benchmark target, is indexed in DESIGN.md, and has a measured table in
EXPERIMENTS.md — and no build artifact is ever committed.
"""

import os
import re
import subprocess

import pytest

from repro.bench.experiments import ALL


def test_every_experiment_has_a_benchmark_file():
    files = os.listdir("benchmarks")
    for key, module in ALL.items():
        suffix = module.__name__.rsplit(".", 1)[-1]  # e.g. r1_latency
        assert f"bench_{suffix}.py" in files, f"missing bench for {key}"


def test_every_benchmark_maps_to_an_experiment():
    suffixes = {m.__name__.rsplit(".", 1)[-1] for m in ALL.values()}
    for fname in os.listdir("benchmarks"):
        if fname.startswith("bench_") and fname.endswith(".py"):
            assert fname[len("bench_"):-3] in suffixes, fname


def test_design_indexes_every_experiment():
    text = open("DESIGN.md").read()
    for key in ALL:
        assert re.search(rf"\|\s*{key.upper()}\s*\|", text), \
            f"DESIGN.md experiment index misses {key.upper()}"


def test_experiments_md_has_every_table():
    text = open("EXPERIMENTS.md").read()
    for key in ALL:
        assert f"### {key.upper()} —" in text, \
            f"EXPERIMENTS.md misses a measured table for {key.upper()}"


def test_experiment_ids_match_registry_keys():
    for key, module in ALL.items():
        result = getattr(module, "run")
        assert callable(result)
        # exp_id inside the module's source matches the key
        src = open(module.__file__).read()
        assert f'exp_id="{key.upper()}"' in src, module.__name__


def test_design_notes_paper_text_mismatch():
    """The provenance caveat must stay at the top of both documents."""
    design = open("DESIGN.md").read()
    assert "PAPER-TEXT MISMATCH NOTICE" in design.split("##")[0]
    experiments = open("EXPERIMENTS.md").read()
    assert "Provenance caveat" in experiments[:1000]


def test_examples_listed_in_readme_exist():
    readme = open("README.md").read()
    for match in re.findall(r"`(examples/[\w_]+\.py)`", readme):
        assert os.path.exists(match), match


def test_no_tracked_bytecode_artifacts():
    """Byte-code must never be committed: ``__pycache__`` directories,
    ``*.pyc``/``*.pyo`` files and pytest caches are build products (80 of
    them slipped into the tree once), and the root .gitignore must keep
    covering them."""
    try:
        out = subprocess.run(["git", "ls-files"], capture_output=True,
                             text=True, check=True, timeout=30).stdout
    except (OSError, subprocess.SubprocessError):
        pytest.skip("not a git checkout")
    bad = [line for line in out.splitlines()
           if "__pycache__" in line or ".pytest_cache" in line
           or line.endswith((".pyc", ".pyo"))]
    assert not bad, f"tracked byte-code artifacts: {bad[:10]}"
    ignore = open(".gitignore").read()
    for pattern in ("__pycache__/", "*.pyc", ".pytest_cache/"):
        assert pattern in ignore, f".gitignore misses {pattern}"


def test_all_examples_are_documented():
    readme = open("README.md").read()
    for fname in os.listdir("examples"):
        if fname.endswith(".py"):
            assert f"examples/{fname}" in readme, \
                f"README does not mention examples/{fname}"
