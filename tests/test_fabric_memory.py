"""Unit tests for repro.fabric.memory."""

import pytest

from repro.fabric import IB_FDR, Memory, MemoryError_, OutOfMemory

HOST = IB_FDR.host


def make(size=1 << 20):
    return Memory(size, HOST, rank=0)


def test_alloc_returns_disjoint_ranges():
    mem = make()
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert b >= a + 100


def test_alloc_alignment():
    mem = make()
    mem.alloc(3)
    b = mem.alloc(8, align=64)
    assert b % 64 == 0


def test_alloc_bad_alignment_rejected():
    mem = make()
    with pytest.raises(MemoryError_):
        mem.alloc(8, align=3)


def test_alloc_zero_rejected():
    mem = make()
    with pytest.raises(MemoryError_):
        mem.alloc(0)


def test_alloc_exhaustion():
    mem = Memory(1024, HOST)
    mem.alloc(1000)
    with pytest.raises(OutOfMemory):
        mem.alloc(100)


def test_read_write_roundtrip():
    mem = make()
    addr = mem.alloc(16)
    mem.write(addr, b"hello RDMA world")
    assert mem.read(addr, 16) == b"hello RDMA world"


def test_write_out_of_bounds_rejected():
    mem = Memory(64, HOST)
    with pytest.raises(MemoryError_):
        mem.write(60, b"too long")


def test_read_negative_length_rejected():
    mem = make()
    with pytest.raises(MemoryError_):
        mem.read(0, -1)


def test_read_returns_zero_copy_view():
    mem = make()
    addr = mem.alloc(8)
    mem.write(addr, b"AAAAAAAA")
    view = mem.read(addr, 8)
    assert isinstance(view, memoryview)
    # a view, not a snapshot: later writes show through it
    mem.write(addr, b"BBBBBBBB")
    assert view == b"BBBBBBBB"
    # read_bytes is the owned-snapshot variant
    snap = mem.read_bytes(addr, 8)
    assert isinstance(snap, bytes)
    mem.write(addr, b"CCCCCCCC")
    assert snap == b"BBBBBBBB"


def test_write_accepts_any_buffer_without_copy():
    mem = make()
    addr = mem.alloc(12)
    mem.write(addr, bytearray(b"from-bytearr"))
    assert mem.read(addr, 12) == b"from-bytearr"
    mem.write(addr, memoryview(b"from-memview"))
    assert mem.read(addr, 12) == b"from-memview"
    # a view of this memory itself is legal too (snapshotted internally)
    other = mem.alloc(12)
    mem.write(other, mem.read(addr, 12))
    assert mem.read(other, 12) == b"from-memview"


def test_write_validates_before_mutating():
    mem = Memory(64, HOST)
    mem.write(0, b"\xAA" * 64)
    with pytest.raises(MemoryError_):
        mem.write(60, b"too long")
    # failed write must not have touched the prefix that was in range
    assert mem.read(0, 64) == b"\xAA" * 64


def test_u64_roundtrip():
    mem = make()
    addr = mem.alloc(8)
    mem.write_u64(addr, 0xDEADBEEF12345678)
    assert mem.read_u64(addr) == 0xDEADBEEF12345678


def test_pin_cost_counts_new_pages_only():
    mem = make()
    addr = mem.alloc(3 * HOST.page_size, align=HOST.page_size)
    cost1 = mem.pin_cost_ns(addr, 3 * HOST.page_size)
    assert cost1 == HOST.reg_base_ns + 3 * HOST.reg_per_page_ns
    mem.pin(addr, 3 * HOST.page_size)
    # Re-registering the same range: only the base cost remains.
    cost2 = mem.pin_cost_ns(addr, 3 * HOST.page_size)
    assert cost2 == HOST.reg_base_ns
    assert mem.pinned_pages == 3


def test_pin_partial_overlap():
    mem = make()
    page = HOST.page_size
    addr = mem.alloc(4 * page, align=page)
    mem.pin(addr, page)  # pin first page
    cost = mem.pin_cost_ns(addr, 2 * page)  # spans pages 0..1; 1 is new
    assert cost == HOST.reg_base_ns + HOST.reg_per_page_ns


def test_unpin_releases_pages():
    mem = make()
    page = HOST.page_size
    addr = mem.alloc(2 * page, align=page)
    mem.pin(addr, 2 * page)
    assert mem.pinned_pages == 2
    mem.unpin(addr, page)
    assert mem.pinned_pages == 1


def test_pages_spanned_unaligned_range():
    mem = make()
    page = HOST.page_size
    # 2 bytes straddling a page boundary span two pages
    assert mem.pages_spanned(page - 1, 2) == 2
    assert mem.pages_spanned(0, 1) == 1
    assert mem.pages_spanned(0, page) == 1
    assert mem.pages_spanned(0, page + 1) == 2


def test_memcpy_cost_scales():
    mem = make()
    assert mem.memcpy_cost_ns(0) == 0
    small = mem.memcpy_cost_ns(1024)
    large = mem.memcpy_cost_ns(1024 * 1024)
    assert large > small > 0
