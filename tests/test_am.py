"""Tests for the active-message invocation layer (repro.runtime.am)."""

import pytest

from repro.cluster import build_cluster
from repro.photon import photon_init
from repro.runtime import (
    ActionRegistry,
    AmConfig,
    AM_REQ,
    CreditExhaustedError,
    Parcel,
    RemoteActionError,
    build_runtime,
)
from repro.sim import SimulationError

TIMEOUT = 10 ** 10


def make(n=2, am_config=None, coalesce=False, **coalesce_opts):
    cl = build_cluster(n, params="ib-fdr", seed=9)
    ph = photon_init(cl)
    reg = ActionRegistry()

    def echo(rt, src, payload):
        return payload[::-1]

    def boom(rt, src, payload):
        raise SimulationError("handler exploded")

    reg.register("echo", echo)
    reg.register("boom", boom)
    rts = build_runtime(cl, reg, "photon", photon=ph, am=True,
                        coalesce=coalesce, am_config=am_config,
                        coalesce_opts=coalesce_opts or None)
    return cl, rts


def run_pair(cl, client_gen, server_rt, done):
    def server(env):
        yield from server_rt.process_until(lambda: done(), TIMEOUT)

    p0 = cl.env.process(client_gen(cl.env))
    p1 = cl.env.process(server(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------

def test_invoke_round_trip():
    cl, rts = make()
    out = {}

    def client(env):
        fut = yield from rts[0].invoke(1, "echo", b"hello")
        out["val"] = yield from fut.wait(rts[0], TIMEOUT)

    run_pair(cl, client, rts[1], lambda: "val" in out)
    assert out["val"] == b"olleh"
    assert cl.scope(0).get("am.invokes") == 1
    assert cl.scope(0).get("am.replies") == 1
    assert cl.scope(1).get("am.requests_served") == 1
    # per-action latency histogram recorded on the caller
    hist = cl.scope(0).histograms.get("am.echo.latency_ns")
    assert hist is not None and hist.count == 1


def test_invoke_local_short_circuit():
    cl, rts = make()
    out = {}

    def client(env):
        fut = yield from rts[0].invoke(0, "echo", b"local")
        out["val"] = yield from fut.wait(rts[0], TIMEOUT)

    cl.env.run(until=cl.env.process(client(cl.env)))
    assert out["val"] == b"lacol"
    assert cl.counters.get("nic.tx_msgs") == 0  # never touched the wire


def test_remote_handler_error_fails_future():
    cl, rts = make()
    out = {}

    def client(env):
        fut = yield from rts[0].invoke(1, "boom", b"x")
        try:
            yield from fut.wait(rts[0], TIMEOUT)
        except RemoteActionError as exc:
            out["err"] = exc

    run_pair(cl, client, rts[1], lambda: "err" in out)
    assert "handler exploded" in str(out["err"])
    assert out["err"].action == "boom"
    assert cl.scope(1).get("am.handler_errors") == 1
    assert cl.scope(0).get("am.remote_errors") == 1


def test_invoke_requires_am_engine():
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl)
    reg = ActionRegistry()
    rts = build_runtime(cl, reg, "photon", photon=ph)  # am off

    def client(env):
        with pytest.raises(SimulationError):
            yield from rts[0].invoke(1, "echo", b"x")

    cl.env.run(until=cl.env.process(client(cl.env)))


def test_generator_handler_reply_is_return_value():
    cl, rts = make()
    reg = rts[0].registry

    def slow_double(rt, src, payload):
        yield rt.env.timeout(1_000)
        return payload * 2

    reg.register("slow_double", slow_double)
    out = {}

    def client(env):
        fut = yield from rts[0].invoke(1, "slow_double", b"ab")
        out["val"] = yield from fut.wait(rts[0], TIMEOUT)

    run_pair(cl, client, rts[1], lambda: "val" in out)
    assert out["val"] == b"abab"


# ---------------------------------------------------------------------------
# correlation under retransmit
# ---------------------------------------------------------------------------

def test_duplicate_request_not_rerun_and_reply_correlates():
    """At-least-once delivery, effectively-once execution: a retransmitted
    request is answered from the dedup cache without re-running the
    handler, and the duplicate reply is dropped as stale."""
    cl, rts = make()
    runs = []
    rts[0].registry.register(
        "count", lambda rt, src, p: (runs.append(rt.env.now), b"ok")[1])
    out = {}

    def client(env):
        fut = yield from rts[0].invoke(1, "count", b"x")
        out["val"] = yield from fut.wait(rts[0], TIMEOUT)
        # replay the identical request parcel (same cid) — the wire-level
        # retransmit a lossy fabric would produce
        cid = rts[0].am._next_cid - 1
        dup = Parcel(action=rts[0].registry.id_of("count"), src=0,
                     payload=b"x", cid=cid, flags=AM_REQ)
        yield from rts[0].transport.send(1, dup.encode())
        # pump until the duplicate's reply came back (and was discarded)
        yield from rts[0].process_until(
            lambda: cl.scope(0).get("am.stale_replies") == 1, TIMEOUT)

    run_pair(cl, client, rts[1],
             lambda: cl.scope(1).get("am.duplicate_requests") == 1)
    assert out["val"] == b"ok"
    assert len(runs) == 1  # handler executed exactly once
    assert cl.scope(1).get("am.duplicate_requests") == 1
    assert cl.scope(0).get("am.stale_replies") == 1


def test_interleaved_invocations_correlate_by_cid():
    """Many outstanding invocations to the same destination settle each
    future with its own reply, regardless of completion order."""
    cl, rts = make(am_config=AmConfig(credits_per_dest=16))
    out = {}

    def client(env):
        futs = []
        for i in range(10):
            fut = yield from rts[0].invoke(1, "echo", bytes([i]) * 4)
            futs.append((i, fut))
        vals = []
        for i, fut in futs:
            vals.append((i, (yield from fut.wait(rts[0], TIMEOUT))))
        out["vals"] = vals

    run_pair(cl, client, rts[1], lambda: "vals" in out)
    for i, val in out["vals"]:
        assert val == bytes([i]) * 4


# ---------------------------------------------------------------------------
# credit backpressure
# ---------------------------------------------------------------------------

def test_credit_exhaustion_sheds_with_typed_error():
    cl, rts = make(am_config=AmConfig(credits_per_dest=3,
                                      on_exhausted="shed"))
    out = {}

    def client(env):
        for _ in range(3):
            yield from rts[0].invoke(1, "echo", b"x")
        assert rts[0].am.credits(1) == 0
        with pytest.raises(CreditExhaustedError):
            yield from rts[0].invoke(1, "echo", b"x")
        out["done"] = True

    # server never polls: credits cannot come back
    cl.env.run(until=cl.env.process(client(cl.env)))
    assert out["done"]
    assert cl.scope(0).get("am.credit_sheds") == 1


def test_credit_exhaustion_blocks_until_replies_free_credits():
    cl, rts = make(am_config=AmConfig(credits_per_dest=2,
                                      on_exhausted="block"))
    out = {}

    def client(env):
        futs = []
        for i in range(8):  # 4x the credit window
            fut = yield from rts[0].invoke(1, "echo", bytes([i]))
            futs.append(fut)
        vals = []
        for fut in futs:
            vals.append((yield from fut.wait(rts[0], TIMEOUT)))
        out["vals"] = vals

    run_pair(cl, client, rts[1], lambda: "vals" in out)
    assert out["vals"] == [bytes([i]) for i in range(8)]
    assert cl.scope(0).get("am.credit_stalls") > 0
    assert rts[0].am.credits(1) == 2  # all returned


def test_blocked_invoke_times_out_with_typed_error():
    cl, rts = make(am_config=AmConfig(credits_per_dest=1,
                                      credit_wait_ns=50_000))
    out = {}

    def client(env):
        yield from rts[0].invoke(1, "echo", b"x")
        # server is dead silent: the blocking acquire must give up
        with pytest.raises(CreditExhaustedError):
            yield from rts[0].invoke(1, "echo", b"x")
        out["done"] = True

    cl.env.run(until=cl.env.process(client(cl.env)))
    assert out["done"]
    assert cl.scope(0).get("am.credit_timeouts") == 1


# ---------------------------------------------------------------------------
# stale-flush timing (scheduler-driven, not only poll-driven)
# ---------------------------------------------------------------------------

def test_scheduler_flushes_stale_batch_while_rank_is_local_busy():
    """A rank grinding through local parcels never reaches transport.poll,
    yet its open invocation batch must still ship at ~max_delay_ns: the
    scheduler drives flush_stale between local dispatches."""
    served_at = []
    cl, rts = make(coalesce=True, flush_count=1000, flush_bytes=1 << 16,
                   max_delay_ns=2_000)
    rts[0].registry.register(
        "stamp", lambda rt, src, p: (served_at.append(rt.env.now), b"")[1])
    rts[0].registry.register("noop", lambda rt, src, p: None)
    out = {}

    def client(env):
        t0 = env.now
        fut = yield from rts[0].invoke(1, "stamp", b"x")
        # stay local-busy well past the latency bound: every progress
        # pass has local work, so poll() is never reached
        for _ in range(100):
            yield from rts[0].send(0, "noop")
            yield from rts[0].progress()
        out["t0"] = t0
        out["busy_until"] = env.now
        # the server must stay up past this wait: the reply rides rank 1's
        # own coalescing batch and needs rank 1's stale flush to ship
        yield from fut.wait(rts[0], TIMEOUT)
        out["done"] = True

    run_pair(cl, client, rts[1], lambda: out.get("done"))
    busy_span = out["busy_until"] - out["t0"]
    assert busy_span > 12_000  # the local grind really outlived the bound
    # the request left this rank at ~max_delay, not after the grind
    assert served_at[0] - out["t0"] < 8_000


def test_stale_flush_timing_poll_path():
    """Poll-driven ranks flush a lone sub-threshold invocation at the
    latency bound, not at the (never-reached) count threshold."""
    served_at = []
    cl, rts = make(coalesce=True, flush_count=1000, flush_bytes=1 << 16,
                   max_delay_ns=3_000)
    rts[0].registry.register(
        "stamp", lambda rt, src, p: (served_at.append(rt.env.now), b"")[1])
    out = {}

    def client(env):
        t0 = env.now
        fut = yield from rts[0].invoke(1, "stamp", b"x")
        yield from fut.wait(rts[0], TIMEOUT)
        out["lat"] = env.now - t0

    run_pair(cl, client, rts[1], lambda: "lat" in out)
    # round trip ≈ two stale-flush delays + wire time; far below the
    # timeout a count-threshold flush would need
    assert 3_000 <= out["lat"] < 50_000


# ---------------------------------------------------------------------------
# armed-but-idle: AM must not perturb non-AM traffic or golden traces
# ---------------------------------------------------------------------------

def test_armed_idle_am_keeps_plain_parcel_trace_identical():
    """The same plain-parcel workload, with and without an armed AM
    engine (no coalescing): traces must be bit-identical — arming the
    layer costs nothing until it is used."""
    from tests.test_determinism_golden import _trace_fingerprint

    def workload(am: bool):
        cl = build_cluster(2, params="ib-fdr", seed=13, trace=True)
        ph = photon_init(cl)
        reg = ActionRegistry()
        seen = []
        reg.register("tick", lambda rt, src, p: seen.append(p[0]))
        rts = build_runtime(cl, reg, "photon", photon=ph, am=am,
                            coalesce=False)

        def sender(env):
            for i in range(12):
                yield from rts[0].send(1, "tick", bytes([i]))

        def receiver(env):
            yield from rts[1].process_n(12, timeout_ns=TIMEOUT)

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        assert seen == list(range(12))
        return _trace_fingerprint(cl)

    assert workload(am=True) == workload(am=False)


def test_golden_traces_hold_with_am_armed_calendar_and_heap(monkeypatch):
    """KV-guard idiom: with the AM layer imported and armed engines live
    in the process, the golden r1/r4/r17 fingerprints must still match —
    under both queue backends."""
    import repro.runtime.am  # noqa: F401 — the layer is present
    from repro.sim import core
    from tests import test_determinism_golden as golden

    # an armed engine existing elsewhere in the process must not leak
    cl, rts = make()
    assert rts[0].am is not None

    golden.test_r1_table_matches_golden()
    golden.test_clean_traces_match_golden()

    monkeypatch.setattr(core, "DEFAULT_QUEUE", "heap")
    golden.test_r1_table_matches_golden()
    golden.test_clean_traces_match_golden()


# ---------------------------------------------------------------------------
# extended parcel wire format
# ---------------------------------------------------------------------------

def test_parcel_legacy_encoding_is_byte_identical():
    """Plain parcels must keep the pre-AM 24-byte header verbatim."""
    import struct
    p = Parcel(action=3, src=1, payload=b"abc")
    raw = p.encode()
    assert raw == struct.pack("<qqq", 3, 1, 3) + b"abc"
    assert Parcel.decode(raw) == p


def test_parcel_extended_header_round_trips():
    p = Parcel(action=7, src=2, payload=b"xy", cid=123456789, flags=AM_REQ)
    q = Parcel.decode(p.encode())
    assert q == p
    assert len(p.encode()) == 40 + 2


def test_parcel_decode_rejects_truncation():
    p = Parcel(action=7, src=2, payload=b"xyz", cid=5, flags=AM_REQ)
    with pytest.raises(SimulationError):
        Parcel.decode(p.encode()[:-1])
    with pytest.raises(SimulationError):
        Parcel.decode(b"\x01")


def test_am_config_validation():
    with pytest.raises(SimulationError):
        AmConfig(credits_per_dest=0)
    with pytest.raises(SimulationError):
        AmConfig(on_exhausted="explode")
    with pytest.raises(SimulationError):
        AmConfig(dedup_window=0)


def test_action_name_of_rejects_bad_ids():
    """Regression: a corrupt action id used to surface as a bare
    IndexError from the registry's name table; it must be a
    SimulationError like every other malformed-input path."""
    reg = ActionRegistry()
    reg.register("only", lambda rt, src, p: None)
    assert reg.name_of(0) == "only"
    with pytest.raises(SimulationError):
        reg.name_of(1)
    with pytest.raises(SimulationError):
        reg.name_of(-1)
