"""Tests for gather/scatter and wait_any additions."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init
from repro.sim import SimulationError


def spmd_mpi(n, body):
    cl = build_cluster(n)
    comms = mpi_init(cl)
    procs = [cl.env.process(body(comms[r], r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    return [p.value for p in procs]


@pytest.mark.parametrize("n,root", [(2, 0), (3, 1), (5, 4)])
def test_gather(n, root):
    def body(comm, rank):
        out = yield from comm.gather(bytes([rank]) * 8, root=root)
        return out

    res = spmd_mpi(n, body)
    for rank, out in enumerate(res):
        if rank == root:
            assert out == [bytes([r]) * 8 for r in range(n)]
        else:
            assert out is None


@pytest.mark.parametrize("n,root", [(2, 0), (4, 2)])
def test_scatter(n, root):
    def body(comm, rank):
        blobs = None
        if rank == root:
            blobs = [bytes([dst]) * (dst + 1) for dst in range(n)]
        out = yield from comm.scatter(blobs, root=root)
        return out

    res = spmd_mpi(n, body)
    for rank, out in enumerate(res):
        assert out == bytes([rank]) * (rank + 1)


def test_scatter_root_without_blobs_rejected():
    def body(comm, rank):
        out = yield from comm.scatter(None, root=0)
        return out

    cl = build_cluster(2)
    comms = mpi_init(cl)
    p = cl.env.process(body(comms[0], 0))
    with pytest.raises(SimulationError):
        cl.env.run(until=p)


def test_gather_then_scatter_roundtrip():
    def body(comm, rank):
        gathered = yield from comm.gather(bytes([rank * 2]) * 4, root=0)
        blobs = gathered if rank == 0 else None
        back = yield from comm.scatter(blobs, root=0)
        return back

    res = spmd_mpi(3, body)
    for rank, out in enumerate(res):
        assert out == bytes([rank * 2]) * 4


# ---------------------------------------------------------------- wait_any


def test_wait_any_returns_first_completed():
    cl = build_cluster(2)
    ph = photon_init(cl)
    src = ph[0].buffer(1 << 20)
    dst = ph[1].buffer(1 << 20)

    def prog(env):
        big = yield from ph[0].post_os_put(1, src.addr, 1 << 20,
                                           dst.addr, dst.rkey)
        small = yield from ph[0].post_os_put(1, src.addr, 8,
                                             dst.addr, dst.rkey)
        # the small one was posted later but the NIC engine serialises
        # per rank; wait_any must return whichever finished
        winner = yield from ph[0].wait_any([big, small],
                                           timeout_ns=10 ** 12)
        yield from ph[0].wait_all([big, small], timeout_ns=10 ** 12)
        return winner, big, small

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    winner, big, small = p.value
    assert winner in (big, small)


def test_wait_any_timeout():
    cl = build_cluster(2)
    ph = photon_init(cl)
    src = ph[0].buffer(64)
    dst = ph[1].buffer(64)

    def prog(env):
        rid = yield from ph[0].post_os_put(1, src.addr, 8, dst.addr,
                                           dst.rkey)
        # a request that never completes: fabricate one
        ghost = ph[0].requests.create(
            ph[0].requests.get(rid).kind, 1, 8, 0, env.now)
        got = yield from ph[0].wait_any([ghost.rid], timeout_ns=100_000)
        return got

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value is None


def test_wait_any_empty_rejected():
    cl = build_cluster(2)
    ph = photon_init(cl)
    with pytest.raises(SimulationError):
        list(ph[0].wait_any([]))
