"""Tests for the observability layer: metrics registry, spans, exports,
and telemetry correctness under fault injection."""

import json

import pytest

from repro.cluster import build_cluster
from repro.obs import MetricsRegistry, export_jsonl
from repro.obs.registry import _BUCKET_BOUNDS, Histogram
from repro.obs.report import build_snapshot, run_demo
from repro.photon import PhotonConfig, photon_init
from repro.sim import Counters


# ---------------------------------------------------------------- registry


def test_scoped_add_mirrors_into_aggregate():
    reg = MetricsRegistry(2)
    reg.scope(0).add("x", 3)
    reg.scope(1).add("x", 4)
    reg.scope(1).add("y")
    reg.fabric.add("x", 1)
    assert reg.scope(0).get("x") == 3
    assert reg.scope(1).get("x") == 4
    assert reg.aggregate.get("x") == 8
    assert reg.aggregate.get("y") == 1
    assert reg.per_rank_totals() == reg.aggregate.values
    assert reg.attribution_gaps() == {}


def test_direct_aggregate_write_is_an_attribution_gap():
    reg = MetricsRegistry(2)
    reg.scope(0).add("x", 3)
    reg.aggregate.add("x", 5)  # bypasses every scope
    assert reg.attribution_gaps() == {"x": 5}


def test_scope_clear_preserves_mirror_invariant():
    reg = MetricsRegistry(2)
    reg.scope(0).add("x", 3)
    reg.scope(1).add("x", 4)
    reg.scope(0).clear()
    assert reg.aggregate.get("x") == 4
    assert reg.per_rank_totals() == reg.aggregate.values


def test_set_max_is_high_water_mark_not_sum():
    reg = MetricsRegistry(2)
    reg.scope(0).set_max("peak", 100)
    reg.scope(1).set_max("peak", 60)
    reg.scope(1).set_max("peak", 40)  # never lowers
    assert reg.scope(1).get("peak") == 60
    assert reg.aggregate.get("peak") == 100  # max over scopes, not 160
    assert reg.attribution_gaps() == {}  # max names exempt from sum check


def test_plain_counters_obs_hooks_are_noops():
    c = Counters()
    c.observe("h", 5)
    c.set_gauge("g", 1.0)
    assert c.span("op", 0) is None
    c.set_max("peak", 9)
    assert c.get("peak") == 9


def test_histogram_power_of_two_buckets():
    h = Histogram()
    h.observe(64)      # exactly the first bound
    h.observe(65)      # next bucket
    h.observe(1)       # clamps into the first bucket
    h.observe(2 ** 40)  # overflow bucket
    assert h.counts[0] == 2
    assert h.counts[1] == 1
    assert h.counts[-1] == 1
    assert h.count == 4 and h.min == 1 and h.max == 2 ** 40
    snap = h.snapshot()
    assert snap["buckets"][str(_BUCKET_BOUNDS[0])] == 2
    assert snap["buckets"]["+inf"] == 1
    assert h.quantile(0.25) == float(_BUCKET_BOUNDS[0])
    json.dumps(snap)


def test_spans_disabled_by_default_and_cheap():
    reg = MetricsRegistry(1)
    assert reg.scope(0).span("op", 0, peer=1, nbytes=8) is None
    reg.enable_spans()
    span = reg.scope(0).span("op", 10, peer=1, nbytes=8)
    span.end(110, retries=0)
    span.end(999)  # idempotent: first close wins
    assert span.duration_ns == 100
    assert list(reg.spans) == [span]
    assert reg.span_durations("op", rank=0) == [100]
    # closing feeds the latency histogram
    assert reg.scope(0).histograms["op.latency_ns"].count == 1
    d = span.as_dict()
    assert d["span"] == "op" and d["duration_ns"] == 100
    json.dumps(d)


def test_span_ring_is_bounded():
    reg = MetricsRegistry(1, spans_enabled=True, max_spans=4)
    for i in range(10):
        reg.scope(0).span("op", i).end(i + 1)
    assert len(reg.spans) == 4
    assert reg.spans_dropped == 6


def test_registry_snapshot_json_roundtrip():
    reg = MetricsRegistry(2, spans_enabled=True)
    reg.scope(0).add("x")
    reg.scope(0).set_gauge("depth", 3)
    reg.scope(1).observe("lat", 128)
    reg.scope(1).span("op", 0, peer=0).end(64)
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["ranks"]["0"]["counters"]["x"] == 1
    assert snap["ranks"]["1"]["histograms"]["lat"]["count"] == 1
    assert snap["spans"]["recorded"] == 1


# ---------------------------------------------------------------- export


def test_export_jsonl_trace_and_spans(tmp_path):
    cl = build_cluster(2, trace=True, spans=True)
    cl.tracer.log(5, "nic.tx", nbytes=8)
    cl.metrics.scope(0).span("op", 0, peer=1, nbytes=8).end(100)
    path = tmp_path / "trace.jsonl"
    lines = export_jsonl(str(path), tracer=cl.tracer, registry=cl.metrics)
    rows = [json.loads(ln) for ln in path.read_text().splitlines()]
    assert lines == 2
    assert [r["type"] for r in rows] == ["trace", "span", "meta"]
    assert rows[0]["category"] == "nic.tx"
    assert rows[1]["duration_ns"] == 100
    assert rows[2]["lines"] == 2 and rows[2]["trace_dropped"] == 0


# --------------------------------------------------- endpoint stats hygiene


def test_endpoint_stats_json_roundtrip():
    cl = build_cluster(3)
    ph = photon_init(cl)
    tgt = ph[1].buffer(64)

    def prog(env):
        yield from ph[0].put_pwc(1, 0, 64, tgt.addr, tgt.rkey,
                                 local_cid=7, remote_cid=1)
        c = yield from ph[0].wait_completion("local", timeout_ns=10 ** 9)
        assert c is not None

    cl.env.run(until=cl.env.process(prog(cl.env)))
    for p in ph:
        # tuple-keyed dicts would raise here — the regression this guards
        snap = json.loads(json.dumps(p.stats()))
        assert snap["rank"] == p.rank
        json.dumps(p.telemetry())
    creds = ph[0].stats()["ledger_credits"]
    assert set(creds) == {"1", "2"}
    assert all(v >= 0 for rings in creds.values() for v in rings.values())


# ------------------------------------------------ lossy-run telemetry (R17)


@pytest.fixture(scope="module")
def lossy_run():
    """One shared R17-style lossy demo run (photon + minimpi + spans)."""
    cl, ph, mm, snapshot = run_demo(n_msgs=6, loss=1e-2, seed=7)
    return cl, ph, mm, snapshot


def test_lossy_merged_snapshot_json_roundtrips(lossy_run):
    _cl, _ph, _mm, snapshot = lossy_run
    decoded = json.loads(json.dumps(snapshot))
    assert decoded["n_ranks"] == 2
    assert set(decoded["ranks"]) == {"0", "1"}
    for entry in decoded["ranks"].values():
        assert "metrics" in entry and "photon" in entry and "mpi" in entry


def test_lossy_per_rank_counters_sum_to_aggregate(lossy_run):
    cl, _ph, _mm, _snapshot = lossy_run
    assert cl.metrics.attribution_gaps() == {}
    totals = cl.metrics.per_rank_totals()
    for name, value in cl.counters.snapshot().items():
        if name in cl.metrics._max_names:
            continue
        assert totals[name] == value, name


def test_lossy_fault_counters_are_sane_and_monotone(lossy_run):
    cl, ph, _mm, snapshot = lossy_run
    agg = snapshot["aggregate"]["counters"]
    # the fabric really dropped something and recovery really ran
    assert agg.get("link.drops", 0) >= 1
    for name in ("photon.op_retries", "photon.dup_drops", "link.drops",
                 "nic.ack_timeouts"):
        assert agg.get(name, 0) >= 0
    # telemetry is per-rank: retries happened on the sending rank only
    assert ph[0].telemetry()["photon.op_retries"] == \
        cl.counters.get("photon.op_retries")
    assert ph[1].telemetry()["photon.op_retries"] == 0
    # monotone: a later snapshot never shows a smaller counter
    before = dict(agg)
    after = build_snapshot(cl)["aggregate"]["counters"]
    for name, value in before.items():
        assert after.get(name, 0) >= value


def test_lossy_spans_recorded_with_sim_clock_times(lossy_run):
    cl, _ph, _mm, snapshot = lossy_run
    assert snapshot["spans"]["recorded"] > 0
    names = {s.name for s in cl.metrics.spans}
    assert "photon.pwc_put" in names
    assert {"mpi.eager_send", "mpi.rndv_send"} & names
    for span in cl.metrics.spans:
        assert span.t_end is not None
        assert 0 <= span.t_start <= span.t_end <= cl.env.now
    # exact percentiles come from raw durations
    lat = snapshot["ranks"]["0"]["op_latency"]["photon.pwc_put"]
    assert lat["n"] >= 6 and lat["p50_ns"] <= lat["p99_ns"] <= lat["max_ns"]


def test_lossy_fabric_links_report_drops(lossy_run):
    cl, _ph, _mm, snapshot = lossy_run
    links = snapshot["fabric"]["links"]
    assert len(links) == len(cl.topology.iter_links())
    assert sum(l["drops"] for l in links) == \
        cl.counters.get("link.drops")
    assert sum(l["chunks"] for l in links) == \
        cl.counters.get("link.chunks")


# --------------------------------------------------------- golden neutrality


def test_spans_do_not_perturb_sim_time_or_counters():
    """Span recording is host-side only: identical run with and without."""

    def run(spans):
        cl = build_cluster(2, seed=3, spans=spans)
        ph = photon_init(cl, PhotonConfig())
        tgt = ph[1].buffer(256)

        def prog(env):
            for i in range(4):
                yield from ph[0].put_pwc(1, 0, 256, tgt.addr, tgt.rkey,
                                         local_cid=i, remote_cid=i)
                yield from ph[0].wait_completion("local", timeout_ns=10 ** 9)

        cl.env.run(until=cl.env.process(prog(cl.env)))
        return cl.env.now, sorted(cl.counters.snapshot().items())

    assert run(spans=False) == run(spans=True)
