"""Equivalence of the calendar-queue and heap scheduler backends.

The calendar backend is only admissible because it is *observably
identical* to the reference binary heap: same firing order (timestamp,
then priority, then scheduling order), same clock, same event count, on
any schedule.  These tests drive randomized workloads through both
backends side by side and assert byte-identical firing logs, then re-run
the golden-trace suite in heap mode so both backends pin the same
pre-optimization fingerprints.
"""

from __future__ import annotations

import random

import pytest

import repro.sim.core as core
from repro.sim.core import (Environment, Event, Interrupt, NORMAL,
                            SimulationError, URGENT)

DELAYS = (0, 1, 1, 2, 3, 5, 7, 7, 50, 100, 100, 1000, 12345)


def _drive(env: Environment, seed: int, log: list):
    """Build one randomized workload on ``env``, recording every firing.

    The mix deliberately covers every scheduling entry point the model
    code uses: process timeout yields (with heavy same-timestamp ties),
    raw callback-only timers (the link delivery path), callbacks that
    schedule more work at the current instant (drain-time scheduling),
    cross-process ``succeed`` wakeups (URGENT resume ordering), and
    interrupts.
    """
    rng = random.Random(seed)

    def ticker(name: str, steps: int):
        for j in range(steps):
            yield env.timeout(rng.choice(DELAYS))
            log.append((env.now, f"{name}.{j}"))

    def waiter(name: str, ev: Event):
        try:
            val = yield ev
        except Interrupt as exc:
            log.append((env.now, f"{name}.int.{exc.cause}"))
            return
        log.append((env.now, f"{name}.woke.{val}"))
        yield env.timeout(rng.choice(DELAYS))
        log.append((env.now, f"{name}.done"))

    def trigger(ev: Event, delay: int, value):
        yield env.timeout(delay)
        ev.succeed(value)
        log.append((env.now, f"fired.{value}"))

    # processes with tie-heavy timeout chains (exercises the Timeout
    # freelist: each yield recycles the previous instance)
    for i in range(6):
        env.process(ticker(f"t{i}", rng.randint(5, 40)), name=f"t{i}")

    # cross-process event wakeups, some at identical instants
    for i in range(8):
        ev = Event(env)
        env.process(waiter(f"w{i}", ev), name=f"w{i}")
        env.process(trigger(ev, rng.choice(DELAYS), i), name=f"g{i}")

    # an interrupted waiter
    ev = Event(env)
    victim = env.process(waiter("victim", ev), name="victim")

    def interrupter():
        yield env.timeout(17)
        victim.interrupt("bang")

    env.process(interrupter(), name="interrupter")

    # raw callback-only timers, including one that schedules more work
    # from inside its callback (both at the current instant and later)
    def arm(label: str, delay: int, chain: int):
        t = env.timeout(delay)

        def cb(_ev, label=label, chain=chain):
            log.append((env.now, label))
            if chain:
                arm(f"{label}+", rng.choice(DELAYS), chain - 1)

        t.callbacks.append(cb)

    for i in range(12):
        arm(f"raw{i}", rng.choice(DELAYS), rng.randint(0, 3))


def _run_both(seed: int, until=None):
    logs = []
    envs = []
    for mode in ("heap", "calendar"):
        env = Environment(queue=mode)
        log: list = []
        _drive(env, seed, log)
        if until is None:
            env.run()
        else:
            env.run(until=until)
        logs.append(log)
        envs.append(env)
    return logs, envs


@pytest.mark.parametrize("seed", range(8))
def test_random_schedules_fire_identically(seed):
    (heap_log, cal_log), (heap_env, cal_env) = _run_both(seed)
    assert heap_log == cal_log
    assert heap_env.now == cal_env.now
    assert heap_env.events_processed == cal_env.events_processed


@pytest.mark.parametrize("seed", range(4))
def test_run_until_deadline_identical(seed):
    # stop mid-schedule: both backends must drain exactly the events due
    # by the deadline and land the clock *on* it
    (heap_log, cal_log), (heap_env, cal_env) = _run_both(seed, until=40)
    assert heap_log == cal_log
    assert heap_env.now == cal_env.now == 40
    # resuming from the deadline stays identical
    heap_env.run()
    cal_env.run()
    assert heap_log == cal_log
    assert heap_env.now == cal_env.now


def test_same_instant_priority_and_fifo_order():
    # at one timestamp: urgent events fire before normal ones, and within
    # a priority class strictly in scheduling order — on both backends
    for mode in ("heap", "calendar"):
        env = Environment(queue=mode)
        order = []

        def note(tag):
            return lambda _ev: order.append(tag)

        for i in range(4):
            ev = Event(env)
            ev.callbacks.append(note(f"n{i}"))
            ev.succeed(priority=NORMAL)
            uv = Event(env)
            uv.callbacks.append(note(f"u{i}"))
            uv.succeed(priority=URGENT)
        env.run()
        assert order == ["u0", "u1", "u2", "u3", "n0", "n1", "n2", "n3"], mode


def test_recycled_timeouts_identical():
    # a long chain of sequential timeouts recycles Timeout instances via
    # the freelist; the firing schedule must not depend on recycling
    logs = []
    for mode in ("heap", "calendar"):
        env = Environment(queue=mode)
        log = []

        def churn():
            rng = random.Random(99)
            for j in range(5000):
                yield env.timeout(rng.choice(DELAYS))
                log.append((env.now, j))

        env.process(churn(), name="churn")
        env.run()
        logs.append(log)
    assert logs[0] == logs[1]


def test_error_paths_identical():
    for mode in ("heap", "calendar"):
        env = Environment(queue=mode)
        with pytest.raises(SimulationError):
            env.run(until=-1)
        # run(until=event) on a drained queue is a modelling deadlock
        env2 = Environment(queue=mode)
        ev = Event(env2)
        with pytest.raises(SimulationError):
            env2.run(until=ev)
        # negative delays are rejected by both backends
        env3 = Environment(queue=mode)
        with pytest.raises(SimulationError):
            env3.timeout(-5)


def test_queue_knob_validation():
    with pytest.raises(SimulationError):
        Environment(queue="wheel")
    assert Environment(queue="heap").queue_mode == "heap"
    assert Environment(queue="calendar").queue_mode == "calendar"
    assert Environment().queue_mode == core.DEFAULT_QUEUE


# ---------------------------------------------------------------------------
# the strongest equivalence statement available: the heap backend must
# reproduce the exact golden fingerprints the calendar backend pins
# ---------------------------------------------------------------------------

def test_golden_suite_heap_mode(monkeypatch):
    from tests import test_determinism_golden as golden

    monkeypatch.setattr(core, "DEFAULT_QUEUE", "heap")
    golden.test_r1_table_matches_golden()
    golden.test_r4_table_matches_golden()
    golden.test_r17_table_matches_golden()
    golden.test_clean_traces_match_golden()
    golden.test_lossy_traces_match_golden()
