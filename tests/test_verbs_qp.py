"""Integration tests for the verbs layer: QPs, MRs, CQs over the fabric."""

import pytest

from repro.cluster import build_cluster
from repro.verbs import (
    Access,
    BadWorkRequest,
    NotConnected,
    Opcode,
    ProtectionError,
    QueueFullError,
    RecvWR,
    SendWR,
    WCOpcode,
    WCStatus,
)


def make_pair(n=2, **kw):
    """Cluster + connected QP pair between ranks 0 and 1 with full-heap MRs."""
    cl = build_cluster(n, **kw)
    setups = []
    for r in (0, 1):
        node = cl[r]
        pd = node.context.alloc_pd()
        heap = node.memory.alloc(1 << 20)
        mr = node.context.reg_mr_sync(pd, heap, 1 << 20, Access.ALL)
        cq = node.context.create_cq()
        rcq = node.context.create_cq()
        setups.append((pd, heap, mr, cq, rcq))
    qps = []
    for r, (pd, heap, mr, cq, rcq) in enumerate(setups):
        qps.append(cl[r].context.create_qp(pd, cq, rcq))
    qps[0].connect(qps[1])
    return cl, setups, qps


def drain(cq, env, n=1, deadline=10_000_000):
    """Run the sim until cq holds >= n completions; return them."""

    def waiter(env):
        got = []
        while len(got) < n:
            yield cq.wait_nonempty()
            got.extend(cq.poll())
        return got

    proc = env.process(waiter(env))
    return env.run(until=proc)


def test_rdma_write_moves_bytes_and_completes():
    cl, setups, qps = make_pair()
    (pd0, heap0, mr0, cq0, _), (pd1, heap1, mr1, cq1, _) = setups
    payload = b"photon!!" * 8
    cl[0].memory.write(heap0, payload)
    qps[0].post_send(SendWR(
        opcode=Opcode.RDMA_WRITE, wr_id=7, local_addr=heap0,
        length=len(payload), remote_addr=heap1, rkey=mr1.rkey))
    wcs = drain(cq0, cl.env)
    assert cl[1].memory.read(heap1, len(payload)) == payload
    assert wcs[0].wr_id == 7
    assert wcs[0].opcode is WCOpcode.RDMA_WRITE
    assert wcs[0].ok


def test_rdma_write_unknown_rkey_rejected():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, _, _, _) = setups
    with pytest.raises(ProtectionError):
        qps[0].post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_addr=heap0, length=8,
            remote_addr=heap1, rkey=999999))


def test_rdma_write_outside_mr_rejected():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, mr1, _, _) = setups
    with pytest.raises(ProtectionError):
        qps[0].post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_addr=heap0, length=8,
            remote_addr=mr1.end - 4, rkey=mr1.rkey))


def test_rdma_write_requires_remote_write_permission():
    cl = build_cluster(2)
    qp_stuff = []
    for r in (0, 1):
        node = cl[r]
        pd = node.context.alloc_pd()
        heap = node.memory.alloc(4096)
        access = Access.ALL if r == 0 else Access.REMOTE_READ
        mr = node.context.reg_mr_sync(pd, heap, 4096, access)
        cq = node.context.create_cq()
        qp_stuff.append((node, pd, heap, mr, cq))
    qp0 = qp_stuff[0][0].context.create_qp(qp_stuff[0][1], qp_stuff[0][4],
                                           qp_stuff[0][4])
    qp1 = qp_stuff[1][0].context.create_qp(qp_stuff[1][1], qp_stuff[1][4],
                                           qp_stuff[1][4])
    qp0.connect(qp1)
    with pytest.raises(ProtectionError):
        qp0.post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_addr=qp_stuff[0][2], length=8,
            remote_addr=qp_stuff[1][2], rkey=qp_stuff[1][3].rkey))


def test_rdma_read_pulls_remote_bytes():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups
    cl[1].memory.write(heap1, b"remote-data-1234")
    qps[0].post_send(SendWR(
        opcode=Opcode.RDMA_READ, wr_id=3, local_addr=heap0, length=16,
        remote_addr=heap1, rkey=mr1.rkey))
    wcs = drain(cq0, cl.env)
    assert cl[0].memory.read(heap0, 16) == b"remote-data-1234"
    assert wcs[0].opcode is WCOpcode.RDMA_READ


def test_read_latency_is_a_round_trip():
    """READ must take noticeably longer than WRITE delivery (RTT vs one-way)."""
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups

    def prog(env):
        t0 = env.now
        qps[0].post_send(SendWR(opcode=Opcode.RDMA_WRITE, local_addr=heap0,
                                length=8, remote_addr=heap1, rkey=mr1.rkey))
        yield cq0.wait_nonempty()
        cq0.poll()
        write_done = env.now - t0
        t1 = env.now
        qps[0].post_send(SendWR(opcode=Opcode.RDMA_READ, local_addr=heap0,
                                length=8, remote_addr=heap1, rkey=mr1.rkey))
        yield cq0.wait_nonempty()
        cq0.poll()
        read_done = env.now - t1
        return write_done, read_done

    p = cl.env.process(prog(cl.env))
    write_done, read_done = cl.env.run(until=p)
    # write completion already includes the ack RTT, so read ~ write, but
    # read must never be faster than the write's data-delivery leg.
    assert read_done > 0.6 * write_done


def test_send_recv_fifo_matching():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, _, _, rcq1) = setups
    cl[0].memory.write(heap0, b"AAAA")
    cl[0].memory.write(heap0 + 4, b"BBBB")
    qps[1].post_recv(RecvWR(wr_id=100, addr=heap1, length=4))
    qps[1].post_recv(RecvWR(wr_id=101, addr=heap1 + 16, length=4))
    qps[0].post_send(SendWR(opcode=Opcode.SEND, wr_id=1, local_addr=heap0,
                            length=4))
    qps[0].post_send(SendWR(opcode=Opcode.SEND, wr_id=2,
                            local_addr=heap0 + 4, length=4))
    wcs = drain(rcq1, cl.env, n=2)
    assert [w.wr_id for w in wcs] == [100, 101]
    assert [w.opcode for w in wcs] == [WCOpcode.RECV, WCOpcode.RECV]
    assert cl[1].memory.read(heap1, 4) == b"AAAA"
    assert cl[1].memory.read(heap1 + 16, 4) == b"BBBB"
    assert all(w.src_rank == 0 for w in wcs)


def test_send_too_big_for_recv_buffer_errors():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, _, _, rcq1) = setups
    qps[1].post_recv(RecvWR(wr_id=5, addr=heap1, length=4))
    qps[0].post_send(SendWR(opcode=Opcode.SEND, local_addr=heap0, length=64))
    wcs = drain(rcq1, cl.env)
    assert wcs[0].status is WCStatus.LOC_LEN_ERR


def test_send_without_recv_parks_until_posted():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, _, _, rcq1) = setups
    cl[0].memory.write(heap0, b"late")
    qps[0].post_send(SendWR(opcode=Opcode.SEND, local_addr=heap0, length=4))

    def poster(env):
        yield env.timeout(50_000)
        qps[1].post_recv(RecvWR(wr_id=9, addr=heap1, length=4))
        yield rcq1.wait_nonempty()
        return rcq1.poll(), env.now

    p = cl.env.process(poster(cl.env))
    wcs, t = cl.env.run(until=p)
    assert wcs[0].wr_id == 9
    assert cl[1].memory.read(heap1, 4) == b"late"
    # RNR penalty applies
    assert t >= 50_000 + cl.params.nic.rnr_retry_ns
    assert cl.counters.get("verbs.rnr_stalls") == 1


def test_write_with_imm_consumes_recv_and_carries_imm():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, rcq1) = setups
    cl[0].memory.write(heap0, b"IMMDATA!")
    qps[1].post_recv(RecvWR(wr_id=55))
    qps[0].post_send(SendWR(
        opcode=Opcode.RDMA_WRITE_WITH_IMM, local_addr=heap0, length=8,
        remote_addr=heap1, rkey=mr1.rkey, imm=0xCAFE))
    wcs = drain(rcq1, cl.env)
    assert wcs[0].opcode is WCOpcode.RECV_RDMA_WITH_IMM
    assert wcs[0].imm == 0xCAFE
    assert wcs[0].wr_id == 55
    assert cl[1].memory.read(heap1, 8) == b"IMMDATA!"


def test_imm_must_fit_32_bits():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, mr1, _, _) = setups
    with pytest.raises(BadWorkRequest):
        qps[0].post_send(SendWR(
            opcode=Opcode.RDMA_WRITE_WITH_IMM, local_addr=heap0, length=8,
            remote_addr=heap1, rkey=mr1.rkey, imm=1 << 32))


def test_fetch_add_atomic():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups
    cl[1].memory.write_u64(heap1, 40)
    qps[0].post_send(SendWR(
        opcode=Opcode.ATOMIC_FETCH_ADD, local_addr=heap0,
        remote_addr=heap1, rkey=mr1.rkey, compare_add=2))
    wcs = drain(cq0, cl.env)
    assert wcs[0].opcode is WCOpcode.ATOMIC
    assert cl[1].memory.read_u64(heap1) == 42
    assert cl[0].memory.read_u64(heap0) == 40  # old value returned


def test_cmp_swap_atomic_success_and_failure():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups
    cl[1].memory.write_u64(heap1, 7)
    qps[0].post_send(SendWR(
        opcode=Opcode.ATOMIC_CMP_SWAP, wr_id=1, local_addr=heap0,
        remote_addr=heap1, rkey=mr1.rkey, compare_add=7, swap=99))
    drain(cq0, cl.env)
    assert cl[1].memory.read_u64(heap1) == 99
    qps[0].post_send(SendWR(
        opcode=Opcode.ATOMIC_CMP_SWAP, wr_id=2, local_addr=heap0,
        remote_addr=heap1, rkey=mr1.rkey, compare_add=7, swap=123))
    drain(cq0, cl.env)
    assert cl[1].memory.read_u64(heap1) == 99  # unchanged, compare failed
    assert cl[0].memory.read_u64(heap0) == 99  # old value returned


def test_atomics_serialize_at_target():
    """Concurrent fetch-adds from two ranks never lose updates."""
    cl = build_cluster(3)
    nodes = [cl[r] for r in range(3)]
    pds = [n.context.alloc_pd() for n in nodes]
    heaps = [n.memory.alloc(4096) for n in nodes]
    mrs = [n.context.reg_mr_sync(pds[i], heaps[i], 4096)
           for i, n in enumerate(nodes)]
    cqs = [n.context.create_cq() for n in nodes]
    # connect rank1->rank0 and rank2->rank0
    qp_a0 = nodes[1].context.create_qp(pds[1], cqs[1], cqs[1])
    qp_0a = nodes[0].context.create_qp(pds[0], cqs[0], cqs[0])
    qp_a0.connect(qp_0a)
    qp_b0 = nodes[2].context.create_qp(pds[2], cqs[2], cqs[2])
    qp_0b = nodes[0].context.create_qp(pds[0], cqs[0], cqs[0])
    qp_b0.connect(qp_0b)
    cl[0].memory.write_u64(heaps[0], 0)

    def hammer(env, qp, cq, heap, n_ops):
        for _ in range(n_ops):
            qp.post_send(SendWR(opcode=Opcode.ATOMIC_FETCH_ADD,
                                local_addr=heap, remote_addr=heaps[0],
                                rkey=mrs[0].rkey, compare_add=1))
            yield cq.wait_nonempty()
            cq.poll()

    p1 = cl.env.process(hammer(cl.env, qp_a0, cqs[1], heaps[1], 10))
    p2 = cl.env.process(hammer(cl.env, qp_b0, cqs[2], heaps[2], 10))
    cl.env.run(until=cl.env.all_of([p1, p2]))
    assert cl[0].memory.read_u64(heaps[0]) == 20


def test_unsignaled_write_produces_no_cqe():
    cl, setups, qps = make_pair()
    (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups
    qps[0].post_send(SendWR(
        opcode=Opcode.RDMA_WRITE, local_addr=heap0, length=8,
        remote_addr=heap1, rkey=mr1.rkey, signaled=False))
    cl.env.run()
    assert len(cq0) == 0
    assert qps[0].sq_available == qps[0].max_send_wr  # slot released anyway


def test_sq_depth_enforced():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, mr1, _, _) = setups
    qp = qps[0]
    for _ in range(qp.max_send_wr):
        qp.post_send(SendWR(opcode=Opcode.RDMA_WRITE, local_addr=heap0,
                            length=8, remote_addr=heap1, rkey=mr1.rkey,
                            signaled=False))
    with pytest.raises(QueueFullError):
        qp.post_send(SendWR(opcode=Opcode.RDMA_WRITE, local_addr=heap0,
                            length=8, remote_addr=heap1, rkey=mr1.rkey))


def test_inline_beyond_limit_rejected():
    cl, setups, qps = make_pair()
    (_, heap0, _, _, _), (_, heap1, mr1, _, _) = setups
    too_big = cl.params.nic.max_inline + 1
    with pytest.raises(BadWorkRequest):
        qps[0].post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_addr=heap0, length=too_big,
            remote_addr=heap1, rkey=mr1.rkey, inline=True))


def test_inline_write_faster_than_dma_write():
    """Inline skips the source DMA fetch, so tiny writes complete sooner."""

    def one(inline):
        cl, setups, qps = make_pair()
        (_, heap0, _, cq0, _), (_, heap1, mr1, _, _) = setups

        def prog(env):
            qps[0].post_send(SendWR(
                opcode=Opcode.RDMA_WRITE, local_addr=heap0, length=64,
                remote_addr=heap1, rkey=mr1.rkey, inline=inline))
            yield cq0.wait_nonempty()
            return env.now

        p = cl.env.process(prog(cl.env))
        return cl.env.run(until=p)

    assert one(True) <= one(False)


def test_post_on_unconnected_qp_rejected():
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    heap = node.memory.alloc(4096)
    node.context.reg_mr_sync(pd, heap, 4096)
    cq = node.context.create_cq()
    qp = node.context.create_qp(pd, cq, cq)
    with pytest.raises(NotConnected):
        qp.post_send(SendWR(opcode=Opcode.SEND, local_addr=heap, length=4))
    with pytest.raises(NotConnected):
        qp.post_recv(RecvWR(addr=heap, length=4))


def test_reg_mr_generator_charges_time():
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    heap = node.memory.alloc(1 << 20)

    def prog(env):
        mr = yield from node.context.reg_mr(pd, heap, 1 << 20)
        return env.now, mr

    p = cl.env.process(prog(cl.env))
    t, mr = cl.env.run(until=p)
    pages = node.memory.pages_spanned(heap, 1 << 20)
    assert t == cl.params.host.reg_base_ns + pages * cl.params.host.reg_per_page_ns
    assert mr.valid


def test_dereg_mr_invalidates():
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    heap = node.memory.alloc(4096)
    mr = node.context.reg_mr_sync(pd, heap, 4096)

    def prog(env):
        yield from node.context.dereg_mr(mr)

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert not mr.valid
    with pytest.raises(ProtectionError):
        node.context.check_remote(mr.rkey, heap, 8, Access.REMOTE_WRITE)


def test_loopback_qp_same_rank():
    """A rank can connect a QP pair to itself (used by collectives)."""
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    heap = node.memory.alloc(8192)
    mr = node.context.reg_mr_sync(pd, heap, 8192)
    cq = node.context.create_cq()
    qp_a = node.context.create_qp(pd, cq, cq)
    qp_b = node.context.create_qp(pd, cq, cq)
    qp_a.connect(qp_b)
    node.memory.write(heap, b"self")
    qp_a.post_send(SendWR(opcode=Opcode.RDMA_WRITE, local_addr=heap,
                          length=4, remote_addr=heap + 4096, rkey=mr.rkey))
    drain(cq, cl.env)
    assert node.memory.read(heap + 4096, 4) == b"self"
