"""Unit tests for minimpi engine internals: wire format, slot accounting,
software-overhead accounting, request lifecycle."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import MPIConfig, mpi_init
from repro.minimpi.protocol import HDR, KIND_EAGER, KIND_FIN, KIND_RTS, MPIRequest
from repro.sim import SimulationError

TIMEOUT = 10 ** 12


def test_header_roundtrip():
    raw = HDR.pack(KIND_RTS, 42, 1 << 20, 7, 0x1000, 99)
    kind, tag, size, sreq, addr, rkey = HDR.unpack(raw)
    assert (kind, tag, size, sreq, addr, rkey) == \
        (KIND_RTS, 42, 1 << 20, 7, 0x1000, 99)


def test_request_ids_unique():
    a = MPIRequest("send", 0)
    b = MPIRequest("recv", 0)
    assert a.rid != b.rid
    assert not a.done
    a.complete(5)
    assert a.done and a.t_completed == 5
    with pytest.raises(SimulationError):
        a.complete(6)


def test_send_slot_accounting():
    """Slots are finite per peer and recycle after send completions."""
    cfg = MPIConfig(eager_credits=2)
    cl = build_cluster(2)
    comms = mpi_init(cl, cfg)
    ch = comms[0].engine._peer(1)
    assert len(ch.send_slots) == 2
    src = cl[0].memory.alloc(1024)

    def prog(env):
        reqs = []
        for i in range(6):  # burst: exceeds the 2-slot window
            req = yield from comms[0].isend(src, 32, 1, tag=i)
            reqs.append(req)
        yield from comms[0].waitall(reqs)

    def rx(env):
        dst = cl[1].memory.alloc(1024)
        for i in range(6):
            yield from comms[1].recv(dst, 64, 0, tag=i)

    p0 = cl.env.process(prog(cl.env))
    p1 = cl.env.process(rx(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert len(ch.send_slots) == 2  # all returned
    assert cl.counters.get("mpi.eager_stalls") > 0  # backpressure hit


def test_recv_bounces_reposted():
    cfg = MPIConfig(prepost=4)
    cl = build_cluster(2)
    comms = mpi_init(cl, cfg)
    src = cl[0].memory.alloc(64)
    dst = cl[1].memory.alloc(64)

    def tx(env):
        for i in range(10):
            yield from comms[0].send(src, 16, 1, tag=i)

    def rx(env):
        for i in range(10):
            yield from comms[1].recv(dst, 64, 0, tag=i)

    p0 = cl.env.process(tx(cl.env))
    p1 = cl.env.process(rx(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    # all prepost slots live again
    ch = comms[1].engine._peer(0)
    assert len(ch.recv_slots) == 4


def test_sw_overhead_accounted_per_call():
    """isend entry charges exactly sw_overhead_ns before protocol work."""
    cfg = MPIConfig(sw_overhead_ns=777)
    cl = build_cluster(2)
    comms = mpi_init(cl, cfg)
    src = cl[0].memory.alloc(64)

    def prog(env):
        t0 = env.now
        req = yield from comms[0].isend(src, 0, 0, tag=1)  # self, 0 bytes
        return env.now - t0

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value >= 777


def test_rendezvous_uses_rcache():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    size = 64 * 1024
    src = cl[0].memory.alloc(size)
    dst = cl[1].memory.alloc(size)

    def tx(env):
        for i in range(3):
            yield from comms[0].send(src, size, 1, tag=i)

    def rx(env):
        for i in range(3):
            yield from comms[1].recv(dst, size, 0, tag=i)

    p0 = cl.env.process(tx(cl.env))
    p1 = cl.env.process(rx(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    # sender registered once, hit twice; receiver likewise
    assert comms[0].engine.rcache.misses == 1
    assert comms[0].engine.rcache.hits == 2
    assert comms[1].engine.rcache.hits == 2


def test_unknown_peer_rejected():
    cl = build_cluster(2)
    comms = mpi_init(cl)
    with pytest.raises(SimulationError):
        comms[0].engine._peer(5)


def test_eager_threshold_routes_protocols():
    cfg = MPIConfig(eager_threshold=1024)
    cl = build_cluster(2)
    comms = mpi_init(cl, cfg)
    src = cl[0].memory.alloc(8192)
    dst = cl[1].memory.alloc(8192)

    def tx(env):
        yield from comms[0].send(src, 1024, 1, tag=1)  # at threshold: eager
        yield from comms[0].send(src, 1025, 1, tag=2)  # above: rendezvous

    def rx(env):
        yield from comms[1].recv(dst, 8192, 0, tag=1)
        yield from comms[1].recv(dst, 8192, 0, tag=2)

    p0 = cl.env.process(tx(cl.env))
    p1 = cl.env.process(rx(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert cl.counters.get("mpi.eager_sends") == 1
    assert cl.counters.get("mpi.rndv_sends") == 1
