"""Integration tests for Photon collectives (SPMD over simulated ranks)."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.photon import PhotonConfig, photon_init
from repro.sim import SimulationError


def spmd(n, body, config=None, **kw):
    """Run ``body(ph, rank)`` as an SPMD program; returns per-rank results."""
    cl = build_cluster(n, **kw)
    ph = photon_init(cl, config)
    procs = [cl.env.process(body(ph[r], r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    return cl, [p.value for p in procs]


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_barrier_completes_all_sizes(n):
    def body(ph, rank):
        yield from ph.barrier()
        return ph.env.now

    cl, times = spmd(n, body)
    assert len(times) == n


def test_barrier_actually_synchronises():
    """A late rank holds everyone: nobody exits before the last entry."""
    enter = {}
    exit_ = {}

    def body(ph, rank):
        yield ph.env.timeout(rank * 100_000)  # staggered arrival
        enter[rank] = ph.env.now
        yield from ph.barrier()
        exit_[rank] = ph.env.now

    cl, _ = spmd(4, body)
    assert max(enter.values()) == enter[3]
    for r in range(4):
        assert exit_[r] >= enter[3]


def test_barrier_epochs_do_not_cross():
    """Two consecutive barriers stay separate."""

    def body(ph, rank):
        yield from ph.barrier()
        t1 = ph.env.now
        yield from ph.barrier()
        return t1, ph.env.now

    cl, res = spmd(4, body)
    for t1, t2 in res:
        assert t2 > t1


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
def test_allreduce_sum_small(n):
    def body(ph, rank):
        arr = np.full(16, rank + 1, dtype=np.int64)
        out = yield from ph.allreduce(arr, "sum")
        return out

    cl, res = spmd(n, body)
    expected = sum(range(1, n + 1))
    for out in res:
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, np.full(16, expected))


@pytest.mark.parametrize("op,func", [("min", min), ("max", max)])
def test_allreduce_min_max(op, func):
    def body(ph, rank):
        arr = np.array([rank * 10.0, -rank * 2.0], dtype=np.float64)
        out = yield from ph.allreduce(arr, op)
        return out

    cl, res = spmd(4, body)
    col0 = func(r * 10.0 for r in range(4))
    col1 = func(-r * 2.0 for r in range(4))
    for out in res:
        np.testing.assert_allclose(out, [col0, col1])


def test_allreduce_large_uses_ring():
    """Array above the eager limit goes through ring reduce-scatter."""
    n = 4
    elems = 8192  # 64 KiB of float64 > 8 KiB eager limit

    def body(ph, rank):
        arr = np.arange(elems, dtype=np.float64) * (rank + 1)
        out = yield from ph.allreduce(arr, "sum")
        return out

    cl, res = spmd(n, body)
    expected = np.arange(elems, dtype=np.float64) * sum(range(1, n + 1))
    for out in res:
        np.testing.assert_allclose(out, expected)


def test_allreduce_single_rank_identity():
    def body(ph, rank):
        arr = np.array([1.5, 2.5])
        out = yield from ph.allreduce(arr, "sum")
        return out

    cl, res = spmd(1, body)
    np.testing.assert_allclose(res[0], [1.5, 2.5])


def test_allreduce_unknown_op_rejected():
    cl = build_cluster(2)
    ph = photon_init(cl)
    with pytest.raises(SimulationError):
        list(ph[0].allreduce(np.zeros(4), "xor"))


@pytest.mark.parametrize("n", [2, 3, 5])
def test_allgather_roundtrip(n):
    def body(ph, rank):
        blob = bytes([rank]) * 32
        out = yield from ph.allgather(blob)
        return out

    cl, res = spmd(n, body)
    for out in res:
        assert out == [bytes([r]) * 32 for r in range(n)]


def test_exchange_publishes_buffer_metadata():
    """The bootstrap pattern: every rank learns every buffer's (addr, rkey)."""
    import struct

    def body(ph, rank):
        buf = ph.buffer(4096)
        blob = struct.pack("<QQ", buf.addr, buf.rkey)
        infos = yield from ph.exchange(blob)
        return [struct.unpack("<QQ", b) for b in infos]

    cl, res = spmd(3, body)
    assert res[0] == res[1] == res[2]
    assert len(res[0]) == 3


def test_allreduce_preserves_shape():
    def body(ph, rank):
        arr = np.ones((4, 4), dtype=np.float32)
        out = yield from ph.allreduce(arr, "sum")
        return out

    cl, res = spmd(2, body)
    assert res[0].shape == (4, 4)
    np.testing.assert_allclose(res[0], np.full((4, 4), 2.0))


def test_collectives_mixed_sequence():
    """Barrier / allreduce / allgather interleave without cross-talk."""

    def body(ph, rank):
        yield from ph.barrier()
        s = yield from ph.allreduce(np.array([rank], dtype=np.int64), "sum")
        g = yield from ph.allgather(bytes([rank]))
        yield from ph.barrier()
        return int(s[0]), g

    cl, res = spmd(4, body)
    for s, g in res:
        assert s == 6
        assert g == [b"\x00", b"\x01", b"\x02", b"\x03"]
