"""Integration tests for minimpi point-to-point over the fabric."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import ANY_SOURCE, ANY_TAG, MPIConfig, mpi_init
from repro.sim import SimulationError

TIMEOUT = 100_000_000


def setup(n=2, config=None, **kw):
    cl = build_cluster(n, **kw)
    comms = mpi_init(cl, config)
    return cl, comms


def run_all(cl, procs):
    return cl.env.run(until=cl.env.all_of(procs))


def heap(cl, rank, size=1 << 20):
    return cl[rank].memory.alloc(size)


def test_eager_send_recv():
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, b"eager payload!")

    def sender(env):
        yield from comms[0].send(s, 14, dst=1, tag=3)

    def receiver(env):
        status = yield from comms[1].recv(r, 64, src=0, tag=3)
        return status

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    st = p1.value
    assert (st.source, st.tag, st.count) == (0, 3, 14)
    assert cl[1].memory.read(r, 14) == b"eager payload!"


def test_rendezvous_send_recv():
    cl, comms = setup()
    size = 128 * 1024
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, bytes(range(256)) * 512)

    def sender(env):
        yield from comms[0].send(s, size, dst=1, tag=1)
        return env.now

    def receiver(env):
        st = yield from comms[1].recv(r, size, src=0, tag=1)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value.count == size
    assert cl[1].memory.read(r, size) == bytes(range(256)) * 512
    assert cl.counters.get("mpi.rndv_sends") == 1


def test_unexpected_eager_message_buffered():
    """Send lands before the receive is posted; payload is preserved."""
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, b"early bird")

    def sender(env):
        yield from comms[0].send(s, 10, dst=1, tag=9)

    def receiver(env):
        yield env.timeout(100_000)  # post the receive late
        # progress runs (via probe) before the receive is posted, so the
        # message lands in the unexpected queue first
        st0 = yield from comms[1].probe(timeout_ns=TIMEOUT)
        assert st0 is not None
        st = yield from comms[1].recv(r, 64, src=0, tag=9)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert cl[1].memory.read(r, 10) == b"early bird"
    assert cl.counters.get("mpi.unexpected") == 1


def test_unexpected_rts_buffered():
    cl, comms = setup()
    size = 64 * 1024
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, b"R" * size)

    def sender(env):
        yield from comms[0].send(s, size, dst=1, tag=2)

    def receiver(env):
        yield env.timeout(200_000)
        st0 = yield from comms[1].probe(timeout_ns=TIMEOUT)
        assert st0 is not None and st0.count == size
        st = yield from comms[1].recv(r, size, src=0, tag=2)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert cl[1].memory.read(r, size) == b"R" * size
    assert cl.counters.get("mpi.unexpected_rts") == 1


def test_wildcard_receive_sets_status():
    cl, comms = setup(n=3)
    s = heap(cl, 2)
    r = heap(cl, 0)
    cl[2].memory.write(s, b"who am I")

    def sender(env):
        yield from comms[2].send(s, 8, dst=0, tag=42)

    def receiver(env):
        st = yield from comms[0].recv(r, 64, src=ANY_SOURCE, tag=ANY_TAG)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert (p1.value.source, p1.value.tag) == (2, 42)


def test_message_ordering_same_peer_same_tag():
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)

    def sender(env):
        for i in range(8):
            cl[0].memory.write(s + i * 16, bytes([i]) * 16)
            yield from comms[0].send(s + i * 16, 16, dst=1, tag=1)

    def receiver(env):
        order = []
        for _ in range(8):
            st = yield from comms[1].recv(r, 16, src=0, tag=1)
            order.append(cl[1].memory.read(r, 1)[0])
        return order

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value == list(range(8))


def test_isend_irecv_overlap():
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, b"x" * 256)

    def sender(env):
        reqs = []
        for i in range(4):
            req = yield from comms[0].isend(s + i * 64, 64, dst=1, tag=i)
            reqs.append(req)
        yield from comms[0].waitall(reqs)
        return env.now

    def receiver(env):
        reqs = []
        for i in range(4):
            req = yield from comms[1].irecv(r + i * 64, 64, src=0, tag=i)
            reqs.append(req)
        yield from comms[1].waitall(reqs)
        return env.now

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])


def test_eager_truncation_raises():
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)

    def sender(env):
        yield from comms[0].send(s, 100, dst=1, tag=1)

    def receiver(env):
        yield from comms[1].recv(r, 10, src=0, tag=1)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    with pytest.raises(SimulationError, match="truncat"):
        run_all(cl, [p0, p1])


def test_self_send_recv():
    cl, comms = setup()
    s = heap(cl, 0)
    r = s + 4096
    cl[0].memory.write(s, b"to myself")

    def prog(env):
        sreq = yield from comms[0].isend(s, 9, dst=0, tag=5)
        st = yield from comms[0].recv(r, 64, src=0, tag=5)
        yield from comms[0].wait(sreq)
        return st

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert cl[0].memory.read(r, 9) == b"to myself"


def test_probe_then_recv():
    cl, comms = setup()
    s = heap(cl, 0)
    r = heap(cl, 1)
    cl[0].memory.write(s, b"probe me!")

    def sender(env):
        yield from comms[0].send(s, 9, dst=1, tag=7)

    def receiver(env):
        st = yield from comms[1].probe(src=ANY_SOURCE, tag=ANY_TAG,
                                       timeout_ns=TIMEOUT)
        assert st is not None and st.count == 9
        st2 = yield from comms[1].recv(r, 64, src=st.source, tag=st.tag)
        return st2

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert cl[1].memory.read(r, 9) == b"probe me!"


def test_iprobe_returns_none_when_empty():
    cl, comms = setup()

    def prog(env):
        st = yield from comms[0].iprobe()
        return st

    p = cl.env.process(prog(cl.env))
    run_all(cl, [p])
    assert p.value is None


def test_sendrecv_exchange():
    cl, comms = setup()
    bufs = [heap(cl, r) for r in range(2)]

    def body(env, rank):
        other = 1 - rank
        cl[rank].memory.write(bufs[rank], bytes([rank]) * 32)
        st = yield from comms[rank].sendrecv(
            bufs[rank], 32, other, 1,
            bufs[rank] + 64, 64, other, 1)
        return st

    procs = [cl.env.process(body(cl.env, r)) for r in range(2)]
    run_all(cl, procs)
    assert cl[0].memory.read(bufs[0] + 64, 32) == bytes([1]) * 32
    assert cl[1].memory.read(bufs[1] + 64, 32) == bytes([0]) * 32


def test_eager_flow_control_many_messages():
    """Flood beyond the credit window; nothing is lost or reordered."""
    cfg = MPIConfig(eager_credits=4, prepost=8)
    cl, comms = setup(config=cfg)
    s = heap(cl, 0)
    r = heap(cl, 1)
    n_msgs = 50

    def sender(env):
        for i in range(n_msgs):
            cl[0].memory.write(s, bytes([i]) * 8)
            yield from comms[0].send(s, 8, dst=1, tag=1)

    def receiver(env):
        seen = []
        for _ in range(n_msgs):
            yield from comms[1].recv(r, 8, src=0, tag=1)
            seen.append(cl[1].memory.read(r, 1)[0])
        return seen

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value == list(range(n_msgs))


def test_zero_byte_message():
    cl, comms = setup()
    r = heap(cl, 1)

    def sender(env):
        yield from comms[0].send(0, 0, dst=1, tag=1)

    def receiver(env):
        st = yield from comms[1].recv(r, 64, src=0, tag=1)
        return st

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    run_all(cl, [p0, p1])
    assert p1.value.count == 0
