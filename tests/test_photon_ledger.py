"""Unit tests for ledger rings and wire formats."""

import pytest

from repro.fabric import IB_FDR, Memory
from repro.photon.ledger import LocalRing, RemoteRing, RingSpec
from repro.photon.wire import (
    COMPLETION_ENTRY_SIZE,
    CompletionEntry,
    EAGER_HEADER_SIZE,
    EagerHeader,
    FIN_ENTRY_SIZE,
    FinEntry,
    INFO_ENTRY_SIZE,
    InfoEntry,
)
from repro.sim import SimulationError


# ------------------------------------------------------------- wire formats


def test_completion_entry_roundtrip():
    e = CompletionEntry(seq=5, cid=0xDEADBEEF00112233, src=7)
    raw = e.pack()
    assert len(raw) == COMPLETION_ENTRY_SIZE
    assert CompletionEntry.unpack(raw) == e


def test_eager_header_roundtrip():
    h = EagerHeader(seq=9, cid=123456789, src=3, size=4096)
    raw = h.pack()
    assert len(raw) == EAGER_HEADER_SIZE
    assert EagerHeader.unpack(raw) == h


def test_info_entry_roundtrip():
    e = InfoEntry(seq=2, req=77, tag=42, addr=0x1000, size=1 << 20,
                  rkey=55, src=1)
    raw = e.pack()
    assert len(raw) == INFO_ENTRY_SIZE
    assert InfoEntry.unpack(raw) == e


def test_fin_entry_roundtrip():
    e = FinEntry(seq=11, req=1234)
    raw = e.pack()
    assert len(raw) == FIN_ENTRY_SIZE
    assert FinEntry.unpack(raw) == e


# ------------------------------------------------------------- rings


def ring_fixture(nslots=4, entry=COMPLETION_ENTRY_SIZE):
    mem = Memory(1 << 16, IB_FDR.host)
    spec = RingSpec("t", nslots, entry)
    remote_base = mem.alloc(spec.nbytes)
    staging = mem.alloc(spec.nbytes)
    credit = mem.alloc(8)
    producer = RemoteRing(spec, remote_base, rkey=1, staging_base=staging,
                          credit_addr=credit, memory=mem)
    consumer = LocalRing(spec, remote_base, mem,
                         producer_credit_addr=credit, producer_rkey=1,
                         credit_fraction=0.5)
    return mem, producer, consumer, credit


def test_ring_spec_geometry():
    spec = RingSpec("x", 8, 24)
    assert spec.nbytes == 192
    assert spec.slot_offset(0) == 0
    assert spec.slot_offset(9) == 24  # wraps


def test_producer_claims_sequential_slots():
    mem, prod, cons, _ = ring_fixture()
    seqs = []
    for _ in range(4):
        seq, stage, remote = prod.claim()
        seqs.append(seq)
    assert seqs == [1, 2, 3, 4]
    assert prod.available() == 0


def test_producer_full_raises_without_credit():
    mem, prod, cons, _ = ring_fixture()
    for _ in range(4):
        prod.claim()
    with pytest.raises(SimulationError):
        prod.claim()


def test_credit_replenishes_producer():
    mem, prod, cons, credit = ring_fixture()
    for _ in range(4):
        prod.claim()
    assert prod.available() == 0
    mem.write_u64(credit, 2)  # consumer drained two
    assert prod.available() == 2


def test_consumer_sees_entry_after_sequenced_write():
    mem, prod, cons, _ = ring_fixture()
    assert not cons.ready()
    seq, stage, remote = prod.claim()
    entry = CompletionEntry(seq=seq, cid=99, src=0).pack()
    mem.write(remote, entry)  # simulate RDMA placement
    assert cons.ready()
    got = CompletionEntry.unpack(cons.read_head())
    assert got.cid == 99
    cons.advance()
    assert not cons.ready()


def test_stale_wrapped_entry_not_ready():
    """After wrap, the slot contains seq from a full ring ago — not ready."""
    mem, prod, cons, credit = ring_fixture()
    for i in range(4):
        seq, _, remote = prod.claim()
        mem.write(remote, CompletionEntry(seq=seq, cid=i, src=0).pack())
    for _ in range(4):
        assert cons.ready()
        cons.advance()
    # consumer at index 4 (slot 0): slot still holds seq=1, expecting 5
    assert not cons.ready()


def test_credit_due_after_fraction():
    mem, prod, cons, _ = ring_fixture(nslots=4)
    assert not cons.credit_due()
    cons.consumed = 2  # half of 4 drained
    assert cons.credit_due()
    assert cons.mark_credit_sent() == 2
    assert not cons.credit_due()


def test_out_of_order_entry_not_consumed_early():
    """Entry k+1 landing before k must wait (ordering safety check)."""
    mem, prod, cons, _ = ring_fixture()
    s1, _, r1 = prod.claim()
    s2, _, r2 = prod.claim()
    mem.write(r2, CompletionEntry(seq=s2, cid=2, src=0).pack())
    assert not cons.ready()  # head (seq 1) not written yet
    mem.write(r1, CompletionEntry(seq=s1, cid=1, src=0).pack())
    assert cons.ready()


def test_credit_ahead_of_produced_detected():
    mem, prod, cons, credit = ring_fixture()
    mem.write_u64(credit, 5)  # impossible: more consumed than produced
    with pytest.raises(SimulationError):
        prod.available()
