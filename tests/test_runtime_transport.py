"""Focused tests for the runtime transports (edge cases, pipelining)."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init
from repro.runtime import ActionRegistry, build_runtime
from repro.runtime.transport import MpiTransport, PhotonTransport
from repro.sim import SimulationError

TIMEOUT = 100_000_000_000


def photon_pair(max_parcel=1 << 16):
    cl = build_cluster(2)
    ph = photon_init(cl)
    tps = [PhotonTransport(ph[r], max_parcel=max_parcel) for r in range(2)]
    return cl, tps


def mpi_pair(max_parcel=1 << 16):
    cl = build_cluster(2)
    comms = mpi_init(cl)
    tps = [MpiTransport(comms[r], max_parcel=max_parcel) for r in range(2)]
    return cl, tps


@pytest.mark.parametrize("pair", [photon_pair, mpi_pair])
def test_oversized_parcel_rejected(pair):
    cl, tps = pair(max_parcel=1024)

    def prog(env):
        yield from tps[0].send(1, bytes(2048))

    p = cl.env.process(prog(cl.env))
    with pytest.raises(SimulationError, match="exceeds"):
        cl.env.run(until=p)


@pytest.mark.parametrize("pair", [photon_pair, mpi_pair])
def test_poll_returns_none_when_idle(pair):
    cl, tps = pair()

    def prog(env):
        raw = yield from tps[1].poll()
        return raw

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value is None


def test_photon_large_parcels_pipeline():
    """Back-to-back rendezvous parcels overlap their fetches: total time
    must be well under N x single-parcel time."""
    size = 64 * 1024  # > eager limit

    def run(count):
        cl, tps = photon_pair(max_parcel=1 << 20)
        out = {}

        def sender(env):
            for i in range(count):
                yield from tps[0].send(1, bytes([i]) * size)

        def receiver(env):
            t0 = env.now
            got = 0
            while got < count:
                raw = yield from tps[1].poll()
                if raw is not None:
                    assert raw == bytes([got]) * size
                    got += 1
            out["elapsed"] = env.now - t0

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return out["elapsed"]

    one = run(1)
    eight = run(8)
    assert eight < 8 * one * 0.75  # pipelining visible


def test_photon_rendezvous_parcels_arrive_in_order():
    size = 32 * 1024
    cl, tps = photon_pair(max_parcel=1 << 20)
    got = []

    def sender(env):
        for i in range(12):
            yield from tps[0].send(1, bytes([i]) * size)

    def receiver(env):
        while len(got) < 12:
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw[0])

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert got == list(range(12))


def test_mixed_eager_and_rendezvous_parcels():
    """Small and large parcels interleave without loss (order across the
    two photon channels is not guaranteed, so check the multiset)."""
    cl, tps = photon_pair(max_parcel=1 << 20)
    sizes = [64, 32 * 1024, 128, 50 * 1024, 256]
    got = []

    def sender(env):
        for i, s in enumerate(sizes):
            yield from tps[0].send(1, bytes([i]) * s)

    def receiver(env):
        while len(got) < len(sizes):
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append((raw[0], len(raw)))

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert sorted(got) == sorted((i, s) for i, s in enumerate(sizes))


def test_mpi_transport_window_replenishes():
    """More parcels than the irecv window still all arrive.

    ISIR delivery order is not guaranteed (wildcard irecvs complete in
    arrival order, but the poll loop reaps them by window slot), matching
    the unordered-parcel semantics of real many-task runtimes — so this
    asserts the delivered *set*, not the order.
    """
    cl = build_cluster(2)
    comms = mpi_init(cl)
    tps = [MpiTransport(comms[r], max_parcel=4096, window=4)
           for r in range(2)]
    n = 30
    got = []

    def sender(env):
        for i in range(n):
            yield from tps[0].send(1, bytes([i]) * 32)

    def receiver(env):
        while len(got) < n:
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw[0])

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert sorted(got) == list(range(n))


def test_runtime_handler_cost_charged():
    cl = build_cluster(2)
    registry = ActionRegistry()
    ph = photon_init(cl)
    rts = build_runtime(cl, registry, "photon", photon=ph)
    registry.register("noop", lambda rt, src, data: None)
    times = []

    def prog(env):
        t0 = env.now
        yield from rts[0].send(0, "noop")
        yield from rts[0].progress()
        times.append(env.now - t0)

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert times[0] >= rts[0].handler_cost_ns
