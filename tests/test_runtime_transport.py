"""Focused tests for the runtime transports (edge cases, pipelining)."""

import pytest

from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import photon_init
from repro.runtime import ActionRegistry, build_runtime
from repro.runtime.transport import MpiTransport, PhotonTransport
from repro.sim import SimulationError

TIMEOUT = 100_000_000_000


def photon_pair(max_parcel=1 << 16):
    cl = build_cluster(2)
    ph = photon_init(cl)
    tps = [PhotonTransport(ph[r], max_parcel=max_parcel) for r in range(2)]
    return cl, tps


def mpi_pair(max_parcel=1 << 16):
    cl = build_cluster(2)
    comms = mpi_init(cl)
    tps = [MpiTransport(comms[r], max_parcel=max_parcel) for r in range(2)]
    return cl, tps


@pytest.mark.parametrize("pair", [photon_pair, mpi_pair])
def test_oversized_parcel_rejected(pair):
    cl, tps = pair(max_parcel=1024)

    def prog(env):
        yield from tps[0].send(1, bytes(2048))

    p = cl.env.process(prog(cl.env))
    with pytest.raises(SimulationError, match="exceeds"):
        cl.env.run(until=p)


@pytest.mark.parametrize("pair", [photon_pair, mpi_pair])
def test_poll_returns_none_when_idle(pair):
    cl, tps = pair()

    def prog(env):
        raw = yield from tps[1].poll()
        return raw

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert p.value is None


def test_photon_large_parcels_pipeline():
    """Back-to-back rendezvous parcels overlap their fetches: total time
    must be well under N x single-parcel time."""
    size = 64 * 1024  # > eager limit

    def run(count):
        cl, tps = photon_pair(max_parcel=1 << 20)
        out = {}

        def sender(env):
            for i in range(count):
                yield from tps[0].send(1, bytes([i]) * size)

        def receiver(env):
            t0 = env.now
            got = 0
            while got < count:
                raw = yield from tps[1].poll()
                if raw is not None:
                    assert raw == bytes([got]) * size
                    got += 1
            out["elapsed"] = env.now - t0

        p0 = cl.env.process(sender(cl.env))
        p1 = cl.env.process(receiver(cl.env))
        cl.env.run(until=cl.env.all_of([p0, p1]))
        return out["elapsed"]

    one = run(1)
    eight = run(8)
    assert eight < 8 * one * 0.75  # pipelining visible


def test_photon_rendezvous_parcels_arrive_in_order():
    size = 32 * 1024
    cl, tps = photon_pair(max_parcel=1 << 20)
    got = []

    def sender(env):
        for i in range(12):
            yield from tps[0].send(1, bytes([i]) * size)

    def receiver(env):
        while len(got) < 12:
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw[0])

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert got == list(range(12))


def test_mixed_eager_and_rendezvous_parcels():
    """Small and large parcels interleave without loss (order across the
    two photon channels is not guaranteed, so check the multiset)."""
    cl, tps = photon_pair(max_parcel=1 << 20)
    sizes = [64, 32 * 1024, 128, 50 * 1024, 256]
    got = []

    def sender(env):
        for i, s in enumerate(sizes):
            yield from tps[0].send(1, bytes([i]) * s)

    def receiver(env):
        while len(got) < len(sizes):
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append((raw[0], len(raw)))

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert sorted(got) == sorted((i, s) for i, s in enumerate(sizes))


def test_mpi_transport_window_replenishes():
    """More parcels than the irecv window still all arrive.

    ISIR delivery order is not guaranteed (wildcard irecvs complete in
    arrival order, but the poll loop reaps them by window slot), matching
    the unordered-parcel semantics of real many-task runtimes — so this
    asserts the delivered *set*, not the order.
    """
    cl = build_cluster(2)
    comms = mpi_init(cl)
    tps = [MpiTransport(comms[r], max_parcel=4096, window=4)
           for r in range(2)]
    n = 30
    got = []

    def sender(env):
        for i in range(n):
            yield from tps[0].send(1, bytes([i]) * 32)

    def receiver(env):
        while len(got) < n:
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw[0])

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert sorted(got) == list(range(n))


def test_runtime_handler_cost_charged():
    cl = build_cluster(2)
    registry = ActionRegistry()
    ph = photon_init(cl)
    rts = build_runtime(cl, registry, "photon", photon=ph)
    registry.register("noop", lambda rt, src, data: None)
    times = []

    def prog(env):
        t0 = env.now
        yield from rts[0].send(0, "noop")
        yield from rts[0].progress()
        times.append(env.now - t0)

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert times[0] >= rts[0].handler_cost_ns


# ---------------------------------------------------------------------------
# reliability regressions (the parcel-path bugfix sweep)
# ---------------------------------------------------------------------------

class _StubHealth:
    """Minimal health monitor: a mutable dead-set, no heartbeats."""

    def __init__(self):
        self.dead = set()

    def on_dead(self, cb):
        pass

    def on_join(self, cb):
        pass

    def is_dead(self, rank):
        return rank in self.dead


def test_rendezvous_parcel_retried_after_failure():
    """Regression: a failed rendezvous send used to be discovered only at
    slot reuse and silently dropped (one counter bump, no resend); large
    parcels now get the same retry budget as eager ones.

    Scenario: the peer is declared dead while the advertisement's ring
    entry is still in flight, so the entry WR is flushed with PEER_DEAD
    and the rendezvous rid settles as failed.  After both sides re-arm
    the pairing (peer rejoin), the transport's retry budget must
    re-issue the parcel end to end.
    """
    cl = build_cluster(2, params="ib-fdr", seed=17)
    ph = photon_init(cl)
    health = _StubHealth()
    ph[0].attach_health(health)
    tps = [PhotonTransport(ph[r], max_send_retries=3, breaker_threshold=100)
           for r in range(2)]
    size = 64 * 1024  # rendezvous-size
    got = []

    def driver(env):
        yield from tps[0].send(1, b"R" * size)
        # peer dies before the advertisement is acknowledged
        health.dead.add(1)
        ph[0].handle_peer_dead(1)
        yield env.timeout(20_000)
        # peer rejoins with a fresh incarnation: both views re-arm
        ph[0].rearm_peer(1)
        ph[1].rearm_peer(0)
        for _ in range(200):
            yield env.timeout(20_000)
            yield from tps[0].poll()
            raw = yield from tps[1].poll()
            if raw is not None:
                got.append(raw)
                break

    cl.env.run(until=cl.env.process(driver(cl.env)))
    assert got == [b"R" * size]
    assert cl.counters.get("transport.parcel_resends") >= 1
    assert cl.counters.get("transport.parcel_failures") == 0


def test_rendezvous_retry_budget_exhaustion_counts_failure():
    """With the fabric dead for good, the retry budget runs out and the
    loss is visible on the transport.parcel_failures path."""
    from repro.photon import PhotonConfig
    cl = build_cluster(2, params="ib-fdr", seed=17, link__loss_mode="lossy",
                       link__drop_rate=1.0, nic__transport_retries=0)
    ph = photon_init(cl, PhotonConfig(max_op_retries=0,
                                      op_timeout_ns=100_000,
                                      entry_resend_limit=0))
    tps = [PhotonTransport(ph[r], max_send_retries=1, breaker_threshold=100)
           for r in range(2)]

    def sender(env):
        yield from tps[0].send(1, b"R" * (64 * 1024))
        for _ in range(100):
            yield env.timeout(20_000)
            yield from tps[0].poll()
            if cl.counters.get("transport.parcel_failures") >= 1:
                break

    cl.env.run(until=cl.env.process(sender(cl.env)))
    assert cl.counters.get("transport.parcel_failures") == 1
    assert cl.counters.get("transport.parcel_resends") == 1
    # the slot is free again (no leaked request)
    assert tps[0]._rndv_live == 0
    assert all(r is None for r in tps[0]._slot_rids)


def test_mpi_send_reap_pops_live_requests():
    """Regression: the opportunistic send-side reap dropped done isends
    from the transport's in-flight list without popping them from the
    engine's live-request table (a leak the recv path never had)."""
    cl, tps = mpi_pair()
    n = 60
    done = {}

    def sender(env):
        for i in range(n):
            yield from tps[0].send(1, bytes([i]) * 32)
            # give the isend time to complete so the next send's reap
            # observes it done
            for _ in range(3):
                yield from tps[0].poll()
        done["sent"] = True

    def receiver(env):
        got = 0
        while got < n:
            raw = yield from tps[1].poll()
            if raw is not None:
                got += 1
            else:
                yield env.timeout(200)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert done["sent"]
    stale = [r for r in tps[0].comm.engine.live_requests.values() if r.done]
    # without the reap fix nearly all n done isends linger here
    assert len(stale) < 8
