"""Golden-trace determinism: the optimized hot path must be a no-op in
simulated time.

The wall-clock work in this repo (zero-copy payload plumbing, event-kernel
fast paths, the clean-fabric fast path) is only admissible if it changes
*nothing* observable in simulation: same event trace, same counters, same
final clock, same experiment tables, on clean **and** lossy fabrics.

The ``GOLDEN`` fingerprints below were generated from the pre-optimization
tree (``python tests/test_determinism_golden.py`` prints fresh ones) and are
asserted verbatim here.  Any change to event ordering, payload routing, RNG
consumption, or timing arithmetic shows up as a hash mismatch.
"""

from __future__ import annotations

import hashlib

from repro.bench.experiments import r1_latency, r4_ledger, r17_faults
from repro.cluster import build_cluster
from repro.minimpi import mpi_init
from repro.photon import PhotonConfig, photon_init
from repro.sim.core import SimulationError

WAIT = 10 ** 12


def _hash(obj) -> str:
    return hashlib.sha256(repr(obj).encode()).hexdigest()


def _result_fingerprint(res) -> str:
    """Hash everything an experiment reports: id, headers, every numeric
    cell, and every shape-check verdict."""
    return _hash((res.exp_id, tuple(res.headers),
                  tuple(tuple(row) for row in res.rows),
                  tuple(sorted(res.checks.items()))))


def _trace_fingerprint(cl) -> str:
    """Hash the full event trace, counters, and the final simulated clock."""
    recs = tuple((r.time, r.category, r.fields) for r in cl.tracer.records)
    return _hash((cl.env.now, recs,
                  tuple(sorted(cl.counters.snapshot().items()))))


# --------------------------------------------------------------------------
# workloads (trace-enabled, exercising photon + minimpi data paths)
# --------------------------------------------------------------------------

def _photon_clean_workload(chaos_hook=None):
    """Clean fabric: PWC puts with completions, then an eager send flood.

    ``chaos_hook(cl)`` (used by the chaos suite) runs before the workload
    starts — an armed-but-empty chaos controller must keep the trace
    bit-identical to the golden hash.
    """
    cl = build_cluster(2, params="ib-fdr", seed=3, trace=True)
    if chaos_hook is not None:
        chaos_hook(cl)
    ph = photon_init(cl)
    size = 8192
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    pattern = bytes(range(256)) * (size // 256)
    cl[0].memory.write(src.addr, pattern)

    def sender(env):
        for i in range(5):
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            if c is None or not c.ok:
                raise SimulationError(f"clean put {i} failed")
        for i in range(20):
            yield from ph[0].send_pwc(1, bytes([i]) * 64, remote_cid=100 + i)

    def receiver(env):
        for _ in range(5):
            c = yield from ph[1].wait_completion("remote", timeout_ns=WAIT)
            if c is None:
                raise SimulationError("receiver starved")
        for _ in range(20):
            m = yield from ph[1].wait_message(timeout_ns=WAIT)
            if m is None:
                raise SimulationError("eager flood stalled")

    procs = [cl.env.process(sender(cl.env)), cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    if bytes(cl[1].memory.read(dst.addr, size)) != pattern:
        raise SimulationError("clean payload corrupted")
    return cl


def _mpi_clean_workload():
    """Clean fabric: minimpi eager and rendezvous round trips."""
    cl = build_cluster(2, params="ib-fdr", seed=5, trace=True)
    mm = mpi_init(cl)
    small, big = 64, 32768
    src_s = cl[0].memory.alloc(small)
    src_b = cl[0].memory.alloc(big)
    dst_s = cl[1].memory.alloc(small)
    dst_b = cl[1].memory.alloc(big)
    cl[0].memory.write(src_s, b"\xa5" * small)
    cl[0].memory.write(src_b, bytes(range(256)) * (big // 256))

    def sender(env):
        for tag, (addr, size) in enumerate([(src_s, small), (src_b, big)]):
            req = yield from mm[0].isend(addr, size, 1, tag=tag)
            ok = yield from mm[0].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi clean send tag={tag} failed")

    def receiver(env):
        for tag, (addr, size) in enumerate([(dst_s, small), (dst_b, big)]):
            req = yield from mm[1].irecv(addr, size, src=0, tag=tag)
            ok = yield from mm[1].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi clean recv tag={tag} failed")

    procs = [cl.env.process(sender(cl.env)), cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    if bytes(cl[1].memory.read(dst_b, big)) != bytes(range(256)) * (big // 256):
        raise SimulationError("mpi clean payload corrupted")
    return cl


def _photon_lossy_workload(chaos_hook=None):
    """Lossy fabric, NIC ARQ off: every drop recovered by Photon replay."""
    cl = build_cluster(2, params="ib-fdr", seed=7, trace=True,
                       link__loss_mode="lossy", link__drop_rate=0.02,
                       nic__transport_retries=0)
    if chaos_hook is not None:
        chaos_hook(cl)
    ph = photon_init(cl, PhotonConfig(max_op_retries=5))
    size = 16384
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    pattern = bytes(range(256)) * (size // 256)
    cl[0].memory.write(src.addr, pattern)

    def sender(env):
        for i in range(6):
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            if c is None or not c.ok:
                raise SimulationError(f"lossy put {i} failed")

    def receiver(env):
        for _ in range(6):
            c = yield from ph[1].wait_completion("remote", timeout_ns=WAIT)
            if c is None:
                raise SimulationError("lossy receiver starved")

    procs = [cl.env.process(sender(cl.env)), cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    if bytes(cl[1].memory.read(dst.addr, size)) != pattern:
        raise SimulationError("lossy payload corrupted")
    return cl


def _mpi_lossy_workload():
    """Lossy fabric, NIC ARQ off: minimpi resend/refetch error path."""
    cl = build_cluster(2, params="ib-fdr", seed=11, trace=True,
                       link__loss_mode="lossy", link__drop_rate=0.02,
                       nic__transport_retries=0)
    mm = mpi_init(cl)
    size = 16384
    src = cl[0].memory.alloc(size)
    dst = cl[1].memory.alloc(size)
    cl[0].memory.write(src, bytes(range(256)) * (size // 256))

    def sender(env):
        for i in range(4):
            req = yield from mm[0].isend(src, size, 1, tag=i)
            ok = yield from mm[0].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi lossy send {i} failed")

    def receiver(env):
        for i in range(4):
            req = yield from mm[1].irecv(dst, size, src=0, tag=i)
            ok = yield from mm[1].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi lossy recv {i} failed")

    procs = [cl.env.process(sender(cl.env)), cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    return cl


# --------------------------------------------------------------------------
# golden fingerprints — generated from the pre-optimization tree
# --------------------------------------------------------------------------

GOLDEN = {
    "r1_table":
        "7f597177c8c9dea80f1d130d661ae6753229d74e492c6b40ce68c4cd2c1db60a",
    "r4_table":
        "1bd35e6cddef76753f45b250c75b356fd321c3069bd428c051ae8c26c2f233a7",
    "r17_table":
        "c7c6915630c1ce809568d7048053c4ed823dd72ae5a28cd048f914cac32d982f",
    "photon_clean_trace":
        "c6acc522238aaf26e987a0886cad2a2060ff244592e9ded11ec7ea3c4b830473",
    "mpi_clean_trace":
        "58ddc9313cd6a4e192e0c01eb2ea0f64bb9fd0176bc275c0ef7cc35d618b21d9",
    "photon_lossy_trace":
        "6a65d52bba149e7727c83bbb791f9dd23367ad649507e4d0709e857fc373d686",
    "mpi_lossy_trace":
        "c1cfa22da2709a880bbb2ce760415bb6f4f124ff5a0aa3033fbce652b74643dc",
}


def _fingerprints() -> dict:
    return {
        "r1_table": _result_fingerprint(r1_latency.run(quick=True)),
        "r4_table": _result_fingerprint(r4_ledger.run(quick=True)),
        "r17_table": _result_fingerprint(r17_faults.run(quick=True)),
        "photon_clean_trace": _trace_fingerprint(_photon_clean_workload()),
        "mpi_clean_trace": _trace_fingerprint(_mpi_clean_workload()),
        "photon_lossy_trace": _trace_fingerprint(_photon_lossy_workload()),
        "mpi_lossy_trace": _trace_fingerprint(_mpi_lossy_workload()),
    }


# --------------------------------------------------------------------------
# tests
# --------------------------------------------------------------------------

def test_r1_table_matches_golden():
    assert _result_fingerprint(r1_latency.run(quick=True)) == \
        GOLDEN["r1_table"]


def test_r4_table_matches_golden():
    assert _result_fingerprint(r4_ledger.run(quick=True)) == \
        GOLDEN["r4_table"]


def test_r17_table_matches_golden():
    """Faulty fabric included: the lossy rows replay real drops."""
    assert _result_fingerprint(r17_faults.run(quick=True)) == \
        GOLDEN["r17_table"]


def test_clean_traces_match_golden():
    assert _trace_fingerprint(_photon_clean_workload()) == \
        GOLDEN["photon_clean_trace"]
    assert _trace_fingerprint(_mpi_clean_workload()) == \
        GOLDEN["mpi_clean_trace"]


def test_lossy_traces_match_golden():
    assert _trace_fingerprint(_photon_lossy_workload()) == \
        GOLDEN["photon_lossy_trace"]
    assert _trace_fingerprint(_mpi_lossy_workload()) == \
        GOLDEN["mpi_lossy_trace"]


def test_run_twice_identical():
    """Same seed, same workload, back to back in one interpreter: the event
    trace must be bit-identical (no hidden global state, no id()/hash()
    ordering, no free-list identity leaks)."""
    assert _trace_fingerprint(_photon_clean_workload()) == \
        _trace_fingerprint(_photon_clean_workload())
    assert _trace_fingerprint(_photon_lossy_workload()) == \
        _trace_fingerprint(_photon_lossy_workload())


if __name__ == "__main__":  # regenerate the fingerprints
    import json
    print(json.dumps(_fingerprints(), indent=2))
