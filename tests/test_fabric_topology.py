"""Unit tests for topologies and links."""

import pytest

from repro.fabric import IB_FDR, GEMINI, Star, Torus2D, make_topology
from repro.fabric.topology import _near_square
from repro.sim import Counters, Environment, SimulationError


def star(n=4):
    env = Environment()
    return env, Star(env, n, IB_FDR.link, Counters())


def torus(n, rows=0, cols=0):
    env = Environment()
    return env, Torus2D(env, n, GEMINI.link, Counters(), rows=rows, cols=cols)


def test_star_path_is_two_links():
    _, topo = star()
    p = topo.path(0, 3)
    assert len(p) == 2
    assert p[0] is topo.uplinks[0]
    assert p[1] is topo.downlinks[3]


def test_star_latency_includes_switch():
    _, topo = star()
    lat = topo.path_latency_ns(0, 1)
    assert lat == 2 * IB_FDR.link.latency_ns + topo.switch_latency_ns


def test_self_path_rejected():
    _, topo = star()
    with pytest.raises(SimulationError):
        topo.path(2, 2)


def test_out_of_range_rejected():
    _, topo = star(4)
    with pytest.raises(SimulationError):
        topo.path(0, 4)


def test_near_square_factorisation():
    assert _near_square(16) == (4, 4)
    assert _near_square(12) == (3, 4)
    assert _near_square(7) == (1, 7)
    assert _near_square(1) == (1, 1)


def test_torus_dimensions():
    _, topo = torus(16)
    assert (topo.rows, topo.cols) == (4, 4)


def test_torus_explicit_dims_must_match():
    with pytest.raises(SimulationError):
        torus(16, rows=3, cols=4)


def test_torus_neighbour_path_short():
    _, topo = torus(16)
    # 0 -> 1 is one X hop + ejection
    assert len(topo.path(0, 1)) == 2


def test_torus_wraparound_shortest():
    _, topo = torus(16)  # 4x4: 0 -> 3 wraps backward in X: one hop
    assert len(topo.path(0, 3)) == 2


def test_torus_dimension_order_routing():
    _, topo = torus(16)
    # 0=(0,0) -> 5=(1,1): one X hop then one Y hop + ejection
    assert len(topo.path(0, 5)) == 3


def test_torus_latency_grows_with_distance():
    _, topo = torus(16)
    near = topo.path_latency_ns(0, 1)
    far = topo.path_latency_ns(0, 10)  # (0,0)->(2,2): 2+2 hops
    assert far > near


def test_torus_path_cache_returns_same_objects():
    _, topo = torus(16)
    assert topo.path(0, 5) is topo.path(0, 5)


def test_make_topology_dispatch():
    env = Environment()
    assert isinstance(
        make_topology("star", env, 2, IB_FDR.link, Counters()), Star)
    assert isinstance(
        make_topology("torus2d", env, 4, GEMINI.link, Counters()), Torus2D)
    with pytest.raises(SimulationError):
        make_topology("hypercube", env, 2, IB_FDR.link, Counters())


def test_torus_two_ranks():
    """Degenerate 1x2 torus still routes."""
    _, topo = torus(2)
    assert topo.hops(0, 1) >= 1
