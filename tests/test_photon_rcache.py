"""Unit/integration tests for the registration cache."""

import pytest

from repro.cluster import build_cluster
from repro.photon.api import photon_init
from repro.photon.config import PhotonConfig
from repro.photon.rcache import RegistrationCache, assert_reg_balance
from repro.verbs.enums import Access


def setup(capacity=4, enabled=True, max_pinned_bytes=0, merge=True):
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    cache = RegistrationCache(node.context, pd, capacity=capacity,
                              enabled=enabled,
                              max_pinned_bytes=max_pinned_bytes, merge=merge)
    return cl, node, cache


def alloc_gapped(node, n, size=4096):
    """``n`` page allocations separated by pad bytes so adjacent ranges
    never touch (keeps merge-on-miss out of LRU/eviction tests)."""
    addrs = []
    for _ in range(n):
        addrs.append(node.memory.alloc(size, align=4096))
        node.memory.alloc(64)  # spacer: next aligned alloc is non-adjacent
    return addrs


def run(cl, gen):
    p = cl.env.process(gen)
    return cl.env.run(until=p)


def test_miss_then_hit():
    cl, node, cache = setup()
    addr = node.memory.alloc(8192)

    def prog(env):
        t0 = env.now
        mr1 = yield from cache.acquire(addr, 8192)
        t_miss = env.now - t0
        t0 = env.now
        mr2 = yield from cache.acquire(addr, 8192)
        t_hit = env.now - t0
        return mr1, mr2, t_miss, t_hit

    mr1, mr2, t_miss, t_hit = run(cl, prog(cl.env))
    assert mr1 is mr2
    assert t_miss > 0
    assert t_hit == 0
    assert cache.hits == 1 and cache.misses == 1


def test_subrange_hits_covering_registration():
    cl, node, cache = setup()
    addr = node.memory.alloc(16384)

    def prog(env):
        yield from cache.acquire(addr, 16384)
        mr = yield from cache.acquire(addr + 1000, 512)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr.covers(addr + 1000, 512)
    assert cache.hits == 1


def test_lru_eviction_deregisters():
    cl, node, cache = setup(capacity=2)
    addrs = alloc_gapped(node, 3)

    def prog(env):
        for a in addrs:
            mr = yield from cache.acquire(a, 4096)
            yield from cache.release(mr)

    run(cl, prog(cl.env))
    assert cache.size == 2
    assert cache.evictions == 1
    assert cl.counters.get("verbs.dereg_mr") == 1


def test_lru_order_respects_recency():
    cl, node, cache = setup(capacity=2)
    a, b, c = alloc_gapped(node, 3)

    def prog(env):
        for addr in (a, b, a, c, a):  # refresh a before c evicts b
            mr = yield from cache.acquire(addr, 4096)
            yield from cache.release(mr)

    run(cl, prog(cl.env))
    # a stayed cached: 2 hits (refresh + final); b/c one miss each
    assert cache.hits == 2
    assert cache.misses == 3


def test_merge_adjacent_registrations():
    """Adjacent registrations coalesce into one covering entry, so the
    union range becomes a cache hit without a third registration."""
    cl, node, cache = setup(capacity=8)
    a = node.memory.alloc(4096, align=4096)
    b = node.memory.alloc(4096, align=4096)  # directly adjacent
    assert b == a + 4096

    def prog(env):
        mr1 = yield from cache.acquire(a, 4096)
        yield from cache.release(mr1)
        mr2 = yield from cache.acquire(b, 4096)
        yield from cache.release(mr2)
        mr3 = yield from cache.acquire(a, 8192)  # whole span: must hit
        yield from cache.release(mr3)
        return mr2, mr3

    mr2, mr3 = run(cl, prog(cl.env))
    assert cache.size == 1
    assert cache.merges == 1
    assert mr2 is mr3 and mr2.covers(a, 8192)
    assert cache.hits == 1 and cache.misses == 2


def test_merge_disabled_keeps_entries_separate():
    cl, node, cache = setup(capacity=8, merge=False)
    a = node.memory.alloc(4096, align=4096)
    node.memory.alloc(4096, align=4096)

    def prog(env):
        for addr in (a, a + 4096):
            mr = yield from cache.acquire(addr, 4096)
            yield from cache.release(mr)
        mr = yield from cache.acquire(a + 1024, 512)  # inside first entry
        yield from cache.release(mr)
        return mr

    mr = run(cl, prog(cl.env))
    assert cache.size == 2
    assert cache.merges == 0
    assert cache.hits == 1


def test_eviction_defers_while_referenced():
    """Regression: eviction must never deregister an MR that an in-flight
    operation still holds — it parks on the pending-evict list instead."""
    cl, node, cache = setup(capacity=1)
    a, b = alloc_gapped(node, 2)

    def prog(env):
        mr_a = yield from cache.acquire(a, 4096)  # held: no release yet
        yield from cache.acquire(b, 4096)         # evicts a -> deferred
        assert mr_a.valid, "evicted a referenced MR"
        assert cache.pending_evictions == 1
        assert cache.deferred_evictions == 1
        assert cl.counters.get("verbs.dereg_mr") == 0
        yield from cache.release(mr_a)            # last ref: dereg now
        return mr_a

    mr_a = run(cl, prog(cl.env))
    assert not mr_a.valid
    assert cache.pending_evictions == 0
    assert cl.counters.get("verbs.dereg_mr") == 1


def test_prune_invalid_entries():
    """Entries whose MR was invalidated behind the cache's back (QP
    flush/reset) are pruned on lookup instead of eating capacity."""
    cl, node, cache = setup(capacity=4)
    addr = node.memory.alloc(4096)

    def prog(env):
        mr = yield from cache.acquire(addr, 4096)
        yield from cache.release(mr)
        mr.invalidate()
        mr2 = yield from cache.acquire(addr, 4096)  # miss: stale pruned
        yield from cache.release(mr2)
        return mr2

    mr2 = run(cl, prog(cl.env))
    assert mr2.valid
    assert cache.invalid_prunes == 1
    assert cache.hits == 0 and cache.misses == 2
    assert cache.size == 1


def test_disabled_cache_registers_every_time():
    cl, node, cache = setup(enabled=False)
    addr = node.memory.alloc(4096)

    def prog(env):
        mr1 = yield from cache.acquire(addr, 4096)
        yield from cache.release(mr1)
        t0 = env.now
        mr2 = yield from cache.acquire(addr, 4096)
        cost2 = env.now - t0
        return mr1, mr2, cost2

    mr1, mr2, cost2 = run(cl, prog(cl.env))
    assert mr1 is not mr2
    assert not mr1.valid  # released = deregistered
    assert cost2 > 0
    assert cache.hits == 0 and cache.misses == 2


def test_release_with_cache_enabled_keeps_registration():
    cl, node, cache = setup()
    addr = node.memory.alloc(4096)

    def prog(env):
        mr = yield from cache.acquire(addr, 4096)
        yield from cache.release(mr)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr.valid
    assert cache.size == 1


def test_flush_deregisters_all():
    cl, node, cache = setup(capacity=8)
    addrs = alloc_gapped(node, 3)

    def prog(env):
        for a in addrs:
            mr = yield from cache.acquire(a, 4096)
            yield from cache.release(mr)
        yield from cache.flush()

    run(cl, prog(cl.env))
    assert cache.size == 0
    assert cl.counters.get("verbs.dereg_mr") == 3


def test_insert_enforces_caps():
    """Seeding via insert() obeys the entry cap; pinned entries survive."""
    cl, node, cache = setup(capacity=2)
    addrs = alloc_gapped(node, 3)
    mrs = [node.context.reg_mr_sync(cache.pd, a, 4096, Access.ALL)
           for a in addrs]
    cache.insert(mrs[0], pinned=True)
    cache.insert(mrs[1])
    cache.insert(mrs[2])
    assert cache.size == 2
    assert cache.evictions == 1
    assert mrs[0].valid, "pinned entry must never be evicted"
    # the spawned dereg for the victim needs the clock to run
    cl.env.run(until=10_000_000)
    assert not mrs[1].valid
    assert_reg_balance(cl.counters, [cl[i].context for i in range(cl.n)])


def test_max_pinned_bytes_cap():
    cl, node, cache = setup(capacity=16, max_pinned_bytes=8192)
    addrs = alloc_gapped(node, 3)

    def prog(env):
        for a in addrs:
            mr = yield from cache.acquire(a, 4096)
            yield from cache.release(mr)

    run(cl, prog(cl.env))
    assert cache.pinned_bytes <= 8192
    assert cache.size == 2
    assert cache.evictions == 1
    assert cache.pinned_bytes_peak >= 8192


def test_acquire_release_balance_property():
    """At shutdown, every registration was deregistered or is still live
    in the cache: reg_mr == dereg_mr + live (both cache modes)."""
    for enabled in (True, False):
        cl, node, cache = setup(capacity=2, enabled=enabled)
        addrs = alloc_gapped(node, 5)

        def prog(env):
            held = []
            for i, a in enumerate(addrs):
                mr = yield from cache.acquire(a, 4096)
                if i % 2 == 0:
                    held.append(mr)  # settle later, as an op would
                else:
                    yield from cache.release(mr)
            for mr in held:
                cache.release_async(mr)
            yield env.timeout(1_000_000)  # drain spawned deregs
            yield from cache.flush()

        run(cl, prog(cl.env))
        reg = cl.counters.get("verbs.reg_mr")
        dereg = cl.counters.get("verbs.dereg_mr")
        assert reg > 0
        assert reg - cache.live_regs == dereg, f"enabled={enabled}"
        assert_reg_balance(cl.counters, [cl[i].context for i in range(cl.n)])


def test_unregister_buffer_both_modes():
    """unregister_buffer actually retires the registration: cached entry
    evicted+deregistered when enabled, immediate dereg when disabled."""
    for enabled in (True, False):
        cl = build_cluster(2)
        cfg = PhotonConfig(rcache_enabled=enabled)
        ph = photon_init(cl, cfg)
        before = cl.counters.get("verbs.dereg_mr")
        buf = ph[0].buffer(4096)

        def prog(env):
            yield from ph[0].unregister_buffer(buf)

        run(cl, prog(cl.env))
        assert cl.counters.get("verbs.dereg_mr") == before + 1, \
            f"enabled={enabled}"
        assert buf.rkey not in ph[0].context._mrs_by_rkey


def test_merge_never_absorbs_pinned_entry():
    """Regression (review): a miss adjacent to a pinned bootstrap entry
    must not merge the pinned registration away — its rkey was exchanged
    with peers and has to stay valid."""
    cl, node, cache = setup(capacity=8)
    a = node.memory.alloc(4096, align=4096)
    b = node.memory.alloc(4096, align=4096)
    assert b == a + 4096
    mr_pinned = node.context.reg_mr_sync(cache.pd, a, 4096, Access.ALL)
    cache.insert(mr_pinned, pinned=True)

    def prog(env):
        mr = yield from cache.acquire(b, 4096)  # adjacent miss
        yield from cache.release(mr)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr is not mr_pinned
    assert mr_pinned.valid, "merge absorbed a pinned entry"
    assert node.context._mrs_by_rkey.get(mr_pinned.rkey) is mr_pinned
    assert cache.merges == 0
    assert cache.size == 2

    # the pinned range is still a hit after the adjacent registration
    def prog2(env):
        hit = yield from cache.acquire(a + 128, 256)
        yield from cache.release(hit)
        return hit

    hit = run(cl, prog2(cl.env))
    assert hit is mr_pinned


def test_lookup_tolerates_overlapping_entries():
    """Regression (review): insert() does not merge, so overlapping
    entries can coexist; the lookup must keep scanning left past a
    non-covering candidate instead of declaring a spurious miss."""
    cl, node, cache = setup(capacity=8)
    a = node.memory.alloc(16384, align=4096)
    big = node.context.reg_mr_sync(cache.pd, a, 16384, Access.ALL)
    small = node.context.reg_mr_sync(cache.pd, a + 4096, 1024, Access.ALL)
    cache.insert(big, pinned=True)
    cache.insert(small)

    def prog(env):
        mr = yield from cache.acquire(a + 4096, 4096)
        yield from cache.release(mr)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr is big, "covering entry missed behind an overlapping one"
    assert cache.hits == 1 and cache.misses == 0


def test_pending_eviction_counts_pinned_bytes():
    """Regression (review): a deferred-evict victim stays registered
    until its last release, so its bytes must keep counting toward
    pinned_bytes (and the byte cap) until the dereg actually runs."""
    cl, node, cache = setup(capacity=1)
    a, b = alloc_gapped(node, 2)

    def prog(env):
        mr_a = yield from cache.acquire(a, 4096)   # held: no release yet
        mr_b = yield from cache.acquire(b, 4096)   # evicts a -> deferred
        assert cache.pending_evictions == 1
        assert cache.pinned_bytes == 8192, \
            "pending-evict bytes dropped out of the pinned accounting"
        yield from cache.release(mr_a)             # last ref: dereg now
        assert cache.pinned_bytes == 4096
        yield from cache.release(mr_b)

    run(cl, prog(cl.env))
    assert cache.pinned_bytes == 4096  # b still cached warm


def test_pinned_buffer_rkey_survives_adjacent_registration():
    """End-to-end regression (review): registering memory directly
    adjacent to a buffer()-seeded (pinned) registration must not retire
    the pinned MR — the rkey exchanged with peers has to keep working
    for a subsequent remote put."""
    timeout = 50_000_000
    cl = build_cluster(2)
    ph = photon_init(cl, PhotonConfig())
    dst = ph[1].buffer(4096)
    adj = cl[1].memory.alloc(4096, align=64)  # bump allocator: adjacent
    src = ph[0].buffer(4096)
    payload = b"rkey-must-survive" * 8
    cl[0].memory.write(src.addr, payload)

    def target(env):
        # acquire miss on the range next to the pinned buffer: the old
        # merge path absorbed and deregistered the pinned entry here
        yield from ph[1].register_buffer(adj, 4096)
        c = yield from ph[1].wait_completion("remote", timeout_ns=timeout)
        return c

    def sender(env):
        yield env.timeout(2_000_000)  # after the adjacent registration
        yield from ph[0].put_pwc(1, src.addr, len(payload), dst.addr,
                                 dst.rkey, remote_cid=7)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(target(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert p1.value.cid == 7
    assert cl[1].memory.read(dst.addr, len(payload)) == payload


def test_hit_rate_property():
    cl, node, cache = setup()
    addr = node.memory.alloc(4096)

    def prog(env):
        for _ in range(4):
            yield from cache.acquire(addr, 4096)

    run(cl, prog(cl.env))
    assert cache.hit_rate == pytest.approx(0.75)


def test_invalid_capacity_rejected():
    cl = build_cluster(2)
    pd = cl[0].context.alloc_pd()
    with pytest.raises(ValueError):
        RegistrationCache(cl[0].context, pd, capacity=0)
