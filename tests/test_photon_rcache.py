"""Unit/integration tests for the registration cache."""

import pytest

from repro.cluster import build_cluster
from repro.photon.rcache import RegistrationCache


def setup(capacity=4, enabled=True):
    cl = build_cluster(2)
    node = cl[0]
    pd = node.context.alloc_pd()
    cache = RegistrationCache(node.context, pd, capacity=capacity,
                              enabled=enabled)
    return cl, node, cache


def run(cl, gen):
    p = cl.env.process(gen)
    return cl.env.run(until=p)


def test_miss_then_hit():
    cl, node, cache = setup()
    addr = node.memory.alloc(8192)

    def prog(env):
        t0 = env.now
        mr1 = yield from cache.acquire(addr, 8192)
        t_miss = env.now - t0
        t0 = env.now
        mr2 = yield from cache.acquire(addr, 8192)
        t_hit = env.now - t0
        return mr1, mr2, t_miss, t_hit

    mr1, mr2, t_miss, t_hit = run(cl, prog(cl.env))
    assert mr1 is mr2
    assert t_miss > 0
    assert t_hit == 0
    assert cache.hits == 1 and cache.misses == 1


def test_subrange_hits_covering_registration():
    cl, node, cache = setup()
    addr = node.memory.alloc(16384)

    def prog(env):
        yield from cache.acquire(addr, 16384)
        mr = yield from cache.acquire(addr + 1000, 512)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr.covers(addr + 1000, 512)
    assert cache.hits == 1


def test_lru_eviction_deregisters():
    cl, node, cache = setup(capacity=2)
    addrs = [node.memory.alloc(4096, align=4096) for _ in range(3)]

    def prog(env):
        for a in addrs:
            yield from cache.acquire(a, 4096)

    run(cl, prog(cl.env))
    assert cache.size == 2
    assert cache.evictions == 1
    assert cl.counters.get("verbs.dereg_mr") == 1


def test_lru_order_respects_recency():
    cl, node, cache = setup(capacity=2)
    a = node.memory.alloc(4096, align=4096)
    b = node.memory.alloc(4096, align=4096)
    c = node.memory.alloc(4096, align=4096)

    def prog(env):
        yield from cache.acquire(a, 4096)
        yield from cache.acquire(b, 4096)
        yield from cache.acquire(a, 4096)  # refresh a
        yield from cache.acquire(c, 4096)  # evicts b, not a
        mr = yield from cache.acquire(a, 4096)
        return mr

    run(cl, prog(cl.env))
    # a stayed cached: 2 hits (refresh + final); b/c one miss each
    assert cache.hits == 2
    assert cache.misses == 3


def test_disabled_cache_registers_every_time():
    cl, node, cache = setup(enabled=False)
    addr = node.memory.alloc(4096)

    def prog(env):
        mr1 = yield from cache.acquire(addr, 4096)
        yield from cache.release(mr1)
        t0 = env.now
        mr2 = yield from cache.acquire(addr, 4096)
        cost2 = env.now - t0
        return mr1, mr2, cost2

    mr1, mr2, cost2 = run(cl, prog(cl.env))
    assert mr1 is not mr2
    assert not mr1.valid  # released = deregistered
    assert cost2 > 0
    assert cache.hits == 0 and cache.misses == 2


def test_release_with_cache_enabled_keeps_registration():
    cl, node, cache = setup()
    addr = node.memory.alloc(4096)

    def prog(env):
        mr = yield from cache.acquire(addr, 4096)
        yield from cache.release(mr)
        return mr

    mr = run(cl, prog(cl.env))
    assert mr.valid
    assert cache.size == 1


def test_flush_deregisters_all():
    cl, node, cache = setup(capacity=8)
    addrs = [node.memory.alloc(4096, align=4096) for _ in range(3)]

    def prog(env):
        for a in addrs:
            yield from cache.acquire(a, 4096)
        yield from cache.flush()

    run(cl, prog(cl.env))
    assert cache.size == 0
    assert cl.counters.get("verbs.dereg_mr") == 3


def test_hit_rate_property():
    cl, node, cache = setup()
    addr = node.memory.alloc(4096)

    def prog(env):
        for _ in range(4):
            yield from cache.acquire(addr, 4096)

    run(cl, prog(cl.env))
    assert cache.hit_rate == pytest.approx(0.75)


def test_invalid_capacity_rejected():
    cl = build_cluster(2)
    pd = cl[0].context.alloc_pd()
    with pytest.raises(ValueError):
        RegistrationCache(cl[0].context, pd, capacity=0)
