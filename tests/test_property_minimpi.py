"""Property-based tests for minimpi matching semantics and data paths."""

from hypothesis import given, settings, strategies as st

from repro.cluster import build_cluster
from repro.minimpi import (
    ANY_SOURCE,
    ANY_TAG,
    MatchEngine,
    PostedRecv,
    UnexpectedMsg,
    mpi_init,
)


# ---------------------------------------------------------------- matching


@given(arrivals=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3)),
    min_size=0, max_size=30))
@settings(max_examples=100)
def test_every_arrival_eventually_matches_a_wildcard(arrivals):
    """With a wildcard receive per arrival, nothing is left unmatched and
    matches happen in arrival order."""
    m = MatchEngine()
    for src, tag in arrivals:
        m.add_unexpected(UnexpectedMsg(src=src, tag=tag,
                                       payload=bytes([src, tag])))
    got = []
    for _ in arrivals:
        msg = m.match_posted(ANY_SOURCE, ANY_TAG)
        assert msg is not None
        got.append((msg.src, msg.tag))
    assert got == arrivals
    assert m.match_posted(ANY_SOURCE, ANY_TAG) is None


@given(data=st.data())
@settings(max_examples=100)
def test_specific_match_never_returns_wrong_message(data):
    arrivals = data.draw(st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2)),
        min_size=1, max_size=20))
    m = MatchEngine()
    for src, tag in arrivals:
        m.add_unexpected(UnexpectedMsg(src=src, tag=tag, payload=b""))
    want_src = data.draw(st.integers(0, 2))
    want_tag = data.draw(st.integers(0, 2))
    msg = m.match_posted(want_src, want_tag)
    matching = [(s, t) for s, t in arrivals
                if s == want_src and t == want_tag]
    if matching:
        assert msg is not None and (msg.src, msg.tag) == matching[0]
    else:
        assert msg is None


@given(posted=st.lists(
    st.tuples(st.sampled_from([0, 1, ANY_SOURCE]),
              st.sampled_from([0, 1, ANY_TAG])),
    min_size=1, max_size=20),
    arrival=st.tuples(st.integers(0, 1), st.integers(0, 1)))
@settings(max_examples=100)
def test_arrival_takes_earliest_compatible_posted(posted, arrival):
    m = MatchEngine()
    for i, (src, tag) in enumerate(posted):
        m.post(PostedRecv(request=i, src=src, tag=tag, addr=0, length=0))
    src, tag = arrival
    got = m.match_arrival(src, tag)
    compatible = [i for i, (ps, pt) in enumerate(posted)
                  if (ps == ANY_SOURCE or ps == src)
                  and (pt == ANY_TAG or pt == tag)]
    if compatible:
        assert got is not None and got.request == compatible[0]
    else:
        assert got is None


# ---------------------------------------------------------------- end-to-end


@settings(max_examples=10, deadline=None)
@given(msgs=st.lists(st.binary(min_size=0, max_size=4096),
                     min_size=1, max_size=10),
       seed=st.integers(min_value=0, max_value=50))
def test_mixed_size_messages_arrive_in_order(msgs, seed):
    """Eager and rendezvous messages on one flow keep MPI ordering."""
    cl = build_cluster(2, seed=seed)
    comms = mpi_init(cl)
    src_heap = cl[0].memory.alloc(1 << 20)
    dst_heap = cl[1].memory.alloc(1 << 20)
    got = []

    def sender(env):
        for i, m in enumerate(msgs):
            cl[0].memory.write(src_heap, m)
            yield from comms[0].send(src_heap, len(m), 1, tag=5)

    def receiver(env):
        for i in range(len(msgs)):
            st_ = yield from comms[1].recv(dst_heap, 1 << 20, 0, tag=5)
            # read_bytes: dst_heap is reused for every message, so each
            # retained payload needs an owned snapshot
            got.append(cl[1].memory.read_bytes(dst_heap, st_.count))

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    assert got == [bytes(m) for m in msgs]


@settings(max_examples=8, deadline=None)
@given(n=st.integers(min_value=2, max_value=5),
       values=st.data())
def test_allreduce_sum_equals_numpy_sum(n, values):
    import numpy as np
    arrays = [values.draw(st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=4, max_size=4)) for _ in range(n)]
    cl = build_cluster(n)
    comms = mpi_init(cl)
    results = []

    def body(rank):
        arr = np.array(arrays[rank], dtype=np.int64)
        out = yield from comms[rank].allreduce(arr, "sum")
        results.append(out)

    procs = [cl.env.process(body(r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    expected = np.sum(np.array(arrays, dtype=np.int64), axis=0)
    for out in results:
        np.testing.assert_array_equal(out, expected)
