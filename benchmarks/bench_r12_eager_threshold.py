"""Benchmark R12 — regenerates the 'eager_threshold' ablation (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r12_eager_threshold


def test_r12_eager_threshold(benchmark):
    result = benchmark.pedantic(r12_eager_threshold.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
