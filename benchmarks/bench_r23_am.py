"""Benchmark R23 — active-message invocation layer comparison.

Runs the coalesced-AM vs per-parcel vs two-sided invoke flood (plus the
unloaded latency probe and the MCTS demo) in quick mode under
pytest-benchmark and asserts its qualitative shape checks (coalescing
wins throughput on clean and lossy fabrics, cuts wire messages, the
per-parcel PWC arm keeps the unloaded latency floor, exact MCTS visit
accounting).
"""

from repro.bench.experiments import r23_am


def test_r23_am(benchmark):
    result = benchmark.pedantic(r23_am.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
