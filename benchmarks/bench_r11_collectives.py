"""Benchmark R11 — regenerates the 'collectives' table/figure (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
(the benchmark clock measures host wall time of the simulation; the
table's numbers are simulated-time metrics) and asserts the paper's
qualitative shape checks.
"""

from repro.bench.experiments import r11_collectives


def test_r11_collectives(benchmark):
    result = benchmark.pedantic(r11_collectives.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
