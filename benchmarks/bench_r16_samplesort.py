"""Benchmark R16 — regenerates the 'samplesort' application run
(DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r16_samplesort


def test_r16_samplesort(benchmark):
    result = benchmark.pedantic(r16_samplesort.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
