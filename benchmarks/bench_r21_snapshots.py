"""Benchmark R21 — snapshot compaction, restart rejoin, live shard move.

Runs the reconstructed chaos experiment in quick mode under
pytest-benchmark and asserts its qualitative shape checks (zero acked
loss on every final-owner replica, restart + partitioned-follower
rejoin via InstallSnapshot, bounded retained logs, epoch-flipped live
move invisible in the ack ledger).
"""

from repro.bench.experiments import r21_snapshots


def test_r21_snapshots(benchmark):
    result = benchmark.pedantic(r21_snapshots.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
