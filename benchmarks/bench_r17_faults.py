"""Benchmark R17 — regenerates the fault-domain experiment (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r17_faults


def test_r17_faults(benchmark):
    result = benchmark.pedantic(r17_faults.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
