"""Benchmark R22 — event-kernel backends: calendar queue vs heap.

Host wall-clock microbenchmark of the scheduler itself (DESIGN.md §7):
empty-timeout churn and bursty link transit, run on both queue backends.
The shape checks assert backend equivalence (identical event counts and
final clock) plus loose machine-independent rate floors; exact events/s
land in BENCH_wallclock.json via ``python -m repro.bench --timing``.
"""

from repro.bench.experiments import r22_kernel


def test_r22_kernel(benchmark):
    result = benchmark.pedantic(r22_kernel.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
