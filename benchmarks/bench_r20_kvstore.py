"""Benchmark R20 — repro.kv serving + failover experiment (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks (both read arms complete, the
one-sided median beats the RPC round-trip, failover elects within the
detection bound with zero acked-write loss).
"""

from repro.bench.experiments import r20_kvstore


def test_r20_kvstore(benchmark):
    result = benchmark.pedantic(r20_kvstore.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
