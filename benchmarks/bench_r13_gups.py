"""Benchmark R13 — regenerates the 'gups' ablation (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r13_gups


def test_r13_gups(benchmark):
    result = benchmark.pedantic(r13_gups.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
