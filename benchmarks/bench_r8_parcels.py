"""Benchmark R8 — regenerates the 'parcels' table/figure (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
(the benchmark clock measures host wall time of the simulation; the
table's numbers are simulated-time metrics) and asserts the paper's
qualitative shape checks.
"""

from repro.bench.experiments import r8_parcels


def test_r8_parcels(benchmark):
    result = benchmark.pedantic(r8_parcels.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
