"""Benchmark R14 — regenerates the 'incast' ablation (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r14_incast


def test_r14_incast(benchmark):
    result = benchmark.pedantic(r14_incast.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
