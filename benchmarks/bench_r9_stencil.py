"""Benchmark R9 — regenerates the 'stencil' table/figure (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
(the benchmark clock measures host wall time of the simulation; the
table's numbers are simulated-time metrics) and asserts the paper's
qualitative shape checks.
"""

from repro.bench.experiments import r9_stencil


def test_r9_stencil(benchmark):
    result = benchmark.pedantic(r9_stencil.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
