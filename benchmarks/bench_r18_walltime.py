"""Benchmark R18 — simulator wall-clock throughput (DESIGN.md §4).

Unlike the R1–R17 benchmarks, the table here *is* a host wall-clock
measurement (events/s of the bare kernel, MB/s through the zero-copy
payload path) — explicitly not simulated time.  The shape checks are
loose machine-independent floors; exact numbers land in
BENCH_wallclock.json via ``python -m repro.bench --timing``.
"""

from repro.bench.experiments import r18_walltime


def test_r18_walltime(benchmark):
    result = benchmark.pedantic(r18_walltime.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
