"""Benchmark R15 — regenerates the 'coalescing' ablation (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks.
"""

from repro.bench.experiments import r15_coalescing


def test_r15_coalescing(benchmark):
    result = benchmark.pedantic(r15_coalescing.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
