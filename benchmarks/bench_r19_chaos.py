"""Benchmark R19 — crash/detection/recovery chaos scenario (DESIGN.md §4).

Runs the reconstructed experiment in quick mode under pytest-benchmark
and asserts its qualitative shape checks (detection latency, dead-peer
fast-fail, bounded recovery, safety invariants).
"""

from repro.bench.experiments import r19_chaos


def test_r19_chaos(benchmark):
    result = benchmark.pedantic(r19_chaos.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, \
        f"shape checks failed: {result.failed_checks()}"
