"""Observability: metrics registry, op spans, trace export, reports.

See :mod:`repro.obs.registry` for the per-rank metrics core,
:mod:`repro.obs.export` for the bounded JSONL trace export, and
:mod:`repro.obs.report` for the merged snapshot + CLI
(``python -m repro.obs.report``).  ``report`` is imported lazily — it
pulls in the whole stack, while this package root must stay importable
from :mod:`repro.cluster`.
"""

from .export import export_jsonl
from .registry import (DEFAULT_SPAN_CAP, FABRIC_SCOPE, Histogram,
                       MetricsRegistry, ScopedCounters, Span)

__all__ = [
    "MetricsRegistry", "ScopedCounters", "Histogram", "Span",
    "FABRIC_SCOPE", "DEFAULT_SPAN_CAP",
    "export_jsonl",
]
