"""Merged observability snapshot + report CLI.

:func:`build_snapshot` folds every telemetry surface the stack exposes
into one JSON-serializable document:

- per rank: the metrics-registry scope (counters/gauges/histograms),
  ``Endpoint.stats()`` (queues, rings, rcache occupancy),
  ``Endpoint.telemetry()`` (fault-domain counters, now genuinely
  per-rank), minimpi ``Engine.stats()`` and runtime transport stats when
  provided, plus exact per-op latency percentiles computed from span
  records with :mod:`repro.util.stats`;
- cluster-wide: the aggregate counters, attribution gaps (names written
  outside any scope), span-ring occupancy, per-link fabric stats.

``python -m repro.obs.report`` runs a small R17-style lossy workload
(PWC puts, eager sends, a rendezvous message, minimpi eager+rendezvous
traffic) with spans and tracing enabled, prints a summary, and can write
the snapshot (``--json``) and the bounded JSONL trace (``--trace``) —
the same artifacts CI uploads from the smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..util.stats import percentile
from .export import export_jsonl
from .registry import MetricsRegistry

__all__ = ["build_snapshot", "run_demo", "main"]

_WAIT = 10 ** 12


def _span_percentiles(registry: MetricsRegistry,
                      rank: Optional[int]) -> Dict[str, Dict[str, float]]:
    """Exact latency percentiles per span name for one rank (None = all)."""
    by_name: Dict[str, List[int]] = {}
    for span in registry.spans:
        if rank is not None and span.scope.label != rank:
            continue
        by_name.setdefault(span.name, []).append(span.duration_ns)
    out = {}
    for name, durations in sorted(by_name.items()):
        out[name] = {
            "n": len(durations),
            "p50_ns": percentile(durations, 50.0),
            "p95_ns": percentile(durations, 95.0),
            "p99_ns": percentile(durations, 99.0),
            "max_ns": float(max(durations)),
        }
    return out


def _rank_section(entry: Dict[str, object], key: str, obj,
                  method: str) -> bool:
    """Fill ``entry[key]`` from ``obj.method()``; report rank death.

    A rank that was crashed mid-run (chaos ``CrashRank``) may be handed
    to us as ``None`` — callers that keep per-rank lists often null out
    the slot — or as an endpoint whose volatile state is gone so its
    stats accessor raises.  Either way the snapshot must not raise: the
    section becomes ``None`` and the caller marks the rank dead.
    """
    if obj is None:
        entry[key] = None
        return True
    try:
        entry[key] = getattr(obj, method)()
    except Exception:
        entry[key] = None
        return True
    return False


def build_snapshot(cluster, photons=None, comms=None,
                   transports=None) -> Dict[str, object]:
    """One JSON-serializable observability document for a whole cluster.

    ``photons``/``comms``/``transports`` are optional per-rank lists (from
    ``photon_init``/``mpi_init``/``build_runtime``); sections are included
    for whatever is provided.  Ranks that died mid-run (chaos crashes:
    slot is ``None``, endpoint reports ``alive == False``, or its stats
    raise) are included with ``"dead": true`` rather than raising — their
    metrics-registry scope is still valid and is always reported.
    """
    registry: MetricsRegistry = cluster.metrics
    ranks: Dict[str, Dict[str, object]] = {}
    for r in range(cluster.n):
        scope = registry.scope(r)
        entry: Dict[str, object] = {"metrics": scope.metrics_snapshot()}
        dead = False
        if photons is not None:
            ep = photons[r] if r < len(photons) else None
            dead |= _rank_section(entry, "photon", ep, "stats")
            dead |= _rank_section(entry, "telemetry", ep, "telemetry")
            if ep is not None and not getattr(ep, "alive", True):
                dead = True
        if comms is not None:
            comm = comms[r] if r < len(comms) else None
            dead |= _rank_section(entry, "mpi", comm, "stats")
        if transports is not None:
            tp = transports[r] if r < len(transports) else None
            dead |= _rank_section(entry, "transport", tp, "stats")
        if dead:
            entry["dead"] = True
        latencies = _span_percentiles(registry, r)
        if latencies:
            entry["op_latency"] = latencies
        ranks[str(r)] = entry
    return {
        "sim_now_ns": cluster.env.now,
        "n_ranks": cluster.n,
        "ranks": ranks,
        "fabric": {
            "metrics": registry.fabric.metrics_snapshot(),
            "links": [link.stats() for link in cluster.topology.iter_links()],
        },
        "aggregate": {
            "counters": registry.aggregate.snapshot(),
            "attribution_gaps": registry.attribution_gaps(),
        },
        "spans": {
            "recorded": len(registry.spans),
            "dropped": registry.spans_dropped,
            "enabled": registry.spans_enabled,
        },
        "trace": {
            "records": len(cluster.tracer.records),
            "dropped": cluster.tracer.dropped,
            "enabled": cluster.tracer.enabled,
        },
    }


# --------------------------------------------------------------------------
# demo workload (the CLI's subject; also used by tests and CI artifacts)
# --------------------------------------------------------------------------

def run_demo(n_msgs: int = 12, loss: float = 1e-3, seed: int = 7):
    """R17-style lossy traffic with full observability enabled.

    Photon PWC puts + eager sends + one rendezvous message and a minimpi
    eager/rendezvous stream share one 2-rank lossy fabric (NIC ARQ off so
    drops surface to the middleware).  Returns ``(cluster, photons,
    comms, snapshot)``.
    """
    from ..cluster import build_cluster
    from ..minimpi import mpi_init
    from ..photon import PhotonConfig, photon_init
    from ..sim.core import SimulationError

    cl = build_cluster(2, params="ib-fdr", seed=seed, trace=True, spans=True,
                       link__loss_mode="lossy", link__drop_rate=loss,
                       nic__transport_retries=0)
    ph = photon_init(cl, PhotonConfig(max_op_retries=5))
    mm = mpi_init(cl)
    size = 16384
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    pattern = bytes(range(256)) * (size // 256)
    cl[0].memory.write(src.addr, pattern)
    m_src = cl[0].memory.alloc(size)
    m_dst = cl[1].memory.alloc(size)
    cl[0].memory.write(m_src, pattern)
    scratch = cl[1].memory.alloc(4 * size)

    def photon_sender(env):
        for i in range(n_msgs):
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=_WAIT)
            if c is None or not c.ok:
                raise SimulationError(f"demo put {i} failed")
        for i in range(n_msgs):
            yield from ph[0].send_pwc(1, bytes([i]) * 128, remote_cid=500 + i)
        rid = yield from ph[0].send_rdma(1, src.addr, size, tag=9)
        yield from ph[0].wait(rid)
        ph[0].free_request(rid)

    def photon_receiver(env):
        for _ in range(n_msgs):
            c = yield from ph[1].wait_completion("remote", timeout_ns=_WAIT)
            if c is None:
                raise SimulationError("demo receiver starved")
        for _ in range(n_msgs):
            m = yield from ph[1].wait_message(timeout_ns=_WAIT)
            if m is None:
                raise SimulationError("demo eager stream stalled")
        info = yield from ph[1].wait_recv_info(src=0, tag=9,
                                               timeout_ns=_WAIT)
        if info is None:
            raise SimulationError("demo rendezvous starved")
        yield from ph[1].recv_rdma(info, scratch)

    def mpi_sender(env):
        for i in range(n_msgs):
            sz = 256 if i % 2 else size  # alternate eager / rendezvous
            req = yield from mm[0].isend(m_src, sz, 1, tag=i)
            ok = yield from mm[0].engine.wait(req, timeout_ns=_WAIT)
            if not ok or req.failed:
                raise SimulationError(f"demo mpi send {i} failed")

    def mpi_receiver(env):
        for i in range(n_msgs):
            sz = 256 if i % 2 else size
            req = yield from mm[1].irecv(m_dst, sz, src=0, tag=i)
            ok = yield from mm[1].engine.wait(req, timeout_ns=_WAIT)
            if not ok or req.failed:
                raise SimulationError(f"demo mpi recv {i} failed")

    procs = [cl.env.process(photon_sender(cl.env)),
             cl.env.process(photon_receiver(cl.env)),
             cl.env.process(mpi_sender(cl.env)),
             cl.env.process(mpi_receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    if bytes(cl[1].memory.read(dst.addr, size)) != pattern:
        raise SimulationError("demo payload corrupted")
    snapshot = build_snapshot(cl, photons=ph, comms=mm)
    return cl, ph, mm, snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="run a lossy observability demo workload and emit the "
                    "merged stats snapshot / JSONL trace")
    parser.add_argument("--msgs", type=int, default=12,
                        help="messages per stream (default 12)")
    parser.add_argument("--loss", type=float, default=1e-3,
                        help="chunk loss probability (default 1e-3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="PATH",
                        help="write the merged snapshot as JSON")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the JSONL trace+span export")
    args = parser.parse_args(argv)

    cl, _ph, _mm, snapshot = run_demo(n_msgs=args.msgs, loss=args.loss,
                                      seed=args.seed)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.trace:
        lines = export_jsonl(args.trace, tracer=cl.tracer,
                             registry=cl.metrics)
        print(f"wrote {args.trace} ({lines} lines)")
    agg = snapshot["aggregate"]["counters"]
    print(f"sim time {snapshot['sim_now_ns']} ns, "
          f"{snapshot['spans']['recorded']} spans, "
          f"{snapshot['trace']['records']} trace records")
    for key in ("photon.op_retries", "photon.dup_drops", "link.drops",
                "mpi.ctrl_resends"):
        print(f"  {key}: {agg.get(key, 0)}")
    gaps = snapshot["aggregate"]["attribution_gaps"]
    if gaps:
        print(f"  attribution gaps: {gaps}")
    # the whole point: the merged snapshot is JSON-clean
    json.dumps(snapshot)
    print("snapshot is JSON-serializable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
