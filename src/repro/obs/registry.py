"""Hierarchical metrics registry with per-rank scoping.

This is the observability core the rest of the stack hangs off
(``photon_get_dev_stats`` analogue, grown into a real subsystem):

- **Counters** are written through :class:`ScopedCounters` views — one per
  rank plus one ``fabric`` scope for hardware shared between ranks (links,
  switches).  Every ``add`` lands in the scope *and* is mirrored into the
  cluster-wide :class:`~repro.sim.trace.Counters` aggregate, so the
  aggregate stays bit-identical to the historical shared-``Counters``
  behaviour (the golden-trace suite hashes it) while per-rank attribution
  becomes possible for the first time.  The invariant
  ``sum(scopes) == aggregate`` holds whenever all writers go through
  scopes; :meth:`MetricsRegistry.attribution_gaps` reports any names
  written directly into the aggregate.
- **Gauges** are last-value-wins per scope (queue depths, occupancy).
- **Histograms** are fixed-bucket (power-of-two upper bounds), so memory
  is bounded no matter how many values are observed.
- **Spans** are start/end op records keyed to the *simulated* clock
  (pwc/gwc/eager/rendezvous/retry), carrying peer and byte counts.  They
  are pure host-side bookkeeping: recording a span never advances the
  simulation, consumes RNG, or reorders events, so enabling them cannot
  perturb golden traces.  Completed spans live in a bounded ring
  (:attr:`MetricsRegistry.max_spans`, oldest dropped first) and feed both
  the per-op latency histograms and the JSONL trace export.

Everything here is disabled-cheap: with ``spans_enabled`` off (the
default) ``scope.span(...)`` is one attribute load and a ``return None``,
and ``observe``/``set_gauge`` are a dict update at most.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from ..sim.trace import Counters

__all__ = ["MetricsRegistry", "ScopedCounters", "Histogram", "Span",
           "FABRIC_SCOPE", "DEFAULT_SPAN_CAP"]

#: scope label for non-rank-attributable hardware (links, switch ports)
FABRIC_SCOPE = "fabric"

#: default completed-span ring capacity (bounded memory for long runs)
DEFAULT_SPAN_CAP = 65_536

#: histogram bucket upper bounds: powers of two, 64 ns .. ~1.1 s, plus +inf
_BUCKET_BOUNDS = tuple(1 << k for k in range(6, 31))


class Histogram:
    """Fixed-bucket histogram (power-of-two upper bounds, ns-oriented)."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self):
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        v = int(value)
        # bucket index via bit_length: first bound >= v (bounds start at 2^6)
        idx = max(0, (v - 1).bit_length() - 6) if v > 0 else 0
        if idx > len(_BUCKET_BOUNDS):
            idx = len(_BUCKET_BOUNDS)
        self.counts[idx] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th observation (exact raw values come from span records)."""
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return float(_BUCKET_BOUNDS[i]) if i < len(_BUCKET_BOUNDS) \
                    else float(self.max)
        return float(self.max)  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, object]:
        buckets = {str(_BUCKET_BOUNDS[i]): n
                   for i, n in enumerate(self.counts[:-1]) if n}
        if self.counts[-1]:
            buckets["+inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "buckets": buckets}


class Span:
    """One timed operation (open until :meth:`end` is called)."""

    __slots__ = ("name", "scope", "peer", "nbytes", "t_start", "t_end",
                 "status", "extra")

    def __init__(self, name: str, scope: "ScopedCounters", t_start: int,
                 peer: Optional[int], nbytes: int):
        self.name = name
        self.scope = scope
        self.peer = peer
        self.nbytes = nbytes
        self.t_start = t_start
        self.t_end: Optional[int] = None
        self.status = "open"
        self.extra: Optional[Dict[str, object]] = None

    @property
    def duration_ns(self) -> Optional[int]:
        return None if self.t_end is None else self.t_end - self.t_start

    def end(self, t_end: int, status: str = "ok", **extra: object) -> None:
        """Close the span (idempotent; the first close wins)."""
        if self.t_end is not None:
            return
        self.t_end = t_end
        self.status = status
        if extra:
            self.extra = extra
        self.scope._close_span(self)

    def as_dict(self) -> Dict[str, object]:
        d = {"span": self.name, "rank": self.scope.label, "peer": self.peer,
             "bytes": self.nbytes, "t_start": self.t_start,
             "t_end": self.t_end, "duration_ns": self.duration_ns,
             "status": self.status}
        if self.extra:
            d.update(self.extra)
        return d


class ScopedCounters(Counters):
    """Per-scope counter view that mirrors every write into the aggregate.

    API-compatible with :class:`~repro.sim.trace.Counters` (components
    take either), plus live gauge/histogram/span recording.
    """

    def __init__(self, registry: "MetricsRegistry", label: object):
        super().__init__(values=Counter())
        self.registry = registry
        #: rank number, or :data:`FABRIC_SCOPE`
        self.label = label
        self._agg = registry.aggregate.values
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- counters
    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] += amount
        self._agg[name] += amount

    def set_max(self, name: str, value: int) -> None:
        self.registry._max_names.add(name)
        if value > self.values.get(name, 0):
            self.values[name] = value
        if value > self._agg.get(name, 0):
            self._agg[name] = value

    def clear(self) -> None:
        """Clear this scope, subtracting its contribution from the
        aggregate so the mirror invariant survives."""
        self._agg.subtract(self.values)
        for name in [n for n, v in self._agg.items() if v == 0]:
            del self._agg[name]
        self.values.clear()

    # ------------------------------------------------------------- gauges
    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # ------------------------------------------------------------- histograms
    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------- spans
    def span(self, name: str, t_start: int, peer: Optional[int] = None,
             nbytes: int = 0) -> Optional[Span]:
        """Open a span, or return None when span recording is disabled."""
        if not self.registry.spans_enabled:
            return None
        return Span(name, self, t_start, peer, nbytes)

    def _close_span(self, span: Span) -> None:
        self.observe(f"{span.name}.latency_ns", span.duration_ns)
        self.registry._record_span(span)

    # ------------------------------------------------------------- snapshots
    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of this scope's metrics."""
        return {
            "counters": dict(self.values),
            "gauges": dict(self.gauges),
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
        }


class MetricsRegistry:
    """One registry per cluster: rank scopes, a fabric scope, the mirror
    aggregate, and the bounded completed-span ring."""

    def __init__(self, n_ranks: int, spans_enabled: bool = False,
                 max_spans: int = DEFAULT_SPAN_CAP,
                 aggregate: Optional[Counters] = None):
        if n_ranks < 1:
            raise ValueError("registry needs at least one rank")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.n_ranks = n_ranks
        self.spans_enabled = spans_enabled
        self.max_spans = max_spans
        #: the cluster-wide aggregate every scope mirrors into; identical
        #: names and values to the historical shared-``Counters`` object
        self.aggregate = aggregate if aggregate is not None else Counters()
        self.ranks: List[ScopedCounters] = [
            ScopedCounters(self, r) for r in range(n_ranks)]
        self.fabric = ScopedCounters(self, FABRIC_SCOPE)
        self.spans: Deque[Span] = deque()
        #: completed spans evicted from the full ring (oldest-first)
        self.spans_dropped = 0
        #: names with high-water-mark (max) semantics: the aggregate is the
        #: max over scopes, not the sum, so the sum invariant skips them
        self._max_names: set = set()

    # ------------------------------------------------------------- scopes
    def scope(self, rank: Optional[int] = None) -> ScopedCounters:
        """The counter scope for ``rank`` (None → the fabric scope)."""
        return self.fabric if rank is None else self.ranks[rank]

    def _scopes(self) -> List[ScopedCounters]:
        return self.ranks + [self.fabric]

    # ------------------------------------------------------------- spans
    def enable_spans(self) -> None:
        self.spans_enabled = True

    def _record_span(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.spans.popleft()
            self.spans_dropped += 1
        self.spans.append(span)

    def span_durations(self, name: Optional[str] = None,
                       rank: Optional[int] = None) -> List[int]:
        """Raw durations of completed spans, filtered by name/rank — feed
        these to :func:`repro.util.stats.percentile` for exact latency
        percentiles."""
        return [s.duration_ns for s in self.spans
                if (name is None or s.name == name)
                and (rank is None or s.scope.label == rank)]

    # ------------------------------------------------------------- invariants
    def per_rank_totals(self) -> Counter:
        """Sum of all scopes (ranks + fabric) — equals the aggregate when
        every writer goes through a scope (``set_max`` names excluded:
        their aggregate is the max over scopes, not the sum)."""
        total: Counter = Counter()
        for scope in self._scopes():
            total.update(scope.values)
        for name in self._max_names:
            total.pop(name, None)
        return total

    def attribution_gaps(self) -> Dict[str, int]:
        """Counter names (and amounts) present in the aggregate but not
        covered by any scope — i.e. written directly into the aggregate."""
        totals = self.per_rank_totals()
        return {name: value - totals.get(name, 0)
                for name, value in sorted(self.aggregate.values.items())
                if name not in self._max_names
                and value != totals.get(name, 0)}

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable registry-wide snapshot."""
        return {
            "aggregate": self.aggregate.snapshot(),
            "ranks": {str(s.label): s.metrics_snapshot()
                      for s in self.ranks},
            "fabric": self.fabric.metrics_snapshot(),
            "spans": {"recorded": len(self.spans),
                      "dropped": self.spans_dropped,
                      "enabled": self.spans_enabled},
            "attribution_gaps": self.attribution_gaps(),
        }
