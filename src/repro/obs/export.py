"""Bounded JSONL export of traces and spans.

One JSON object per line, ``type``-tagged so mixed streams stay greppable:

- ``{"type": "trace", "time": ..., "category": ..., ...fields}`` — one
  :class:`~repro.sim.trace.TraceRecord`;
- ``{"type": "span", "span": ..., "rank": ..., "peer": ..., "bytes": ...,
  "t_start": ..., "t_end": ..., "duration_ns": ..., "status": ...}`` —
  one completed :class:`~repro.obs.registry.Span`;
- a final ``{"type": "meta", ...}`` line recording how much the bounded
  rings dropped, so a truncated export is never mistaken for a complete
  one.

Memory stays bounded end to end: both source rings are capped
(``Tracer.max_records``, ``MetricsRegistry.max_spans``) and the writer
streams line by line — nothing is accumulated.
"""

from __future__ import annotations

import json
from typing import Optional

from ..sim.trace import Tracer
from .registry import MetricsRegistry

__all__ = ["export_jsonl"]


def export_jsonl(path: str, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None) -> int:
    """Write trace records and completed spans to ``path``; returns the
    number of data lines written (excluding the trailing meta line)."""
    lines = 0
    with open(path, "w") as fh:
        if tracer is not None:
            for rec in tracer.records:
                d = rec.as_dict()
                d["type"] = "trace"
                fh.write(json.dumps(d, sort_keys=True))
                fh.write("\n")
                lines += 1
        if registry is not None:
            for span in registry.spans:
                d = span.as_dict()
                d["type"] = "span"
                fh.write(json.dumps(d, sort_keys=True))
                fh.write("\n")
                lines += 1
        meta = {
            "type": "meta",
            "lines": lines,
            "trace_dropped": tracer.dropped if tracer is not None else 0,
            "spans_dropped": (registry.spans_dropped
                              if registry is not None else 0),
        }
        fh.write(json.dumps(meta, sort_keys=True))
        fh.write("\n")
    return lines
