"""Fixed-width table and size formatting for benchmark output.

The bench harness prints the same row/series structure the paper's tables
and figures report; these helpers keep that output aligned and stable so
EXPERIMENTS.md diffs are meaningful.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "format_size", "format_series"]


def format_size(nbytes: int) -> str:
    """Human size: 512B, 4KiB, 2MiB (exact powers keep integer labels)."""
    if nbytes < 1024:
        return f"{nbytes}B"
    for unit, scale in (("KiB", 1024), ("MiB", 1024 ** 2), ("GiB", 1024 ** 3)):
        if nbytes < scale * 1024 or unit == "GiB":
            value = nbytes / scale
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
    raise AssertionError("unreachable")


def _cell(x: Any) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000:
            return f"{x:.0f}"
        if abs(x) >= 10:
            return f"{x:.2f}"
        return f"{x:.3f}"
    return str(x)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned fixed-width table (first column left-aligned)."""
    cells: List[List[str]] = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt_row(row: Sequence[str]) -> str:
        parts = [row[0].ljust(widths[0])]
        parts += [c.rjust(widths[i + 1]) for i, c in enumerate(row[1:])]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float],
                  width: int = 40) -> str:
    """Render a labelled series as an ASCII bar sparkline (figure stand-in)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys length mismatch")
    if not ys:
        return f"{name}: (empty)"
    top = max(ys) or 1.0
    lines = [f"{name}:"]
    label_w = max(len(_cell(x)) for x in xs)
    for x, y in zip(xs, ys):
        bar = "#" * max(1, round(width * y / top)) if y > 0 else ""
        lines.append(f"  {_cell(x).rjust(label_w)} | {bar} {_cell(float(y))}")
    return "\n".join(lines)
