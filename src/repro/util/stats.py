"""Small statistics helpers used by the bench harness and tests."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["mean", "median", "percentile", "stddev", "summarize", "Summary"]


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def median(xs: Sequence[float]) -> float:
    return percentile(xs, 50.0)


def percentile(xs: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile, p in [0, 100]."""
    if not xs:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} out of range")
    ordered = sorted(xs)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def stddev(xs: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two points)."""
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


class Summary:
    """Five-number-ish summary of a sample, with pretty repr."""

    __slots__ = ("n", "mean", "median", "p95", "min", "max", "stddev")

    def __init__(self, xs: Iterable[float]):
        data: List[float] = [float(x) for x in xs]
        if not data:
            raise ValueError("Summary of empty sample")
        self.n = len(data)
        self.mean = mean(data)
        self.median = median(data)
        self.p95 = percentile(data, 95.0)
        self.min = min(data)
        self.max = max(data)
        self.stddev = stddev(data)

    def __repr__(self) -> str:
        return (f"Summary(n={self.n}, mean={self.mean:.3f}, "
                f"median={self.median:.3f}, p95={self.p95:.3f})")


def summarize(xs: Iterable[float]) -> Summary:
    return Summary(xs)
