"""Shared utilities: units, statistics, and table formatting."""

from .fmt import format_series, format_size, format_table
from .stats import Summary, mean, median, percentile, stddev, summarize
from .units import (
    GiB,
    KiB,
    MiB,
    MS,
    NS,
    S,
    US,
    gbps_to_bytes_per_ns,
    ms,
    s,
    serialization_ns,
    to_gbps,
    to_us,
    us,
)

__all__ = [
    "format_series", "format_size", "format_table",
    "Summary", "mean", "median", "percentile", "stddev", "summarize",
    "GiB", "KiB", "MiB", "MS", "NS", "S", "US",
    "gbps_to_bytes_per_ns", "ms", "s", "serialization_ns",
    "to_gbps", "to_us", "us",
]
