"""Unit helpers: time is integer nanoseconds, sizes are bytes.

All model arithmetic happens in these units; the helpers below convert
human-friendly magnitudes (microseconds, Gbit/s, MiB) into them and back.
Durations derived from bandwidths are rounded *up* to the next nanosecond so
that zero-cost transfers are impossible.
"""

from __future__ import annotations

import math

__all__ = [
    "NS", "US", "MS", "S",
    "KiB", "MiB", "GiB",
    "us", "ms", "s",
    "gbps_to_bytes_per_ns", "serialization_ns", "to_us", "to_gbps",
]

# -- time ------------------------------------------------------------------
NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000

# -- sizes -----------------------------------------------------------------
KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def us(x: float) -> int:
    """Microseconds → integer nanoseconds."""
    return round(x * US)


def ms(x: float) -> int:
    """Milliseconds → integer nanoseconds."""
    return round(x * MS)


def s(x: float) -> int:
    """Seconds → integer nanoseconds."""
    return round(x * S)


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Gbit/s → bytes per nanosecond (1 Gbit/s = 0.125 B/ns)."""
    return gbps / 8.0


def serialization_ns(nbytes: int, gbps: float) -> int:
    """Time to clock ``nbytes`` onto a ``gbps`` pipe, rounded up, >= 1 ns
    for any non-empty payload."""
    if nbytes <= 0:
        return 0
    return max(1, math.ceil(nbytes / gbps_to_bytes_per_ns(gbps)))


def to_us(ns_value: int) -> float:
    """Integer nanoseconds → float microseconds (for reporting)."""
    return ns_value / US


def to_gbps(nbytes: int, ns_value: int) -> float:
    """Achieved rate for ``nbytes`` over ``ns_value`` ns, in Gbit/s."""
    if ns_value <= 0:
        return float("inf")
    return (nbytes * 8.0) / ns_value
