"""Cluster assembly: wire N simulated ranks together.

This is the shared bootstrap used by tests, examples and every benchmark:
it builds the event loop, topology, per-rank memory/NIC/verbs context, and
offers helpers for running one program per rank SPMD-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from .fabric.memory import Memory
from .fabric.nic import Nic
from .fabric.params import FabricParams, preset
from .fabric.topology import Topology, make_topology
from .obs.registry import MetricsRegistry
from .sim.core import Environment, Process
from .sim.rng import RngRegistry
from .sim.trace import DEFAULT_TRACE_CAP, Counters, Tracer
from .util.units import MiB
from .verbs.device import Context, Directory

__all__ = ["RankNode", "Cluster", "build_cluster"]


@dataclass
class RankNode:
    """Everything one simulated rank owns."""

    rank: int
    memory: Memory
    nic: Nic
    context: Context


class Cluster:
    """N ranks on a shared fabric (see :func:`build_cluster`)."""

    def __init__(self, env: Environment, params: FabricParams,
                 topology: Topology, ranks: List[RankNode],
                 directory: Directory, counters: Counters, tracer: Tracer,
                 rng: RngRegistry, metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.params = params
        self.topology = topology
        self.ranks = ranks
        self.directory = directory
        #: cluster-wide aggregate counters (the metrics registry's mirror
        #: target) — names and values identical to the pre-registry era
        self.counters = counters
        self.tracer = tracer
        self.rng = rng
        #: per-rank metrics registry (scoped counters, histograms, spans)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(len(ranks), aggregate=counters)

    def scope(self, rank: int):
        """The per-rank counter scope (see :class:`repro.obs.registry`)."""
        return self.metrics.scope(rank)

    @property
    def n(self) -> int:
        return len(self.ranks)

    def __getitem__(self, rank: int) -> RankNode:
        return self.ranks[rank]

    def spawn(self, rank: int, generator, name: Optional[str] = None) -> Process:
        """Run a generator as a process attributed to ``rank``."""
        return self.env.process(generator, name=name or f"rank{rank}")

    def run_spmd(self, program: Callable[..., object], *args,
                 until: Optional[int] = None) -> List:
        """Run ``program(cluster, rank, *args)`` on every rank; returns the
        per-rank results once all complete."""
        procs = [self.spawn(r, program(self, r, *args)) for r in range(self.n)]
        done = self.env.all_of(procs)
        self.env.run(until=done if until is None else until)
        return [p.value for p in procs]


def build_cluster(n: int,
                  params: Union[str, FabricParams] = "ib-fdr",
                  topology: Optional[str] = None,
                  mem_size: int = 64 * MiB,
                  seed: int = 0,
                  trace: bool = False,
                  spans: bool = False,
                  trace_max_records: int = DEFAULT_TRACE_CAP,
                  **overrides) -> Cluster:
    """Assemble a cluster of ``n`` ranks.

    Parameters
    ----------
    params:
        A preset name (``"ib-fdr"``, ``"ib-edr"``, ``"gemini"``, ``"roce"``,
        ``"eth-10g"``) or a :class:`FabricParams` instance.
    topology:
        Override the preset's topology ("star" or "torus2d").
    spans:
        Record per-op latency spans in the metrics registry (host-side
        only; cannot perturb simulated time).
    trace_max_records:
        Ring capacity of the tracer's record store.
    overrides:
        Nested parameter overrides, e.g. ``link__mtu=1024``.
    """
    if isinstance(params, str):
        params = preset(params)
    if overrides:
        params = params.with_overrides(**overrides)
    env = Environment()
    metrics = MetricsRegistry(n, spans_enabled=spans)
    # Every component writes through a scope; the registry mirrors each
    # write into this aggregate, so ``cluster.counters`` stays identical
    # to the old shared-Counters object (the golden-trace suite hashes it)
    # while per-rank attribution becomes available via ``cluster.metrics``.
    counters = metrics.aggregate
    tracer = Tracer(enabled=trace, max_records=trace_max_records)
    rng = RngRegistry(seed)
    topo = make_topology(topology or params.topology, env, n,
                         params.link, metrics.fabric, rng=rng)
    directory = Directory()
    ranks: List[RankNode] = []
    for r in range(n):
        scope = metrics.scope(r)
        memory = Memory(mem_size, params.host, rank=r)
        nic = Nic(env, r, params, memory, topo, scope, tracer)
        context = Context(env, r, nic, memory, params, directory, scope)
        ranks.append(RankNode(rank=r, memory=memory, nic=nic, context=context))
    return Cluster(env, params, topo, ranks, directory, counters, tracer, rng,
                   metrics=metrics)
