"""Verbs-layer error types.

Programming errors (bad arguments, exceeding queue depths, protection
violations with the simulator's global knowledge) raise immediately — the
simulated middleware is expected never to trigger them, so an exception is
a bug in the model or in the layer above, not a runtime condition to code
around.
"""

from __future__ import annotations

from ..sim.core import SimulationError

__all__ = [
    "VerbsError",
    "ProtectionError",
    "QueueFullError",
    "BadWorkRequest",
    "NotConnected",
]


class VerbsError(SimulationError):
    """Base class for verbs-layer failures."""


class ProtectionError(VerbsError):
    """Access outside a registered region or without the needed permission."""


class QueueFullError(VerbsError):
    """Posting beyond max_send_wr / max_recv_wr, or CQ overrun."""


class BadWorkRequest(VerbsError):
    """Malformed work request (missing remote addr, oversized inline, ...)."""


class NotConnected(VerbsError):
    """Operation on a queue pair that has no connected peer."""
