"""ibverbs-like RDMA API over the simulated fabric.

Layering: ``repro.fabric`` models hardware (links, NIC engines, memory);
this package provides the programming surface real middleware is written
against — contexts, protection domains, memory regions with lkeys/rkeys,
completion queues and reliable-connection queue pairs.  Photon and minimpi
are both implemented strictly on top of this API.
"""

from .cq import CompletionQueue, WorkCompletion
from .device import Context, Directory, ProtectionDomain
from .enums import Access, Opcode, QPState, WCOpcode, WCStatus
from .errors import (
    BadWorkRequest,
    NotConnected,
    ProtectionError,
    QueueFullError,
    VerbsError,
)
from .mr import MemoryRegion
from .qp import QueuePair, RecvWR, SendWR, connect_pair

__all__ = [
    "CompletionQueue", "WorkCompletion",
    "Context", "Directory", "ProtectionDomain",
    "Access", "Opcode", "QPState", "WCOpcode", "WCStatus",
    "BadWorkRequest", "NotConnected", "ProtectionError", "QueueFullError",
    "VerbsError",
    "MemoryRegion",
    "QueuePair", "RecvWR", "SendWR", "connect_pair",
]
