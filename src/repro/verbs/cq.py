"""Completion queues and work completions."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..sim.core import Environment, Event
from ..sim.resources import Signal
from .enums import WCOpcode, WCStatus
from .errors import QueueFullError

__all__ = ["WorkCompletion", "CompletionQueue"]

#: shared result for polls of an empty CQ (callers only iterate it)
_EMPTY_POLL: tuple = ()


@dataclass(frozen=True)
class WorkCompletion:
    """One completion-queue entry."""

    wr_id: int
    opcode: WCOpcode
    status: WCStatus = WCStatus.SUCCESS
    byte_len: int = 0
    imm: Optional[int] = None
    #: source rank for receive-side completions
    src_rank: int = -1
    #: local qp number the completion belongs to
    qp_num: int = -1

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionQueue:
    """Bounded FIFO of :class:`WorkCompletion`.

    ``poll`` is a plain (zero-time) function; the *caller* charges per-CQE
    reap cost (``NicParams.cqe_poll_ns``) on its own clock, which is where
    that CPU time is spent on real systems.  ``wait_nonempty`` returns an
    event for blocking-style helpers.
    """

    def __init__(self, env: Environment, capacity: int = 4096):
        if capacity <= 0:
            raise QueueFullError("CQ capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._entries: Deque[WorkCompletion] = deque()
        self._signal = Signal(env)
        self.overruns = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        if len(self._entries) >= self.capacity:
            self.overruns += 1
            raise QueueFullError(
                f"CQ overrun (capacity {self.capacity}); middleware must "
                "drain completions faster or size the CQ to its queue depths")
        self._entries.append(wc)
        self._signal.fire()

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Reap up to ``max_entries`` completions (possibly empty)."""
        entries = self._entries
        if not entries:
            # hot path: almost every progress pass polls an empty CQ —
            # hand back a shared immutable empty so no list is allocated
            return _EMPTY_POLL
        out: List[WorkCompletion] = []
        while entries and len(out) < max_entries:
            out.append(entries.popleft())
        return out

    def wait_nonempty(self) -> Event:
        """Event that fires when the CQ has (or gets) an entry."""
        ev = Event(self.env)
        if self._entries:
            ev.succeed()
        else:
            wake = self._signal.wait()
            wake.add_callback(lambda _: ev.succeed())
        return ev
