"""Reliable-connection queue pairs.

A :class:`QueuePair` is connected point-to-point to a peer QP on another
rank (or the same rank — loopback works).  It supports the work-request
opcodes Photon and minimpi need:

- ``SEND`` / posted receives with tag-free FIFO matching (RC semantics:
  the n-th send on a QP consumes the n-th posted receive),
- ``RDMA_WRITE`` and ``RDMA_WRITE_WITH_IMM`` (the latter consumes a receive
  and raises a completion with 32-bit immediate data at the target),
- ``RDMA_READ``,
- ``ATOMIC_FETCH_ADD`` / ``ATOMIC_CMP_SWAP`` on 8-byte words.

Completion semantics follow the hardware: the sender-side completion for a
write/send fires after the (modelled) transport ack returns; reads and
atomics complete when the response data lands.  Unsignaled work requests
consume a send-queue slot but produce no CQE.

Cost accounting: ``post_send``/``post_recv`` are zero-time bookkeeping —
callers charge the host-CPU post overhead via :meth:`post_send_timed` (or
charge ``NicParams.post_overhead_ns`` themselves).  The doorbell delay
(post → NIC sees the WQE) is modelled inside ``post_send``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Deque, Dict, Optional, Tuple

from ..fabric.nic import CTRL_BYTES, WireMsg
from .cq import CompletionQueue, WorkCompletion
from .device import Context, ProtectionDomain
from .enums import Access, Opcode, QPState, WCOpcode, WCStatus
from .errors import (
    BadWorkRequest,
    NotConnected,
    QueueFullError,
)

__all__ = ["SendWR", "RecvWR", "QueuePair", "connect_pair"]

_U64_MASK = (1 << 64) - 1

_WC_OPCODES = {
    Opcode.SEND: WCOpcode.SEND,
    Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_READ: WCOpcode.RDMA_READ,
    Opcode.ATOMIC_FETCH_ADD: WCOpcode.ATOMIC,
    Opcode.ATOMIC_CMP_SWAP: WCOpcode.ATOMIC,
}


def _wc_opcode(op: Opcode) -> WCOpcode:
    return _WC_OPCODES[op]


@dataclass
class SendWR:
    """A send-queue work request."""

    opcode: Opcode
    wr_id: int = 0
    #: local buffer (source for SEND/WRITE, destination for READ/ATOMIC)
    local_addr: int = 0
    length: int = 0
    #: remote buffer + key (for RDMA/atomic opcodes)
    remote_addr: int = 0
    rkey: int = 0
    #: 32-bit immediate for RDMA_WRITE_WITH_IMM
    imm: Optional[int] = None
    #: request a completion (selective signalling)
    signaled: bool = True
    #: carry the payload in the WQE (no DMA fetch); length must be within
    #: NicParams.max_inline
    inline: bool = False
    #: atomic operands
    compare_add: int = 0
    swap: int = 0


@dataclass
class RecvWR:
    """A receive-queue work request (landing buffer for SEND / IMM)."""

    wr_id: int = 0
    addr: int = 0
    length: int = 0


class QueuePair:
    """One side of a reliable connection (see module docstring)."""

    def __init__(self, context: Context, pd: ProtectionDomain,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue,
                 qp_num: int, max_send_wr: int, max_recv_wr: int):
        self.context = context
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp_num = qp_num
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.state = QPState.RESET
        self.peer: Optional["QueuePair"] = None
        self._sq_outstanding = 0
        self._rq: Deque[RecvWR] = deque()
        #: messages that arrived before a receive was posted (RNR)
        self._rnr: Deque[WireMsg] = deque()
        #: in-flight send WRs by tracking token — the flush set when the QP
        #: enters ERROR, and the guard that late wire callbacks check
        self._pending: Dict[int, Tuple[SendWR, WCOpcode]] = {}
        self._wr_token = 0

    # -- connection ------------------------------------------------------------
    def connect(self, peer: "QueuePair") -> None:
        if self.state is not QPState.RESET or peer.state is not QPState.RESET:
            raise NotConnected("both QPs must be in RESET to connect")
        self.peer = peer
        peer.peer = self
        self.state = peer.state = QPState.READY

    @property
    def remote_rank(self) -> int:
        if self.peer is None:
            raise NotConnected("QP has no peer")
        return self.peer.context.rank

    @property
    def sq_available(self) -> int:
        return self.max_send_wr - self._sq_outstanding

    @property
    def rq_posted(self) -> int:
        return len(self._rq)

    # -- receive side ----------------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        if self.state is not QPState.READY:
            raise NotConnected("post_recv on unconnected QP")
        if len(self._rq) >= self.max_recv_wr:
            raise QueueFullError(
                f"rank {self.context.rank} qp{self.qp_num}: RQ full "
                f"({self.max_recv_wr})")
        if wr.length:
            self.pd.find_local(wr.addr, wr.length, Access.LOCAL_WRITE)
        self._rq.append(wr)
        if self._rnr:
            msg = self._rnr.popleft()
            self.context.counters.add("verbs.rnr_drains")
            self.context.env.process(self._complete_rnr(msg),
                                     name="qp:rnr-drain")

    def _complete_rnr(self, msg: WireMsg):
        yield self.context.env.timeout(self.context.params.nic.rnr_retry_ns)
        self._deliver_to_rq(msg)

    # -- send side ----------------------------------------------------------------
    def post_send_timed(self, wr: SendWR):
        """Charge the host post overhead, then post (generator)."""
        yield self.context.env.timeout(self.context.params.nic.post_overhead_ns)
        self.post_send(wr)

    def post_send(self, wr: SendWR) -> None:
        """Validate, account and hand the WR to the NIC (zero host time)."""
        if self.state is QPState.ERROR:
            # real RC behaviour: posting to an errored QP immediately
            # flushes the WR (error completions are always signalled)
            self.context.counters.add("qp.flushes")
            self.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, opcode=_wc_opcode(wr.opcode),
                status=WCStatus.WR_FLUSH_ERR, src_rank=self.remote_rank,
                qp_num=self.qp_num))
            return
        if self.state is not QPState.READY:
            raise NotConnected("post_send on unconnected QP")
        if self._sq_outstanding >= self.max_send_wr:
            raise QueueFullError(
                f"rank {self.context.rank} qp{self.qp_num}: SQ full "
                f"({self.max_send_wr}); drain completions before posting")
        nic_params = self.context.params.nic
        if wr.inline and wr.length > nic_params.max_inline:
            raise BadWorkRequest(
                f"inline length {wr.length} > max_inline "
                f"{nic_params.max_inline}")
        if wr.imm is not None and not (0 <= wr.imm < (1 << 32)):
            raise BadWorkRequest(f"immediate {wr.imm:#x} does not fit 32 bits")
        msg = self._build(wr)
        self._sq_outstanding += 1
        self.context.counters.add("verbs.post_send")
        # doorbell as a raw timer callback: same transmit instant as the
        # old per-post process, without the Process/Initialize machinery
        dt = self.context.env.timeout(nic_params.doorbell_ns)
        dt.callbacks.append(partial(self._doorbell_fire, msg))

    def _doorbell_fire(self, msg: WireMsg, _ev) -> None:
        self.context.nic.transmit(msg)

    # -- WR -> WireMsg translation ---------------------------------------------
    def _build(self, wr: SendWR) -> WireMsg:
        op = wr.opcode
        if op is Opcode.SEND:
            return self._build_send(wr)
        if op in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
            return self._build_write(wr)
        if op is Opcode.RDMA_READ:
            return self._build_read(wr)
        if op in (Opcode.ATOMIC_FETCH_ADD, Opcode.ATOMIC_CMP_SWAP):
            return self._build_atomic(wr)
        raise BadWorkRequest(f"unsupported opcode {op}")

    def _local_fetch(self, wr: SendWR):
        mr = self.pd.find_local(wr.local_addr, wr.length)
        mem = self.context.memory
        base = wr.local_addr
        return lambda off, size: mem.read(base + off, size)

    def _source_callbacks(self, wr: SendWR, wc_opcode: WCOpcode):
        """(done, fail) callback pair for one tracked send WR.

        Exactly one of the two takes effect; whichever fires second (a late
        wire event after a flush, say) finds the token gone and is ignored.
        """
        self._wr_token += 1
        token = self._wr_token
        self._pending[token] = (wr, wc_opcode)

        def done():
            if self._pending.pop(token, None) is None:
                return
            self._sq_outstanding -= 1
            if wr.signaled:
                self.send_cq.push(WorkCompletion(
                    wr_id=wr.wr_id, opcode=wc_opcode, byte_len=wr.length,
                    src_rank=self.remote_rank, qp_num=self.qp_num))

        def fail():
            if self._pending.pop(token, None) is None:
                return
            self._sq_outstanding -= 1
            self.context.counters.add("qp.wr_errors")
            self.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, opcode=wc_opcode,
                status=WCStatus.RETRY_EXC_ERR, src_rank=self.remote_rank,
                qp_num=self.qp_num))
            self._enter_error()

        return done, fail

    # -- error state -----------------------------------------------------------
    def teardown(self) -> None:
        """Administrative teardown (crash injection / dead-peer cleanup).

        Forces the QP into ERROR so every pending send WR and posted
        receive flushes with ``WR_FLUSH_ERR`` through the normal CQ
        paths — the hook chaos and the health layer use to reclaim SQ
        slots that would otherwise leak against an unresponsive peer.
        """
        self._enter_error()

    def _enter_error(self) -> None:
        """Transition to ERROR and flush everything outstanding.

        All pending send WRs and posted receives complete with
        ``WR_FLUSH_ERR``; RNR-parked messages are dropped (the connection
        is considered torn down).
        """
        if self.state is QPState.ERROR:
            return
        self.state = QPState.ERROR
        self.context.counters.add("qp.errors")
        for wr, wc_opcode in self._pending.values():
            self._sq_outstanding -= 1
            self.context.counters.add("qp.flushes")
            self.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, opcode=wc_opcode,
                status=WCStatus.WR_FLUSH_ERR, src_rank=self.remote_rank,
                qp_num=self.qp_num))
        self._pending.clear()
        for rwr in self._rq:
            self.context.counters.add("qp.flushes")
            self.recv_cq.push(WorkCompletion(
                wr_id=rwr.wr_id, opcode=WCOpcode.RECV,
                status=WCStatus.WR_FLUSH_ERR, src_rank=self.remote_rank,
                qp_num=self.qp_num))
        self._rq.clear()
        self._rnr.clear()

    def reset_and_reconnect(self) -> None:
        """Re-arm an errored connection (both ends back to READY).

        The errored side has already flushed its queues in
        :meth:`_enter_error`; a healthy peer keeps its in-flight state (in
        this model the wire is connectionless — QP state only gates
        posting and delivery).  Receives must be re-posted by the user.
        """
        if self.peer is None:
            raise NotConnected("reset_and_reconnect needs a connected pair")
        for qp in (self, self.peer):
            if qp.state is QPState.ERROR:
                qp._pending.clear()
                qp._rnr.clear()
            qp.state = QPState.READY
        self.context.counters.add("qp.reconnects")

    def _build_send(self, wr: SendWR) -> WireMsg:
        inline_data = None
        fetch = None
        if wr.length:
            if wr.inline:
                mr = self.pd.find_local(wr.local_addr, wr.length)
                # inline payloads are captured at post time (they travel in
                # the WQE), so this must be an owned snapshot, not a view
                inline_data = self.context.memory.read_bytes(
                    wr.local_addr, wr.length)
            else:
                fetch = self._local_fetch(wr)
        peer = self.peer
        done, fail = self._source_callbacks(wr, WCOpcode.SEND)
        msg = WireMsg(
            src=self.context.rank, dst=self.remote_rank, nbytes=wr.length,
            kind="send", fetch=fetch, inline_data=inline_data,
            on_delivered=lambda nic, m: peer._on_send_arrival(m),
            on_acked=done, on_error=fail,
            ack=True, meta={"imm": wr.imm})
        return msg

    def _build_write(self, wr: SendWR) -> WireMsg:
        target = self.peer.context
        target.check_remote(wr.rkey, wr.remote_addr, wr.length,
                            Access.REMOTE_WRITE)
        inline_data = None
        fetch = None
        if wr.length:
            if wr.inline:
                self.pd.find_local(wr.local_addr, wr.length)
                # capture-at-post semantics: snapshot, not a live view
                inline_data = self.context.memory.read_bytes(
                    wr.local_addr, wr.length)
            else:
                fetch = self._local_fetch(wr)
        tmem = target.memory
        base = wr.remote_addr
        with_imm = wr.opcode is Opcode.RDMA_WRITE_WITH_IMM
        peer = self.peer
        done, fail = self._source_callbacks(wr, WCOpcode.RDMA_WRITE)
        msg = WireMsg(
            src=self.context.rank, dst=self.remote_rank, nbytes=wr.length,
            kind="write_imm" if with_imm else "write",
            fetch=fetch, inline_data=inline_data,
            place=lambda off, data: tmem.write(base + off, data),
            on_delivered=(lambda nic, m: peer._on_imm_arrival(m))
            if with_imm else None,
            on_acked=done, on_error=fail,
            ack=True, meta={"imm": wr.imm})
        return msg

    def _build_read(self, wr: SendWR) -> WireMsg:
        target = self.peer.context
        target.check_remote(wr.rkey, wr.remote_addr, wr.length,
                            Access.REMOTE_READ)
        self.pd.find_local(wr.local_addr, wr.length, Access.LOCAL_WRITE)
        lmem = self.context.memory
        tmem = target.memory
        lbase, rbase, length = wr.local_addr, wr.remote_addr, wr.length
        complete, fail = self._source_callbacks(wr, WCOpcode.RDMA_READ)
        me = self.context.rank
        remote = self.remote_rank

        def on_request(target_nic, m):
            # a lost response fails the requester's WR, like a lost request
            resp = WireMsg(
                src=remote, dst=me, nbytes=length, kind="read_resp",
                fetch=lambda off, size: tmem.read(rbase + off, size),
                place=lambda off, data: lmem.write(lbase + off, data),
                on_delivered=lambda nic, m2: complete(),
                on_error=fail)
            target_nic.respond(resp)

        return WireMsg(src=me, dst=remote, nbytes=0, kind="read_req",
                       on_delivered=on_request, on_error=fail)

    def _build_atomic(self, wr: SendWR) -> WireMsg:
        if wr.length not in (0, 8):
            raise BadWorkRequest("atomics operate on 8-byte words")
        wr.length = 8
        target = self.peer.context
        target.check_remote(wr.rkey, wr.remote_addr, 8, Access.REMOTE_ATOMIC)
        self.pd.find_local(wr.local_addr, 8, Access.LOCAL_WRITE)
        lmem = self.context.memory
        tmem = target.memory
        lbase, rbase = wr.local_addr, wr.remote_addr
        op = wr.opcode
        compare_add, swap = wr.compare_add, wr.swap
        complete, fail = self._source_callbacks(wr, WCOpcode.ATOMIC)
        me = self.context.rank
        remote = self.remote_rank
        atomic_ns = target.params.nic.atomic_ns
        env = self.context.env

        def on_request(target_nic, m):
            def respond():
                yield env.timeout(atomic_ns)
                old = tmem.read_u64(rbase)
                if op is Opcode.ATOMIC_FETCH_ADD:
                    tmem.write_u64(rbase, (old + compare_add) & _U64_MASK)
                else:  # CMP_SWAP
                    if old == compare_add:
                        tmem.write_u64(rbase, swap)
                resp = WireMsg(
                    src=remote, dst=me, nbytes=8, kind="atomic_resp",
                    inline_data=old.to_bytes(8, "little"),
                    place=lambda off, data: lmem.write(lbase + off, data),
                    on_delivered=lambda nic, m2: complete(),
                    on_error=fail)
                target_nic.respond(resp)

            env.process(respond(), name="qp:atomic")

        # the atomic request carries its operands (16 bytes on the wire is
        # folded into CTRL_BYTES)
        return WireMsg(src=me, dst=remote, nbytes=0, kind="atomic_req",
                       on_delivered=on_request, on_error=fail)

    # -- target-side arrivals ------------------------------------------------------
    def _on_send_arrival(self, msg: WireMsg) -> None:
        if self._rnr or not self._rq:
            self.context.counters.add("verbs.rnr_stalls")
            self._rnr.append(msg)
            return
        self._deliver_to_rq(msg)

    def _on_imm_arrival(self, msg: WireMsg) -> None:
        # WRITE_WITH_IMM: data already placed; consumes a receive for the
        # notification only.
        if self._rnr or not self._rq:
            self.context.counters.add("verbs.rnr_stalls")
            self._rnr.append(msg)
            return
        self._deliver_to_rq(msg)

    def _deliver_to_rq(self, msg: WireMsg) -> None:
        if self.state is not QPState.READY:
            # flushed while an RNR drain was in flight — drop on the floor
            self.context.counters.add("verbs.dropped_arrivals")
            return
        if not self._rq:
            self._rnr.append(msg)
            return
        wr = self._rq.popleft()
        status = WCStatus.SUCCESS
        byte_len = msg.nbytes
        if msg.kind == "send":
            if msg.nbytes > wr.length:
                status = WCStatus.LOC_LEN_ERR
                byte_len = 0
            elif msg.nbytes:
                self.context.memory.write(wr.addr, msg.collect_rx())
            opcode = WCOpcode.RECV
        else:  # write_imm — payload already placed at the WR's target addr
            opcode = WCOpcode.RECV_RDMA_WITH_IMM
        self.recv_cq.push(WorkCompletion(
            wr_id=wr.wr_id, opcode=opcode, status=status, byte_len=byte_len,
            imm=msg.meta.get("imm"), src_rank=msg.src, qp_num=self.qp_num))


def connect_pair(a: QueuePair, b: QueuePair) -> None:
    """Convenience: connect two queue pairs."""
    a.connect(b)
