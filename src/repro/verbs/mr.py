"""Memory regions: registered windows of a rank's memory.

A :class:`MemoryRegion` grants the NIC access to ``[addr, addr+length)``
with the permissions in ``access``.  Local operations are authorised by the
*lkey*, remote operations by the *rkey* — middleware exchanges rkeys out of
band exactly as on real hardware (Photon's buffer-metadata exchange and
minimpi's rendezvous both carry them).
"""

from __future__ import annotations

from .enums import Access
from .errors import ProtectionError

__all__ = ["MemoryRegion"]


class MemoryRegion:
    """One registered region (created via ``Context.reg_mr``)."""

    __slots__ = ("context", "addr", "length", "access", "lkey", "rkey",
                 "pd", "_valid")

    def __init__(self, context, addr: int, length: int, access: Access,
                 lkey: int, rkey: int, pd=None):
        self.context = context
        self.addr = addr
        self.length = length
        self.access = access
        self.lkey = lkey
        self.rkey = rkey
        self.pd = pd
        self._valid = True

    @property
    def valid(self) -> bool:
        return self._valid

    @property
    def end(self) -> int:
        return self.addr + self.length

    def invalidate(self) -> None:
        self._valid = False

    def covers(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end

    def check(self, addr: int, length: int,
              need: Access = Access.NONE,
              what: str = "access") -> None:
        """Raise ProtectionError unless the range+permission is allowed."""
        if not self._valid:
            raise ProtectionError(f"{what} through invalidated MR {self.rkey}")
        if length < 0:
            raise ProtectionError(f"{what}: negative length {length}")
        if not self.covers(addr, length):
            raise ProtectionError(
                f"{what}: [{addr}, {addr + length}) outside MR "
                f"[{self.addr}, {self.end})")
        if need and not (self.access & need):
            raise ProtectionError(
                f"{what}: MR rkey={self.rkey} lacks {need}")

    def read(self, addr: int, length: int) -> memoryview:
        """Zero-copy view (see :meth:`repro.fabric.memory.Memory.read`)."""
        self.check(addr, length, Access.NONE, "local read")
        return self.context.memory.read(addr, length)

    def write(self, addr: int, data) -> None:
        self.check(addr, len(data), Access.LOCAL_WRITE, "local write")
        self.context.memory.write(addr, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MR rank={self.context.rank} [{self.addr},{self.end}) "
                f"rkey={self.rkey}>")
