"""Enumerations mirroring the ibverbs surface the middleware uses."""

from __future__ import annotations

import enum

__all__ = ["Opcode", "WCOpcode", "WCStatus", "Access", "QPState"]


class Opcode(enum.Enum):
    """Send work-request opcodes."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"
    ATOMIC_FETCH_ADD = "atomic_fetch_add"
    ATOMIC_CMP_SWAP = "atomic_cmp_swap"


class WCOpcode(enum.Enum):
    """Completion opcodes (what the WC describes)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    ATOMIC = "atomic"
    RECV = "recv"
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"


class WCStatus(enum.Enum):
    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    REM_ACCESS_ERR = "remote_access_error"
    CQ_OVERRUN = "cq_overrun"
    #: transport retry count exceeded — the fabric gave up on the message
    RETRY_EXC_ERR = "retry_exceeded"
    #: work request flushed because its QP entered the ERROR state
    WR_FLUSH_ERR = "wr_flush_error"
    #: the peer was declared dead by the failure detector — the op was
    #: failed fast instead of burning its full deadline + retry budget
    PEER_DEAD = "peer_dead"


class Access(enum.Flag):
    """Memory-region access permissions."""

    NONE = 0
    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_ATOMIC = enum.auto()
    #: everything — convenient for middleware-managed buffers
    ALL = LOCAL_WRITE | REMOTE_WRITE | REMOTE_READ | REMOTE_ATOMIC


class QPState(enum.Enum):
    RESET = "reset"
    READY = "ready"  # collapsed INIT/RTR/RTS — the model connects in one step
    ERROR = "error"
