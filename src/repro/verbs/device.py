"""Device context, protection domains and the cluster directory.

A :class:`Context` is the per-rank handle to the simulated NIC: it owns
memory-region registration (with pinning cost), completion queues and queue
pairs.  The :class:`Directory` gives the simulator the global view a real
fabric has in hardware — rkey validation on the responder and queue-pair
connection both go through it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..fabric.memory import Memory
from ..fabric.nic import Nic
from ..fabric.params import FabricParams
from ..sim.core import Environment
from ..sim.trace import Counters
from .cq import CompletionQueue
from .enums import Access
from .errors import ProtectionError, VerbsError
from .mr import MemoryRegion

__all__ = ["Context", "ProtectionDomain", "Directory"]


class Directory:
    """Rank → Context registry (the simulator's 'subnet manager')."""

    def __init__(self):
        self._contexts: Dict[int, "Context"] = {}

    def register(self, context: "Context") -> None:
        if context.rank in self._contexts:
            raise VerbsError(f"rank {context.rank} already registered")
        self._contexts[context.rank] = context

    def lookup(self, rank: int) -> "Context":
        try:
            return self._contexts[rank]
        except KeyError:
            raise VerbsError(f"no context registered for rank {rank}") from None

    @property
    def n(self) -> int:
        return len(self._contexts)


class ProtectionDomain:
    """Groups MRs and QPs that may be used together."""

    _ids = itertools.count(1)

    def __init__(self, context: "Context"):
        self.context = context
        self.handle = next(ProtectionDomain._ids)
        self.mrs: List[MemoryRegion] = []

    def find_local(self, addr: int, length: int,
                   need: Access = Access.NONE) -> MemoryRegion:
        """MR covering a local range (for validating lbuf arguments)."""
        for mr in self.mrs:
            if mr.valid and mr.covers(addr, length):
                if need and not (mr.access & need):
                    continue
                return mr
        raise ProtectionError(
            f"rank {self.context.rank}: no MR covers local range "
            f"[{addr}, {addr + length}) with {need}")


class Context:
    """Per-rank verbs device context."""

    def __init__(self, env: Environment, rank: int, nic: Nic, memory: Memory,
                 params: FabricParams, directory: Directory,
                 counters: Optional[Counters] = None):
        self.env = env
        self.rank = rank
        self.nic = nic
        self.memory = memory
        self.params = params
        self.directory = directory
        self.counters = counters or Counters()
        self._key_seq = itertools.count(1)
        self._qp_seq = itertools.count(1)
        self._mrs_by_rkey: Dict[int, MemoryRegion] = {}
        directory.register(self)

    # -- protection domains ----------------------------------------------------
    def alloc_pd(self) -> ProtectionDomain:
        return ProtectionDomain(self)

    # -- memory registration -----------------------------------------------------
    def reg_mr(self, pd: ProtectionDomain, addr: int, length: int,
               access: Access = Access.ALL):
        """Register a region, charging the pin cost (generator: yield from)."""
        cost = self.memory.pin_cost_ns(addr, length)
        yield self.env.timeout(cost)
        self.counters.add("verbs.reg_ns", cost)
        return self._make_mr(pd, addr, length, access)

    def reg_mr_sync(self, pd: ProtectionDomain, addr: int, length: int,
                    access: Access = Access.ALL) -> MemoryRegion:
        """Register without charging time — for t=0 bootstrap only."""
        return self._make_mr(pd, addr, length, access)

    def _make_mr(self, pd: ProtectionDomain, addr: int, length: int,
                 access: Access) -> MemoryRegion:
        if length <= 0:
            raise ProtectionError(f"MR length must be positive, got {length}")
        # bounds check against the rank's memory
        self.memory._check(addr, length)
        key = next(self._key_seq)
        mr = MemoryRegion(self, addr, length, access, lkey=key, rkey=key,
                          pd=pd)
        pd.mrs.append(mr)
        self._mrs_by_rkey[mr.rkey] = mr
        self.memory.pin(addr, length)
        # every registration counts, sync or timed, so that
        # reg_mr - dereg_mr == live MRs is an exact balance invariant
        self.counters.add("verbs.reg_mr")
        return mr

    def dereg_mr(self, mr: MemoryRegion):
        """Deregister (generator: charges the unpin cost)."""
        if not mr.valid:
            raise VerbsError(
                f"rank {self.rank}: double deregistration of rkey {mr.rkey}")
        yield self.env.timeout(self.memory.host.dereg_ns)
        mr.invalidate()
        self._mrs_by_rkey.pop(mr.rkey, None)
        if mr.pd is not None:
            try:
                mr.pd.mrs.remove(mr)
            except ValueError:  # pragma: no cover - defensive
                pass
        self.memory.unpin(mr.addr, mr.length)
        self.counters.add("verbs.dereg_mr")

    @property
    def live_mrs(self) -> int:
        """Registrations not yet deregistered (balance telemetry)."""
        return len(self._mrs_by_rkey)

    def check_remote(self, rkey: int, addr: int, length: int,
                     need: Access) -> MemoryRegion:
        """Validate an inbound remote access against this rank's MRs."""
        mr = self._mrs_by_rkey.get(rkey)
        if mr is None:
            raise ProtectionError(
                f"rank {self.rank}: unknown rkey {rkey}")
        mr.check(addr, length, need, what=f"remote {need}")
        return mr

    # -- queues -------------------------------------------------------------------
    def create_cq(self, capacity: int = 4096) -> CompletionQueue:
        return CompletionQueue(self.env, capacity)

    def create_qp(self, pd: ProtectionDomain, send_cq: CompletionQueue,
                  recv_cq: CompletionQueue, max_send_wr: int = 256,
                  max_recv_wr: int = 256):
        from .qp import QueuePair  # local import to avoid a cycle
        return QueuePair(self, pd, send_cq, recv_cq,
                         qp_num=next(self._qp_seq),
                         max_send_wr=max_send_wr, max_recv_wr=max_recv_wr)
