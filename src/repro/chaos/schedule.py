"""Fault schedules: timed, declarative chaos events.

A :class:`FaultSchedule` is an ordered list of events, each pinned to a
simulated timestamp.  The :class:`~repro.chaos.controller.ChaosController`
walks the schedule inside the simulation, so a given ``(schedule, seed)``
pair replays bit-identically — chaos here is an *input*, not noise.

Event kinds:

- :class:`CrashRank` / :class:`RestartRank` — fail-stop a rank (volatile
  endpoint state lost, NIC powered off) and later restart it in place
  (memory zeroed, re-registration, ledger re-arm, new incarnation).
- :class:`PartitionEvent` / :class:`HealEvent` — cut / restore all
  traffic between two rank groups, both directions, over any topology.
- :class:`GrayLink` — degrade (don't kill) one named link: added
  latency, a bandwidth fraction, propagation jitter.  Optionally
  self-clearing after ``duration_ns``.
- :class:`FlapLink` — oscillate one link up/down with a period and duty
  cycle for ``duration_ns`` (the classic flapping-port gray failure).
- :class:`ClearLink` — remove any gray/flap state from a link.

An empty schedule is inert by construction: the controller spawns no
process for it, so golden traces stay bit-identical with chaos armed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = ["CrashRank", "RestartRank", "PartitionEvent", "HealEvent",
           "GrayLink", "FlapLink", "ClearLink", "FaultSchedule",
           "ChaosEvent"]


@dataclass(frozen=True)
class CrashRank:
    """Fail-stop ``rank`` at ``t_ns`` (detector halt, endpoint crash,
    NIC power-off — in that order, all at the same instant)."""
    t_ns: int
    rank: int


@dataclass(frozen=True)
class RestartRank:
    """Restart a previously crashed ``rank`` at ``t_ns`` (memory reset,
    NIC power-on, endpoint rejoin, detector resume with a new
    incarnation)."""
    t_ns: int
    rank: int


@dataclass(frozen=True)
class PartitionEvent:
    """Cut all traffic between ``group_a`` and ``group_b`` (both ways)."""
    t_ns: int
    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...]


@dataclass(frozen=True)
class HealEvent:
    """Remove a cut; with no groups, remove every cut."""
    t_ns: int
    group_a: Optional[Tuple[int, ...]] = None
    group_b: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class GrayLink:
    """Degrade link ``link`` without killing it."""
    t_ns: int
    link: str
    latency_add_ns: int = 0
    #: multiply effective bandwidth by this (0 < bw_scale <= 1)
    bw_scale: float = 1.0
    #: add uniform [0, jitter_ns) to each chunk's propagation delay
    jitter_ns: int = 0
    #: self-clear after this long (0 = persists until ClearLink)
    duration_ns: int = 0


@dataclass(frozen=True)
class FlapLink:
    """Oscillate link ``link`` between up and down."""
    t_ns: int
    link: str
    period_ns: int
    #: fraction of each period the link is up (0 < duty < 1)
    duty: float = 0.5
    duration_ns: int = 0


@dataclass(frozen=True)
class ClearLink:
    """Remove all gray/flap state from link ``link``."""
    t_ns: int
    link: str


ChaosEvent = Union[CrashRank, RestartRank, PartitionEvent, HealEvent,
                   GrayLink, FlapLink, ClearLink]


@dataclass
class FaultSchedule:
    """An ordered fault plan (events sorted by time, stable on ties)."""

    events: List[ChaosEvent] = field(default_factory=list)

    def __post_init__(self):
        for ev in self.events:
            self._check(ev)
        # stable sort: same-time events keep their declaration order
        self.events = sorted(self.events, key=lambda e: e.t_ns)

    @staticmethod
    def _check(ev: ChaosEvent) -> None:
        if ev.t_ns < 0:
            raise ValueError(f"event time must be >= 0: {ev}")
        if isinstance(ev, GrayLink):
            if not 0.0 < ev.bw_scale <= 1.0:
                raise ValueError(f"bw_scale must be in (0, 1]: {ev}")
            if ev.latency_add_ns < 0 or ev.jitter_ns < 0 \
                    or ev.duration_ns < 0:
                raise ValueError(f"negative gray parameter: {ev}")
        if isinstance(ev, FlapLink):
            if ev.period_ns <= 0:
                raise ValueError(f"flap period must be positive: {ev}")
            if not 0.0 < ev.duty < 1.0:
                raise ValueError(f"flap duty must be in (0, 1): {ev}")

    def add(self, event: ChaosEvent) -> "FaultSchedule":
        """Insert one event, keeping time order (chainable)."""
        self._check(event)
        self.events.append(event)
        self.events.sort(key=lambda e: e.t_ns)
        return self

    @property
    def empty(self) -> bool:
        return not self.events

    def horizon_ns(self) -> int:
        """Time of the last scheduled event (0 when empty)."""
        return self.events[-1].t_ns if self.events else 0
