"""The chaos controller: a sim process that executes a fault schedule.

The controller is the only writer of fault state — rank crashes and
restarts, topology cuts, gray-link degradation — so every perturbation
is attributable to a schedule entry and replays deterministically.

Determinism contract:

- An **empty schedule arms nothing**: :meth:`ChaosController.arm` spawns
  no process, consumes no RNG, logs no trace record.  Golden traces are
  bit-identical with an armed-but-empty controller.
- Every random draw (propagation jitter, flap phase jitter) comes from a
  **named stream** under the ``chaos.*`` namespace
  (``chaos.jitter.<link>``, ``chaos.flap.<link>``), so arming one mode
  on one link never shifts the draws any other consumer sees.

Event application order matters and is fixed:

- crash: detector halt → endpoint crash (volatile state dropped, QPs
  torn down) → NIC power-off.  The dead rank stops heartbeating *and*
  stops acking, so peers' detectors starve naturally.
- restart: memory reset (contents + pins lost) → NIC power-on →
  endpoint rejoin (re-registration, ledger re-arm — charges simulated
  time) → detector resume with a bumped incarnation.  Survivors re-arm
  their pairing when the first new-incarnation heartbeat arrives.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..fabric.link import LinkChaos
from ..sim.core import SimulationError
from .schedule import (ChaosEvent, ClearLink, CrashRank, FaultSchedule,
                       FlapLink, GrayLink, HealEvent, PartitionEvent,
                       RestartRank)

__all__ = ["ChaosController"]


class ChaosController:
    """Executes a :class:`~repro.chaos.schedule.FaultSchedule` against a
    cluster (and, optionally, its photon endpoints and health monitors).

    Parameters
    ----------
    cluster:
        The :class:`~repro.cluster.Cluster` under test.
    schedule:
        The fault plan.  Empty schedules are inert (see module docstring).
    photon:
        Optional list of :class:`~repro.photon.api.Photon` endpoints;
        required for :class:`CrashRank` / :class:`RestartRank` events so
        endpoint state dies and rejoins with the rank.
    monitors:
        Optional list of :class:`~repro.runtime.health.HealthMonitor`;
        when present the victim's detector is halted across the crash
        and resumed (new incarnation) at restart.
    kv:
        Optional list of :class:`~repro.kv.store.KVNode`; when present a
        crash drops the victim's replica state (``on_crash``) and a
        restart reseeds it empty (``reseed``) so it rejoins its groups
        via Raft snapshot transfer rather than resurrecting with
        pre-crash volatile state.
    """

    def __init__(self, cluster, schedule: FaultSchedule,
                 photon: Optional[List] = None,
                 monitors: Optional[List] = None,
                 kv: Optional[List] = None):
        self.cluster = cluster
        self.schedule = schedule
        self.photon = photon
        self.monitors = monitors
        self.kv = kv
        self.env = cluster.env
        self.tracer = cluster.tracer
        #: fabric-scoped: fault injection is infrastructure, not rank work
        self.counters = cluster.metrics.fabric
        #: (t_applied_ns, event) log — the ground truth for experiments
        self.applied: List[Tuple[int, ChaosEvent]] = []
        self._streams = None
        self._armed = False
        self._crashed: set = set()

    # ---------------------------------------------------------------- arming
    def arm(self) -> None:
        """Start the controller process (no-op for an empty schedule)."""
        if self._armed:
            raise SimulationError("chaos controller already armed")
        self._armed = True
        if self.schedule.empty:
            return  # inert: no process, no RNG, no trace — golden-safe
        self._streams = self.cluster.rng.namespace("chaos")
        self.env.process(self._run(), name="chaos:ctrl")

    # ---------------------------------------------------------------- driver
    def _run(self):
        for ev in self.schedule.events:
            if ev.t_ns > self.env.now:
                yield self.env.timeout(ev.t_ns - self.env.now)
            yield from self._apply(ev)
            self.applied.append((self.env.now, ev))
            self.counters.add("chaos.events")

    def _apply(self, ev: ChaosEvent):
        if isinstance(ev, CrashRank):
            self._crash(ev.rank)
        elif isinstance(ev, RestartRank):
            yield from self._restart(ev.rank)
        elif isinstance(ev, PartitionEvent):
            self.cluster.topology.partition(ev.group_a, ev.group_b)
            self.counters.add("chaos.partitions")
            self.tracer.log(self.env.now, "chaos.partition",
                            group_a=tuple(ev.group_a),
                            group_b=tuple(ev.group_b))
        elif isinstance(ev, HealEvent):
            self.cluster.topology.heal(ev.group_a, ev.group_b)
            self.counters.add("chaos.heals")
            self.tracer.log(self.env.now, "chaos.heal")
        elif isinstance(ev, GrayLink):
            self._gray(ev)
        elif isinstance(ev, FlapLink):
            self.env.process(self._flap(ev), name=f"chaos:flap-{ev.link}")
        elif isinstance(ev, ClearLink):
            self.cluster.topology.link(ev.link).arm_chaos(None)
            self.counters.add("chaos.clears")
            self.tracer.log(self.env.now, "chaos.clear", link=ev.link)
        else:  # pragma: no cover - schedule validation prevents this
            raise SimulationError(f"unknown chaos event {ev!r}")

    # ---------------------------------------------------------------- ranks
    def _crash(self, rank: int) -> None:
        if rank in self._crashed:
            raise SimulationError(f"rank {rank} is already crashed")
        self._crashed.add(rank)
        if self.monitors is not None:
            self.monitors[rank].halt()
        if self.photon is not None:
            self.photon[rank].crash_local()
        self.cluster[rank].nic.power_off()
        if self.kv is not None:
            self.kv[rank].on_crash()
        self.counters.add("chaos.crashes")
        self.tracer.log(self.env.now, "chaos.crash", rank=rank)

    def _restart(self, rank: int):
        if rank not in self._crashed:
            raise SimulationError(f"rank {rank} is not crashed")
        self.cluster[rank].memory.reset()
        self.cluster[rank].nic.power_on()
        if self.photon is not None:
            yield from self.photon[rank].rejoin()
        if self.monitors is not None:
            self.monitors[rank].resume()
        if self.kv is not None:
            self.kv[rank].reseed()
        self._crashed.discard(rank)
        self.counters.add("chaos.restarts")
        self.tracer.log(self.env.now, "chaos.restart", rank=rank)

    # ---------------------------------------------------------------- links
    def _gray(self, ev: GrayLink) -> None:
        link = self.cluster.topology.link(ev.link)
        rng = (self._streams.stream(f"jitter.{ev.link}")
               if ev.jitter_ns else None)
        link.arm_chaos(LinkChaos(latency_add_ns=ev.latency_add_ns,
                                 bw_scale=ev.bw_scale,
                                 jitter_ns=ev.jitter_ns, rng=rng))
        self.counters.add("chaos.grays")
        self.tracer.log(self.env.now, "chaos.gray", link=ev.link,
                        latency_add_ns=ev.latency_add_ns,
                        bw_scale=ev.bw_scale, jitter_ns=ev.jitter_ns)
        if ev.duration_ns:
            self.env.process(self._clear_after(ev.link, ev.duration_ns),
                             name=f"chaos:clear-{ev.link}")

    def _clear_after(self, link_name: str, duration_ns: int):
        yield self.env.timeout(duration_ns)
        self.cluster.topology.link(link_name).arm_chaos(None)
        self.counters.add("chaos.clears")
        self.tracer.log(self.env.now, "chaos.clear", link=link_name)

    def _flap(self, ev: FlapLink):
        link = self.cluster.topology.link(ev.link)
        rng = self._streams.stream(f"flap.{ev.link}")
        chaos = LinkChaos(up=False)
        link.arm_chaos(chaos)
        self.counters.add("chaos.flaps")
        self.tracer.log(self.env.now, "chaos.flap", link=ev.link,
                        period_ns=ev.period_ns, duty=ev.duty)
        deadline = (self.env.now + ev.duration_ns
                    if ev.duration_ns else None)
        up_ns = max(1, int(ev.period_ns * ev.duty))
        down_ns = max(1, ev.period_ns - up_ns)

        def jittered(base: int) -> int:
            # +/- nothing fancy: up to 25% stretch from the flap stream,
            # so two flapping links never phase-lock
            return base + int(rng.integers(0, max(1, base // 4)))

        while deadline is None or self.env.now < deadline:
            yield self.env.timeout(jittered(down_ns))
            chaos.up = True
            if deadline is not None and self.env.now >= deadline:
                break
            yield self.env.timeout(jittered(up_ns))
            chaos.up = False
            self.counters.add("chaos.flap_downs")
        link.arm_chaos(None)
        self.tracer.log(self.env.now, "chaos.clear", link=ev.link)
