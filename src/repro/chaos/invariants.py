"""Invariant checkers for chaos runs.

Chaos experiments are only trustworthy if the system's safety properties
hold *through* the faults, not just at the end.  These checkers encode
the four properties the fault model promises (see DESIGN.md):

- **No duplicate delivery** — the reliability layer replays operations,
  but target-side dedup must collapse replays to exactly-once effects.
- **Registration balance** — crash/restart must not leak memory
  registrations: every ``reg_mr`` is matched by a ``dereg_mr`` or a
  still-live MR at a quiescent point.
- **Breaker legality** — circuit breakers may only walk the legal state
  machine (no closed→half-open, no half-open→half-open, ...).
- **Membership monotonicity** — a membership view's version only moves
  forward, and a DEAD rank only returns via a higher incarnation.
- **Bounded logs** — snapshot compaction must keep every Raft replica's
  retained log within ``compact_threshold + compact_margin`` applied
  entries, even with laggards or partitioned peers (that is the whole
  point of trimming past them and streaming snapshots instead).

All checkers raise :class:`InvariantViolation` (an ``AssertionError``
subclass, so plain pytest asserts and CI greps both catch it).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence, Tuple

from ..photon.rcache import assert_reg_balance
from ..runtime.health import ALIVE, DEAD

__all__ = ["InvariantViolation", "check_no_duplicate_delivery",
           "check_reg_balance", "check_breaker_legality",
           "check_membership_monotonic", "check_log_bounded", "check_all"]


class InvariantViolation(AssertionError):
    """A chaos-run safety property was violated."""


#: the circuit breaker's legal state machine
_LEGAL_BREAKER = {
    ("closed", "open"),       # threshold trip / peer declared dead
    ("open", "half-open"),    # cooldown elapsed, probe allowed
    ("half-open", "open"),    # probe failed
    ("half-open", "closed"),  # probe succeeded
    ("open", "closed"),       # peer rejoined while open
}


def check_no_duplicate_delivery(delivered: Iterable) -> None:
    """``delivered``: hashable delivery ids (e.g. ``(src, cid)`` pairs)
    recorded by receivers.  Replay may retransmit, dedup must collapse."""
    counts = Counter(delivered)
    dups = {k: n for k, n in counts.items() if n > 1}
    if dups:
        raise InvariantViolation(
            f"duplicate delivery despite replay dedup: {dups}")


def check_reg_balance(cluster) -> None:
    """Registration/deregistration balance across every rank's context
    (crash drops pins, rejoin's cache flush must restore the books)."""
    try:
        assert_reg_balance(cluster.counters,
                           [cluster[r].context for r in range(cluster.n)])
    except AssertionError as exc:
        raise InvariantViolation(str(exc)) from None


def check_breaker_legality(
        transitions: Sequence[Tuple[int, int, str, str]]) -> None:
    """``transitions``: ``(t_ns, peer, old, new)`` tuples, e.g. a
    transport's ``breaker_log``.  Validates each edge and that each
    peer's chain is contiguous (new picks up where old left off)."""
    last: Dict[int, str] = {}
    for t, peer, old, new in transitions:
        if (old, new) not in _LEGAL_BREAKER:
            raise InvariantViolation(
                f"illegal breaker transition {old!r} -> {new!r} "
                f"for peer {peer} at t={t}")
        prev = last.get(peer)
        if prev is not None and prev != old:
            raise InvariantViolation(
                f"discontinuous breaker chain for peer {peer} at t={t}: "
                f"was {prev!r}, transition claims {old!r}")
        last[peer] = new


def check_membership_monotonic(monitor) -> None:
    """Versions strictly increase and DEAD→ALIVE requires an incarnation
    bump (``monitor``: a :class:`~repro.runtime.health.HealthMonitor`,
    or anything with a ``view`` carrying ``history``)."""
    view = monitor.view
    prev_version = 0
    died_at_inc: Dict[int, int] = {}
    for version, rank, old, new, incarnation in view.history:
        if version <= prev_version:
            raise InvariantViolation(
                f"membership version went backwards: {prev_version} -> "
                f"{version} (rank {rank}, {old} -> {new})")
        prev_version = version
        if new == DEAD:
            died_at_inc[rank] = incarnation
        elif old == DEAD and new == ALIVE:
            at_death = died_at_inc.get(rank)
            if at_death is not None and incarnation <= at_death:
                raise InvariantViolation(
                    f"rank {rank} returned from DEAD without an "
                    f"incarnation bump ({at_death} -> {incarnation})")
    if view.version != prev_version:
        raise InvariantViolation(
            f"view version {view.version} disagrees with history tail "
            f"{prev_version}")


def check_log_bounded(kv_nodes: Iterable, slack: int = 0) -> None:
    """Every snapshot-armed Raft replica's *applied* suffix is bounded.

    ``kv_nodes``: anything with a ``raft`` mapping of group id to
    :class:`~repro.kv.raft.RaftNode` (duck-typed so this module needs no
    kv import).  A replica may briefly hold ``compact_threshold`` applied
    entries before its snapshot fires plus the ``compact_margin`` it
    deliberately retains behind the snapshot point, hence the bound
    ``threshold + margin`` (+ caller ``slack`` for mid-tick grace).
    Replicas with no ``snapshot_fn`` armed are skipped — without a
    serializer compaction is disabled by design.
    """
    for node in kv_nodes:
        for group, rn in node.raft.items():
            if rn.snapshot_fn is None:
                continue
            retained = rn.last_applied - rn.base_index
            bound = (rn.config.compact_threshold
                     + rn.config.compact_margin + slack)
            if retained > bound:
                raise InvariantViolation(
                    f"group {group} replica rank {getattr(node, 'rank', '?')}"
                    f" retains {retained} applied entries "
                    f"(base_index {rn.base_index}, last_applied "
                    f"{rn.last_applied}) > bound {bound}")


def check_all(cluster, delivered: Iterable = (),
              transports: Sequence = (),
              monitors: Sequence = (),
              kv_nodes: Sequence = ()) -> None:
    """Run every applicable checker; raises on the first violation."""
    check_no_duplicate_delivery(delivered)
    check_reg_balance(cluster)
    for tp in transports:
        check_breaker_legality(tp.breaker_log)
    for mon in monitors:
        check_membership_monotonic(mon)
    if kv_nodes:
        check_log_bounded(kv_nodes)
