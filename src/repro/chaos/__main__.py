"""``python -m repro.chaos`` — the chaos-smoke entry point.

Runs the canned R19 crash/restart scenario with a fixed schedule and
seed, checks every safety invariant, exports the chaos-annotated trace
(chaos.*, health.*, photon/fabric records and all spans) as JSONL, and
exits non-zero on any failed shape check or invariant — which is what
the CI chaos-smoke job greps for.
"""

from __future__ import annotations

import argparse
import sys

from ..bench.experiments import r19_chaos
from ..obs.export import export_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run the canned chaos scenario (R19) with invariant "
                    "checking and JSONL trace export.")
    parser.add_argument("--full", action="store_true",
                        help="full message counts (default: quick)")
    parser.add_argument("--out", default="chaos_trace.jsonl",
                        help="JSONL trace output path (default: %(default)s)")
    args = parser.parse_args(argv)

    raw = r19_chaos.run_scenario(quick=not args.full)
    result = r19_chaos.run(quick=not args.full, scenario=raw)
    print(result.render())

    cl = raw["cluster"]
    lines = export_jsonl(args.out, tracer=cl.tracer, registry=cl.metrics)
    chaos_lines = sum(1 for rec in cl.tracer.records
                      if rec.category.startswith("chaos."))
    print(f"exported {lines} trace/span lines to {args.out} "
          f"({chaos_lines} chaos events)")

    if not result.all_checks_pass:
        print(f"FAILED checks: {result.failed_checks()}", file=sys.stderr)
        return 1
    print("chaos smoke: all checks and invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
