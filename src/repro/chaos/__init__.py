"""Chaos orchestration: crashes, partitions and gray failures as
first-class, schedulable scenarios.

The package splits into three deliberately small pieces:

- :mod:`~repro.chaos.schedule` — the declarative fault plan
  (:class:`FaultSchedule` of timed events);
- :mod:`~repro.chaos.controller` — the sim process that executes a plan
  deterministically (:class:`ChaosController`);
- :mod:`~repro.chaos.invariants` — safety-property checkers that make a
  chaos run falsifiable rather than merely noisy.

The health side of the fault model (heartbeats, phi-accrual detection,
monotonic membership) lives in :mod:`repro.runtime.health`; chaos
*injects* faults, health *observes* them, and the two only meet through
the fabric.

Run ``python -m repro.chaos`` for the canned crash/restart scenario
(R19) plus invariant checking and JSONL trace export — the CI
chaos-smoke entry point.
"""

from .controller import ChaosController
from .invariants import (InvariantViolation, check_all,
                         check_breaker_legality, check_membership_monotonic,
                         check_no_duplicate_delivery, check_reg_balance)
from .schedule import (ChaosEvent, ClearLink, CrashRank, FaultSchedule,
                       FlapLink, GrayLink, HealEvent, PartitionEvent,
                       RestartRank)

__all__ = [
    "ChaosController",
    "InvariantViolation", "check_all", "check_breaker_legality",
    "check_membership_monotonic", "check_no_duplicate_delivery",
    "check_reg_balance",
    "ChaosEvent", "ClearLink", "CrashRank", "FaultSchedule", "FlapLink",
    "GrayLink", "HealEvent", "PartitionEvent", "RestartRank",
]
