"""Deterministic discrete-event simulation kernel used by every substrate."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Signal, Store
from .rng import RngRegistry, stream
from .trace import Counters, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "Signal",
    "Store",
    "RngRegistry",
    "stream",
    "Counters",
    "Tracer",
    "TraceRecord",
]
