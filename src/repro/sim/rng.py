"""Deterministic named random streams.

Every stochastic choice in the library draws from a stream obtained via
:func:`stream`, keyed by a root seed and a stable name.  Two runs with the
same root seed produce bit-identical behaviour regardless of the order in
which subsystems were constructed, because each stream's state is derived
only from ``(root_seed, name)``.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "ScopedStreams", "stream"]


def _derive(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory for reproducible, independently seeded random generators."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def namespace(self, prefix: str) -> "ScopedStreams":
        """A view of this registry that prepends ``prefix.`` to every name.

        Subsystems that own a family of streams (e.g. the chaos
        controller's per-link gray-failure modes) take a namespace so
        each feature draws from its own ``(root_seed, prefix.name)``
        stream: enabling one never shifts the draws seen by another.
        """
        return ScopedStreams(self, prefix)

    def reset(self) -> None:
        """Forget all streams (they re-derive from the root on next use)."""
        self._streams.clear()


class ScopedStreams:
    """Prefix-scoped view of an :class:`RngRegistry` (see ``namespace``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: RngRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        return self._registry.stream(f"{self._prefix}.{name}")

    def namespace(self, prefix: str) -> "ScopedStreams":
        return ScopedStreams(self._registry, f"{self._prefix}.{prefix}")


_default = RngRegistry(0)


def stream(name: str, root_seed: int | None = None) -> np.random.Generator:
    """Module-level convenience: a stream from the default registry.

    Passing ``root_seed`` creates a one-off registry — use an explicit
    :class:`RngRegistry` in library code; this helper is for scripts.
    """
    if root_seed is not None:
        return RngRegistry(root_seed).stream(name)
    return _default.stream(name)
