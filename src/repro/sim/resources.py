"""Shared-resource primitives for simulated entities.

Built on the :mod:`repro.sim.core` kernel:

- :class:`Store` — an unbounded/bounded FIFO of Python objects with
  event-returning ``put``/``get`` (models queues: work queues, completion
  queues, switch ports, DMA request rings).
- :class:`Resource` — a counting semaphore (models DMA engines, link
  serialisation slots).
- :class:`Signal` — a re-armable broadcast event (models doorbells and
  "work available" wakeups for polling loops).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "Signal"]


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO object store with blocking put/get semantics.

    ``capacity`` bounds the number of buffered items; ``put`` on a full
    store parks the producer until a consumer drains an item (backpressure —
    exactly how we model finite hardware queues such as QP send queues and
    ledger rings).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; returns an event that fires once accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; returns an event whose value is the item."""
        return StoreGet(self)

    def try_get(self) -> Any:
        """Non-blocking get: returns an item or None (for polling models)."""
        if self.items and not self._get_queue:
            item = self.items.popleft()
            self._trigger()
            return item
        return None

    def _trigger(self) -> None:
        # Admit pending puts while there is room.
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and not self.full:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            while self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progressed = True


class ResourceRequest(Event):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counting semaphore with FIFO grant order.

    ``capacity`` concurrent holders; ``request()`` returns an event that
    fires when the slot is granted, and the returned request object's
    ``release()`` frees it.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("Resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that holds no slot")
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.popleft()
            self.users.append(req)
            req.succeed(req)


class Signal:
    """A re-armable broadcast wakeup.

    ``wait()`` returns an event; ``fire(value)`` triggers *all* waiters
    registered so far and re-arms.  Used for doorbells: many pollers can
    sleep on the signal and all wake when work arrives.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: list = []

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
