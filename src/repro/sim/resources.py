"""Shared-resource primitives for simulated entities.

Built on the :mod:`repro.sim.core` kernel:

- :class:`Store` — an unbounded/bounded FIFO of Python objects with
  event-returning ``put``/``get`` (models queues: work queues, completion
  queues, switch ports, DMA request rings).
- :class:`Resource` — a counting semaphore (models DMA engines, link
  serialisation slots).
- :class:`Signal` — a re-armable broadcast event (models doorbells and
  "work available" wakeups for polling loops).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "Signal"]


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO object store with blocking put/get semantics.

    ``capacity`` bounds the number of buffered items; ``put`` on a full
    store parks the producer until a consumer drains an item (backpressure —
    exactly how we model finite hardware queues such as QP send queues and
    ledger rings).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()
        # virtual occupancy: timestamps at which batch-drained items would
        # have left the queue one at a time (see set_holds); counted by
        # ``full`` until the sim clock passes them
        self._holds: tuple = ()
        self._hold_wakeup_at: Optional[int] = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        if self.capacity is None:
            return False
        occ = len(self.items)
        if self._holds:
            now = self.env.now
            live = tuple(h for h in self._holds if h > now)
            if len(live) != len(self._holds):
                self._holds = live
            occ += len(live)
        return occ >= self.capacity

    def set_holds(self, release_times) -> None:
        """Keep batch-drained slots virtually occupied until given times.

        A consumer that drains k items at once (e.g. a link serialising a
        whole burst as one event) frees k-1 slots *early* relative to
        draining them one at a time.  Passing the would-be drain timestamps
        here keeps ``full`` — and therefore the admission time of parked
        producers — identical to the one-at-a-time schedule.
        """
        now = self.env.now
        self._holds = tuple(h for h in release_times if h > now)
        if self._holds and self._put_queue:
            # a producer is already parked behind the held slots: arm a
            # wakeup at the earliest release so it is admitted then
            self._arm_hold_wakeup()

    def add_holds(self, release_times) -> None:
        """Like :meth:`set_holds`, but accumulates onto live holds."""
        now = self.env.now
        live = tuple(h for h in self._holds if h > now)
        self._holds = live + tuple(h for h in release_times if h > now)
        if self._holds and self._put_queue:
            self._arm_hold_wakeup()

    def _arm_hold_wakeup(self) -> None:
        nxt = min(self._holds)
        if self._hold_wakeup_at is not None and self._hold_wakeup_at <= nxt:
            return
        self._hold_wakeup_at = nxt
        t = self.env.timeout(nxt - self.env.now)
        t.callbacks.append(self._hold_wakeup)

    def _hold_wakeup(self, _ev) -> None:
        self._hold_wakeup_at = None
        if self._holds:
            now = self.env.now
            self._holds = tuple(h for h in self._holds if h > now)
        self._trigger()

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; returns an event that fires once accepted."""
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Append ``item`` without allocating a StorePut event.

        Only valid on unbounded stores (no backpressure to model); used on
        hot paths such as NIC work queues where the producer never waits.
        """
        if self.capacity is not None:
            raise SimulationError("put_nowait on a bounded Store")
        if self._get_queue and not self.items:
            self._get_queue.popleft().succeed(item)
            return
        self.items.append(item)
        if self._get_queue:
            self._trigger()

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: admit ``item`` synchronously if there is room
        and no producer is parked ahead; returns False otherwise (caller
        falls back to a blocking ``put``).  Admission order and timing are
        identical to an immediately-granted put."""
        if self._put_queue or self.full:
            return False
        if self._get_queue and not self.items:
            self._get_queue.popleft().succeed(item)
            return True
        self.items.append(item)
        if self._get_queue:
            self._trigger()
        return True

    def put_discard(self, item: Any) -> None:
        """Fire-and-forget put whose event nobody will wait on.

        Identical admission semantics to ``put``: when there is room and
        no producer is parked ahead, the item is admitted synchronously
        (skipping the kernel event a StorePut would cost); otherwise a
        regular StorePut parks so FIFO admission order and backpressure
        are preserved.
        """
        if not self._put_queue and not self.full:
            if self._get_queue and not self.items:
                self._get_queue.popleft().succeed(item)
                return
            self.items.append(item)
            if self._get_queue:
                self._trigger()
            return
        StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; returns an event whose value is the item."""
        return StoreGet(self)

    def try_get(self) -> Any:
        """Non-blocking get: returns an item or None (for polling models)."""
        if self.items and not self._get_queue:
            item = self.items.popleft()
            self._trigger()
            return item
        return None

    def _trigger(self) -> None:
        # Admit pending puts while there is room.
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and not self.full:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            while self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progressed = True
        if self._put_queue and self._holds:
            # parked producers behind virtually-held slots: make sure a
            # wakeup fires at the next release time
            self._arm_hold_wakeup()


class ResourceRequest(Event):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counting semaphore with FIFO grant order.

    ``capacity`` concurrent holders; ``request()`` returns an event that
    fires when the slot is granted, and the returned request object's
    ``release()`` frees it.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("Resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that holds no slot")
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.popleft()
            self.users.append(req)
            req.succeed(req)


class Signal:
    """A re-armable broadcast wakeup.

    ``wait()`` returns an event; ``fire(value)`` triggers *all* waiters
    registered so far and re-arms.  Used for doorbells: many pollers can
    sleep on the signal and all wake when work arrives.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: list = []

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
