"""Deterministic discrete-event simulation kernel.

This module provides the event loop that every other subsystem (fabric,
verbs, photon, minimpi, runtime) runs on.  It is deliberately small and
SimPy-flavoured:

- :class:`Environment` owns an integer-nanosecond clock and a binary heap of
  pending events.
- :class:`Event` is a one-shot occurrence that callbacks can be attached to.
- :class:`Process` wraps a Python generator; the generator *yields* events
  and is resumed with the event's value when it fires, so simulated entities
  (NIC engines, rank programs, progress threads) read like straight-line
  code.
- :class:`Timeout` fires after a fixed delay and is how model costs (CPU
  overhead, wire time, DMA time) are charged.

Determinism: events scheduled for the same timestamp fire in FIFO order of
scheduling (a monotone sequence number breaks ties), so a given program
produces an identical trace on every run.  The clock is an ``int`` of
nanoseconds — no floating-point time drift.

Two interchangeable scheduler backends implement that contract (the
``queue`` knob on :class:`Environment`):

- ``"calendar"`` (default) — a calendar/bucket queue: events due *now*
  live on two plain FIFO deques (one per priority), future events hash
  into per-timestamp buckets ordered by a small heap of distinct
  timestamps.  Insert and pop are O(1) amortized; the timestamp heap only
  pays O(log t) per *distinct* future instant, which also covers
  far-future timers (phi deadlines, leases) without a separate overflow
  structure.
- ``"heap"`` — the original binary heap of ``(time, priority, seq,
  event)`` tuples, kept as the executable reference; the property suite
  asserts both backends fire events in byte-identical order.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "DEFAULT_QUEUE",
    "total_events_processed",
]

#: scheduler backend used when :class:`Environment` is built without an
#: explicit ``queue`` argument; override per-process with the
#: ``REPRO_SIM_QUEUE`` environment variable ("calendar" or "heap")
DEFAULT_QUEUE = os.environ.get("REPRO_SIM_QUEUE", "calendar")

#: process-wide count of events fired across every Environment — the
#: denominator-free load figure behind the events/s headline metric
_PROCESSED_TOTAL = 0


def total_events_processed() -> int:
    """Events fired across all Environments since interpreter start."""
    return _PROCESSED_TOTAL


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: events at the same timestamp fire in priority order,
# then in scheduling order.  URGENT is used internally for process
# resumption so that a process resumes before same-time timeouts scheduled
# later (matching SimPy semantics closely enough for our models).
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence on an :class:`Environment`'s timeline.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    schedules it to *trigger*, at which point its callbacks run and any
    process waiting on it resumes.  Events may trigger at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    #: sentinel for "no value yet"
    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (value decided)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not decided yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event value not decided yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Decide the event successfully with ``value`` and schedule it now."""
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        if env._queue is None and not self._scheduled:
            # calendar backend, delay 0: a plain FIFO append (inlined from
            # _schedule — succeed is one of the hottest kernel entry points)
            self._scheduled = True
            env._cur[priority].append(self)
        else:
            env._schedule(self, 0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Decide the event with an exception; waiters have it raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, 0, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach ``fn`` to run when the event fires.

        If the event already fired, the callback runs immediately (on the
        caller's stack) — this keeps "subscribe after the fact" race-free.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay, NORMAL)


class Initialize(Event):
    """Internal: kicks off a newly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, 0, URGENT)


class Process(Event):
    """A simulated activity driven by a generator.

    The generator yields :class:`Event` instances; each time a yielded event
    fires the generator is resumed with ``event.value`` (or the event's
    exception is thrown into it).  When the generator returns, this Process
    — itself an Event — succeeds with the generator's return value, so
    processes can wait on each other.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._schedule(event, 0, URGENT)

    # -- driver ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Detach from the event that woke us (it may not be our target when
        # interrupting).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        env = self.env
        env._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # mark the failure as "handled by a waiter"
                    next_event = self._generator.throw(event._value)
                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event "
                        f"{next_event!r}")
                if next_event.env is not env:
                    raise SimulationError(
                        "process yielded an event from another environment")
                if next_event.callbacks is not None:
                    # pending — park until it fires
                    self._target = next_event
                    next_event.callbacks.append(self._resume)
                    break
                # already processed — continue synchronously
                event = next_event
        except StopIteration as exc:
            self._ok = True
            self._value = exc.value
            env._schedule(self, 0, NORMAL)
        except BaseException as exc:
            if isinstance(exc, SimulationError):
                raise
            self._ok = False
            self._value = exc
            env._schedule(self, 0, NORMAL)
        finally:
            env._active_process = None


class Condition(Event):
    """Fires when ``evaluate(events, n_fired)`` becomes true.

    The condition's value is an ordered dict-like list of ``(event, value)``
    pairs for the events that have fired by trigger time.
    """

    __slots__ = ("_events", "_evaluate", "_fired")

    def __init__(self, env: "Environment", evaluate, events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._fired: List[Event] = []
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans environments")
            ev.add_callback(self._check)

    def _collect(self):
        # Preserve the order the caller listed the events in.
        fired = set(map(id, self._fired))
        return [(ev, ev._value) for ev in self._events if id(ev) in fired]

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._evaluate(self._events, len(self._fired)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Condition that fires when all events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n == len(evs), events)


class AnyOf(Condition):
    """Condition that fires when at least one event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n >= 1, events)


class Environment:
    """Owns the clock and the pending-event heap.

    Typical use::

        env = Environment()

        def program(env):
            yield env.timeout(100)
            return env.now

        proc = env.process(program(env))
        env.run()
        assert proc.value == 100
    """

    #: cap on recycled Timeout objects kept per environment
    _FREELIST_MAX = 8192

    def __init__(self, initial_time: int = 0, queue: Optional[str] = None):
        self._now = int(initial_time)
        mode = DEFAULT_QUEUE if queue is None else queue
        if mode not in ("calendar", "heap"):
            raise SimulationError(f"unknown queue backend {mode!r}")
        self.queue_mode = mode
        #: heap backend: list of (time, priority, seq, event); None when
        #: the calendar backend is active
        self._queue: Optional[List] = [] if mode == "heap" else None
        #: calendar backend: events due at the current instant, one FIFO
        #: deque per priority (URGENT, NORMAL) — (priority, seq) order at
        #: one timestamp is exactly "drain urgent first, each in append
        #: order", because seq order *is* append order
        self._cur = (deque(), deque())
        #: calendar backend: future timestamp -> ([urgent], [normal])
        self._buckets: dict = {}
        #: calendar backend: min-heap over the distinct future timestamps
        #: (each pushed exactly once, when its bucket is created)
        self._ts_heap: List[int] = []
        self._seq = 0
        #: events fired on this environment (the events/s numerator)
        self.events_processed = 0
        self._active_process: Optional[Process] = None
        # Timeouts dominate event traffic (every modelled cost is one), so
        # processed instances are recycled instead of reallocated.  An
        # instance is only eligible once nothing outside step() can still
        # reach it — see the refcount guard there.
        self._timeout_freelist: List[Timeout] = []

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        freelist = self._timeout_freelist
        if freelist:
            delay = int(delay)
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            t = freelist.pop()
            t.delay = delay
            t._ok = True
            t._value = value
            if self._queue is None:
                # calendar backend: inlined _schedule (recycled timeouts
                # are the single most common scheduling operation)
                t._scheduled = True
                if delay == 0:
                    self._cur[NORMAL].append(t)
                else:
                    ts = self._now + delay
                    bucket = self._buckets.get(ts)
                    if bucket is None:
                        self._buckets[ts] = bucket = ([], [])
                        heapq.heappush(self._ts_heap, ts)
                    bucket[NORMAL].append(t)
            else:
                self._schedule(t, delay, NORMAL)
            return t
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        queue = self._queue
        if queue is not None:  # heap backend
            heapq.heappush(queue, (self._now + delay, priority, self._seq, event))
        elif delay == 0:
            # due at the current instant: plain FIFO append, no heap op
            self._cur[priority].append(event)
        else:
            t = self._now + delay
            bucket = self._buckets.get(t)
            if bucket is None:
                self._buckets[t] = bucket = ([], [])
                heapq.heappush(self._ts_heap, t)
            bucket[priority].append(event)

    def _pending(self) -> bool:
        """True while any event is queued (either backend)."""
        if self._queue is not None:
            return bool(self._queue)
        cur = self._cur
        return bool(cur[0] or cur[1] or self._ts_heap)

    def _advance_bucket(self) -> None:
        """Calendar backend: move the earliest future bucket onto the
        current-instant deques, advancing the clock to it."""
        t = heapq.heappop(self._ts_heap)
        urgent, normal = self._buckets.pop(t)
        self._now = t
        if urgent:
            self._cur[0].extend(urgent)
        if normal:
            self._cur[1].extend(normal)

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        if self._queue is not None:
            return self._queue[0][0] if self._queue else None
        cur = self._cur
        if cur[0] or cur[1]:
            return self._now
        return self._ts_heap[0] if self._ts_heap else None

    def step(self) -> None:
        """Fire the single next event (advancing the clock to it)."""
        global _PROCESSED_TOTAL
        queue = self._queue
        if queue is not None:
            if not queue:
                raise SimulationError("step() on empty event queue")
            when, _prio, _seq, event = heapq.heappop(queue)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = when
        else:
            cur_urgent, cur_normal = self._cur
            if not cur_urgent and not cur_normal:
                if not self._ts_heap:
                    raise SimulationError("step() on empty event queue")
                self._advance_bucket()
            event = (cur_urgent.popleft() if cur_urgent
                     else cur_normal.popleft())
        self.events_processed += 1
        _PROCESSED_TOTAL += 1
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        event._processed = True
        if event._ok is False and not callbacks:
            # A failed event (or crashed process) nobody waited on: surface
            # the error instead of silently swallowing it.
            raise event._value
        # Recycle plain Timeouts nobody can reach any more: the only live
        # references are this frame's ``event`` local and getrefcount's own
        # argument, i.e. a count of exactly 2.  Waiters detached above (the
        # callback list was swapped out), so reuse is invisible.  Exact type
        # check: subclasses may carry extra state.
        if (type(event) is Timeout and getrefcount(event) == 2
                and len(self._timeout_freelist) < self._FREELIST_MAX):
            callbacks.clear()
            event.callbacks = callbacks
            event._value = Event._PENDING
            event._scheduled = False
            event._processed = False
            self._timeout_freelist.append(event)

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, a deadline, or an event fires.

        ``until`` may be ``None`` (drain the queue), an ``int`` deadline in
        ns, or an :class:`Event` — in the latter case ``run`` returns the
        event's value (raising its exception if it failed).
        """
        if self._queue is not None:
            return self._run_heap(until)
        return self._run_calendar(until)

    def _run_heap(self, until: Any) -> Any:
        queue = self._queue
        step = self.step
        if until is None:
            while queue:
                step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(deadlock in the model?)")
                step()
            if stop._ok:
                return stop._value
            raise stop._value
        deadline = int(until)
        if deadline < self._now:
            raise SimulationError("run(until=...) deadline is in the past")
        while queue and queue[0][0] <= deadline:
            step()
        self._now = deadline
        return None

    def _run_calendar(self, until: Any) -> Any:
        """Calendar-backend drain loop.

        The hot loop is localized: deques, buckets, the timestamp heap and
        the Timeout freelist are all bound to locals, and the event-firing
        tail is inlined rather than calling :meth:`step` — at millions of
        events per run the attribute lookups and the extra frame are a
        measurable share of wall time.  The firing tail must stay inline
        anyway: the freelist's ``getrefcount(event) == 2`` guard counts on
        exactly one frame (this one) holding the ``event`` local.
        """
        global _PROCESSED_TOTAL
        stop: Optional[Event] = None
        deadline: Optional[int] = None
        if isinstance(until, Event):
            stop = until
        elif until is not None:
            deadline = int(until)
            if deadline < self._now:
                raise SimulationError("run(until=...) deadline is in the past")
        cur_urgent, cur_normal = self._cur
        buckets = self._buckets
        ts_heap = self._ts_heap
        freelist = self._timeout_freelist
        freelist_max = self._FREELIST_MAX
        heappop = heapq.heappop
        pending_sentinel = Event._PENDING
        processed = 0
        try:
            while True:
                if stop is not None and stop._processed:
                    break
                if cur_urgent:
                    event = cur_urgent.popleft()
                elif cur_normal:
                    event = cur_normal.popleft()
                elif ts_heap:
                    if deadline is not None and ts_heap[0] > deadline:
                        break
                    t = heappop(ts_heap)
                    urgent, normal = buckets.pop(t)
                    self._now = t
                    if urgent:
                        cur_urgent.extend(urgent)
                        # drop the bucket's refs: they would otherwise
                        # linger in these locals and defeat the freelist's
                        # refcount guard for every event of the bucket
                        urgent.clear()
                    if normal:
                        cur_normal.extend(normal)
                        normal.clear()
                    continue
                else:
                    if stop is not None:
                        raise SimulationError(
                            "event queue drained before the awaited event "
                            "fired (deadlock in the model?)")
                    break
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for fn in callbacks:
                    fn(event)
                event._processed = True
                if event._ok is False and not callbacks:
                    raise event._value
                # see step() for the freelist recycling contract
                if (type(event) is Timeout and getrefcount(event) == 2
                        and len(freelist) < freelist_max):
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = pending_sentinel
                    event._scheduled = False
                    event._processed = False
                    freelist.append(event)
        finally:
            self.events_processed += processed
            _PROCESSED_TOTAL += processed
        if stop is not None:
            if stop._ok:
                return stop._value
            raise stop._value
        if deadline is not None:
            self._now = deadline
        return None
