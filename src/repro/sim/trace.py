"""Lightweight event tracing and counters.

A :class:`Tracer` collects ``(time, category, fields)`` records and a
:class:`Counters` object accumulates named integers (bytes on the wire,
packets, cache hits, ...).  Both are cheap no-ops unless enabled, so model
code can instrument unconditionally.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Tracer", "Counters", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    time: int
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        d = dict(self.fields)
        d["time"] = self.time
        d["category"] = self.category
        return d


class Tracer:
    """Collects trace records when enabled; filter by category prefix."""

    def __init__(self, enabled: bool = False,
                 categories: Optional[List[str]] = None):
        self.enabled = enabled
        self.categories = tuple(categories) if categories else None
        self.records: List[TraceRecord] = []

    def log(self, time: int, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.categories and not category.startswith(self.categories):
            return
        self.records.append(TraceRecord(time, category, tuple(fields.items())))

    def select(self, category_prefix: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category.startswith(category_prefix)]

    def clear(self) -> None:
        self.records.clear()


@dataclass
class Counters:
    """Named integer accumulators shared across a subsystem."""

    values: Counter = field(default_factory=Counter)

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] += amount

    def get(self, name: str) -> int:
        return self.values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.values)

    def clear(self) -> None:
        self.values.clear()
