"""Lightweight event tracing and counters.

A :class:`Tracer` collects ``(time, category, fields)`` records and a
:class:`Counters` object accumulates named integers (bytes on the wire,
packets, cache hits, ...).  Both are cheap no-ops unless enabled, so model
code can instrument unconditionally.

The tracer's record store is a bounded ring: long trace-enabled runs
(e.g. lossy-mode fault sweeps) can no longer grow without bound.  The
default cap is high enough that the golden-trace determinism suite never
drops a record; when the cap is hit the *oldest* records are discarded
and ``dropped`` counts them.

:class:`Counters` also defines the observability hook surface
(:meth:`observe`, :meth:`set_gauge`, :meth:`span`, :meth:`set_max`) as
no-ops, so components built without a metrics registry — default
``Counters()`` construction in unit tests — keep working unchanged.  The
real implementations live in
:class:`repro.obs.registry.ScopedCounters`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Tracer", "Counters", "TraceRecord", "DEFAULT_TRACE_CAP"]

#: default ring capacity — far above what any in-repo workload records
#: (the golden-trace suite peaks in the low tens of thousands)
DEFAULT_TRACE_CAP = 1_000_000


@dataclass(frozen=True)
class TraceRecord:
    time: int
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        d = dict(self.fields)
        d["time"] = self.time
        d["category"] = self.category
        return d


class Tracer:
    """Collects trace records when enabled; filter by category prefix.

    ``max_records`` bounds memory: once the ring is full each new record
    evicts the oldest one and increments :attr:`dropped`.
    """

    def __init__(self, enabled: bool = False,
                 categories: Optional[List[str]] = None,
                 max_records: int = DEFAULT_TRACE_CAP):
        if max_records < 1:
            raise ValueError("tracer max_records must be >= 1")
        self.enabled = enabled
        self.categories = tuple(categories) if categories else None
        self.max_records = max_records
        self.records: Deque[TraceRecord] = deque()
        #: records evicted from the full ring (oldest-first)
        self.dropped = 0

    def log(self, time: int, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.categories and not category.startswith(self.categories):
            return
        if len(self.records) >= self.max_records:
            self.records.popleft()
            self.dropped += 1
        self.records.append(TraceRecord(time, category, tuple(fields.items())))

    def select(self, category_prefix: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category.startswith(category_prefix)]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


@dataclass
class Counters:
    """Named integer accumulators shared across a subsystem."""

    values: Counter = field(default_factory=Counter)

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] += amount

    def get(self, name: str) -> int:
        return self.values.get(name, 0)

    def set_max(self, name: str, value: int) -> None:
        """Raise a high-water-mark counter to ``value`` (never lowers it)."""
        if value > self.values.get(name, 0):
            self.values[name] = value

    def snapshot(self) -> Dict[str, int]:
        return dict(self.values)

    def clear(self) -> None:
        self.values.clear()

    # ------------------------------------------------------- obs hook surface
    def observe(self, name: str, value: float) -> None:
        """Histogram observation — no-op without a metrics registry."""

    def set_gauge(self, name: str, value: float) -> None:
        """Gauge update — no-op without a metrics registry."""

    def span(self, name: str, t_start: int, peer: Optional[int] = None,
             nbytes: int = 0):
        """Open an op span — returns None without a metrics registry."""
        return None
