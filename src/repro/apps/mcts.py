"""Distributed Monte-Carlo Tree Search over active messages (Seriema's
demo workload).

The search tree is a synthetic game tree (branching ``B``, depth ``D``)
whose statistics are sharded across ranks by a node-id hash; rollout
rewards are a pure hash of (leaf, iteration), so the whole search is
deterministic — no RNG streams, no wall clock.  Every rank runs
iterations against the *shared* tree concurrently:

- **selection**: walking down from the root, a rank fans out one
  ``mcts.stats`` invocation per child to each child's owner (tiny
  request, tiny reply — the latency-sensitive irregular traffic the AM
  layer exists for), then picks the UCT-best child;
- **backpropagation**: one ``mcts.update`` invocation per node on the
  path (commutative add, so concurrent updates from different ranks
  need no locks).

This is exactly Seriema's pattern: many small invocations with small
replies on the critical path, where invocation coalescing and credit
backpressure decide throughput.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster import Cluster
from ..runtime import ActionRegistry, Runtime
from ..sim.core import SimulationError

__all__ = ["MctsResult", "build_mcts", "run_mcts", "owner_of",
           "rollout_reward"]

_NODE = struct.Struct("<q")
_STATS = struct.Struct("<qq")  # visits, total reward (milli-units)
_UPDATE = struct.Struct("<qq")  # node, reward (milli-units)

#: UCT exploration constant (×1000, kept integral in the wire format)
_EXPLORE = 1.2


def _mix(x: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finaliser)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def owner_of(node: int, n_ranks: int) -> int:
    """Which rank owns a node's statistics."""
    return _mix(node) % n_ranks


def rollout_reward(leaf: int, iteration: int) -> int:
    """Deterministic playout outcome in milli-units [0, 1000)."""
    return _mix(leaf * 1_000_003 + iteration) % 1000


def _children(node: int, branching: int) -> List[int]:
    base = node * branching
    return [base + k + 1 for k in range(branching)]


@dataclass
class MctsResult:
    """Per-rank outcome of a search."""

    rank: int
    iterations: int
    invokes: int
    elapsed_ns: int
    #: statistics shard this rank owns: node -> (visits, reward_milli)
    owned: Dict[int, tuple]


def build_mcts(registry: ActionRegistry, n_ranks: int):
    """Register the MCTS actions; returns the per-rank stats shards.

    ``mcts.stats`` replies with the (visits, total reward) pair of one
    node; ``mcts.update`` adds one visit's reward.  Both are invoked via
    ``rt.invoke`` — the replies are what the search's selection step
    blocks on.
    """
    shards: List[Dict[int, List[int]]] = [{} for _ in range(n_ranks)]

    def stats(rt: Runtime, src: int, payload: bytes):
        (node,) = _NODE.unpack(payload)
        entry = shards[rt.rank].get(node)
        if entry is None:
            return _STATS.pack(0, 0)
        return _STATS.pack(entry[0], entry[1])

    def update(rt: Runtime, src: int, payload: bytes):
        node, reward = _UPDATE.unpack(payload)
        entry = shards[rt.rank].get(node)
        if entry is None:
            entry = shards[rt.rank][node] = [0, 0]
        entry[0] += 1
        entry[1] += reward
        return b""

    registry.register("mcts.stats", stats)
    registry.register("mcts.update", update)
    return shards


def run_mcts(cluster: Cluster, runtimes: List[Runtime],
             shards: List[Dict[int, List[int]]], iters_per_rank: int,
             branching: int = 4, depth: int = 3,
             timeout_ns: int = 60_000_000_000):
    """Build per-rank search programs; returns (programs, results).

    Runtimes must have the AM layer enabled (``build_runtime(...,
    am=True)``).  Each rank performs ``iters_per_rank`` select → rollout
    → backpropagate iterations, then keeps serving until every rank is
    done (a plain ``mcts.done`` parcel per rank ends the run).
    """
    n = cluster.n
    registry = runtimes[0].registry
    done_seen = [0] * n

    def done(rt: Runtime, src: int, payload: bytes):
        done_seen[rt.rank] += 1

    registry.register("mcts.done", done)
    results: List[Optional[MctsResult]] = [None] * n

    def fetch_stats(rt: Runtime, nodes: List[int]):
        """Fan out one stats invocation per node; returns their (visits,
        reward) pairs in order (generator)."""
        futs = []
        for node in nodes:
            fut = yield from rt.invoke(owner_of(node, n), "mcts.stats",
                                       _NODE.pack(node))
            futs.append(fut)
        out = []
        for fut in futs:
            raw = yield from fut.wait(rt, timeout_ns)
            out.append(_STATS.unpack(raw))
        return out

    def program(rank: int):
        rt = runtimes[rank]
        env = cluster.env
        t0 = env.now
        invokes = 0
        for it in range(iters_per_rank):
            # selection: descend depth levels by UCT over fetched stats
            path = [0]
            node = 0
            (pv, _pr), = yield from fetch_stats(rt, [node])
            invokes += 1
            for _level in range(depth):
                kids = _children(node, branching)
                stats = yield from fetch_stats(rt, kids)
                invokes += len(kids)
                log_pv = math.log(pv + 2)
                best, best_score, best_v = kids[0], None, 0
                for kid, (v, r) in zip(kids, stats):
                    mean = (r / (v * 1000)) if v else 0.0
                    score = mean + _EXPLORE * math.sqrt(log_pv / (v + 1))
                    if best_score is None or score > best_score:
                        best, best_score, best_v = kid, score, v
                node = best
                pv = best_v
                path.append(node)
            # rollout (pure hash) + backpropagation along the path
            reward = rollout_reward(node, rank * iters_per_rank + it)
            futs = []
            for v in path:
                fut = yield from rt.invoke(owner_of(v, n), "mcts.update",
                                           _UPDATE.pack(v, reward))
                futs.append(fut)
            invokes += len(futs)
            for fut in futs:
                yield from fut.wait(rt, timeout_ns)
        # drain our coalescing batches, then announce completion
        flush = getattr(rt.transport, "flush", None)
        if flush is not None:
            yield from flush()
        for dst in range(n):
            yield from rt.send(dst, "mcts.done")
        if flush is not None:
            yield from flush()
        ok = yield from rt.process_until(lambda: done_seen[rank] >= n,
                                         timeout_ns)
        if not ok:
            raise SimulationError(f"rank {rank}: MCTS completion wait "
                                  "timed out")
        results[rank] = MctsResult(
            rank=rank, iterations=iters_per_rank, invokes=invokes,
            elapsed_ns=env.now - t0,
            owned={v: tuple(e) for v, e in shards[rank].items()})

    return [program(r) for r in range(n)], results
