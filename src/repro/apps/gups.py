"""Random-access remote updates (GUPS-flavoured) — the latency-bound app.

Every rank owns a slice of a global table and fires 8-byte updates at
random remote slots.  Three variants with identical traffic patterns:

- ``photon``: one-sided ``post_os_put`` per update, windowed waits;
- ``mpi_rma``: MPI-3 window puts with a flush per window;
- ``mpi_p2p``: two-sided — the update is *sent* to the owner, whose
  progress loop applies it (owner CPU on the critical path).

The metric is updates/second; verification counts landed updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import Cluster
from ..minimpi.comm import Comm
from ..minimpi.rma import Win
from ..minimpi.status import ANY_SOURCE
from ..photon.api import Photon
from ..sim.core import SimulationError

__all__ = ["GupsResult", "run_gups_photon", "run_gups_photon_atomic",
           "run_gups_mpi_rma", "run_gups_mpi_p2p"]

_UPDATE_TAG = (1 << 42) + 3


@dataclass
class GupsResult:
    rank: int
    updates_issued: int
    elapsed_ns: int

    @property
    def updates_per_sec(self) -> float:
        return self.updates_issued / (self.elapsed_ns / 1e9)


def _targets(cluster: Cluster, rank: int, n_updates: int, slots_per_rank: int):
    """Deterministic pseudo-random (peer, slot) sequence for one rank."""
    rng = cluster.rng.stream(f"gups.rank{rank}")
    n = cluster.n
    peers = rng.integers(0, n - 1, size=n_updates)
    peers = (peers + (peers >= rank)).astype(int)  # exclude self
    slots = rng.integers(0, slots_per_rank, size=n_updates).astype(int)
    return list(zip(peers.tolist(), slots.tolist()))


def run_gups_photon(cluster: Cluster, endpoints: List[Photon],
                    n_updates: int, slots_per_rank: int = 1024,
                    window: int = 32):
    """Photon one-sided variant (programs, results, tables)."""
    n = cluster.n
    tables = [ep.buffer(slots_per_rank * 8) for ep in endpoints]
    stage = [ep.buffer(8 * window) for ep in endpoints]
    results: List[Optional[GupsResult]] = [None] * n

    def program(rank: int):
        ep = endpoints[rank]
        env = cluster.env
        t0 = env.now
        rids = []
        for i, (peer, slot) in enumerate(
                _targets(cluster, rank, n_updates, slots_per_rank)):
            saddr = stage[rank].addr + (i % window) * 8
            ep.memory.write_u64(saddr, (rank << 32) | (i + 1))
            rid = yield from ep.post_os_put(
                peer, saddr, 8, tables[peer].addr + slot * 8,
                tables[peer].rkey)
            rids.append(rid)
            if len(rids) >= window:
                # rolling window: retire the oldest, keep the pipe full
                oldest = rids.pop(0)
                yield from ep.wait(oldest)
                ep.free_request(oldest)
        yield from ep.wait_all(rids)
        for r in rids:
            ep.free_request(r)
        results[rank] = GupsResult(rank=rank, updates_issued=n_updates,
                                   elapsed_ns=env.now - t0)

    return [program(r) for r in range(n)], results, tables


def run_gups_photon_atomic(cluster: Cluster, endpoints: List[Photon],
                           n_updates: int, slots_per_rank: int = 1024,
                           window: int = 32):
    """True read-modify-write GUPS: remote fetch-add per update.

    Unlike the put variant, concurrent updates to the same slot are
    never lost — the invariant the verification in the tests asserts
    (sum of all slots == total updates issued).
    """
    n = cluster.n
    tables = [ep.buffer(slots_per_rank * 8) for ep in endpoints]
    results: List[Optional[GupsResult]] = [None] * n

    def program(rank: int):
        ep = endpoints[rank]
        env = cluster.env
        t0 = env.now
        inflight = 0
        for i, (peer, slot) in enumerate(
                _targets(cluster, rank, n_updates, slots_per_rank)):
            yield from ep.atomic_fadd(peer, tables[peer].addr + slot * 8,
                                      tables[peer].rkey, 1,
                                      local_cid=(1 << 50) + i)
            inflight += 1
            if inflight >= window:
                c = yield from ep.wait_completion("local",
                                                  timeout_ns=10 ** 12)
                if c is None:
                    raise SimulationError("atomic gups stalled")
                ep.atomic_result(c.cid)
                inflight -= 1
        while inflight:
            c = yield from ep.wait_completion("local", timeout_ns=10 ** 12)
            if c is None:
                raise SimulationError("atomic gups drain stalled")
            ep.atomic_result(c.cid)
            inflight -= 1
        results[rank] = GupsResult(rank=rank, updates_issued=n_updates,
                                   elapsed_ns=env.now - t0)

    return [program(r) for r in range(n)], results, tables


def run_gups_mpi_rma(cluster: Cluster, comms: List[Comm], wins: List[Win],
                     n_updates: int, slots_per_rank: int = 1024,
                     window: int = 32):
    """MPI-3 RMA variant: puts + flush per window."""
    n = cluster.n
    results: List[Optional[GupsResult]] = [None] * n
    stage = [comm.memory.alloc(8 * window) for comm in comms]

    def program(rank: int):
        comm = comms[rank]
        win = wins[rank]
        env = cluster.env
        t0 = env.now
        outstanding = 0
        for i, (peer, slot) in enumerate(
                _targets(cluster, rank, n_updates, slots_per_rank)):
            saddr = stage[rank] + (i % window) * 8
            comm.memory.write_u64(saddr, (rank << 32) | (i + 1))
            yield from win.put(saddr, 8, rank=peer, offset=slot * 8)
            outstanding += 1
            if outstanding >= window:
                yield from win.flush()
                outstanding = 0
        yield from win.flush()
        results[rank] = GupsResult(rank=rank, updates_issued=n_updates,
                                   elapsed_ns=env.now - t0)

    return [program(r) for r in range(n)], results


def run_gups_mpi_p2p(cluster: Cluster, comms: List[Comm],
                     n_updates: int, slots_per_rank: int = 1024,
                     window: int = 32):
    """Two-sided variant: updates are messages the owner must receive.

    Each rank interleaves issuing its own updates with servicing inbound
    ones; termination via a final count exchange (every rank knows it must
    receive exactly the sum of updates targeted at it — precomputed here
    from the deterministic target streams).
    """
    n = cluster.n
    all_targets = {r: _targets(cluster, r, n_updates, slots_per_rank)
                   for r in range(n)}
    expected = [sum(1 for r in range(n) for (p, _s) in all_targets[r]
                    if p == rank) for rank in range(n)]
    tables = [comm.memory.alloc(slots_per_rank * 8) for comm in comms]
    results: List[Optional[GupsResult]] = [None] * n

    def program(rank: int):
        comm = comms[rank]
        env = cluster.env
        mem = comm.memory
        t0 = env.now
        send_stage = mem.alloc(16 * window)
        recv_stage = mem.alloc(16)
        sent = 0
        received = 0
        reqs = []
        targets = all_targets[rank]

        def service():
            """Drain any inbound updates (generator)."""
            nonlocal received
            while received < expected[rank]:
                st = yield from comm.iprobe(src=ANY_SOURCE, tag=_UPDATE_TAG)
                if st is None:
                    return
                yield from comm.recv(recv_stage, 16, src=st.source,
                                     tag=_UPDATE_TAG)
                slot = mem.read_u64(recv_stage)
                value = mem.read_u64(recv_stage + 8)
                mem.write_u64(tables[rank] + slot * 8, value)
                yield env.timeout(mem.memcpy_cost_ns(8))
                received += 1

        while sent < n_updates or received < expected[rank]:
            if sent < n_updates:
                peer, slot = targets[sent]
                saddr = send_stage + (sent % window) * 16
                mem.write_u64(saddr, slot)
                mem.write_u64(saddr + 8, (rank << 32) | (sent + 1))
                req = yield from comm.isend(saddr, 16, peer, _UPDATE_TAG)
                reqs.append(req)
                sent += 1
                if len(reqs) >= window:
                    yield from comm.waitall(reqs)
                    reqs.clear()
            yield from service()
        yield from comm.waitall(reqs)
        results[rank] = GupsResult(rank=rank, updates_issued=n_updates,
                                   elapsed_ns=env.now - t0)

    return [program(r) for r in range(n)], results, tables
