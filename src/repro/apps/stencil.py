"""2-D Jacobi stencil with halo exchange — the structured-grid mini-app.

The global ``rows × cols`` grid is partitioned by contiguous row blocks.
Each iteration every rank exchanges its boundary rows with its up/down
neighbours and applies the 4-point Jacobi update.  Two transports:

- ``photon``: each rank exposes two *parity-indexed* halo landing buffers
  per neighbour; neighbours ``put_pwc`` their boundary row directly into
  the right one and the completion id (= iteration) tells the receiver
  its halo is ready.  No matching, no rendezvous, and double buffering by
  iteration parity makes the exchange race-free without barriers.
- ``mpi``: classic ``sendrecv`` halo exchange.

Interior data never crosses the wire, so the grid itself lives host-side
(numpy); boundary rows are staged through simulated memory with their copy
costs charged.  Compute time is charged per cell.  The distributed result
is bit-identical to :func:`reference_jacobi` (same float64 operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster import Cluster
from ..minimpi.comm import Comm
from ..photon.api import Photon
from ..sim.core import SimulationError

__all__ = ["StencilResult", "reference_jacobi", "run_stencil_photon",
           "run_stencil_mpi", "partition_rows"]


@dataclass
class StencilResult:
    """Per-rank outcome of a stencil run."""

    rank: int
    local_grid: np.ndarray  # includes halo rows
    elapsed_ns: int
    comm_ns: int
    iterations: int


def reference_jacobi(grid: np.ndarray, iters: int) -> np.ndarray:
    """Single-domain Jacobi reference (boundary rows/cols held fixed)."""
    g = grid.astype(np.float64, copy=True)
    for _ in range(iters):
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                  + g[1:-1, :-2] + g[1:-1, 2:])
        g = new
    return g


def initial_grid(rows: int, cols: int) -> np.ndarray:
    """Deterministic initial condition: hot top edge, cold elsewhere."""
    g = np.zeros((rows, cols), dtype=np.float64)
    g[0, :] = 1.0
    g[:, 0] = 0.5
    return g


def partition_rows(rows: int, n: int) -> List[slice]:
    """Contiguous row blocks (first ranks take the remainder)."""
    base = rows // n
    extra = rows % n
    out = []
    start = 0
    for r in range(n):
        take = base + (1 if r < extra else 0)
        out.append(slice(start, start + take))
        start += take
    return out


def _local_with_halo(grid: np.ndarray, part: slice) -> np.ndarray:
    """Local block plus one halo row above and below."""
    rows, cols = grid.shape
    local = np.zeros((part.stop - part.start + 2, cols), dtype=np.float64)
    local[1:-1] = grid[part]
    if part.start > 0:
        local[0] = grid[part.start - 1]
    if part.stop < rows:
        local[-1] = grid[part.stop]
    return local


def _sweep(local: np.ndarray, is_top: bool, is_bottom: bool) -> np.ndarray:
    """One Jacobi sweep on the interior of the halo-padded block.

    Rows on the *global* boundary are held fixed (Dirichlet), matching
    :func:`reference_jacobi`.
    """
    new = local.copy()
    n_rows = local.shape[0]
    start = 2 if is_top else 1
    stop = n_rows - 2 if is_bottom else n_rows - 1
    if stop > start:
        new[start:stop, 1:-1] = 0.25 * (
            local[start - 1:stop - 1, 1:-1] + local[start + 1:stop + 1, 1:-1]
            + local[start:stop, :-2] + local[start:stop, 2:])
    return new


def run_stencil_photon(cluster: Cluster, endpoints: List[Photon],
                       rows: int, cols: int, iters: int,
                       compute_ns_per_cell: float = 1.0,
                       timeout_ns: int = 10_000_000_000):
    """Build per-rank generator programs for the Photon variant.

    Returns (programs, results): run the programs SPMD; results fill in.
    """
    n = cluster.n
    grid = initial_grid(rows, cols)
    parts = partition_rows(rows, n)
    row_bytes = cols * 8
    results: List[Optional[StencilResult]] = [None] * n

    # each rank: 2 parities x (halo-from-up, halo-from-down) landing bufs,
    # and parity-indexed staging for its own boundary rows (a put's source
    # is provably fetched before the same-parity slot is rewritten two
    # iterations later, because the neighbour's next halo confirms delivery)
    landings = [[ep.buffer(row_bytes) for _ in range(4)] for ep in endpoints]
    stagings = [[ep.buffer(row_bytes) for _ in range(4)] for ep in endpoints]

    def landing(rank: int, parity: int, from_up: bool):
        return landings[rank][parity * 2 + (0 if from_up else 1)]

    def program(rank: int):
        ep = endpoints[rank]
        env = cluster.env
        mem = ep.memory
        part = parts[rank]
        local = _local_with_halo(grid, part)
        up = rank - 1 if rank > 0 else None
        down = rank + 1 if rank < n - 1 else None
        t0 = env.now
        comm_ns = 0
        for it in range(iters):
            parity = it % 2
            c0 = env.now
            # ship boundary rows into the neighbours' landing buffers
            if up is not None:
                stage = stagings[rank][parity * 2]
                mem.write(stage.addr, local[1].tobytes())
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
                dstbuf = landing(up, parity, from_up=False)
                yield from ep.put_pwc(up, stage.addr, row_bytes,
                                      dstbuf.addr, dstbuf.rkey,
                                      remote_cid=it * 2 + 1)
            if down is not None:
                stage = stagings[rank][parity * 2 + 1]
                mem.write(stage.addr, local[-2].tobytes())
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
                dstbuf = landing(down, parity, from_up=True)
                yield from ep.put_pwc(down, stage.addr, row_bytes,
                                      dstbuf.addr, dstbuf.rkey,
                                      remote_cid=it * 2)
            # collect the halos we expect this iteration
            expected = (up is not None) + (down is not None)
            for _ in range(expected):
                c = yield from ep.wait_completion("remote",
                                                  timeout_ns=timeout_ns)
                if c is None:
                    raise SimulationError(
                        f"rank {rank}: halo wait timed out at iter {it}")
                if c.cid // 2 != it:
                    raise SimulationError(
                        f"rank {rank}: halo from iter {c.cid // 2} "
                        f"during iter {it}")
                from_up = (c.cid % 2 == 0)
                buf = landing(rank, parity, from_up)
                row = np.frombuffer(mem.read(buf.addr, row_bytes),
                                    dtype=np.float64)
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
                if from_up:
                    local[0] = row
                else:
                    local[-1] = row
            comm_ns += env.now - c0
            # compute
            local = _sweep(local, is_top=(up is None),
                           is_bottom=(down is None))
            cells = (local.shape[0] - 2) * (cols - 2)
            yield env.timeout(int(cells * compute_ns_per_cell))
        results[rank] = StencilResult(rank=rank, local_grid=local,
                                      elapsed_ns=env.now - t0,
                                      comm_ns=comm_ns, iterations=iters)

    return [program(r) for r in range(n)], results


def run_stencil_mpi(cluster: Cluster, comms: List[Comm],
                    rows: int, cols: int, iters: int,
                    compute_ns_per_cell: float = 1.0):
    """Build per-rank generator programs for the minimpi variant."""
    n = cluster.n
    grid = initial_grid(rows, cols)
    parts = partition_rows(rows, n)
    row_bytes = cols * 8
    results: List[Optional[StencilResult]] = [None] * n

    def program(rank: int):
        comm = comms[rank]
        env = cluster.env
        mem = comm.memory
        part = parts[rank]
        local = _local_with_halo(grid, part)
        up = rank - 1 if rank > 0 else None
        down = rank + 1 if rank < n - 1 else None
        send_up = mem.alloc(row_bytes)
        send_down = mem.alloc(row_bytes)
        recv_up = mem.alloc(row_bytes)
        recv_down = mem.alloc(row_bytes)
        t0 = env.now
        comm_ns = 0
        for it in range(iters):
            tag_up = 2 * it  # row travelling upward
            tag_down = 2 * it + 1
            c0 = env.now
            reqs = []
            if up is not None:
                mem.write(send_up, local[1].tobytes())
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
                r1 = yield from comm.irecv(recv_up, row_bytes, src=up,
                                           tag=tag_down)
                r2 = yield from comm.isend(send_up, row_bytes, dst=up,
                                           tag=tag_up)
                reqs += [r1, r2]
            if down is not None:
                mem.write(send_down, local[-2].tobytes())
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
                r3 = yield from comm.irecv(recv_down, row_bytes, src=down,
                                           tag=tag_up)
                r4 = yield from comm.isend(send_down, row_bytes, dst=down,
                                           tag=tag_down)
                reqs += [r3, r4]
            yield from comm.waitall(reqs)
            if up is not None:
                local[0] = np.frombuffer(mem.read(recv_up, row_bytes),
                                         dtype=np.float64)
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
            if down is not None:
                local[-1] = np.frombuffer(mem.read(recv_down, row_bytes),
                                          dtype=np.float64)
                yield env.timeout(mem.memcpy_cost_ns(row_bytes))
            comm_ns += env.now - c0
            local = _sweep(local, is_top=(up is None),
                           is_bottom=(down is None))
            cells = (local.shape[0] - 2) * (cols - 2)
            yield env.timeout(int(cells * compute_ns_per_cell))
        results[rank] = StencilResult(rank=rank, local_grid=local,
                                      elapsed_ns=env.now - t0,
                                      comm_ns=comm_ns, iterations=iters)

    return [program(r) for r in range(n)], results


def assemble(results: List[StencilResult], rows: int, cols: int,
             n: int) -> np.ndarray:
    """Stitch per-rank blocks back into the global grid."""
    parts = partition_rows(rows, n)
    out = np.zeros((rows, cols), dtype=np.float64)
    for res, part in zip(results, parts):
        out[part] = res.local_grid[1:-1]
    return out
