"""Mini-applications exercising the middleware under realistic workloads.

- :mod:`repro.apps.stencil` — structured-grid halo exchange (R9)
- :mod:`repro.apps.bfs` — irregular graph traversal over parcels (R10)
- :mod:`repro.apps.gups` — random remote updates (latency-bound)
- :mod:`repro.apps.mcts` — Monte-Carlo Tree Search over active
  messages (R23, Seriema-style remote invocation)
"""

from .bfs import (
    BfsResult,
    make_graph,
    merge_depths,
    reference_depths,
    run_bfs_mpi,
    run_bfs_photon,
)
from .gups import (
    GupsResult,
    run_gups_mpi_p2p,
    run_gups_mpi_rma,
    run_gups_photon,
    run_gups_photon_atomic,
)
from .mcts import (
    MctsResult,
    build_mcts,
    owner_of,
    rollout_reward,
    run_mcts,
)
from .samplesort import (
    SortResult,
    make_keys,
    run_samplesort_mpi,
    run_samplesort_photon,
    verify_sorted,
)
from .stencil import (
    StencilResult,
    assemble,
    initial_grid,
    partition_rows,
    reference_jacobi,
    run_stencil_mpi,
    run_stencil_photon,
)

__all__ = [
    "BfsResult", "make_graph", "merge_depths", "reference_depths",
    "run_bfs_mpi", "run_bfs_photon",
    "GupsResult", "run_gups_mpi_p2p", "run_gups_mpi_rma", "run_gups_photon",
    "run_gups_photon_atomic",
    "MctsResult", "build_mcts", "owner_of", "rollout_reward", "run_mcts",
    "SortResult", "make_keys", "run_samplesort_mpi", "run_samplesort_photon",
    "verify_sorted",
    "StencilResult", "assemble", "initial_grid", "partition_rows",
    "reference_jacobi", "run_stencil_mpi", "run_stencil_photon",
]
