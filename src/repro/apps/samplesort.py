"""Distributed sample sort — the bandwidth-bound irregular mini-app.

Each rank owns an equal slice of uniformly random 32-bit keys.  One round
of splitter selection (sample + allgather) is followed by the heavy step:
an all-to-all *bucket exchange* whose per-pair payloads are large and
skewed — the bulk-data regime, complementing BFS's tiny-message regime.

- ``photon``: buckets travel as rendezvous advertisements
  (``send_rdma``); every rank pulls its n-1 inbound buckets with direct
  RDMA reads — no intermediate copies.
- ``mpi``: the classic alltoallv (count exchange + payloads through the
  eager/rendezvous protocol).

The result is verified inside the drivers: globally sorted, and the
multiset of keys is exactly the input's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster import Cluster
from ..minimpi.comm import Comm
from ..photon.api import Photon
from ..sim.core import SimulationError

__all__ = ["SortResult", "make_keys", "run_samplesort_photon",
           "run_samplesort_mpi", "verify_sorted"]

#: host cost per key for the local sorts (comparison + move)
SORT_NS_PER_KEY = 4


@dataclass
class SortResult:
    rank: int
    keys: np.ndarray  # this rank's sorted output partition
    elapsed_ns: int
    exchange_ns: int
    bytes_exchanged: int


def make_keys(total: int, n_ranks: int, seed: int = 0) -> List[np.ndarray]:
    """Deterministic per-rank key slices (uint32)."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 32, size=total, dtype=np.uint32)
    per = total // n_ranks
    return [keys[r * per:(r + 1) * per].copy() for r in range(n_ranks)]


def verify_sorted(results: List[SortResult],
                  inputs: List[np.ndarray]) -> bool:
    """Global order + multiset preservation."""
    parts = [r.keys for r in sorted(results, key=lambda r: r.rank)]
    for part in parts:
        if part.size and not np.all(part[:-1] <= part[1:]):
            return False
    for a, b in zip(parts, parts[1:]):
        if a.size and b.size and a[-1] > b[0]:
            return False
    got = np.sort(np.concatenate(parts))
    want = np.sort(np.concatenate(inputs))
    return bool(np.array_equal(got, want))


def _splitters(local_sorted: np.ndarray, n: int, comm_allgather,
               oversample: int = 8):
    """Sample locally, allgather, pick n-1 splitters (generator)."""
    take = min(n * oversample, local_sorted.size)
    idx = np.linspace(0, local_sorted.size - 1, take).astype(int) \
        if local_sorted.size else np.array([], dtype=int)
    sample = local_sorted[idx] if local_sorted.size else \
        np.array([], dtype=np.uint32)
    pad = np.full(n * oversample, np.uint32(0xFFFFFFFF), dtype=np.uint32)
    pad[:sample.size] = sample
    blobs = yield from comm_allgather(pad.tobytes())
    allsamp = np.sort(np.concatenate(
        [np.frombuffer(b, dtype=np.uint32) for b in blobs]))
    step = allsamp.size // n
    return allsamp[step::step][:n - 1]


def _bucketise(local_sorted: np.ndarray, splitters: np.ndarray,
               n: int) -> List[np.ndarray]:
    bounds = np.searchsorted(local_sorted, splitters, side="right")
    return np.split(local_sorted, bounds)


def run_samplesort_photon(cluster: Cluster, endpoints: List[Photon],
                          inputs: List[np.ndarray]):
    """Per-rank programs for the Photon (rendezvous-pull) variant."""
    n = cluster.n
    results: List[Optional[SortResult]] = [None] * n
    max_bytes = max(4 * sum(k.size for k in inputs), 4096)
    send_bufs = [ep.buffer(max_bytes) for ep in endpoints]
    recv_bufs = [ep.buffer(max_bytes) for ep in endpoints]

    def program(rank: int):
        ep = endpoints[rank]
        env = cluster.env
        mem = ep.memory
        t0 = env.now
        local = np.sort(inputs[rank])
        yield env.timeout(int(local.size * SORT_NS_PER_KEY))
        splitters = yield from _splitters(local, n, ep.allgather)
        buckets = _bucketise(local, splitters, n)
        x0 = env.now
        nbytes = 0
        # stage all outgoing buckets, advertise each to its owner
        rids = []
        cursor = 0
        for dst in range(n):
            raw = buckets[dst].tobytes()
            if dst == rank:
                continue
            mem.write(send_bufs[rank].addr + cursor, raw or b"\x00")
            yield env.timeout(mem.memcpy_cost_ns(len(raw)))
            rid = yield from ep.send_rdma(
                dst, send_bufs[rank].addr + cursor, max(len(raw), 1),
                tag=1000 + rank)
            rids.append(rid)
            cursor += max(len(raw), 1)
            nbytes += len(raw)
        # pull the n-1 inbound buckets
        pieces = [buckets[rank]]
        cursor = 0
        for _ in range(n - 1):
            info = yield from ep.wait_recv_info(tag=-1, src=-1,
                                                timeout_ns=10 ** 12)
            if info is None:
                raise SimulationError(f"rank {rank}: sort bucket lost")
            yield from ep.recv_rdma(info, recv_bufs[rank].addr + cursor)
            raw = mem.read(recv_bufs[rank].addr + cursor, info.size)
            usable = len(raw) - (len(raw) % 4)
            pieces.append(np.frombuffer(raw[:usable], dtype=np.uint32))
            cursor += info.size
        yield from ep.wait_all(rids, timeout_ns=10 ** 12)
        exchange_ns = env.now - x0
        merged = np.sort(np.concatenate(pieces))
        yield env.timeout(int(merged.size * SORT_NS_PER_KEY))
        results[rank] = SortResult(rank=rank, keys=merged,
                                   elapsed_ns=env.now - t0,
                                   exchange_ns=exchange_ns,
                                   bytes_exchanged=nbytes)

    return [program(r) for r in range(n)], results


def run_samplesort_mpi(cluster: Cluster, comms: List[Comm],
                       inputs: List[np.ndarray]):
    """Per-rank programs for the minimpi (alltoallv) variant."""
    n = cluster.n
    results: List[Optional[SortResult]] = [None] * n

    def program(rank: int):
        comm = comms[rank]
        env = cluster.env
        t0 = env.now
        local = np.sort(inputs[rank])
        yield env.timeout(int(local.size * SORT_NS_PER_KEY))
        splitters = yield from _splitters(local, n, comm.allgather)
        buckets = _bucketise(local, splitters, n)
        x0 = env.now
        blobs = [b.tobytes() for b in buckets]
        incoming = yield from comm.alltoall(blobs)
        exchange_ns = env.now - x0
        nbytes = sum(len(b) for i, b in enumerate(blobs) if i != rank)
        pieces = [np.frombuffer(raw, dtype=np.uint32) for raw in incoming]
        merged = np.sort(np.concatenate(pieces))
        yield env.timeout(int(merged.size * SORT_NS_PER_KEY))
        results[rank] = SortResult(rank=rank, keys=merged,
                                   elapsed_ns=env.now - t0,
                                   exchange_ns=exchange_ns,
                                   bytes_exchanged=nbytes)

    return [program(r) for r in range(n)], results
