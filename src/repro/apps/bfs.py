"""Distributed level-synchronous BFS — the irregular mini-app.

Vertices are partitioned cyclically (owner = v mod n).  Each level, every
rank expands its frontier and ships the discovered neighbour ids to their
owners; a photon allreduce / minimpi allreduce on the next-frontier size
decides termination.  Two transports:

- ``photon``: one *visit parcel* per destination per level (batched ids)
  over the parcel runtime on the PWC transport;
- ``mpi``: an alltoallv of id batches per level.

This is the graph-runtime workload the Photon paper motivates (HPX-5 /
AM++ style): many small, unpredictable messages where matching-free
delivery pays off.  Results verify against networkx BFS depths.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster import Cluster
from ..minimpi.comm import Comm
from ..photon.api import Photon
from ..runtime import ActionRegistry, Runtime, build_runtime
from ..sim.core import SimulationError

__all__ = ["BfsResult", "make_graph", "reference_depths",
           "run_bfs_photon", "run_bfs_mpi"]

_U32 = struct.Struct("<I")


@dataclass
class BfsResult:
    """Per-rank outcome: depths of the vertices this rank owns."""

    rank: int
    depths: Dict[int, int]
    elapsed_ns: int
    levels: int
    parcels: int


def make_graph(n_vertices: int, avg_degree: float, seed: int = 1):
    """Deterministic Erdős–Rényi-ish adjacency (numpy, no networkx needed).

    Returns adjacency as a dict v -> sorted list of neighbours; the graph
    is undirected and may be disconnected (unreached vertices keep depth
    -1, as in Graph500 validation).
    """
    rng = np.random.default_rng(seed)
    n_edges = int(n_vertices * avg_degree / 2)
    us = rng.integers(0, n_vertices, size=n_edges)
    vs = rng.integers(0, n_vertices, size=n_edges)
    adj: Dict[int, List[int]] = {v: [] for v in range(n_vertices)}
    for u, v in zip(us.tolist(), vs.tolist()):
        if u != v:
            adj[u].append(v)
            adj[v].append(u)
    for v in adj:
        adj[v] = sorted(set(adj[v]))
    return adj


def reference_depths(adj: Dict[int, List[int]], root: int) -> Dict[int, int]:
    """Sequential BFS depths (unreached = -1)."""
    depths = {v: -1 for v in adj}
    depths[root] = 0
    frontier = [root]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for w in adj[u]:
                if depths[w] < 0:
                    depths[w] = d
                    nxt.append(w)
        frontier = nxt
    return depths


def _owned(adj: Dict[int, List[int]], rank: int, n: int) -> Dict[int, List[int]]:
    return {v: nbrs for v, nbrs in adj.items() if v % n == rank}


def _pack_ids(ids: List[int]) -> bytes:
    return b"".join(_U32.pack(v) for v in ids)


def _unpack_ids(raw: bytes) -> List[int]:
    return [_U32.unpack_from(raw, i)[0] for i in range(0, len(raw), 4)]


def run_bfs_photon(cluster: Cluster, endpoints: List[Photon],
                   adj: Dict[int, List[int]], root: int,
                   max_parcel: int = 1 << 20):
    """Build per-rank BFS programs on the Photon parcel runtime.

    Returns (programs, results).
    """
    n = cluster.n
    registry = ActionRegistry()
    runtimes = build_runtime(cluster, registry, "photon", photon=endpoints,
                             max_parcel=max_parcel)
    inboxes: List[List[int]] = [[] for _ in range(n)]
    visits_seen = [0] * n

    def visit(rt: Runtime, src: int, payload: bytes):
        inboxes[rt.rank].extend(_unpack_ids(payload))
        visits_seen[rt.rank] += 1

    registry.register("visit", visit)
    results: List[Optional[BfsResult]] = [None] * n

    def program(rank: int):
        ep = endpoints[rank]
        rt = runtimes[rank]
        env = cluster.env
        owned = _owned(adj, rank, n)
        depths = {v: -1 for v in owned}
        t0 = env.now
        frontier = []
        if root % n == rank:
            depths[root] = 0
            frontier = [root]
        level = 0
        while True:
            # expand: bucket neighbour ids by owner
            buckets: List[List[int]] = [[] for _ in range(n)]
            for u in frontier:
                for w in owned[u]:
                    buckets[w % n].append(w)
            # one visit parcel per destination per level (possibly empty)
            for dst in range(n):
                if dst == rank:
                    inboxes[rank].extend(buckets[dst])
                    visits_seen[rank] += 1
                else:
                    yield from rt.send(dst, "visit", _pack_ids(buckets[dst]))
            # everyone sends n-1 remote parcels + self-delivers one batch
            expect = (level + 1) * n
            ok = yield from rt.process_until(
                lambda: visits_seen[rank] >= expect,
                timeout_ns=20_000_000_000)
            if not ok:
                raise SimulationError(f"rank {rank}: BFS level {level} "
                                      "parcel wait timed out")
            # absorb the inbox into the next frontier
            nxt = []
            for w in inboxes[rank]:
                if depths.get(w, 0) < 0:
                    depths[w] = level + 1
                    nxt.append(w)
            inboxes[rank].clear()
            frontier = sorted(set(nxt))
            total = yield from ep.allreduce(
                np.array([len(frontier)], dtype=np.int64), "sum")
            level += 1
            if int(total[0]) == 0:
                break
        results[rank] = BfsResult(rank=rank, depths=depths,
                                  elapsed_ns=env.now - t0, levels=level,
                                  parcels=rt.parcels_sent)

    return [program(r) for r in range(n)], results


def run_bfs_mpi(cluster: Cluster, comms: List[Comm],
                adj: Dict[int, List[int]], root: int):
    """Build per-rank BFS programs on minimpi (alltoallv per level)."""
    n = cluster.n
    results: List[Optional[BfsResult]] = [None] * n

    def program(rank: int):
        comm = comms[rank]
        env = cluster.env
        owned = _owned(adj, rank, n)
        depths = {v: -1 for v in owned}
        t0 = env.now
        frontier = []
        if root % n == rank:
            depths[root] = 0
            frontier = [root]
        level = 0
        msgs = 0
        while True:
            buckets: List[List[int]] = [[] for _ in range(n)]
            for u in frontier:
                for w in owned[u]:
                    buckets[w % n].append(w)
            blobs = [_pack_ids(b) for b in buckets]
            incoming = yield from comm.alltoall(blobs)
            msgs += n - 1
            nxt = []
            for raw in incoming:
                for w in _unpack_ids(raw):
                    if depths.get(w, 0) < 0:
                        depths[w] = level + 1
                        nxt.append(w)
            frontier = sorted(set(nxt))
            total = yield from comm.allreduce(
                np.array([len(frontier)], dtype=np.int64), "sum")
            level += 1
            if int(total[0]) == 0:
                break
        results[rank] = BfsResult(rank=rank, depths=depths,
                                  elapsed_ns=env.now - t0, levels=level,
                                  parcels=msgs)

    return [program(r) for r in range(n)], results


def merge_depths(results: List[BfsResult]) -> Dict[int, int]:
    """Combine per-rank depth maps into one."""
    out: Dict[int, int] = {}
    for res in results:
        out.update(res.depths)
    return out
