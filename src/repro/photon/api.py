"""The assembled Photon endpoint and cluster-wide initialisation.

Typical use::

    from repro.cluster import build_cluster
    from repro.photon import photon_init

    cl = build_cluster(2, "ib-fdr")
    ph = photon_init(cl)            # one endpoint per rank

    def rank0(env):
        buf = ph[0].buffer(4096)            # registered buffer
        # peers learn each other's buffer keys out of band (or via
        # ph.exchange); then:
        yield from ph[0].put_pwc(1, buf.addr, 64, remote.addr, remote.rkey,
                                 local_cid=1, remote_cid=2)
        ...

See DESIGN.md §1 for the API inventory and the mixins for per-call docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import Cluster
from ..verbs.enums import Access
from .atomics import AtomicsMixin
from .base import PhotonBase
from .collectives import CollectivesMixin
from .config import DEFAULT_CONFIG, PhotonConfig
from .messaging import MessagingMixin
from .pwc import PwcMixin
from .rdma import RdmaMixin

__all__ = ["Photon", "PhotonBuffer", "photon_init"]


@dataclass(frozen=True)
class PhotonBuffer:
    """A registered, remotely accessible buffer.

    ``priv`` (addr, rkey) is what a peer needs to target this buffer —
    the analogue of ``photon_buffer_priv_t``.
    """

    addr: int
    size: int
    rkey: int

    @property
    def priv(self):
        return (self.addr, self.rkey)


class Photon(PwcMixin, RdmaMixin, MessagingMixin, CollectivesMixin,
             AtomicsMixin, PhotonBase):
    """Per-rank Photon endpoint (all operation groups mixed in)."""

    # ------------------------------------------------------------------ buffers
    def buffer(self, size: int, align: int = 64) -> PhotonBuffer:
        """Allocate + register a buffer at bootstrap time (zero-cost reg).

        The registration is seeded into the registration cache so later
        operations on any sub-range of it are cache hits.  For steady-state
        registration costs use :meth:`register_buffer`.
        """
        addr = self.memory.alloc(size, align)
        mr = self.context.reg_mr_sync(self.pd, addr, size, Access.ALL)
        # pinned=True: bootstrap buffers (ledgers, user windows) must never
        # be evicted out from under remote rkeys that were exchanged OOB
        self.rcache.insert(mr, pinned=True)
        return PhotonBuffer(addr=addr, size=size, rkey=mr.rkey)

    def register_buffer(self, addr: int, size: int):
        """Register an existing range, charging pin cost (generator).

        Goes through the registration cache and holds one reference until
        :meth:`unregister_buffer`; returns a PhotonBuffer.
        """
        mr = yield from self.rcache.acquire(addr, size)
        return PhotonBuffer(addr=addr, size=size, rkey=mr.rkey)

    def unregister_buffer(self, buf: PhotonBuffer):
        """Drop the reference taken by :meth:`register_buffer` /
        :meth:`buffer` and retire the registration (generator).

        The entry is evicted from the cache and deregistered immediately
        once no operation holds a reference to it; if in-flight operations
        still do, deregistration is deferred until their last release.
        Either way the buffer's rkey becomes invalid for peers — this is
        teardown, not an unpin-but-keep-warm operation.
        """
        yield from self.rcache.unregister(buf.rkey)


def photon_init(cluster: Cluster,
                config: Optional[PhotonConfig] = None) -> List[Photon]:
    """Create and wire one Photon endpoint per rank.

    Models the library's init: full QP mesh, ledger allocation and the
    out-of-band exchange of ledger bases/rkeys.  Runs at t=0 (setup time is
    not part of any measured experiment, as in the paper's methodology).
    """
    cfg = config or DEFAULT_CONFIG
    endpoints = [Photon(cluster[r], cluster, cfg) for r in range(cluster.n)]
    for ep in endpoints:
        ep._alloc_ledgers()
    # QP mesh + ring wiring
    for a in range(cluster.n):
        for b in range(a + 1, cluster.n):
            ep_a, ep_b = endpoints[a], endpoints[b]
            qp_ab = ep_a.context.create_qp(
                ep_a.pd, ep_a.send_cq, ep_a.recv_cq,
                max_send_wr=2 * cfg.max_outstanding + 64,
                max_recv_wr=max(cfg.imm_prepost + 16, 64))
            qp_ba = ep_b.context.create_qp(
                ep_b.pd, ep_b.send_cq, ep_b.recv_cq,
                max_send_wr=2 * cfg.max_outstanding + 64,
                max_recv_wr=max(cfg.imm_prepost + 16, 64))
            qp_ab.connect(qp_ba)
            ep_a._wire_peer(ep_b, qp_ab)
            ep_b._wire_peer(ep_a, qp_ba)
    # the out-of-band directory: rejoin re-reads peer rkeys through this
    # (the crash-recovery analogue of the PMI exchange above)
    mesh = {ep.rank: ep for ep in endpoints}
    for ep in endpoints:
        ep._mesh = mesh
    return endpoints
