"""Photon endpoint state, bootstrap and the progress engine.

One :class:`PhotonBase` instance exists per rank.  Bootstrap (performed by
:func:`repro.photon.api.photon_init`) wires the full mesh: a reliable
queue pair per peer, the four ledger rings per direction, staging mirrors
and credit words — all in one registered region per rank, with bases/rkeys
exchanged out of band exactly like the real system's PMI exchange.

The progress engine is *polling*: it only runs inside API calls (probe/
wait), as in the real library, and it charges host time for every pass,
every reaped CQE and every eager payload copy-out.  One-sided data
movement happens entirely in the (simulated) NIC — a rank that never calls
into Photon still receives puts into its exposed buffers.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..cluster import Cluster, RankNode
from ..sim.core import Environment, SimulationError
from ..verbs.cq import CompletionQueue
from ..verbs.device import ProtectionDomain
from ..verbs.enums import Access, Opcode, QPState, WCOpcode, WCStatus
from ..verbs.qp import QueuePair, RecvWR, SendWR
from .config import PhotonConfig
from .ledger import LocalRing, RemoteRing, RingSpec
from .rcache import RegistrationCache
from .request import RequestTable
from .wire import (
    COMPLETION_ENTRY_SIZE,
    CompletionEntry,
    EAGER_HEADER_SIZE,
    EagerHeader,
    FIN_ENTRY_SIZE,
    FinEntry,
    INFO_ENTRY_SIZE,
    InfoEntry,
)

__all__ = ["PhotonBase", "PeerState", "Completion", "TimeoutStatus",
           "ReliableOp", "RING_NAMES"]

RING_NAMES = ("cmp", "eager", "info", "fin")


class TimeoutStatus(enum.Enum):
    """Typed result of a blocking wait.

    Truthy exactly when the wait succeeded, so ``if ok:`` call sites keep
    working, but callers can also distinguish ``TimeoutStatus.TIMED_OUT``
    from a legitimate falsy payload.
    """

    OK = "ok"
    TIMED_OUT = "timed_out"

    def __bool__(self) -> bool:
        return self is TimeoutStatus.OK


#: photon_probe_completion result
@dataclass(frozen=True)
class Completion:
    """A local or remote PWC completion event."""

    kind: str  # "local" | "remote"
    cid: int
    src: int
    #: SUCCESS, or the error the reliability layer gave up with
    status: WCStatus = WCStatus.SUCCESS

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


@dataclass
class ReliableOp:
    """One retryable PWC operation tracked by the reliability layer."""

    peer_rank: int
    op_id: int
    kind: str  # "put" | "send" | "get" | "notify"
    #: generator factory posting one (re)attempt of the op's work requests
    replay: Optional[Callable[["ReliableOp"], object]] = None
    local_cid: Optional[int] = None
    #: fired once when the op completes successfully (get-notify spawn etc.)
    on_done: Optional[Callable[[], None]] = None
    #: rcache registrations pinned for this op; released when it settles
    mrs: List = field(default_factory=list)
    #: posts so far (1 = first attempt)
    attempts: int = 0
    #: acks still outstanding for the *current* attempt
    acks_pending: int = 0
    state: str = "pending"  # pending | backoff | done | failed
    deadline: int = 0
    next_retry_at: int = 0
    #: open op-latency span (None when span recording is disabled)
    span: Optional[object] = None

    @property
    def key(self) -> Tuple[int, int]:
        return (self.peer_rank, self.op_id)


@dataclass
class PeerState:
    """Everything rank-local about one peer."""

    rank: int
    qp: QueuePair
    remote: Dict[str, RemoteRing] = field(default_factory=dict)
    local: Dict[str, LocalRing] = field(default_factory=dict)
    #: local staging for the 8-byte credit words we send to this peer
    credit_staging: Dict[str, int] = field(default_factory=dict)
    outstanding: int = 0
    preposted: int = 0
    #: producer-side reliable-operation id allocator (per peer)
    tx_op_seq: int = 0
    #: consumer-side dedup: ids <= rx_hwm or in rx_seen were delivered
    rx_hwm: int = 0
    rx_seen: Set[int] = field(default_factory=set)
    #: ``local`` rings in scan order, cached so the progress loop's
    #: nothing-ready bail skips the dict walks (rings are reset in place
    #: on re-arm, so the tuple never goes stale)
    scan_rings: tuple = ()


class PhotonBase:
    """Per-rank endpoint core (mixins add the public operations)."""

    def __init__(self, node: RankNode, cluster: Cluster, config: PhotonConfig):
        config.validate()
        self.node = node
        self.cluster = cluster
        self.config = config
        self.rank = node.rank
        self.env: Environment = cluster.env
        # hot-path caches for _progress_once: these knobs are fixed for
        # the life of the endpoint (config and NicParams are only ever
        # set at construction), and every poll pass reads them
        self._poll_ns = config.progress_poll_ns
        self._cqe_poll_ns = cluster.params.nic.cqe_poll_ns
        self._use_imm = config.use_imm
        self._imm_prepost = config.imm_prepost
        # memory.version as of the last ledger scan (see _progress_once)
        self._scanned_version = -1
        self.context = node.context
        self.memory = node.memory
        # this rank's counter scope: writes mirror into cluster.counters
        self.counters = cluster.scope(node.rank)
        self.pd: ProtectionDomain = self.context.alloc_pd()
        qp_total = cluster.n * (2 * config.max_outstanding + 64)
        self.send_cq: CompletionQueue = self.context.create_cq(
            capacity=max(4096, qp_total))
        self.recv_cq: CompletionQueue = self.context.create_cq(
            capacity=max(4096, cluster.n * config.imm_prepost * 2))
        self.rcache = RegistrationCache(
            self.context, self.pd, capacity=config.rcache_capacity,
            enabled=config.rcache_enabled,
            max_pinned_bytes=config.rcache_max_pinned_bytes,
            merge=config.rcache_merge)
        self.requests = RequestTable(self.rank)
        self.peers: Dict[int, PeerState] = {}
        # engine queues
        self._op_seq = 0
        self._ops: Dict[int, Tuple[str, Optional[Callable],
                                   Optional[Callable]]] = {}
        # reliability layer: live retryable ops by (peer, op id), terminal
        # results kept until the caller frees them, seeded jitter stream
        self._reliable: Dict[Tuple[int, int], ReliableOp] = {}
        self._op_results: Dict[Tuple[int, int], WCStatus] = {}
        self._in_deadline_scan = False
        self._retry_rng = cluster.rng.stream(f"photon.retry.{self.rank}")
        #: False between a chaos crash and the matching rejoin
        self.alive = True
        #: failure-detector handle (None unless a health layer is attached)
        self.health = None
        #: rank -> endpoint, for bootstrap re-exchange at rejoin (models
        #: the PMI re-exchange of rkeys; filled by photon_init)
        self._mesh: Dict[int, "PhotonBase"] = {}
        self.local_cids: Deque[Tuple[int, WCStatus]] = deque()
        self.remote_cids: Deque[Tuple[int, int]] = deque()  # (cid, src)
        self.messages: Deque[Tuple[int, int, bytes]] = deque()  # (src, cid, data)
        self.infos: List[InfoEntry] = []
        #: rank-local rendezvous sends awaiting a local recv (tag, data, rid)
        self._self_rendezvous: List[Tuple[int, bytes, int]] = []
        #: old values from completed atomics, keyed by local cid
        self._atomic_results: Dict[int, int] = {}
        #: collective epoch counter (SPMD calls advance it identically)
        self._coll_epoch = 0
        # ledger region bookkeeping (filled by _alloc_ledgers)
        self._ledger_mr = None
        self._ledger_base = 0
        self._ledger_size = 0
        self._layout: Dict[Tuple[int, str, str], int] = {}
        self._specs = self._ring_specs()

    # ------------------------------------------------------------- geometry
    def _ring_specs(self) -> Dict[str, RingSpec]:
        c = self.config
        eager_entry = EAGER_HEADER_SIZE + c.eager_limit + 8  # + seq trailer
        return {
            "cmp": RingSpec("cmp", c.completion_entries, COMPLETION_ENTRY_SIZE),
            "eager": RingSpec("eager", c.eager_slots, eager_entry),
            "info": RingSpec("info", c.info_entries, INFO_ENTRY_SIZE),
            "fin": RingSpec("fin", c.fin_entries, FIN_ENTRY_SIZE),
        }

    def _alloc_ledgers(self) -> None:
        """Allocate + register consumer rings, staging mirrors, credit words."""
        mem = self.memory
        per_peer = sum(s.nbytes for s in self._specs.values())
        total_ranks = [r for r in range(self.cluster.n) if r != self.rank]
        # consumer rings + credit staging; producer staging + credit words
        region_size = len(total_ranks) * (2 * per_peer
                                          + 2 * 8 * len(RING_NAMES))
        if not total_ranks:
            return  # single rank: no ledgers needed
        base = mem.alloc(region_size, align=64)
        cursor = base
        for peer in total_ranks:
            for name in RING_NAMES:
                self._layout[(peer, name, "cons")] = cursor
                cursor += self._specs[name].nbytes
            for name in RING_NAMES:
                self._layout[(peer, name, "stage")] = cursor
                cursor += self._specs[name].nbytes
            for name in RING_NAMES:
                self._layout[(peer, name, "credit")] = cursor  # written by peer
                cursor += 8
            for name in RING_NAMES:
                self._layout[(peer, name, "credit_stage")] = cursor
                cursor += 8
        self._ledger_base = base
        self._ledger_size = cursor - base
        self._ledger_mr = self.context.reg_mr_sync(
            self.pd, base, cursor - base, Access.ALL)

    def _wire_peer(self, other: "PhotonBase", qp: QueuePair) -> None:
        """Create the peer state for ``other`` (both endpoints bootstrapped)."""
        peer = PeerState(rank=other.rank, qp=qp)
        for name in RING_NAMES:
            spec = self._specs[name]
            # producer view: we write other's consumer ring for us
            peer.remote[name] = RemoteRing(
                spec,
                remote_base=other._layout[(self.rank, name, "cons")],
                rkey=other._ledger_mr.rkey,
                staging_base=self._layout[(other.rank, name, "stage")],
                credit_addr=self._layout[(other.rank, name, "credit")],
                memory=self.memory)
            # consumer view: our ring written by other; credits go back to
            # other's credit word for us
            peer.local[name] = LocalRing(
                spec,
                base=self._layout[(other.rank, name, "cons")],
                memory=self.memory,
                producer_credit_addr=other._layout[(self.rank, name, "credit")],
                producer_rkey=other._ledger_mr.rkey,
                credit_fraction=self.config.credit_fraction)
            peer.credit_staging[name] = self._layout[
                (other.rank, name, "credit_stage")]
        peer.scan_rings = tuple(peer.local[n] for n in RING_NAMES)
        self.peers[other.rank] = peer
        if self.config.use_imm:
            for _ in range(self.config.imm_prepost):
                qp.post_recv(RecvWR())
                peer.preposted += 1

    # ------------------------------------------------------------- posting
    def _next_op(self, kind: str, callback: Optional[Callable],
                 on_error: Optional[Callable] = None) -> int:
        self._op_seq += 1
        self._ops[self._op_seq] = (kind, callback, on_error)
        return self._op_seq

    def _peer(self, rank: int) -> PeerState:
        peer = self.peers.get(rank)
        if peer is None:
            raise SimulationError(
                f"rank {self.rank}: no photon peer {rank} (self-sends are "
                "handled above this layer)")
        return peer

    def _post(self, peer: PeerState, wr: SendWR,
              on_ack: Optional[Callable] = None,
              on_error: Optional[Callable] = None):
        """Charge post overhead, track outstanding, post (generator)."""
        while peer.outstanding >= self.config.max_outstanding:
            yield from self._progress_once()
            yield self.env.timeout(self.config.wait_backoff_ns)
        wr.wr_id = self._next_op("ack", on_ack, on_error)
        wr.signaled = True
        peer.outstanding += 1
        yield from peer.qp.post_send_timed(wr)
        self.counters.add("photon.posts")

    def _post_ring_entry(self, peer: PeerState, ring_name: str,
                         entry, on_ack: Optional[Callable] = None,
                         on_error: Optional[Callable] = None,
                         extent: Optional[int] = None):
        """Claim a slot in the peer's ring and RDMA-write an entry into it.

        ``entry`` is either raw bytes or a builder ``f(seq) -> bytes`` —
        the builder form stamps the *claimed* sequence number, which is the
        only safe option when the claim can be preceded by a backpressure
        wait (or when the entry is replayed later into a fresh slot).
        ``extent``: bytes of the slot actually written (defaults to the
        entry length) — eager entries only write header+payload+trailer,
        not the full slot.  Returns the claimed sequence number (generator).
        """
        ring = peer.remote[ring_name]
        while ring.available() <= 0:
            self.counters.add(f"photon.{ring_name}_stalls")
            yield from self._progress_once()
            yield self.env.timeout(self.config.wait_backoff_ns)
        seq, stage_addr, remote_addr = ring.claim()
        if callable(entry):
            entry = entry(seq)
        nbytes = extent if extent is not None else len(entry)
        if len(entry) > ring.spec.entry_size:
            raise SimulationError(
                f"entry of {len(entry)}B exceeds {ring.spec.name} slot")
        # compose into staging (host copy cost)
        self.memory.write(stage_addr, entry)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(entry)))
        nic = self.cluster.params.nic
        use_inline = (self.config.use_inline and nbytes <= nic.max_inline)
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=stage_addr,
                    length=nbytes, remote_addr=remote_addr, rkey=ring.rkey,
                    inline=use_inline)
        yield from self._post(peer, wr, on_ack,
                              self._entry_error_cb(peer, wr, on_ack, on_error))
        return seq

    def _entry_error_cb(self, peer: PeerState, wr: SendWR,
                        on_ack: Optional[Callable],
                        on_error: Optional[Callable], attempt: int = 0):
        """Slot-stable delivery retry for a lost ring-entry write.

        The consumer drains each ring strictly in sequence order, so a
        lost entry write would leave a hole no later entry can fill and
        stall the ring for good.  The entry bytes are still staged (the
        slot cannot be reclaimed before the peer returns credit for it),
        so re-posting the same WR into the same slot is idempotent and
        repairs the hole.  After ``entry_resend_limit`` resends the hole is
        declared permanent and the caller's ``on_error`` runs.
        """

        def cb():
            if self.health is not None and self.health.is_dead(peer.rank):
                # the slot belongs to the dead incarnation's seq space;
                # re-arm (not resend) is the recovery path
                self.counters.add("photon.dead_peer_entry_drops")
                if on_error is not None:
                    on_error()
                return
            if attempt >= self.config.entry_resend_limit:
                self.counters.add("photon.entry_drops")
                if on_error is not None:
                    on_error()
                return
            self.counters.add("photon.entry_resends")
            self.env.process(
                self._resend_ring_entry(peer, wr, on_ack, on_error,
                                        attempt + 1),
                name="photon:entry-resend")

        return cb

    def _resend_ring_entry(self, peer: PeerState, wr: SendWR,
                           on_ack: Optional[Callable],
                           on_error: Optional[Callable], attempt: int):
        backoff = min(self.config.backoff_base_ns << (attempt - 1),
                      self.config.backoff_max_ns)
        yield self.env.timeout(backoff)
        yield from self._post(peer, wr, on_ack,
                              self._entry_error_cb(peer, wr, on_ack, on_error,
                                                   attempt))

    def _send_credit(self, peer: PeerState, ring_name: str):
        """Return ledger credit to the producer (tiny RDMA write)."""
        local = peer.local[ring_name]
        value = local.mark_credit_sent()
        stage = peer.credit_staging[ring_name]
        self.memory.write_u64(stage, value)
        nic = self.cluster.params.nic
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=stage, length=8,
                    remote_addr=local.producer_credit_addr,
                    rkey=local.producer_rkey,
                    inline=self.config.use_inline and 8 <= nic.max_inline)

        def on_error():
            # a credit write carries an absolute value — resending the
            # current word is always safe and keeps the producer unblocked
            if self.health is not None and self.health.is_dead(peer.rank):
                return  # the re-arm resets credit state from scratch
            self.counters.add("photon.credit_resends")
            self.env.process(self._resend_credit(peer, ring_name),
                             name="photon:credit-resend")

        yield from self._post(peer, wr, None, on_error)
        self.counters.add("photon.credit_writes")

    def _resend_credit(self, peer: PeerState, ring_name: str):
        local = peer.local[ring_name]
        stage = peer.credit_staging[ring_name]
        self.memory.write_u64(stage, local.credit_sent)
        nic = self.cluster.params.nic
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=stage, length=8,
                    remote_addr=local.producer_credit_addr,
                    rkey=local.producer_rkey,
                    inline=self.config.use_inline and 8 <= nic.max_inline)

        def on_error():
            if self.health is not None and self.health.is_dead(peer.rank):
                return
            self.counters.add("photon.credit_resends")
            self.env.process(self._resend_credit(peer, ring_name),
                             name="photon:credit-resend")

        yield from self._post(peer, wr, None, on_error)

    # ------------------------------------------------------------- reliability
    def _new_reliable_op(self, peer: PeerState, kind: str,
                         local_cid: Optional[int]) -> ReliableOp:
        peer.tx_op_seq += 1
        op = ReliableOp(peer_rank=peer.rank, op_id=peer.tx_op_seq, kind=kind,
                        local_cid=local_cid)
        self._reliable[op.key] = op
        return op

    def _op_cbs(self, op: ReliableOp, attempt: int):
        """(ack, error) WR callbacks bound to one attempt of one op.

        Callbacks from a superseded attempt (its WRs resolved after the
        deadline already declared the attempt dead) are ignored.
        """

        def on_ack():
            if op.state != "pending" or attempt != op.attempts:
                return
            op.acks_pending -= 1
            if op.acks_pending <= 0:
                self._op_done(op)

        def on_error():
            if attempt != op.attempts:
                return
            self._op_attempt_failed(op)

        return on_ack, on_error

    def _start_attempt(self, op: ReliableOp):
        # fail fast against a confirmed-dead peer instead of burning the
        # full deadline + retry budget (covers fresh posts and replays:
        # this is the single entry point for every attempt)
        if self.health is not None and self.health.is_dead(op.peer_rank):
            self._op_fail(op, WCStatus.PEER_DEAD)
            return
        op.attempts += 1
        op.deadline = self.env.now + self.config.op_timeout_ns
        yield from op.replay(op)

    def _release_op_mrs(self, op: ReliableOp) -> None:
        """Unpin the op's rcache registrations (called once, at settle)."""
        for mr in op.mrs:
            self.rcache.release_async(mr)
        op.mrs.clear()

    def _op_done(self, op: ReliableOp) -> None:
        if op.state in ("done", "failed"):
            return
        op.state = "done"
        self._reliable.pop(op.key, None)
        self._release_op_mrs(op)
        if op.span is not None:
            op.span.end(self.env.now, retries=op.attempts - 1)
        self._op_results[op.key] = WCStatus.SUCCESS
        if op.local_cid is not None:
            self.local_cids.append((op.local_cid, WCStatus.SUCCESS))
            self.counters.add("photon.local_cids")
        if op.on_done is not None:
            op.on_done()

    def _op_fail(self, op: ReliableOp, status: WCStatus) -> None:
        """Terminally fail a reliable op with ``status`` (idempotent)."""
        if op.state in ("done", "failed"):
            return
        op.state = "failed"
        self._reliable.pop(op.key, None)
        self._release_op_mrs(op)
        if op.span is not None:
            label = ("failed" if status is WCStatus.RETRY_EXC_ERR
                     else status.value)
            op.span.end(self.env.now, status=label,
                        retries=max(0, op.attempts - 1))
        self._op_results[op.key] = status
        if status is WCStatus.PEER_DEAD:
            self.counters.add("photon.dead_peer_fails")
        else:
            self.counters.add("photon.op_failures")
        if op.local_cid is not None:
            self.local_cids.append((op.local_cid, status))
            self.counters.add("photon.local_cids")

    def _op_attempt_failed(self, op: ReliableOp) -> None:
        """One attempt failed (WR error or deadline): back off or give up."""
        if op.state != "pending":
            return
        if op.attempts > self.config.max_op_retries:
            self._op_fail(op, WCStatus.RETRY_EXC_ERR)
            return
        self.counters.add("photon.op_retries")
        base = self.config.backoff_base_ns << (op.attempts - 1)
        backoff = min(base, self.config.backoff_max_ns)
        # jitter decorrelates retries of ops that share a deadline cadence
        # (e.g. every op against one dead peer); None keeps the historical
        # one-backoff_base_ns window byte-for-byte
        jitter = self.config.backoff_jitter_ns or self.config.backoff_base_ns
        backoff += int(self._retry_rng.integers(0, jitter))
        op.state = "backoff"
        op.next_retry_at = self.env.now + backoff

    def op_status(self, dst: int, op_id: int) -> Optional[WCStatus]:
        """Terminal status of a reliable op, or None while still in flight.

        ``put_pwc``/``send_pwc``/``get_pwc`` return the op id.  Terminal
        results are retained until :meth:`free_op`.
        """
        return self._op_results.get((dst, op_id))

    def free_op(self, dst: int, op_id: int) -> None:
        """Drop the retained terminal status of a reliable op."""
        self._op_results.pop((dst, op_id), None)

    # ------------------------------------------------------------- health
    def attach_health(self, monitor) -> None:
        """Consume a :class:`~repro.runtime.health.HealthMonitor`.

        Pending reliable ops against a peer the detector declares dead are
        failed with ``WCStatus.PEER_DEAD`` (and their flushed-out SQ slots
        reclaimed); when the peer rejoins with a new incarnation the
        pairing is re-armed from scratch.
        """
        self.health = monitor
        monitor.on_dead(self._on_peer_dead)
        monitor.on_join(self._on_peer_join)

    def _on_peer_dead(self, rank: int) -> None:
        if rank == self.rank or not self.alive:
            return
        self.handle_peer_dead(rank)

    def _on_peer_join(self, rank: int) -> None:
        if rank == self.rank or not self.alive:
            return
        self.rearm_peer(rank)

    def handle_peer_dead(self, rank: int) -> None:
        """Fail pending ops against a confirmed-dead peer, flush its QP.

        Without this a reliable (non-lossy) fabric leaks SQ slots: a WR
        posted toward a crashed peer is never acked and never errored, so
        its slot would stay occupied until QueueFullError.  Tearing the QP
        down flushes every pending WR with ``WR_FLUSH_ERR`` through the
        normal CQ path.
        """
        peer = self.peers.get(rank)
        if peer is None:
            return
        for key in [k for k in self._reliable if k[0] == rank]:
            op = self._reliable.get(key)
            if op is not None:
                self._op_fail(op, WCStatus.PEER_DEAD)
        if peer.qp.state is QPState.READY and peer.outstanding > 0:
            peer.qp.teardown()
        self.counters.add("photon.peer_dead_events")

    # ------------------------------------------------------------- crash
    def crash_local(self) -> None:
        """Crash injection: this endpoint's volatile state is gone.

        Called by the chaos controller *before* the NIC powers off.  No
        simulated time is charged — a crash is instantaneous.  The
        in-flight rcache pins are dropped without deregistration; the
        matching :meth:`rejoin` flushes the cache, which restores the
        reg/dereg balance.
        """
        self.alive = False
        for peer in self.peers.values():
            if peer.qp.state is QPState.READY:
                peer.qp.teardown()
        for op in self._reliable.values():
            op.state = "failed"
            op.mrs.clear()
        self._reliable.clear()
        self._op_results.clear()
        self._ops.clear()
        self.local_cids.clear()
        self.remote_cids.clear()
        self.messages.clear()
        self.infos.clear()
        self._atomic_results.clear()
        self.counters.add("photon.crashes")

    def rejoin(self):
        """Restart this endpoint in place (generator, charges real time).

        Sequence mirrors a process restart on the same host: flush every
        cached registration (pins died with the process), re-register the
        ledger region (new rkey — peers learn it through the mesh, the
        PMI re-exchange analogue), drain stale CQ entries, then re-arm
        every peer pairing.  The caller must not issue operations toward
        a peer until that peer has also re-armed this pairing (the chaos
        controller sequences this via the membership join event).
        """
        yield from self.rcache.flush()
        if self._ledger_mr is not None:
            if self._ledger_mr.valid:
                yield from self.context.dereg_mr(self._ledger_mr)
            self._ledger_mr = self.context.reg_mr_sync(
                self.pd, self._ledger_base, self._ledger_size, Access.ALL)
        while self.send_cq.poll(max_entries=64):
            pass
        while self.recv_cq.poll(max_entries=64):
            pass
        for peer in self.peers.values():
            self._rearm_peer_state(peer)
            # the crash tore every QP down and the drain above consumed
            # the flush CQEs, so the RQ really is empty on this side
            peer.preposted = 0
            if peer.qp.state is not QPState.READY:
                peer.qp.reset_and_reconnect()
            if self.config.use_imm:
                while peer.preposted < self.config.imm_prepost:
                    peer.qp.post_recv(RecvWR())
                    peer.preposted += 1
        self.alive = True
        self.counters.add("photon.rejoins")

    def rearm_peer(self, rank: int) -> None:
        """Survivor side of a peer restart: reset the pairing's state.

        Any op still pending against the peer is failed with
        ``PEER_DEAD`` (it was addressed to the previous incarnation).
        """
        peer = self.peers.get(rank)
        if peer is None:
            return
        for key in [k for k in self._reliable if k[0] == rank]:
            op = self._reliable.get(key)
            if op is not None:
                self._op_fail(op, WCStatus.PEER_DEAD)
        self._rearm_peer_state(peer)
        if peer.qp.state is not QPState.READY:
            peer.qp.reset_and_reconnect()
        if self.config.use_imm:
            while peer.preposted < self.config.imm_prepost:
                peer.qp.post_recv(RecvWR())
                peer.preposted += 1
        self.counters.add("photon.peer_rearms")

    def _rearm_peer_state(self, peer: PeerState) -> None:
        """Reset both ring views of one pairing to their bootstrap state."""
        other = self._mesh.get(peer.rank)
        fresh_rkey = (other._ledger_mr.rkey
                      if other is not None and other._ledger_mr is not None
                      else None)
        for name in RING_NAMES:
            spec = self._specs[name]
            peer.remote[name].reset()
            peer.local[name].reset()
            if fresh_rkey is not None:
                peer.remote[name].rkey = fresh_rkey
                peer.local[name].producer_rkey = fresh_rkey
            # zero our consumer ring and both credit words for this peer:
            # stale sequence numbers must not alias the fresh seq space
            self.memory.write(self._layout[(peer.rank, name, "cons")],
                              b"\x00" * spec.nbytes)
            self.memory.write_u64(
                self._layout[(peer.rank, name, "credit")], 0)
            self.memory.write_u64(
                self._layout[(peer.rank, name, "credit_stage")], 0)
        peer.outstanding = 0
        # deliberately NOT zeroing peer.preposted: if the pairing's QP
        # was never torn down (peer died with nothing outstanding) the
        # RQ still holds our posted receives — fungible empty WRs the
        # new incarnation can consume, so zeroing the counter here would
        # double-post and overflow the RQ on rearm.  If it *was* torn
        # down, the flush CQEs decrement the counter through the normal
        # poll path (possibly after this call), and the poll loop tops
        # the RQ back up once they drain.
        peer.tx_op_seq = 0
        peer.rx_hwm = 0
        peer.rx_seen.clear()
        for key in [k for k in self._op_results if k[0] == peer.rank]:
            del self._op_results[key]

    def _reconnect_peer(self, peer: PeerState) -> None:
        """Re-arm an errored QP (reliability layer owns reconnection)."""
        if peer.qp.state is not QPState.ERROR:
            return
        peer.qp.reset_and_reconnect()
        self.counters.add("photon.qp_reconnects")

    def _rx_dup(self, peer: PeerState, op_id: int) -> bool:
        """True if this (peer, op) ledger entry was already delivered."""
        if op_id == 0:
            return False
        if op_id <= peer.rx_hwm or op_id in peer.rx_seen:
            self.counters.add("photon.dup_drops")
            return True
        peer.rx_seen.add(op_id)
        while peer.rx_hwm + 1 in peer.rx_seen:
            peer.rx_hwm += 1
            peer.rx_seen.discard(peer.rx_hwm)
        return False

    # ------------------------------------------------------------- progress
    def progress_pending(self) -> bool:
        """True when a progress pass could do more than charge poll time.

        Pure check, no time cost: polling servers use it to fuse an idle
        pass's poll-interval charge into their own backoff sleep instead
        of paying a kernel event for a pass that cannot find work.  The
        check mirrors the sections of :meth:`_progress_once` exactly —
        CQ entries, a ledger write since the last scan (watch version),
        or any reliable op whose deadline machinery needs the scan.
        """
        return bool(self.send_cq._entries
                    or (self._use_imm and self.recv_cq._entries)
                    or self.memory.watch_version != self._scanned_version
                    or self._reliable)

    def _progress_once(self, charge_poll: bool = True):
        """One polling pass: CQs, ledgers, then retry deadlines (generator,
        charges time).

        ``charge_poll=False`` skips the leading poll-interval sleep for
        callers that have already charged it themselves (the KV server
        loop fuses it into its idle backoff) — the pass's checks then run
        at exactly the instant they would have anyway.
        """
        env = self.env
        cqe_ns = self._cqe_poll_ns
        if charge_poll:
            yield env.timeout(self._poll_ns)
        # 1) source completions (successes and errors)
        for wc in self.send_cq.poll(max_entries=32):
            yield env.timeout(cqe_ns)
            entry = self._ops.pop(wc.wr_id, None)
            peer = self.peers.get(wc.src_rank)
            if peer is not None and peer.outstanding > 0:
                # (> 0: completions of WRs flushed before a re-arm must
                # not drive the reset count negative)
                peer.outstanding -= 1
            if entry is None:
                continue
            kind, callback, on_error = entry
            if wc.ok:
                if callback is not None:
                    callback()
            else:
                self.counters.add("photon.wr_errors")
                if peer is not None:
                    self._reconnect_peer(peer)
                if on_error is not None:
                    on_error()
        # 2) immediate-mode remote completions (+ flushed receives)
        if self._use_imm:
            wcs = self.recv_cq.poll(max_entries=32)
            if wcs:
                for wc in wcs:
                    yield env.timeout(cqe_ns)
                    peer = self.peers.get(wc.src_rank)
                    if peer is not None:
                        peer.preposted -= 1
                    if not wc.ok:
                        self.counters.add("photon.recv_flushes")
                        if peer is not None:
                            self._reconnect_peer(peer)
                        continue
                    if wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM:
                        self.remote_cids.append((wc.imm, wc.src_rank))
                        self.counters.add("photon.remote_cids")
                # top preposts back up.  Only needed when this pass reaped
                # receive completions: every other path that lowers
                # ``preposted`` (init, reconnect, rejoin) refills inline.
                for peer in self.peers.values():
                    if peer.qp.state is QPState.READY:
                        while peer.preposted < self._imm_prepost:
                            peer.qp.post_recv(RecvWR())
                            peer.preposted += 1
        # 3) ledger scans — ring state only changes when bytes land in a
        # ring region of this rank's memory (rings are watched ranges, so
        # such writes bump ``watch_version``) and entries are only ever
        # consumed inside _scan_peer below, so an unchanged version since
        # the last scan means every ring poll would miss: skip the whole
        # per-ring loop.  The version is snapshotted *before* scanning —
        # anything that lands while a scan yields leaves the version
        # ahead of the snapshot and forces a rescan on the next pass, so
        # nothing is ever missed.
        mem_version = self.memory.watch_version
        if mem_version != self._scanned_version:
            self._scanned_version = mem_version
            for peer in self.peers.values():
                for ring in peer.scan_rings:
                    if ring.ready() or ring.credit_due():
                        yield from self._scan_peer(peer)
                        break
        # 4) retry-deadline scan (skipped when re-entered from a replay's
        # own backpressure wait)
        if self._reliable and not self._in_deadline_scan:
            self._in_deadline_scan = True
            try:
                now = env.now
                health = self.health
                for key in list(self._reliable):
                    op = self._reliable.get(key)
                    if op is None:
                        continue
                    if health is not None and health.is_dead(op.peer_rank):
                        self._op_fail(op, WCStatus.PEER_DEAD)
                        continue
                    if op.state == "pending" and now >= op.deadline:
                        self._op_attempt_failed(op)
                    if op.state == "backoff" and now >= op.next_retry_at:
                        op.state = "pending"
                        yield from self._start_attempt(op)
            finally:
                self._in_deadline_scan = False
        self.counters.add("photon.progress_passes")

    def _scan_peer(self, peer: PeerState):
        env = self.env
        nic = self.cluster.params.nic
        mem = self.memory
        buf = mem.data
        # completion ring
        ring = peer.local["cmp"]
        while ring.ready():
            entry = CompletionEntry.unpack_from(buf, ring.head_addr())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            if self._rx_dup(peer, entry.op):
                continue  # replayed entry; already delivered
            self.remote_cids.append((entry.cid, entry.src))
            self.counters.add("photon.remote_cids")
        # eager ring (header seq + trailer seq must both match)
        ring = peer.local["eager"]
        while ring.ready():
            head = ring.head_addr()
            header = EagerHeader.unpack_from(buf, head)
            trailer = mem.read_u64(head + EAGER_HEADER_SIZE + header.size)
            if trailer != header.seq:
                break  # payload still landing
            # owned copy: the slot is recycled once credit returns, but the
            # message sits in self.messages until the app drains it
            payload = mem.read_bytes(head + EAGER_HEADER_SIZE, header.size)
            ring.advance()
            yield env.timeout(mem.memcpy_cost_ns(header.size)
                              + nic.cqe_poll_ns)
            if self._rx_dup(peer, header.op):
                continue  # replayed message; already delivered
            self.messages.append((header.src, header.cid, payload))
            self.counters.add("photon.eager_msgs")
        # info ring
        ring = peer.local["info"]
        while ring.ready():
            info = InfoEntry.unpack_from(buf, ring.head_addr())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            self.infos.append(info)
            self.counters.add("photon.info_entries")
        # fin ring
        ring = peer.local["fin"]
        while ring.ready():
            fin = FinEntry.unpack_from(buf, ring.head_addr())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            self.requests.complete(fin.req, env.now)
            self.counters.add("photon.fins")
        # credit returns
        for name in RING_NAMES:
            if peer.local[name].credit_due():
                yield from self._send_credit(peer, name)

    def stats(self) -> Dict[str, object]:
        """Endpoint telemetry snapshot (photon_get_dev_stats analogue).

        Every key and value is JSON-serializable — ``json.dumps(stats())``
        must always succeed (ledger credits are nested string-keyed dicts,
        not tuple-keyed).
        """
        return {
            "rank": self.rank,
            "pending_requests": self.requests.pending,
            "requests_created": self.requests.total_created,
            "queued_local_cids": len(self.local_cids),
            "queued_remote_cids": len(self.remote_cids),
            "queued_messages": len(self.messages),
            "queued_infos": len(self.infos),
            "outstanding_by_peer": {
                str(r): p.outstanding for r, p in self.peers.items()},
            "rcache": self.rcache.occupancy(),
            "ledger_credits": {
                str(peer.rank): {name: ring.available()
                                 for name, ring in peer.remote.items()}
                for peer in self.peers.values()},
        }

    def telemetry(self) -> Dict[str, object]:
        """Fault-domain telemetry: retry/recovery counters + in-flight ops.

        Counters are read from this rank's scope, so every value is
        genuinely per-rank (cluster-wide totals live in
        ``cluster.counters`` / ``cluster.metrics.aggregate``).
        ``reliable_ops_inflight`` is rank-local state, not a counter.
        """
        c = self.counters
        return {
            "nic.ack_timeouts": c.get("nic.ack_timeouts"),
            "nic.retransmits": c.get("nic.retransmits"),
            "nic.retry_exhausted": c.get("nic.retry_exhausted"),
            "qp.flushes": c.get("qp.flushes"),
            "qp.reconnects": c.get("qp.reconnects"),
            "photon.op_retries": c.get("photon.op_retries"),
            "photon.op_failures": c.get("photon.op_failures"),
            "photon.dup_drops": c.get("photon.dup_drops"),
            "photon.entry_resends": c.get("photon.entry_resends"),
            "photon.wr_errors": c.get("photon.wr_errors"),
            "photon.qp_reconnects": c.get("photon.qp_reconnects"),
            "transport.peer_down": c.get("transport.peer_down"),
            "reliable_ops_inflight": len(self._reliable),
        }

    def _wait_until(self, predicate: Callable[[], bool],
                    timeout_ns: Optional[int] = None):
        """Poll progress until ``predicate()`` holds (generator).

        Returns :class:`TimeoutStatus` — ``OK`` (truthy) on success,
        ``TIMED_OUT`` (falsy) if the optional timeout expired.  Idle
        backoff is adaptive: the first ``wait_backoff_ramp`` empty polls
        sleep ``wait_backoff_ns``, after which the sleep doubles per pass
        up to ``wait_backoff_max_ns`` so long waits don't spin the event
        loop while short waits stay responsive.
        """
        deadline = None if timeout_ns is None else self.env.now + timeout_ns
        backoff = self.config.wait_backoff_ns
        empty = 0
        while not predicate():
            if deadline is not None and self.env.now >= deadline:
                return TimeoutStatus.TIMED_OUT
            yield from self._progress_once()
            if not predicate():
                empty += 1
                if empty > self.config.wait_backoff_ramp:
                    backoff = min(backoff * 2, self.config.wait_backoff_max_ns)
                sleep = backoff
                if deadline is not None:
                    sleep = min(sleep, max(1, deadline - self.env.now))
                yield self.env.timeout(sleep)
        return TimeoutStatus.OK
