"""Photon endpoint state, bootstrap and the progress engine.

One :class:`PhotonBase` instance exists per rank.  Bootstrap (performed by
:func:`repro.photon.api.photon_init`) wires the full mesh: a reliable
queue pair per peer, the four ledger rings per direction, staging mirrors
and credit words — all in one registered region per rank, with bases/rkeys
exchanged out of band exactly like the real system's PMI exchange.

The progress engine is *polling*: it only runs inside API calls (probe/
wait), as in the real library, and it charges host time for every pass,
every reaped CQE and every eager payload copy-out.  One-sided data
movement happens entirely in the (simulated) NIC — a rank that never calls
into Photon still receives puts into its exposed buffers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..cluster import Cluster, RankNode
from ..sim.core import Environment, SimulationError
from ..verbs.cq import CompletionQueue
from ..verbs.device import ProtectionDomain
from ..verbs.enums import Access, Opcode, WCOpcode
from ..verbs.qp import QueuePair, RecvWR, SendWR
from .config import PhotonConfig
from .ledger import LocalRing, RemoteRing, RingSpec
from .rcache import RegistrationCache
from .request import RequestTable
from .wire import (
    COMPLETION_ENTRY_SIZE,
    CompletionEntry,
    EAGER_HEADER_SIZE,
    EagerHeader,
    FIN_ENTRY_SIZE,
    FinEntry,
    INFO_ENTRY_SIZE,
    InfoEntry,
)

__all__ = ["PhotonBase", "PeerState", "Completion", "RING_NAMES"]

RING_NAMES = ("cmp", "eager", "info", "fin")

#: photon_probe_completion result
@dataclass(frozen=True)
class Completion:
    """A local or remote PWC completion event."""

    kind: str  # "local" | "remote"
    cid: int
    src: int


@dataclass
class PeerState:
    """Everything rank-local about one peer."""

    rank: int
    qp: QueuePair
    remote: Dict[str, RemoteRing] = field(default_factory=dict)
    local: Dict[str, LocalRing] = field(default_factory=dict)
    #: local staging for the 8-byte credit words we send to this peer
    credit_staging: Dict[str, int] = field(default_factory=dict)
    outstanding: int = 0
    preposted: int = 0


class PhotonBase:
    """Per-rank endpoint core (mixins add the public operations)."""

    def __init__(self, node: RankNode, cluster: Cluster, config: PhotonConfig):
        config.validate()
        self.node = node
        self.cluster = cluster
        self.config = config
        self.rank = node.rank
        self.env: Environment = cluster.env
        self.context = node.context
        self.memory = node.memory
        self.counters = cluster.counters
        self.pd: ProtectionDomain = self.context.alloc_pd()
        qp_total = cluster.n * (2 * config.max_outstanding + 64)
        self.send_cq: CompletionQueue = self.context.create_cq(
            capacity=max(4096, qp_total))
        self.recv_cq: CompletionQueue = self.context.create_cq(
            capacity=max(4096, cluster.n * config.imm_prepost * 2))
        self.rcache = RegistrationCache(
            self.context, self.pd, capacity=config.rcache_capacity,
            enabled=config.rcache_enabled)
        self.requests = RequestTable(self.rank)
        self.peers: Dict[int, PeerState] = {}
        # engine queues
        self._op_seq = 0
        self._ops: Dict[int, Tuple[str, Optional[Callable]]] = {}
        self.local_cids: Deque[int] = deque()
        self.remote_cids: Deque[Tuple[int, int]] = deque()  # (cid, src)
        self.messages: Deque[Tuple[int, int, bytes]] = deque()  # (src, cid, data)
        self.infos: List[InfoEntry] = []
        #: rank-local rendezvous sends awaiting a local recv (tag, data, rid)
        self._self_rendezvous: List[Tuple[int, bytes, int]] = []
        #: old values from completed atomics, keyed by local cid
        self._atomic_results: Dict[int, int] = {}
        #: collective epoch counter (SPMD calls advance it identically)
        self._coll_epoch = 0
        # ledger region bookkeeping (filled by _alloc_ledgers)
        self._ledger_mr = None
        self._layout: Dict[Tuple[int, str, str], int] = {}
        self._specs = self._ring_specs()

    # ------------------------------------------------------------- geometry
    def _ring_specs(self) -> Dict[str, RingSpec]:
        c = self.config
        eager_entry = EAGER_HEADER_SIZE + c.eager_limit + 8  # + seq trailer
        return {
            "cmp": RingSpec("cmp", c.completion_entries, COMPLETION_ENTRY_SIZE),
            "eager": RingSpec("eager", c.eager_slots, eager_entry),
            "info": RingSpec("info", c.info_entries, INFO_ENTRY_SIZE),
            "fin": RingSpec("fin", c.fin_entries, FIN_ENTRY_SIZE),
        }

    def _alloc_ledgers(self) -> None:
        """Allocate + register consumer rings, staging mirrors, credit words."""
        mem = self.memory
        per_peer = sum(s.nbytes for s in self._specs.values())
        total_ranks = [r for r in range(self.cluster.n) if r != self.rank]
        # consumer rings + credit staging; producer staging + credit words
        region_size = len(total_ranks) * (2 * per_peer
                                          + 2 * 8 * len(RING_NAMES))
        if not total_ranks:
            return  # single rank: no ledgers needed
        base = mem.alloc(region_size, align=64)
        cursor = base
        for peer in total_ranks:
            for name in RING_NAMES:
                self._layout[(peer, name, "cons")] = cursor
                cursor += self._specs[name].nbytes
            for name in RING_NAMES:
                self._layout[(peer, name, "stage")] = cursor
                cursor += self._specs[name].nbytes
            for name in RING_NAMES:
                self._layout[(peer, name, "credit")] = cursor  # written by peer
                cursor += 8
            for name in RING_NAMES:
                self._layout[(peer, name, "credit_stage")] = cursor
                cursor += 8
        self._ledger_mr = self.context.reg_mr_sync(
            self.pd, base, cursor - base, Access.ALL)

    def _wire_peer(self, other: "PhotonBase", qp: QueuePair) -> None:
        """Create the peer state for ``other`` (both endpoints bootstrapped)."""
        peer = PeerState(rank=other.rank, qp=qp)
        for name in RING_NAMES:
            spec = self._specs[name]
            # producer view: we write other's consumer ring for us
            peer.remote[name] = RemoteRing(
                spec,
                remote_base=other._layout[(self.rank, name, "cons")],
                rkey=other._ledger_mr.rkey,
                staging_base=self._layout[(other.rank, name, "stage")],
                credit_addr=self._layout[(other.rank, name, "credit")],
                memory=self.memory)
            # consumer view: our ring written by other; credits go back to
            # other's credit word for us
            peer.local[name] = LocalRing(
                spec,
                base=self._layout[(other.rank, name, "cons")],
                memory=self.memory,
                producer_credit_addr=other._layout[(self.rank, name, "credit")],
                producer_rkey=other._ledger_mr.rkey,
                credit_fraction=self.config.credit_fraction)
            peer.credit_staging[name] = self._layout[
                (other.rank, name, "credit_stage")]
        self.peers[other.rank] = peer
        if self.config.use_imm:
            for _ in range(self.config.imm_prepost):
                qp.post_recv(RecvWR())
                peer.preposted += 1

    # ------------------------------------------------------------- posting
    def _next_op(self, kind: str, callback: Optional[Callable]) -> int:
        self._op_seq += 1
        self._ops[self._op_seq] = (kind, callback)
        return self._op_seq

    def _peer(self, rank: int) -> PeerState:
        peer = self.peers.get(rank)
        if peer is None:
            raise SimulationError(
                f"rank {self.rank}: no photon peer {rank} (self-sends are "
                "handled above this layer)")
        return peer

    def _post(self, peer: PeerState, wr: SendWR,
              on_ack: Optional[Callable] = None):
        """Charge post overhead, track outstanding, post (generator)."""
        while peer.outstanding >= self.config.max_outstanding:
            yield from self._progress_once()
            yield self.env.timeout(self.config.wait_backoff_ns)
        wr.wr_id = self._next_op("ack", on_ack)
        wr.signaled = True
        peer.outstanding += 1
        yield from peer.qp.post_send_timed(wr)
        self.counters.add("photon.posts")

    def _post_ring_entry(self, peer: PeerState, ring_name: str,
                         entry: bytes, on_ack: Optional[Callable] = None,
                         extent: Optional[int] = None):
        """Claim a slot in the peer's ring and RDMA-write ``entry`` into it.

        ``extent``: bytes of the slot actually written (defaults to the
        entry length) — eager entries only write header+payload+trailer,
        not the full slot.  Returns the claimed sequence number (generator).
        """
        ring = peer.remote[ring_name]
        while ring.available() <= 0:
            self.counters.add(f"photon.{ring_name}_stalls")
            yield from self._progress_once()
            yield self.env.timeout(self.config.wait_backoff_ns)
        seq, stage_addr, remote_addr = ring.claim()
        nbytes = extent if extent is not None else len(entry)
        if len(entry) > ring.spec.entry_size:
            raise SimulationError(
                f"entry of {len(entry)}B exceeds {ring.spec.name} slot")
        # compose into staging (host copy cost)
        self.memory.write(stage_addr, entry)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(entry)))
        nic = self.cluster.params.nic
        use_inline = (self.config.use_inline and nbytes <= nic.max_inline)
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=stage_addr,
                    length=nbytes, remote_addr=remote_addr, rkey=ring.rkey,
                    inline=use_inline)
        yield from self._post(peer, wr, on_ack)
        return seq

    def _send_credit(self, peer: PeerState, ring_name: str):
        """Return ledger credit to the producer (tiny RDMA write)."""
        local = peer.local[ring_name]
        value = local.mark_credit_sent()
        stage = peer.credit_staging[ring_name]
        self.memory.write_u64(stage, value)
        nic = self.cluster.params.nic
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=stage, length=8,
                    remote_addr=local.producer_credit_addr,
                    rkey=local.producer_rkey,
                    inline=self.config.use_inline and 8 <= nic.max_inline)
        yield from self._post(peer, wr, None)
        self.counters.add("photon.credit_writes")

    # ------------------------------------------------------------- progress
    def _progress_once(self):
        """One polling pass: CQs then ledgers (generator, charges time)."""
        env = self.env
        nic = self.cluster.params.nic
        yield env.timeout(self.config.progress_poll_ns)
        # 1) source completions
        for wc in self.send_cq.poll(max_entries=32):
            yield env.timeout(nic.cqe_poll_ns)
            kind, callback = self._ops.pop(wc.wr_id)
            peer = self.peers.get(wc.src_rank)
            if peer is not None:
                peer.outstanding -= 1
            if callback is not None:
                callback()
        # 2) immediate-mode remote completions
        if self.config.use_imm:
            for wc in self.recv_cq.poll(max_entries=32):
                yield env.timeout(nic.cqe_poll_ns)
                if wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM:
                    self.remote_cids.append((wc.imm, wc.src_rank))
                    self.counters.add("photon.remote_cids")
                peer = self.peers.get(wc.src_rank)
                if peer is not None:
                    peer.qp.post_recv(RecvWR())
        # 3) ledger scans
        for peer in self.peers.values():
            yield from self._scan_peer(peer)
        self.counters.add("photon.progress_passes")

    def _scan_peer(self, peer: PeerState):
        env = self.env
        nic = self.cluster.params.nic
        mem = self.memory
        # completion ring
        ring = peer.local["cmp"]
        while ring.ready():
            entry = CompletionEntry.unpack(ring.read_head())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            self.remote_cids.append((entry.cid, entry.src))
            self.counters.add("photon.remote_cids")
        # eager ring (header seq + trailer seq must both match)
        ring = peer.local["eager"]
        while ring.ready():
            head = ring.head_addr()
            header = EagerHeader.unpack(mem.read(head, EAGER_HEADER_SIZE))
            trailer = mem.read_u64(head + EAGER_HEADER_SIZE + header.size)
            if trailer != header.seq:
                break  # payload still landing
            payload = mem.read(head + EAGER_HEADER_SIZE, header.size)
            ring.advance()
            yield env.timeout(mem.memcpy_cost_ns(header.size)
                              + nic.cqe_poll_ns)
            self.messages.append((header.src, header.cid, payload))
            self.counters.add("photon.eager_msgs")
        # info ring
        ring = peer.local["info"]
        while ring.ready():
            info = InfoEntry.unpack(ring.read_head())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            self.infos.append(info)
            self.counters.add("photon.info_entries")
        # fin ring
        ring = peer.local["fin"]
        while ring.ready():
            fin = FinEntry.unpack(ring.read_head())
            ring.advance()
            yield env.timeout(nic.cqe_poll_ns)
            self.requests.complete(fin.req, env.now)
            self.counters.add("photon.fins")
        # credit returns
        for name in RING_NAMES:
            if peer.local[name].credit_due():
                yield from self._send_credit(peer, name)

    def stats(self) -> Dict[str, object]:
        """Endpoint telemetry snapshot (photon_get_dev_stats analogue)."""
        return {
            "rank": self.rank,
            "pending_requests": self.requests.pending,
            "requests_created": self.requests.total_created,
            "queued_local_cids": len(self.local_cids),
            "queued_remote_cids": len(self.remote_cids),
            "queued_messages": len(self.messages),
            "queued_infos": len(self.infos),
            "outstanding_by_peer": {
                r: p.outstanding for r, p in self.peers.items()},
            "rcache": {
                "hits": self.rcache.hits,
                "misses": self.rcache.misses,
                "evictions": self.rcache.evictions,
                "hit_rate": self.rcache.hit_rate,
                "size": self.rcache.size,
            },
            "ledger_credits": {
                (peer.rank, name): ring.available()
                for peer in self.peers.values()
                for name, ring in peer.remote.items()},
        }

    def _wait_until(self, predicate: Callable[[], bool],
                    timeout_ns: Optional[int] = None):
        """Poll progress until ``predicate()`` holds (generator).

        Returns True on success, False if the optional timeout expired.
        """
        deadline = None if timeout_ns is None else self.env.now + timeout_ns
        while not predicate():
            if deadline is not None and self.env.now >= deadline:
                return False
            yield from self._progress_once()
            if not predicate():
                yield self.env.timeout(self.config.wait_backoff_ns)
        return True
