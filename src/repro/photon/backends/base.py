"""Backend definitions: fabric + config bundles per transport.

- ``verbs``  — InfiniBand FDR star: the paper's primary platform.  Full
  inline support, ledger completions.
- ``verbs-edr`` — same stack on 100 Gbit/s EDR links.
- ``ugni``   — Cray Gemini 2-D torus: FMA-like inline small messages, BTE
  bulk engine above 4 KiB (``NicParams.bulk_threshold``), smaller MTU,
  shorter per-hop latency but multi-hop routes.
- ``roce``   — RoCE 40 GbE: higher latency, small MTU, bigger headers.
- ``sw``     — kernel-sockets fallback on 10 GbE: no inline, no real
  offload (huge per-op costs), registration free (no pinning) — the shape
  of Photon's two-sided emulation backend.

Every backend runs the identical Photon protocol code; only parameters
differ, which is exactly the claim the paper's backend comparison makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...cluster import Cluster, build_cluster
from ...fabric.params import FabricParams, preset
from ..api import Photon, photon_init
from ..config import PhotonConfig

__all__ = ["Backend", "backend", "build_photon_cluster", "BACKENDS"]


@dataclass(frozen=True)
class Backend:
    """One named transport configuration."""

    name: str
    fabric: FabricParams
    config: PhotonConfig
    description: str


def _make_backends() -> Dict[str, Backend]:
    verbs = Backend(
        name="verbs",
        fabric=preset("ib-fdr"),
        config=PhotonConfig(),
        description="InfiniBand FDR star switch (paper's primary platform)")
    verbs_edr = Backend(
        name="verbs-edr",
        fabric=preset("ib-edr"),
        config=PhotonConfig(),
        description="InfiniBand EDR (100 Gbit/s) star switch")
    ugni = Backend(
        name="ugni",
        fabric=preset("gemini"),
        config=PhotonConfig(eager_limit=4096, use_inline=True,
                            use_imm=False),
        description="Cray Gemini 2-D torus, FMA/BTE split at 4 KiB")
    roce = Backend(
        name="roce",
        fabric=preset("roce"),
        config=PhotonConfig(),
        description="RoCE over 40 GbE")
    sw = Backend(
        name="sw",
        fabric=preset("eth-10g"),
        config=PhotonConfig(use_inline=False, use_imm=False,
                            eager_limit=4096,
                            progress_poll_ns=400, wait_backoff_ns=600),
        description="kernel-sockets emulation backend on 10 GbE")
    return {b.name: b for b in (verbs, verbs_edr, ugni, roce, sw)}


BACKENDS: Dict[str, Backend] = _make_backends()


def backend(name: str) -> Backend:
    """Resolve a backend by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown photon backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None


def build_photon_cluster(n: int, backend_name: str = "verbs",
                         config: Optional[PhotonConfig] = None,
                         seed: int = 0,
                         **cluster_kw) -> Tuple[Cluster, List[Photon]]:
    """Cluster + endpoints for a named backend in one call."""
    b = backend(backend_name)
    cl = build_cluster(n, params=b.fabric, seed=seed, **cluster_kw)
    ph = photon_init(cl, config or b.config)
    return cl, ph
