"""Photon transport backends.

The real library selects a backend at init (``verbs``, ``ugni``, ``fi``,
or the two-sided ``sw`` fallback).  Here a backend is a bundle of fabric
parameters plus the Photon configuration tweaks that match how that
transport behaves; :func:`backend` resolves a name to the bundle and
:func:`build_photon_cluster` assembles a ready cluster+endpoints pair.
"""

from .base import Backend, backend, build_photon_cluster, BACKENDS

__all__ = ["Backend", "backend", "build_photon_cluster", "BACKENDS"]
