"""Put/Get-With-Completion — Photon's signature interface.

``put_pwc`` writes local bytes into a pre-exposed remote buffer and carries
two completion identifiers: *local_cid* surfaces at the initiator when the
source buffer is reusable, *remote_cid* surfaces at the target (via a
completion-ledger write or, optionally, RDMA-write-with-immediate) once the
payload is visible there.  The target never posts a matching receive: it
discovers completions with ``probe_completion`` — active-message semantics
with no rendezvous and no tag matching.

``send_pwc`` is the buffer-less variant for small payloads: header+payload
land in the target's eager ring and surface through ``probe_message``.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import SimulationError
from ..verbs.enums import Opcode, WCStatus
from ..verbs.qp import SendWR
from .base import Completion
from .wire import CompletionEntry, EagerHeader

__all__ = ["PwcMixin"]

_U32 = 1 << 32


class PwcMixin:
    """Adds the PWC operations to :class:`~repro.photon.base.PhotonBase`."""

    # ------------------------------------------------------------------ put
    def put_pwc(self, dst: int, local_addr: int, size: int, remote_addr: int,
                rkey: int, local_cid: Optional[int] = None,
                remote_cid: Optional[int] = None):
        """One-sided put with completion identifiers (generator).

        The local buffer is registered through the registration cache if
        not already covered.  Returns once the first attempt is *posted*;
        completions surface via :meth:`probe_completion`.  On a lossy
        fabric the operation is tracked by the reliability layer: failed
        or expired attempts are replayed (the data write is idempotent and
        the completion entry carries the op id for target-side dedup)
        until success or ``max_op_retries`` is exhausted, at which point
        the local completion surfaces with ``WCStatus.RETRY_EXC_ERR``.
        Returns the reliable-op id (None for self-puts) for use with
        :meth:`~repro.photon.base.PhotonBase.op_status`.
        """
        if size < 0:
            raise SimulationError("negative put size")
        if dst == self.rank:
            yield from self._self_put(local_addr, size, remote_addr,
                                      local_cid, remote_cid)
            return None
        peer = self._peer(dst)
        mr = None
        if size > 0:
            mr = yield from self.rcache.acquire(local_addr, size)
        use_imm = self.config.use_imm and remote_cid is not None
        if use_imm and not 0 <= remote_cid < _U32:
            if mr is not None:
                yield from self.rcache.release(mr)
            raise SimulationError(
                f"immediate-mode remote cid {remote_cid} must fit 32 bits")
        op = self._new_reliable_op(peer, "put", local_cid)
        op.span = self.counters.span("photon.pwc_put", self.env.now,
                                     peer=dst, nbytes=size)
        if mr is not None:
            op.mrs.append(mr)

        def replay(op):
            on_ack, on_error = self._op_cbs(op, op.attempts)
            if use_imm:
                op.acks_pending = 1
                wr = SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM,
                            local_addr=local_addr, length=size,
                            remote_addr=remote_addr, rkey=rkey,
                            imm=remote_cid, inline=self._inline_ok(size))
                yield from self._post(peer, wr, on_ack, on_error)
                return
            op.acks_pending = ((1 if size > 0 else 0)
                               + (1 if remote_cid is not None else 0))
            if op.acks_pending == 0:
                # degenerate: nothing on the wire — complete locally now
                self._op_done(op)
                return
            if size > 0:
                wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=local_addr,
                            length=size, remote_addr=remote_addr, rkey=rkey,
                            inline=self._inline_ok(size))
                yield from self._post(peer, wr, on_ack, on_error)
            if remote_cid is not None:
                yield from self._post_ring_entry(
                    peer, "cmp",
                    lambda seq: CompletionEntry(
                        seq=seq, cid=remote_cid, src=self.rank,
                        op=op.op_id).pack(),
                    on_ack=on_ack, on_error=on_error)

        op.replay = replay
        yield from self._start_attempt(op)
        self.counters.add("photon.pwc_puts")
        return op.op_id

    # ------------------------------------------------------------------ get
    def get_pwc(self, dst: int, local_addr: int, size: int, remote_addr: int,
                rkey: int, local_cid: Optional[int] = None,
                remote_cid: Optional[int] = None):
        """One-sided get with completion identifiers (generator).

        ``local_cid`` surfaces when the data has landed locally;
        ``remote_cid`` (if given) is then delivered to the *target* so it
        can learn its buffer was consumed.  RDMA reads are idempotent, so
        the reliability layer replays a lost read verbatim.  Returns the
        reliable-op id (None for self-gets).
        """
        if size <= 0:
            raise SimulationError("get size must be positive")
        if dst == self.rank:
            yield from self._self_get(local_addr, size, remote_addr,
                                      local_cid, remote_cid)
            return None
        peer = self._peer(dst)
        mr = yield from self.rcache.acquire(local_addr, size)
        op = self._new_reliable_op(peer, "get", local_cid)
        op.span = self.counters.span("photon.pwc_get", self.env.now,
                                     peer=dst, nbytes=size)
        op.mrs.append(mr)
        if remote_cid is not None:
            notify = remote_cid
            op.on_done = lambda: self.env.process(
                self._notify_after_get(dst, notify), name="photon:gwc-notify")

        def replay(op):
            on_ack, on_error = self._op_cbs(op, op.attempts)
            op.acks_pending = 1
            wr = SendWR(opcode=Opcode.RDMA_READ, local_addr=local_addr,
                        length=size, remote_addr=remote_addr, rkey=rkey)
            yield from self._post(peer, wr, on_ack, on_error)

        op.replay = replay
        yield from self._start_attempt(op)
        self.counters.add("photon.pwc_gets")
        return op.op_id

    def _notify_after_get(self, dst: int, remote_cid: int):
        peer = self._peer(dst)
        op = self._new_reliable_op(peer, "notify", None)

        def replay(op):
            on_ack, on_error = self._op_cbs(op, op.attempts)
            op.acks_pending = 1
            yield from self._post_ring_entry(
                peer, "cmp",
                lambda seq: CompletionEntry(seq=seq, cid=remote_cid,
                                            src=self.rank, op=op.op_id).pack(),
                on_ack=on_ack, on_error=on_error)

        op.replay = replay
        yield from self._start_attempt(op)

    # ------------------------------------------------------------------ send
    def send_pwc(self, dst: int, data: bytes, remote_cid: int,
                 local_cid: Optional[int] = None):
        """Buffer-less eager message (generator).

        Payload must fit the eager limit; larger transfers use the
        rendezvous API (:meth:`send_rdma`).  Surfaces at the target via
        :meth:`probe_message` as ``(src, remote_cid, payload)``.  Replays
        land in a fresh eager slot and are deduped at the target by op id.
        Returns the reliable-op id (None for self-sends).
        """
        if len(data) > self.config.eager_limit:
            raise SimulationError(
                f"send_pwc payload {len(data)}B exceeds eager limit "
                f"{self.config.eager_limit}B; use send_rdma")
        if dst == self.rank:
            yield self.env.timeout(self.memory.memcpy_cost_ns(len(data)))
            self.messages.append((self.rank, remote_cid, bytes(data)))
            if local_cid is not None:
                self.local_cids.append((local_cid, WCStatus.SUCCESS))
            self.counters.add("photon.pwc_sends")
            return None
        peer = self._peer(dst)
        payload = bytes(data)
        op = self._new_reliable_op(peer, "send", local_cid)
        op.span = self.counters.span("photon.pwc_send", self.env.now,
                                     peer=dst, nbytes=len(payload))

        def replay(op):
            on_ack, on_error = self._op_cbs(op, op.attempts)
            op.acks_pending = 1

            def build(seq):
                header = EagerHeader(seq=seq, cid=remote_cid, src=self.rank,
                                     size=len(payload), op=op.op_id)
                return header.pack() + payload + seq.to_bytes(8, "little")

            yield from self._post_ring_entry(peer, "eager", build,
                                             on_ack=on_ack, on_error=on_error)

        op.replay = replay
        yield from self._start_attempt(op)
        self.counters.add("photon.pwc_sends")
        return op.op_id

    # ------------------------------------------------------------------ probes
    def probe_completion(self, which: str = "any"):
        """One progress pass, then pop a completion if present (generator).

        ``which`` filters: "any", "local", or "remote".  Returns a
        :class:`~repro.photon.base.Completion` or None.
        """
        yield from self._progress_once()
        return self._pop_completion(which)

    def _peek_completion(self, which: str) -> bool:
        if which in ("any", "remote") and self.remote_cids:
            return True
        if which in ("any", "local") and self.local_cids:
            return True
        return False

    def _pop_completion(self, which: str) -> Optional[Completion]:
        if which in ("any", "remote") and self.remote_cids:
            cid, src = self.remote_cids.popleft()
            return Completion("remote", cid, src)
        if which in ("any", "local") and self.local_cids:
            cid, status = self.local_cids.popleft()
            return Completion("local", cid, self.rank, status)
        return None

    def wait_completion(self, which: str = "any",
                        timeout_ns: Optional[int] = None):
        """Block (polling) until a completion arrives (generator).

        Returns the completion, or None if ``timeout_ns`` expired.
        """
        ok = yield from self._wait_until(
            lambda: self._peek_completion(which), timeout_ns)
        return self._pop_completion(which) if ok else None

    def probe_message(self, match=None):
        """One progress pass, then pop an eager message (generator).

        ``match``: optional predicate over ``(src, cid)``.  Returns
        ``(src, cid, payload)`` or None.
        """
        yield from self._progress_once()
        return self._pop_message(match)

    def _find_message(self, match=None) -> Optional[int]:
        if not self.messages:
            return None
        for i, (src, cid, _data) in enumerate(self.messages):
            if match is None or match(src, cid):
                return i
        return None

    def _pop_message(self, match=None):
        i = self._find_message(match)
        if i is None:
            return None
        src, cid, data = self.messages[i]
        del self.messages[i]
        return (src, cid, data)

    def wait_message(self, match=None, timeout_ns: Optional[int] = None):
        """Block (polling) until a matching eager message arrives (generator)."""
        ok = yield from self._wait_until(
            lambda: self._find_message(match) is not None, timeout_ns)
        return self._pop_message(match) if ok else None

    # ------------------------------------------------------------------ self ops
    def _self_put(self, local_addr, size, remote_addr, local_cid, remote_cid):
        # owned snapshot: the source may be overwritten during the copy delay
        data = self.memory.read_bytes(local_addr, size) if size else b""
        yield self.env.timeout(self.memory.memcpy_cost_ns(size))
        if size:
            self.memory.write(remote_addr, data)
        if local_cid is not None:
            self.local_cids.append((local_cid, WCStatus.SUCCESS))
        if remote_cid is not None:
            self.remote_cids.append((remote_cid, self.rank))

    def _self_get(self, local_addr, size, remote_addr, local_cid, remote_cid):
        data = self.memory.read_bytes(remote_addr, size)
        yield self.env.timeout(self.memory.memcpy_cost_ns(size))
        self.memory.write(local_addr, data)
        if local_cid is not None:
            self.local_cids.append((local_cid, WCStatus.SUCCESS))
        if remote_cid is not None:
            self.remote_cids.append((remote_cid, self.rank))

    # ------------------------------------------------------------------ helpers
    def _inline_ok(self, size: int) -> bool:
        return (self.config.use_inline
                and size <= self.cluster.params.nic.max_inline)
