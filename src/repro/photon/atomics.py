"""Remote atomic operations with completion ids (extension API).

Later Photon revisions exposed the NIC's atomic units to runtimes for
global counters, locks and termination detection.  The operations target
an 8-byte word in a peer's registered buffer and complete like PWC ops:
``local_cid`` surfaces with the *old value* attached once the response
lands.

- ``atomic_fadd``  — fetch-and-add
- ``atomic_cswap`` — compare-and-swap

The result value is retrievable via :meth:`PhotonBase.atomic_result`
keyed by the local cid (the real API returns it through the request
ledger; a keyed lookup is the Python-shaped equivalent).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import SimulationError
from ..verbs.enums import Opcode, WCStatus
from ..verbs.qp import SendWR

__all__ = ["AtomicsMixin"]

_U64 = (1 << 64) - 1


class AtomicsMixin:
    """Adds remote atomics to the Photon endpoint."""

    def _atomic_scratch(self) -> int:
        """Lazy per-endpoint scratch ring for atomic response landing."""
        ring = getattr(self, "_atomic_ring", None)
        if ring is None:
            base = self.memory.alloc(8 * 64, align=8)
            from ..verbs.enums import Access
            self.context.reg_mr_sync(self.pd, base, 8 * 64, Access.ALL)
            self._atomic_ring = (base, 0)
            ring = self._atomic_ring
        base, cursor = ring
        addr = base + (cursor % 64) * 8
        self._atomic_ring = (base, cursor + 1)
        return addr

    def _atomic(self, opcode: Opcode, dst: int, remote_addr: int, rkey: int,
                compare_add: int, swap: int, local_cid: Optional[int]):
        if dst == self.rank:
            yield from self._self_atomic(opcode, remote_addr, compare_add,
                                         swap, local_cid)
            return
        peer = self._peer(dst)
        landing = self._atomic_scratch()
        cid = local_cid

        def on_done():
            old = self.memory.read_u64(landing)
            if cid is not None:
                self._atomic_results[cid] = old
                self.local_cids.append((cid, WCStatus.SUCCESS))
                self.counters.add("photon.local_cids")

        def on_error():
            # fetch-add is not idempotent, so the reliability layer never
            # replays atomics: a lost atomic surfaces as an error cid
            if cid is not None:
                self.local_cids.append((cid, WCStatus.RETRY_EXC_ERR))
                self.counters.add("photon.local_cids")
            self.counters.add("photon.atomic_failures")

        wr = SendWR(opcode=opcode, local_addr=landing,
                    remote_addr=remote_addr, rkey=rkey,
                    compare_add=compare_add, swap=swap)
        yield from self._post(peer, wr, on_done, on_error)
        self.counters.add("photon.atomics")

    def atomic_fadd(self, dst: int, remote_addr: int, rkey: int,
                    operand: int, local_cid: Optional[int] = None):
        """Remote fetch-and-add on an 8-byte word (generator).

        The old value surfaces via :meth:`atomic_result` when
        ``local_cid`` pops out of the completion stream.
        """
        yield from self._atomic(Opcode.ATOMIC_FETCH_ADD, dst, remote_addr,
                                rkey, operand, 0, local_cid)

    def atomic_cswap(self, dst: int, remote_addr: int, rkey: int,
                     compare: int, swap: int,
                     local_cid: Optional[int] = None):
        """Remote compare-and-swap on an 8-byte word (generator)."""
        yield from self._atomic(Opcode.ATOMIC_CMP_SWAP, dst, remote_addr,
                                rkey, compare, swap, local_cid)

    def atomic_result(self, local_cid: int) -> int:
        """Old value of a completed atomic, keyed by its local cid."""
        try:
            return self._atomic_results.pop(local_cid)
        except KeyError:
            raise SimulationError(
                f"no atomic result recorded for cid {local_cid} (did its "
                "completion surface yet?)") from None

    def fetch_add_blocking(self, dst: int, remote_addr: int, rkey: int,
                           operand: int):
        """Convenience: fadd + wait; returns the old value (generator)."""
        cid = self._next_atomic_cid()
        yield from self.atomic_fadd(dst, remote_addr, rkey, operand,
                                    local_cid=cid)
        ok = yield from self._wait_until(
            lambda: any(c == cid for c, _ in self.local_cids),
            timeout_ns=10 ** 12)
        if not ok:
            raise SimulationError("blocking fetch-add lost its completion")
        entry = next(e for e in self.local_cids if e[0] == cid)
        self.local_cids.remove(entry)
        if entry[1] is not WCStatus.SUCCESS:
            raise SimulationError(
                f"blocking fetch-add failed with {entry[1].value}")
        return self.atomic_result(cid)

    def _next_atomic_cid(self) -> int:
        seq = getattr(self, "_atomic_cid_seq", 0) + 1
        self._atomic_cid_seq = seq
        return (1 << 61) | seq

    def _self_atomic(self, opcode, addr, compare_add, swap, local_cid):
        yield self.env.timeout(self.cluster.params.nic.atomic_ns)
        old = self.memory.read_u64(addr)
        if opcode is Opcode.ATOMIC_FETCH_ADD:
            self.memory.write_u64(addr, (old + compare_add) & _U64)
        else:
            if old == compare_add:
                self.memory.write_u64(addr, swap)
        if local_cid is not None:
            self._atomic_results[local_cid] = old
            self.local_cids.append((local_cid, WCStatus.SUCCESS))
