"""Ledger rings: Photon's remotely written circular buffers.

A *ledger* is a fixed-size ring of fixed-size entries in the consumer's
registered memory, RDMA-written by exactly one remote producer.  Photon
uses four per peer-pair: completion notifications (PWC), eager message
slots, rendezvous info entries and FIN entries.

Flow control is credit-based, as in the real system's ledger acks:

- the producer tracks ``produced`` and reads a local *credit word* that the
  consumer RDMA-writes back; ``available = nslots - (produced - credit)``.
- the consumer advances ``consumed`` as it drains entries and returns a
  credit update after a configurable fraction of the ring has been drained
  (one tiny write amortised over many entries).

Entry validity is sequence-based: the producer stamps each entry with
``seq = produced + 1``; the slot at the consumer's read index is ready
exactly when its sequence word equals ``consumed + 1``.  Multi-chunk eager
entries additionally carry a trailing sequence copy after the payload so a
partially placed entry is never consumed (see :mod:`repro.photon.wire`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from ..fabric.memory import Memory
from ..sim.core import SimulationError

#: must match :mod:`repro.fabric.memory`'s sequence-word layout
_U64 = struct.Struct("<Q")

__all__ = ["RingSpec", "RemoteRing", "LocalRing"]


@dataclass(frozen=True)
class RingSpec:
    """Geometry of one ring."""

    name: str
    nslots: int
    entry_size: int

    @property
    def nbytes(self) -> int:
        return self.nslots * self.entry_size

    def slot_offset(self, index: int) -> int:
        return (index % self.nslots) * self.entry_size


class RemoteRing:
    """Producer-side view of a ring living in a peer's memory.

    The producer also owns a same-sized *staging* area in its own memory:
    entry bytes are composed into the staging slot for the claimed index
    and the RDMA write fetches from there, so in-flight entries are never
    overwritten (a remote slot cannot be reused before the peer returns
    credit for it, by which time the fetch has long completed).
    """

    def __init__(self, spec: RingSpec, remote_base: int, rkey: int,
                 staging_base: int, credit_addr: int, memory: Memory):
        self.spec = spec
        self.remote_base = remote_base
        self.rkey = rkey
        self.staging_base = staging_base
        self.credit_addr = credit_addr
        self.memory = memory
        self.produced = 0

    @property
    def credit(self) -> int:
        """Entries the consumer has acknowledged draining."""
        return self.memory.read_u64(self.credit_addr)

    def available(self) -> int:
        in_flight = self.produced - self.credit
        if in_flight < 0:
            raise SimulationError(
                f"ring {self.spec.name}: credit {self.credit} ahead of "
                f"produced {self.produced}")
        return self.spec.nslots - in_flight

    def claim(self) -> Tuple[int, int, int]:
        """Take the next slot; returns (seq, staging_addr, remote_addr).

        Caller must have checked :meth:`available`.
        """
        if self.available() <= 0:
            raise SimulationError(f"ring {self.spec.name} is full")
        off = self.spec.slot_offset(self.produced)
        self.produced += 1
        return (self.produced, self.staging_base + off, self.remote_base + off)

    def reset(self) -> None:
        """Re-arm after a crash on either side: sequence space restarts.

        The consumer zeroes its ring memory and credit word in the same
        re-arm step, so the fresh producer's ``seq = 1`` entry is again
        the first valid one.
        """
        self.produced = 0


class LocalRing:
    """Consumer-side view of a ring in this rank's memory.

    :meth:`ready` is the single hottest call in a Photon run — every
    progress pass polls it for all four rings of every peer, and almost
    every poll misses.  The head-slot address is therefore maintained
    incrementally (slot addresses precomputed once; no modulo per poll)
    and the sequence word is read straight off the rank memoryview,
    skipping the :class:`~repro.fabric.memory.Memory` bounds check —
    every address in ``_addrs`` was validated by construction.
    """

    def __init__(self, spec: RingSpec, base: int, memory: Memory,
                 producer_credit_addr: int, producer_rkey: int,
                 credit_fraction: float):
        self.spec = spec
        self.base = base
        self.memory = memory
        #: where (in the producer's memory) credit updates are written
        self.producer_credit_addr = producer_credit_addr
        self.producer_rkey = producer_rkey
        self.consumed = 0
        self.credit_sent = 0
        self._credit_every = max(1, int(spec.nslots * credit_fraction))
        # fast-poll state: Memory.data is created once and never replaced
        # (crash wipes the mmap in place), so the view stays valid
        memory._check(base, spec.nbytes)
        # writes landing in the ring bump memory.watch_version, letting
        # the progress loop skip whole scan passes (see PhotonBase)
        memory.watch(base, spec.nbytes)
        self._addrs = tuple(base + spec.slot_offset(i)
                            for i in range(spec.nslots))
        self._head_idx = 0
        self._data = memory.data
        self._unpack = _U64.unpack_from

    def head_addr(self) -> int:
        return self._addrs[self._head_idx]

    def ready(self) -> bool:
        """Is the entry at the read index complete?"""
        return (self._unpack(self._data, self._addrs[self._head_idx])[0]
                == self.consumed + 1)

    def read_head(self) -> bytes:
        """Raw bytes of the head slot (caller checked :meth:`ready`)."""
        return self.memory.read(self._addrs[self._head_idx],
                                self.spec.entry_size)

    def advance(self) -> None:
        self.consumed += 1
        i = self._head_idx + 1
        self._head_idx = 0 if i == len(self._addrs) else i

    def credit_due(self) -> bool:
        return self.consumed - self.credit_sent >= self._credit_every

    def mark_credit_sent(self) -> int:
        """Record that a credit update for ``consumed`` is on the wire."""
        self.credit_sent = self.consumed
        return self.consumed

    def reset(self) -> None:
        """Re-arm after a crash on either side (see ``RemoteRing.reset``)."""
        self.consumed = 0
        self.credit_sent = 0
        self._head_idx = 0
