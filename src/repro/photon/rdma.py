"""Request-tracked one-sided operations (photon_post_os_put / os_get).

These are the plain RMA verbs of the API: no completion identifiers, just
a request id observed with ``wait``/``test``.  Used directly by runtimes
for global-address-space reads/writes, and internally by the rendezvous
messaging protocol.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import SimulationError
from ..verbs.enums import Opcode
from ..verbs.qp import SendWR
from .request import PhotonRequest, RequestKind

__all__ = ["RdmaMixin"]


class RdmaMixin:
    """Adds os_put/os_get/wait/test to the Photon endpoint."""

    def post_os_put(self, dst: int, local_addr: int, size: int,
                    remote_addr: int, rkey: int):
        """Post a one-sided put; returns the request id (generator)."""
        req = self.requests.create(RequestKind.OS_PUT, dst, size, 0,
                                   self.env.now)
        if dst == self.rank:
            yield from self._self_put(local_addr, size, remote_addr,
                                      None, None)
            self.requests.complete(req.rid, self.env.now)
            return req.rid
        peer = self._peer(dst)
        mr = None
        if size > 0:
            mr = yield from self.rcache.acquire(local_addr, size)
        rid = req.rid

        def on_ack():
            if mr is not None:
                self.rcache.release_async(mr)
            self.requests.complete(rid, self.env.now)

        def on_error():
            if mr is not None:
                self.rcache.release_async(mr)
            self.counters.add("photon.request_failures")
            self.requests.fail(rid, self.env.now)

        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=local_addr,
                    length=size, remote_addr=remote_addr, rkey=rkey,
                    inline=self._inline_ok(size))
        yield from self._post(peer, wr, on_ack, on_error)
        self.counters.add("photon.os_puts")
        return req.rid

    def post_os_get(self, dst: int, local_addr: int, size: int,
                    remote_addr: int, rkey: int):
        """Post a one-sided get; returns the request id (generator)."""
        if size <= 0:
            raise SimulationError("get size must be positive")
        req = self.requests.create(RequestKind.OS_GET, dst, size, 0,
                                   self.env.now)
        if dst == self.rank:
            yield from self._self_get(local_addr, size, remote_addr,
                                      None, None)
            self.requests.complete(req.rid, self.env.now)
            return req.rid
        peer = self._peer(dst)
        mr = yield from self.rcache.acquire(local_addr, size)
        rid = req.rid

        def on_ack():
            self.rcache.release_async(mr)
            self.requests.complete(rid, self.env.now)

        def on_error():
            self.rcache.release_async(mr)
            self.counters.add("photon.request_failures")
            self.requests.fail(rid, self.env.now)

        wr = SendWR(opcode=Opcode.RDMA_READ, local_addr=local_addr,
                    length=size, remote_addr=remote_addr, rkey=rkey)
        yield from self._post(peer, wr, on_ack, on_error)
        self.counters.add("photon.os_gets")
        return req.rid

    # ------------------------------------------------------------------ waits
    def test(self, rid: int) -> bool:
        """Non-blocking settlement check (no progress, zero time).

        True once the request is terminal — completed *or* failed; check
        :meth:`request_info` ``.failed`` to distinguish.
        """
        return self.requests.get(rid).settled

    def wait(self, rid: int, timeout_ns: Optional[int] = None):
        """Poll progress until the request settles (generator).

        Returns a truthy :class:`~repro.photon.base.TimeoutStatus` once
        the request is terminal (completed or failed — a request whose
        fabric retries were exhausted settles as failed instead of
        hanging the wait), falsy on timeout.  The request stays live
        until :meth:`free_request`.
        """
        ok = yield from self._wait_until(
            lambda: self.requests.get(rid).settled, timeout_ns)
        return ok

    def wait_all(self, rids, timeout_ns: Optional[int] = None):
        """Wait for a set of requests to settle (generator)."""
        ok = yield from self._wait_until(
            lambda: all(self.requests.get(r).settled for r in rids),
            timeout_ns)
        return ok

    def wait_any(self, rids, timeout_ns: Optional[int] = None):
        """Wait for at least one of a set of requests (generator).

        Returns the first settled request id (earliest in ``rids``), or
        None on timeout.
        """
        rids = list(rids)
        if not rids:
            raise SimulationError("wait_any of an empty request set")
        ok = yield from self._wait_until(
            lambda: any(self.requests.get(r).settled for r in rids),
            timeout_ns)
        if not ok:
            return None
        for r in rids:
            if self.requests.get(r).settled:
                return r
        raise SimulationError("wait_any postcondition violated")

    def free_request(self, rid: int) -> None:
        self.requests.free(rid)

    def request_info(self, rid: int) -> PhotonRequest:
        return self.requests.get(rid)
