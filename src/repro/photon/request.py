"""Request tracking for Photon's request-based (non-PWC) operations.

``photon_post_os_put``-style calls return a request id; ``photon_wait``
and ``photon_test`` observe it.  The table also backs the rendezvous
send path, whose requests complete when the peer's FIN entry arrives.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict

from ..sim.core import SimulationError

__all__ = ["RequestKind", "RequestState", "PhotonRequest", "RequestTable"]


class RequestKind(enum.Enum):
    OS_PUT = "os_put"
    OS_GET = "os_get"
    SEND_RDMA = "send_rdma"
    RECV_RDMA = "recv_rdma"


class RequestState(enum.Enum):
    PENDING = "pending"
    COMPLETED = "completed"
    #: the underlying fabric gave up (transport retries exhausted)
    FAILED = "failed"
    FREED = "freed"


class PhotonRequest:
    """One in-flight operation."""

    __slots__ = ("rid", "kind", "peer", "size", "tag", "state", "t_posted",
                 "t_completed", "on_settle", "span")

    def __init__(self, rid: int, kind: RequestKind, peer: int, size: int,
                 tag: int, t_posted: int):
        self.rid = rid
        self.kind = kind
        self.peer = peer
        self.size = size
        self.tag = tag
        self.state = RequestState.PENDING
        self.t_posted = t_posted
        self.t_completed = -1
        #: fired exactly once when the request turns terminal (completed
        #: or failed) — resource cleanup hook (rcache release)
        self.on_settle = None
        #: open op-latency span (None when span recording is disabled)
        self.span = None

    @property
    def completed(self) -> bool:
        return self.state is RequestState.COMPLETED

    @property
    def failed(self) -> bool:
        return self.state is RequestState.FAILED

    @property
    def settled(self) -> bool:
        """Terminal either way — what blocking waits should poll for."""
        return self.state in (RequestState.COMPLETED, RequestState.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PhotonRequest {self.rid} {self.kind.value} peer={self.peer} "
                f"{self.state.value}>")


class RequestTable:
    """Id → request map for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self._seq = itertools.count(1)
        self._live: Dict[int, PhotonRequest] = {}
        self.total_created = 0

    def create(self, kind: RequestKind, peer: int, size: int, tag: int,
               now: int) -> PhotonRequest:
        rid = next(self._seq)
        req = PhotonRequest(rid, kind, peer, size, tag, now)
        self._live[rid] = req
        self.total_created += 1
        return req

    def get(self, rid: int) -> PhotonRequest:
        req = self._live.get(rid)
        if req is None:
            raise SimulationError(
                f"rank {self.rank}: unknown or freed request id {rid}")
        return req

    @staticmethod
    def _settle(req: PhotonRequest) -> None:
        hook, req.on_settle = req.on_settle, None
        if hook is not None:
            hook()

    def complete(self, rid: int, now: int) -> PhotonRequest:
        req = self.get(rid)
        if req.state is RequestState.FAILED:
            return req  # late FIN/ack for a request the fabric gave up on
        if req.state is not RequestState.PENDING:
            raise SimulationError(f"request {rid} completed twice")
        req.state = RequestState.COMPLETED
        req.t_completed = now
        if req.span is not None:
            req.span.end(now)
        self._settle(req)
        return req

    def fail(self, rid: int, now: int) -> PhotonRequest:
        """Mark a request terminally failed (idempotent, loses to complete)."""
        req = self._live.get(rid)
        if req is None:
            # already freed — nothing to record
            return None
        if req.state is RequestState.PENDING:
            req.state = RequestState.FAILED
            req.t_completed = now
            if req.span is not None:
                req.span.end(now, status="failed")
            self._settle(req)
        return req

    def free(self, rid: int) -> None:
        req = self._live.pop(rid, None)
        if req is None:
            raise SimulationError(
                f"rank {self.rank}: freeing unknown request {rid}")
        req.state = RequestState.FREED
        # freeing an unsettled request abandons it: run the cleanup hook
        # so pinned registrations aren't leaked
        self._settle(req)

    @property
    def pending(self) -> int:
        return sum(1 for r in self._live.values()
                   if r.state is RequestState.PENDING)
