"""On-the-wire layouts for Photon's ledger entries.

Every ledger entry begins with a monotonically increasing 64-bit sequence
number.  A consumer knows how many entries it has taken from a given peer's
ring; the slot at the read index is valid exactly when its sequence equals
``consumed + 1``.  Because the fabric delivers the bytes of one RDMA write
atomically with respect to our progress engine (placement happens before
the delivery event), and writes on one queue pair are ordered, the sequence
word doubles as the "entry complete" flag — the same trick the real verbs
backend plays with its ledger curclear/progress words.

All integers are little-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
__all__ = [
    "CompletionEntry", "EagerHeader", "InfoEntry", "FinEntry",
    "COMPLETION_ENTRY_SIZE", "EAGER_HEADER_SIZE", "INFO_ENTRY_SIZE",
    "FIN_ENTRY_SIZE", "CREDIT_WORD_SIZE",
]

# seq(8) cid(8) src(4) pad(4) op(8)
# ``op`` is the per-(producer, consumer) reliable-operation id used to
# dedup replayed entries at the target ledger; 0 = unsequenced.
_COMPLETION = struct.Struct("<QQi4xQ")
COMPLETION_ENTRY_SIZE = _COMPLETION.size  # 32

# seq(8) cid(8) src(4) size(4) op(8)
_EAGER_HDR = struct.Struct("<QQiiQ")
EAGER_HEADER_SIZE = _EAGER_HDR.size  # 32

# seq(8) req(8) tag(8) addr(8) size(8) rkey(8) src(4) pad(4)
_INFO = struct.Struct("<QQQQQQi4x")
INFO_ENTRY_SIZE = _INFO.size  # 56

# seq(8) req(8)
_FIN = struct.Struct("<QQ")
FIN_ENTRY_SIZE = _FIN.size  # 16

#: consumer -> producer credit-return word
CREDIT_WORD_SIZE = 8


@dataclass(frozen=True)
class CompletionEntry:
    """Remote PWC completion notification."""

    seq: int
    cid: int
    src: int
    #: reliable-operation id for replay dedup (0 = unsequenced)
    op: int = 0

    def pack(self) -> bytes:
        return _COMPLETION.pack(self.seq, self.cid, self.src, self.op)

    @staticmethod
    def unpack(raw) -> "CompletionEntry":
        seq, cid, src, op = _COMPLETION.unpack(raw)
        return CompletionEntry(seq, cid, src, op)

    @staticmethod
    def unpack_from(buf, offset: int = 0) -> "CompletionEntry":
        """Decode in place from any buffer — no intermediate slice."""
        seq, cid, src, op = _COMPLETION.unpack_from(buf, offset)
        return CompletionEntry(seq, cid, src, op)


@dataclass(frozen=True)
class EagerHeader:
    """Header preceding an eager payload in the eager ring slot."""

    seq: int
    cid: int
    src: int
    size: int
    #: reliable-operation id for replay dedup (0 = unsequenced)
    op: int = 0

    def pack(self) -> bytes:
        return _EAGER_HDR.pack(self.seq, self.cid, self.src, self.size,
                               self.op)

    @staticmethod
    def unpack(raw) -> "EagerHeader":
        seq, cid, src, size, op = _EAGER_HDR.unpack(raw)
        return EagerHeader(seq, cid, src, size, op)

    @staticmethod
    def unpack_from(buf, offset: int = 0) -> "EagerHeader":
        """Decode in place from any buffer — no intermediate slice."""
        seq, cid, src, size, op = _EAGER_HDR.unpack_from(buf, offset)
        return EagerHeader(seq, cid, src, size, op)


@dataclass(frozen=True)
class InfoEntry:
    """Rendezvous buffer advertisement (sender -> receiver info ledger)."""

    seq: int
    req: int
    tag: int
    addr: int
    size: int
    rkey: int
    src: int

    def pack(self) -> bytes:
        return _INFO.pack(self.seq, self.req, self.tag, self.addr,
                          self.size, self.rkey, self.src)

    @staticmethod
    def unpack(raw) -> "InfoEntry":
        seq, req, tag, addr, size, rkey, src = _INFO.unpack(raw)
        return InfoEntry(seq, req, tag, addr, size, rkey, src)

    @staticmethod
    def unpack_from(buf, offset: int = 0) -> "InfoEntry":
        """Decode in place from any buffer — no intermediate slice."""
        seq, req, tag, addr, size, rkey, src = _INFO.unpack_from(buf, offset)
        return InfoEntry(seq, req, tag, addr, size, rkey, src)


@dataclass(frozen=True)
class FinEntry:
    """Rendezvous completion notification (receiver -> sender FIN ledger)."""

    seq: int
    req: int

    def pack(self) -> bytes:
        return _FIN.pack(self.seq, self.req)

    @staticmethod
    def unpack(raw) -> "FinEntry":
        seq, req = _FIN.unpack(raw)
        return FinEntry(seq, req)

    @staticmethod
    def unpack_from(buf, offset: int = 0) -> "FinEntry":
        """Decode in place from any buffer — no intermediate slice."""
        seq, req = _FIN.unpack_from(buf, offset)
        return FinEntry(seq, req)
