"""Photon: remote memory access middleware (the paper's contribution).

Public surface:

- :func:`photon_init` / :class:`Photon` — endpoint lifecycle
- buffers: ``Photon.buffer`` / ``register_buffer`` (+ registration cache)
- PWC: ``put_pwc`` / ``get_pwc`` / ``send_pwc`` / ``probe_completion`` /
  ``wait_completion`` / ``probe_message`` / ``wait_message``
- request-based RMA: ``post_os_put`` / ``post_os_get`` / ``wait`` / ``test``
- rendezvous messaging: ``send_rdma`` / ``wait_recv_info`` / ``recv_rdma`` /
  ``send_msg`` / ``recv_msg``
- collectives: ``barrier`` / ``allreduce`` / ``allgather`` / ``exchange``
- backends: :mod:`repro.photon.backends`
"""

from .api import Photon, PhotonBuffer, photon_init
from .base import Completion, ReliableOp, TimeoutStatus
from .config import DEFAULT_CONFIG, PhotonConfig
from .messaging import ANY, RecvInfo
from .rcache import RegistrationCache
from .request import PhotonRequest, RequestKind, RequestState, RequestTable

__all__ = [
    "Photon", "PhotonBuffer", "photon_init",
    "Completion", "ReliableOp", "TimeoutStatus",
    "DEFAULT_CONFIG", "PhotonConfig",
    "ANY", "RecvInfo",
    "RegistrationCache",
    "PhotonRequest", "RequestKind", "RequestState", "RequestTable",
]
