"""Photon middleware configuration.

Mirrors the tunables of the real system (``photon_config_t``): ledger
depths, the eager threshold, completion-delivery mechanism, and the
registration-cache policy.  Benchmarks R4/R6 and the backend comparison R7
sweep these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["PhotonConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class PhotonConfig:
    """Per-rank Photon configuration (identical across ranks)."""

    #: payloads <= this may travel through the eager ledger (send path);
    #: also the eager-slot payload capacity
    eager_limit: int = 8192
    #: slots per peer in the eager-message ring
    eager_slots: int = 32
    #: entries per peer in the completion (PWC) ring
    completion_entries: int = 64
    #: entries per peer in the rendezvous info ring
    info_entries: int = 32
    #: entries per peer in the FIN ring
    fin_entries: int = 32
    #: deliver remote PWC completions via RDMA_WRITE_WITH_IMM (one wire op
    #: for data+notification, as in the verbs backend) instead of a second
    #: completion-ledger write (the uGNI/sw backends' mechanism).  Immediate
    #: mode requires 32-bit completion ids on the put path.
    use_imm: bool = True
    #: preposted zero-byte receives per peer when use_imm is on
    imm_prepost: int = 64
    #: return ledger credits after this fraction of the ring is consumed
    credit_fraction: float = 0.5
    #: host cost of one progress-engine pass over the ledgers (ns)
    progress_poll_ns: int = 60
    #: idle backoff between polls when blocking in wait (ns); the backoff
    #: is adaptive — after ``wait_backoff_ramp`` empty polls it doubles per
    #: pass up to ``wait_backoff_max_ns`` so long idle waits don't spin the
    #: event loop at 100 ns granularity
    wait_backoff_ns: int = 100
    #: empty polls at the base backoff before cap-doubling starts (keeps
    #: short waits — the common case — as responsive as a fixed backoff)
    wait_backoff_ramp: int = 32
    #: ceiling for the adaptive wait backoff (ns)
    wait_backoff_max_ns: int = 6_400
    # --- reliability (lossy fabrics) ---
    #: how many times a failed/expired PWC operation is replayed before it
    #: completes with an error cid (0 = fail on first error)
    max_op_retries: int = 3
    #: per-operation deadline: a PWC op neither acked nor failed by the
    #: fabric within this window is considered lost and replayed (ns)
    op_timeout_ns: int = 5_000_000
    #: base of the exponential retry backoff (doubles per attempt, plus
    #: seeded jitter drawn from [0, backoff_jitter_ns or backoff_base_ns)),
    #: ns
    backoff_base_ns: int = 20_000
    #: width of the seeded retry-jitter window; None keeps the historical
    #: default of one ``backoff_base_ns``.  When many ops against one peer
    #: share a deadline cadence (peer death), widen this so concurrent
    #: retries decorrelate instead of forming a synchronized retry storm
    backoff_jitter_ns: Optional[int] = None
    #: ceiling for the exponential retry backoff (ns)
    backoff_max_ns: int = 1_000_000
    #: slot-stable resends of a lost ledger-entry write before the hole is
    #: declared permanent.  Deliberately deeper than ``max_op_retries``:
    #: rings are consumed strictly in sequence order, so an unfilled slot
    #: stalls every later entry from that peer — ring liveness is worth
    #: retrying much harder than a single operation's latency budget
    entry_resend_limit: int = 12
    #: use the registration cache for user buffers
    rcache_enabled: bool = True
    #: max cached registrations before LRU eviction
    rcache_capacity: int = 128
    #: pinned-bytes ceiling for cached registrations (0 = unlimited);
    #: enforced alongside the entry-count cap with LRU victim selection
    rcache_max_pinned_bytes: int = 0
    #: merge adjacent/overlapping registrations into one covering region
    #: (keeps the interval index non-overlapping: O(log n) lookups)
    rcache_merge: bool = True
    #: use inline sends for payloads within the NIC inline limit
    use_inline: bool = True
    #: maximum outstanding PWC operations per peer before put backpressure
    max_outstanding: int = 256

    def replace(self, **kw) -> "PhotonConfig":
        return replace(self, **kw)

    def validate(self) -> None:
        if self.eager_limit <= 0:
            raise ValueError("eager_limit must be positive")
        for field in ("eager_slots", "completion_entries", "info_entries",
                      "fin_entries", "imm_prepost", "max_outstanding"):
            if getattr(self, field) < 2:
                raise ValueError(f"{field} must be >= 2")
        if not 0.0 < self.credit_fraction <= 1.0:
            raise ValueError("credit_fraction must be in (0, 1]")
        if self.max_op_retries < 0:
            raise ValueError("max_op_retries must be >= 0")
        if self.entry_resend_limit < 0:
            raise ValueError("entry_resend_limit must be >= 0")
        for field in ("op_timeout_ns", "backoff_base_ns", "backoff_max_ns",
                      "wait_backoff_max_ns"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.backoff_jitter_ns is not None and self.backoff_jitter_ns <= 0:
            raise ValueError("backoff_jitter_ns must be positive when set")
        if self.wait_backoff_ramp < 0:
            raise ValueError("wait_backoff_ramp must be >= 0")
        if self.rcache_capacity < 1:
            raise ValueError("rcache_capacity must be >= 1")
        if self.rcache_max_pinned_bytes < 0:
            raise ValueError("rcache_max_pinned_bytes must be >= 0")


DEFAULT_CONFIG = PhotonConfig()
