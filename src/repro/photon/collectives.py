"""Collective operations built on PWC primitives.

Photon exposes a small set of collectives used by runtimes at startup and
for global synchronisation; all are implemented here purely from eager PWC
sends + probes, demonstrating that the PWC interface is sufficient for
control-plane collectives:

- ``barrier``   — dissemination (⌈log2 n⌉ rounds of 0-byte messages)
- ``allreduce`` — recursive doubling (fits eager) or ring reduce-scatter +
  allgather (large), on numpy arrays
- ``allgather`` — ring
- ``exchange``  — allgather of opaque blobs (Photon's buffer-metadata
  exchange used by runtimes to publish rkeys)

Collective messages are matched on a reserved completion-id space keyed by
(epoch, step, chunk); SPMD programs must invoke collectives in the same
order on every rank, as with the real library.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim.core import SimulationError

__all__ = ["CollectivesMixin", "REDUCE_OPS"]

_COLL_BASE = 1 << 62
_EPOCH_SHIFT = 20
_STEP_SHIFT = 8
_MAX_CHUNKS = 1 << _STEP_SHIFT

REDUCE_OPS: dict = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "prod": np.multiply,
}


class CollectivesMixin:
    """Adds collectives to the Photon endpoint."""

    # ------------------------------------------------------------------ plumbing
    def _coll_cid(self, epoch: int, step: int, chunk: int) -> int:
        if chunk >= _MAX_CHUNKS:
            raise SimulationError("collective payload too large (chunk id)")
        return _COLL_BASE | (epoch << _EPOCH_SHIFT) | (step << _STEP_SHIFT) | chunk

    def _coll_send(self, dst: int, data: bytes, epoch: int, step: int):
        """Send arbitrary-size collective payload as eager chunks (generator)."""
        limit = self.config.eager_limit
        nchunks = max(1, -(-len(data) // limit))
        for i in range(nchunks):
            chunk = data[i * limit:(i + 1) * limit]
            yield from self.send_pwc(dst, chunk,
                                     remote_cid=self._coll_cid(epoch, step, i))

    def _coll_recv(self, src: int, nbytes: int, epoch: int, step: int):
        """Receive a chunked collective payload (generator)."""
        limit = self.config.eager_limit
        nchunks = max(1, -(-nbytes // limit))
        parts: List[bytes] = []
        for i in range(nchunks):
            cid = self._coll_cid(epoch, step, i)
            got = yield from self.wait_message(
                lambda s, c, want=cid: s == src and c == want)
            parts.append(got[2])
        return b"".join(parts)

    # ------------------------------------------------------------------ barrier
    def barrier(self):
        """Dissemination barrier (generator)."""
        n = self.cluster.n
        epoch = self._coll_epoch
        self._coll_epoch += 1
        if n == 1:
            return
        step = 0
        dist = 1
        while dist < n:
            dst = (self.rank + dist) % n
            src = (self.rank - dist) % n
            yield from self.send_pwc(dst, b"", remote_cid=self._coll_cid(
                epoch, step, 0))
            yield from self.wait_message(
                lambda s, c, want=self._coll_cid(epoch, step, 0), w_src=src:
                s == w_src and c == want)
            dist <<= 1
            step += 1
        self.counters.add("photon.barriers")

    # ------------------------------------------------------------------ allreduce
    def allreduce(self, array: np.ndarray, op: str = "sum"):
        """Allreduce a numpy array; returns the reduced array (generator)."""
        if op not in REDUCE_OPS:
            raise SimulationError(f"unknown reduce op {op!r}")
        n = self.cluster.n
        epoch = self._coll_epoch
        self._coll_epoch += 1
        if n == 1:
            return array.copy()
        data = np.array(array, copy=True)
        if data.nbytes <= self.config.eager_limit:
            result = yield from self._allreduce_rd(data, op, epoch)
        else:
            result = yield from self._allreduce_ring(data, op, epoch)
        self.counters.add("photon.allreduces")
        return result

    def _apply(self, op: str, acc: np.ndarray, raw: bytes) -> np.ndarray:
        other = np.frombuffer(raw, dtype=acc.dtype).reshape(acc.shape)
        return REDUCE_OPS[op](acc, other)

    def _allreduce_rd(self, data: np.ndarray, op: str, epoch: int):
        """Recursive doubling with non-power-of-two fold."""
        n = self.cluster.n
        rank = self.rank
        pof2 = 1
        while pof2 * 2 <= n:
            pof2 *= 2
        rem = n - pof2
        step = 0
        # fold: ranks >= pof2 send their data into the low group
        if rank >= pof2:
            partner = rank - pof2
            yield from self._coll_send(partner, data.tobytes(), epoch, step)
        elif rank < rem:
            raw = yield from self._coll_recv(rank + pof2, data.nbytes,
                                             epoch, step)
            data = self._apply(op, data, raw)
            yield self.env.timeout(self.memory.memcpy_cost_ns(data.nbytes))
        step += 1
        if rank < pof2:
            dist = 1
            while dist < pof2:
                partner = rank ^ dist
                yield from self._coll_send(partner, data.tobytes(), epoch, step)
                raw = yield from self._coll_recv(partner, data.nbytes,
                                                 epoch, step)
                data = self._apply(op, data, raw)
                yield self.env.timeout(self.memory.memcpy_cost_ns(data.nbytes))
                dist <<= 1
                step += 1
        else:
            step += pof2.bit_length() - 1
        # unfold: low group returns results to the folded ranks
        if rank < rem:
            yield from self._coll_send(rank + pof2, data.tobytes(), epoch, step)
        elif rank >= pof2:
            raw = yield from self._coll_recv(rank - pof2, data.nbytes,
                                             epoch, step)
            data = np.frombuffer(raw, dtype=data.dtype).reshape(
                data.shape).copy()
        return data

    def _allreduce_ring(self, data: np.ndarray, op: str, epoch: int):
        """Ring reduce-scatter + ring allgather for large arrays."""
        n = self.cluster.n
        rank = self.rank
        flat = data.reshape(-1)
        bounds = np.linspace(0, flat.size, n + 1).astype(int)
        segs = [flat[bounds[i]:bounds[i + 1]].copy() for i in range(n)]
        right = (rank + 1) % n
        left = (rank - 1) % n
        # reduce-scatter
        for step in range(n - 1):
            send_idx = (rank - step) % n
            recv_idx = (rank - step - 1) % n
            yield from self._coll_send(right, segs[send_idx].tobytes(),
                                       epoch, step)
            raw = yield from self._coll_recv(left, segs[recv_idx].nbytes,
                                             epoch, step)
            if segs[recv_idx].size:
                segs[recv_idx] = REDUCE_OPS[op](
                    segs[recv_idx],
                    np.frombuffer(raw, dtype=flat.dtype))
            yield self.env.timeout(
                self.memory.memcpy_cost_ns(segs[recv_idx].nbytes))
        # allgather
        for step in range(n - 1):
            send_idx = (rank - step + 1) % n
            recv_idx = (rank - step) % n
            yield from self._coll_send(right, segs[send_idx].tobytes(),
                                       epoch, n - 1 + step)
            raw = yield from self._coll_recv(left, segs[recv_idx].nbytes,
                                             epoch, n - 1 + step)
            segs[recv_idx] = np.frombuffer(raw, dtype=flat.dtype).copy()
        out = np.concatenate([s for s in segs]) if n > 1 else flat
        return out.reshape(data.shape)

    # ------------------------------------------------------------------ allgather
    def allgather(self, data: bytes):
        """Ring allgather of equal-size blobs; returns list by rank (generator)."""
        n = self.cluster.n
        rank = self.rank
        epoch = self._coll_epoch
        self._coll_epoch += 1
        out: List[bytes] = [b""] * n
        out[rank] = bytes(data)
        right = (rank + 1) % n
        left = (rank - 1) % n
        for step in range(n - 1):
            send_idx = (rank - step) % n
            recv_idx = (rank - step - 1) % n
            yield from self._coll_send(right, out[send_idx], epoch, step)
            raw = yield from self._coll_recv(left, len(data), epoch, step)
            out[recv_idx] = raw
        self.counters.add("photon.allgathers")
        return out

    def exchange(self, blob: bytes):
        """Photon's metadata exchange: allgather of opaque blobs (generator)."""
        result = yield from self.allgather(blob)
        return result
