"""Registration cache: amortise memory-pinning cost across operations.

Photon registers user buffers on demand for one-sided operations; pinning
is expensive (syscall + per-page cost), so registrations are cached and
reused when a later operation's range falls inside a cached region.  LRU
eviction (with deregistration cost) bounds pinned memory.  Experiment R6
measures exactly this: cold vs warm registration on the put path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..verbs.device import Context, ProtectionDomain
from ..verbs.enums import Access
from ..verbs.mr import MemoryRegion

__all__ = ["RegistrationCache"]


class RegistrationCache:
    """LRU cache of memory registrations for one rank."""

    def __init__(self, context: Context, pd: ProtectionDomain,
                 capacity: int = 128, enabled: bool = True):
        if capacity < 1:
            raise ValueError("rcache capacity must be >= 1")
        self.context = context
        self.pd = pd
        self.capacity = capacity
        self.enabled = enabled
        self._entries: "OrderedDict[Tuple[int, int], MemoryRegion]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ lookup
    def _find_covering(self, addr: int, length: int) -> Optional[MemoryRegion]:
        for key, mr in self._entries.items():
            if mr.valid and mr.covers(addr, length):
                self._entries.move_to_end(key)
                return mr
        return None

    def acquire(self, addr: int, length: int,
                access: Access = Access.ALL):
        """Get a registration covering [addr, addr+length) (generator).

        Charges the full pin cost on a miss, nothing extra on a hit.
        Returns the :class:`MemoryRegion`; pass it to :meth:`release` when
        the operation completes.
        """
        if self.enabled:
            mr = self._find_covering(addr, length)
            if mr is not None:
                self.hits += 1
                return mr
        self.misses += 1
        mr = yield from self.context.reg_mr(self.pd, addr, length, access)
        if self.enabled:
            self._entries[(addr, length)] = mr
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                self.evictions += 1
                yield from self.context.dereg_mr(victim)
        return mr

    def release(self, mr: MemoryRegion):
        """Drop a registration obtained from :meth:`acquire` (generator).

        With the cache enabled this is free (the registration stays warm);
        disabled, it deregisters immediately — the uncached baseline.
        """
        if not self.enabled and mr.valid:
            yield from self.context.dereg_mr(mr)
        return None

    # ------------------------------------------------------------------ admin
    def flush(self):
        """Deregister everything (generator)."""
        while self._entries:
            _, mr = self._entries.popitem(last=False)
            if mr.valid:
                yield from self.context.dereg_mr(mr)

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
