"""Registration cache: amortise memory-pinning cost across operations.

Photon registers user buffers on demand for one-sided operations; pinning
is expensive (syscall + per-page cost), so registrations are cached and
reused when a later operation's range falls inside a cached region.
Experiment R6 measures exactly this: cold vs warm registration on the put
path, plus lookup scaling with cache occupancy.

Lifecycle contract (see docs/API.md):

- :meth:`acquire` returns a covering :class:`MemoryRegion` and *pins* it
  with a refcount; every acquire must be paired with exactly one
  :meth:`release` (generator) or :meth:`release_async` (callback-safe)
  once the operation's work requests have settled.
- LRU eviction never deregisters an in-use region: victims with a nonzero
  refcount move to a pending-evict set and are deregistered when the last
  reference drops (``deferred_evictions``).
- With the cache *disabled* every acquire registers and every release
  deregisters — the uncached baseline, now leak-free because releases are
  threaded through every call site.

Lookup is O(log n): entries are indexed by a sorted interval list, so a
covering lookup is one bisect plus a short leftward scan bounded by the
largest live entry length.  With ``merge`` on (the default) adjacent or
overlapping *unpinned* registrations are coalesced into one covering
registration on a miss, keeping the scan near one probe in steady state.
Pinned entries are never absorbed by a merge — their rkeys were exchanged
with peers and must stay valid — and :meth:`insert` does not merge, so
overlapping entries are legal and the lookup tolerates them.

Capacity is bounded two ways: an entry-count cap (``capacity``) and an
optional pinned-bytes cap (``max_pinned_bytes``; 0 = unlimited).  Both are
enforced on every miss/insert, with LRU victim selection.  Pending-evict
entries still hold real pinned memory, so they keep counting toward
``pinned_bytes`` until their deferred deregistration actually runs.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..sim.core import SimulationError
from ..verbs.device import Context, ProtectionDomain
from ..verbs.enums import Access
from ..verbs.mr import MemoryRegion

__all__ = ["RegistrationCache", "CacheEntry", "assert_reg_balance"]


class CacheEntry:
    """One cached registration with its pin state."""

    __slots__ = ("mr", "refcount", "pinned")

    def __init__(self, mr: MemoryRegion, pinned: bool = False):
        self.mr = mr
        #: live acquires not yet released
        self.refcount = 0
        #: never auto-evicted (bootstrap buffers exposed to peers)
        self.pinned = pinned

    @property
    def key(self) -> Tuple[int, int]:
        return (self.mr.addr, self.mr.length)


class RegistrationCache:
    """Refcounted LRU cache of memory registrations for one rank."""

    def __init__(self, context: Context, pd: ProtectionDomain,
                 capacity: int = 128, enabled: bool = True,
                 max_pinned_bytes: int = 0, merge: bool = True):
        if capacity < 1:
            raise ValueError("rcache capacity must be >= 1")
        if max_pinned_bytes < 0:
            raise ValueError("rcache max_pinned_bytes must be >= 0")
        self.context = context
        self.pd = pd
        self.capacity = capacity
        self.enabled = enabled
        self.max_pinned_bytes = max_pinned_bytes
        self.merge = merge
        self.env = context.env
        self.counters = context.counters
        #: LRU order over live entries, key = (addr, length)
        self._entries: "OrderedDict[Tuple[int, int], CacheEntry]" = \
            OrderedDict()
        #: sorted (addr, length) keys of live entries — the interval index
        self._index: List[Tuple[int, int]] = []
        #: rkey -> entry, live *and* pending-evict (release routes here)
        self._by_rkey: Dict[int, CacheEntry] = {}
        #: evicted-but-referenced entries awaiting their last release
        self._pending: Dict[int, CacheEntry] = {}
        #: disabled-mode loans: rkey -> MR, so release/balance stay exact
        self._loaned: Dict[int, MemoryRegion] = {}
        #: largest live entry length (bounds the merge=False leftward scan)
        self._max_len = 0
        # telemetry (mirrored into context counters as photon.rcache.*)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.deferred_evictions = 0
        self.invalid_prunes = 0
        self.merges = 0
        self.lookup_probes = 0
        self.pinned_bytes = 0
        self.pinned_bytes_peak = 0

    # ------------------------------------------------------------------ telemetry
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters.add(f"photon.rcache.{name}", amount)

    def _note_pinned(self, delta: int) -> None:
        self.pinned_bytes += delta
        if self.pinned_bytes > self.pinned_bytes_peak:
            self.pinned_bytes_peak = self.pinned_bytes
            # high-water mark: set_max (not add) mirrors into the scope and
            # the cluster aggregate without direct values[] assignment
            self.counters.set_max("photon.rcache.pinned_bytes_peak",
                                  self.pinned_bytes_peak)

    # ------------------------------------------------------------------ index
    def _defer(self, entry: CacheEntry) -> None:
        """Park an evicted-but-referenced entry on the pending list.

        The MR stays registered until the last release, so its bytes go
        back into ``pinned_bytes`` (undoing :meth:`_drop_entry`'s
        subtraction) until :meth:`_pending_pop` hands it to dereg.
        """
        self._pending[entry.mr.rkey] = entry
        self._by_rkey[entry.mr.rkey] = entry
        self._note_pinned(entry.mr.length)
        self.deferred_evictions += 1
        self._count("deferred_evictions")

    def _pending_pop(self, rkey: int) -> Optional[CacheEntry]:
        """Remove a pending-evict entry; its MR is now due for dereg."""
        entry = self._pending.pop(rkey, None)
        if entry is not None:
            self._by_rkey.pop(rkey, None)
            self._note_pinned(-entry.mr.length)
        return entry

    def _index_add(self, entry: CacheEntry) -> None:
        key = entry.key
        old = self._entries.get(key)
        if old is not None:
            # exact-key collision: an entry invalidated behind our back,
            # or a concurrent miss of the same range while our reg was
            # charging pin cost — retire the old entry safely
            self._drop_entry(old, prune=not old.mr.valid)
            if old.mr.valid:
                if old.refcount > 0:
                    self._defer(old)
                else:
                    self.env.process(self._dereg_many([old.mr]),
                                     name="rcache:dereg")
        self._entries[key] = entry
        insort(self._index, key)
        self._by_rkey[entry.mr.rkey] = entry
        self._note_pinned(entry.mr.length)
        if entry.mr.length > self._max_len:
            self._max_len = entry.mr.length

    def _drop_entry(self, entry: CacheEntry, prune: bool = False) -> bool:
        """Remove a *live* entry from the index/LRU structures."""
        key = entry.key
        if self._entries.get(key) is not entry:
            return False  # already retired by a concurrent path
        del self._entries[key]
        i = bisect_right(self._index, key) - 1
        if 0 <= i < len(self._index) and self._index[i] == key:
            self._index.pop(i)
        if self._by_rkey.get(entry.mr.rkey) is entry:
            del self._by_rkey[entry.mr.rkey]
        self._note_pinned(-entry.mr.length)
        if prune:
            self.invalid_prunes += 1
            self._count("invalid_prunes")
        return True

    def _find_covering(self, addr: int, length: int) -> Optional[CacheEntry]:
        """O(log n) covering lookup (bisect + bounded candidate probes).

        Entries may overlap (pinned entries are never merged away and
        :meth:`insert` does not merge), so after the bisect the scan
        always continues leftward until an entry covers the range or no
        entry further left can reach ``addr`` (bounded by the largest
        live entry length).  Any valid covering entry is a correct hit.
        """
        i = bisect_right(self._index, (addr, 1 << 62)) - 1
        probes = 0
        hit = None
        while i >= 0:
            key = self._index[i]
            probes += 1
            entry = self._entries.get(key)
            if entry is None:  # pragma: no cover - index/LRU divergence
                i -= 1
                continue
            if not entry.mr.valid:
                # pruned lazily: deregistered behind the cache's back
                self._drop_entry(entry, prune=True)
                i -= 1
                continue
            if entry.mr.covers(addr, length):
                hit = entry
                break
            if key[0] + self._max_len <= addr:
                break  # nothing further left can reach addr
            i -= 1
        self.lookup_probes += probes
        self._count("lookup_probes", probes)
        return hit

    # ------------------------------------------------------------------ acquire
    def acquire(self, addr: int, length: int,
                access: Access = Access.ALL):
        """Pin a registration covering [addr, addr+length) (generator).

        Charges the full pin cost on a miss, nothing extra on a hit.
        Returns the :class:`MemoryRegion`; the caller owns one reference
        and must pass the region to :meth:`release`/:meth:`release_async`
        when the operation's work requests have settled.
        """
        if self.enabled:
            entry = self._find_covering(addr, length)
            if entry is not None:
                self.hits += 1
                self._count("hits")
                entry.refcount += 1
                self._entries.move_to_end(entry.key)
                return entry.mr
        self.misses += 1
        self._count("misses")
        reg_addr, reg_len = addr, length
        absorbed: List[CacheEntry] = []
        if self.enabled and self.merge:
            reg_addr, reg_len, absorbed = self._merge_span(addr, length)
        mr = yield from self.context.reg_mr(self.pd, reg_addr, reg_len, access)
        if not self.enabled:
            self._loaned[mr.rkey] = mr
            return mr
        entry = CacheEntry(mr)  # absorbed entries are never pinned
        entry.refcount = 1
        for old in absorbed:
            self.merges += 1
            self._count("merges")
            yield from self._retire(old)
        self._index_add(entry)
        yield from self._enforce_caps()
        return mr

    def _merge_span(self, addr: int, length: int):
        """Union span of [addr, addr+length) with overlapping/adjacent
        live *unpinned* entries; returns (addr, length, absorbed_entries).

        Pinned entries are skipped — absorbing one would retire its MR
        and invalidate an rkey already exchanged with peers — and they do
        not extend the span, so a pinned region is never swallowed.  The
        new registration may overlap a pinned entry; :meth:`_find_covering`
        tolerates that overlap.
        """
        lo, hi = addr, addr + length
        absorbed: List[CacheEntry] = []
        i = bisect_right(self._index, (lo, 1 << 62))
        # walk left while entries touch the growing span
        j = i - 1
        while j >= 0:
            key = self._index[j]
            if key[0] + key[1] < lo:
                break
            entry = self._entries[key]
            if not entry.mr.valid:
                self._drop_entry(entry, prune=True)
            elif not entry.pinned:
                absorbed.append(entry)
                lo = min(lo, key[0])
                hi = max(hi, key[0] + key[1])
            j -= 1
        # walk right while entries touch the span
        while i < len(self._index):
            key = self._index[i]
            if key[0] > hi:
                break
            entry = self._entries[key]
            if not entry.mr.valid:
                self._drop_entry(entry, prune=True)
                continue
            if not entry.pinned:
                absorbed.append(entry)
                hi = max(hi, key[0] + key[1])
            i += 1
        return lo, hi - lo, absorbed

    def _retire(self, entry: CacheEntry):
        """Remove a live entry; dereg now or defer until refcount zero
        (generator)."""
        if not self._drop_entry(entry):
            return
        if entry.refcount > 0:
            self._defer(entry)
            return
        if entry.refcount < 0:  # pragma: no cover - defensive
            raise SimulationError("rcache entry refcount went negative")
        if entry.mr.valid:
            yield from self.context.dereg_mr(entry.mr)

    def _enforce_caps(self):
        """Evict LRU entries until both caps hold (generator)."""
        while self._over_caps():
            victim = None
            for entry in self._entries.values():
                if not entry.pinned:
                    victim = entry
                    break
            if victim is None:
                return  # everything left is pinned; caps can't be met
            self.evictions += 1
            self._count("evictions")
            yield from self._retire(victim)

    def _over_caps(self) -> bool:
        if len(self._entries) > self.capacity:
            return True
        if self.max_pinned_bytes and self.pinned_bytes > self.max_pinned_bytes:
            return True
        return False

    # ------------------------------------------------------------------ insert
    def insert(self, mr: MemoryRegion, pinned: bool = False) -> MemoryRegion:
        """Seed an externally registered MR into the cache (bootstrap path).

        Enforces the entry-count and pinned-bytes caps like any miss
        (idle victims are deregistered by a spawned process so the
        dereg cost and counters land normally).  ``pinned`` entries are
        never auto-evicted,
        which is what :meth:`Photon.buffer` wants: an exposed buffer's
        rkey must stay valid for peers.  Returns ``mr``.
        """
        if not self.enabled:
            self._loaned[mr.rkey] = mr
            return mr
        entry = CacheEntry(mr, pinned=pinned)
        self._index_add(entry)
        while self._over_caps():
            victim = None
            for cand in self._entries.values():
                if not cand.pinned:
                    victim = cand
                    break
            if victim is None:
                break
            self.evictions += 1
            self._count("evictions")
            if not self._drop_entry(victim):
                continue
            if victim.refcount > 0:
                self._defer(victim)
            elif victim.mr.valid:
                # timed dereg as a spawned process keeps the reg/dereg
                # counters balanced even on the bootstrap insert path
                self.env.process(self._dereg_many([victim.mr]),
                                 name="rcache:dereg")
        return mr

    # ------------------------------------------------------------------ release
    def _release_bookkeeping(self, mr: MemoryRegion) -> List[MemoryRegion]:
        """Drop one reference; returns MRs now due for deregistration."""
        loan = self._loaned.pop(mr.rkey, None)
        if loan is not None:
            return [loan] if loan.valid else []
        entry = self._by_rkey.get(mr.rkey)
        if entry is None:
            # not ours (or already flushed): uncached baseline semantics
            if not self.enabled and mr.valid:
                return [mr]
            return []
        if entry.refcount > 0:
            entry.refcount -= 1
        if entry.refcount == 0 and entry.mr.rkey in self._pending:
            self._pending_pop(entry.mr.rkey)
            return [entry.mr] if entry.mr.valid else []
        return []

    def release(self, mr: MemoryRegion):
        """Unpin a registration obtained from :meth:`acquire` (generator).

        With the cache enabled the registration stays warm (and any
        pending eviction of it is drained once the last reference drops);
        disabled, it deregisters immediately — the uncached baseline.
        """
        for due in self._release_bookkeeping(mr):
            yield from self.context.dereg_mr(due)
        return None

    def release_async(self, mr: MemoryRegion) -> None:
        """Callback-safe release: refcount drops now, any due
        deregistration runs as a spawned process (it charges time)."""
        due = self._release_bookkeeping(mr)
        if due:
            self.env.process(self._dereg_many(due), name="rcache:dereg")

    def _dereg_many(self, mrs: List[MemoryRegion]):
        for mr in mrs:
            if mr.valid:
                yield from self.context.dereg_mr(mr)

    # ------------------------------------------------------------------ unregister
    def unregister(self, rkey: int):
        """Evict/deregister the registration with ``rkey`` (generator).

        Backs :meth:`Photon.unregister_buffer`: drops the buffer's own
        reference (if any), unpins it, and deregisters — immediately when
        no operation holds it, deferred until the last release otherwise.
        Returns True if a registration was found.
        """
        loan = self._loaned.pop(rkey, None)
        if loan is not None:
            if loan.valid:
                yield from self.context.dereg_mr(loan)
            return True
        entry = self._by_rkey.get(rkey)
        if entry is not None:
            entry.pinned = False
            if entry.refcount > 0:
                entry.refcount -= 1
            if rkey in self._pending:
                if entry.refcount == 0:
                    self._pending_pop(rkey)
                    if entry.mr.valid:
                        yield from self.context.dereg_mr(entry.mr)
                return True
            yield from self._retire(entry)
            return True
        # not tracked (e.g. registered before the cache existed): fall
        # back to the context's rkey directory so unregister still works
        mr = self.context._mrs_by_rkey.get(rkey)
        if mr is not None and mr.valid:
            yield from self.context.dereg_mr(mr)
            return True
        return False

    # ------------------------------------------------------------------ admin
    def flush(self):
        """Deregister everything, including pending evictions (generator).

        Shutdown-time operation: outstanding references are forgotten.
        All bookkeeping is cleared *before* the first dereg yield so a
        concurrent lookup during the drain sees an empty, consistent
        cache instead of an index pointing at retired entries.
        """
        due: List[MemoryRegion] = []
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            self._by_rkey.pop(entry.mr.rkey, None)
            self._note_pinned(-entry.mr.length)
            due.append(entry.mr)
        self._index.clear()
        while self._pending:
            rkey, entry = self._pending.popitem()
            self._by_rkey.pop(rkey, None)
            self._note_pinned(-entry.mr.length)
            due.append(entry.mr)
        while self._loaned:
            _, mr = self._loaned.popitem()
            due.append(mr)
        for mr in due:
            if mr.valid:
                yield from self.context.dereg_mr(mr)

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def pending_evictions(self) -> int:
        return len(self._pending)

    @property
    def held_refs(self) -> int:
        return (sum(e.refcount for e in self._entries.values())
                + sum(e.refcount for e in self._pending.values()))

    @property
    def live_regs(self) -> int:
        """Registrations this cache still owns (live + pending-evict +
        disabled-mode loans)."""
        return len(self._entries) + len(self._pending) + len(self._loaned)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> Dict[str, object]:
        """JSON-serializable cache-occupancy/effectiveness snapshot (the
        ``rcache`` section of ``Endpoint.stats()`` and obs reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "deferred_evictions": self.deferred_evictions,
            "invalid_prunes": self.invalid_prunes,
            "merges": self.merges,
            "hit_rate": self.hit_rate,
            "size": self.size,
            "pending_evictions": self.pending_evictions,
            "held_refs": self.held_refs,
            "live_regs": self.live_regs,
            "pinned_bytes": self.pinned_bytes,
            "pinned_bytes_peak": self.pinned_bytes_peak,
        }


def assert_reg_balance(counters, contexts) -> None:
    """Pin-leak guard: every registration was either deregistered or is
    still accounted live in a context's rkey directory.

    ``verbs.reg_mr`` counts every registration (sync or timed) and
    ``verbs.dereg_mr`` every deregistration, so across the cluster
    ``reg_mr == dereg_mr + Σ live_mrs`` holds at any quiescent point.
    A violated balance means an MR was leaked (dropped without dereg)
    or double-deregistered.  Raises AssertionError on imbalance.
    """
    reg = counters.get("verbs.reg_mr")
    dereg = counters.get("verbs.dereg_mr")
    live = sum(ctx.live_mrs for ctx in contexts)
    if reg != dereg + live:
        raise AssertionError(
            f"registration leak: reg_mr={reg} != dereg_mr={dereg} + "
            f"live_mrs={live} (delta {reg - dereg - live})")
