"""Rendezvous messaging over ledgers (Photon's two-sided emulation).

Large transfers whose destination buffer is *not* pre-exposed use the
classic Photon buffer-advertisement protocol:

1. sender: ``send_rdma`` — registers the source buffer (rcache), writes an
   :class:`~repro.photon.wire.InfoEntry` {tag, addr, size, rkey, req} into
   the receiver's info ledger, and returns a request id;
2. receiver: ``wait_recv_info`` — polls its info ledger for a matching
   (src, tag) advertisement;
3. receiver: ``recv_rdma`` — RDMA-READs the payload straight from the
   sender's buffer into the destination buffer (zero intermediate copies),
   then
4. receiver: writes a :class:`~repro.photon.wire.FinEntry` into the
   sender's FIN ledger, completing the sender's request.

Compared with MPI's rendezvous this costs *one* control write in each
direction and no tag-matching engine; compared with MPI's eager protocol
it has no bounce-buffer copy.  ``send_msg``/``recv_msg`` pick between the
eager (PWC send) and rendezvous paths on the eager limit, mirroring how
HPX-5 used the library.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import SimulationError
from .request import RequestKind
from .wire import FinEntry, InfoEntry

__all__ = ["MessagingMixin", "ANY", "RecvInfo"]

#: wildcard for src/tag matching
ANY = -1


class RecvInfo:
    """A matched buffer advertisement, ready to be fetched."""

    __slots__ = ("src", "tag", "addr", "size", "rkey", "req")

    def __init__(self, entry: InfoEntry):
        self.src = entry.src
        self.tag = entry.tag
        self.addr = entry.addr
        self.size = entry.size
        self.rkey = entry.rkey
        self.req = entry.req

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RecvInfo src={self.src} tag={self.tag} size={self.size}>")


class MessagingMixin:
    """Adds the rendezvous protocol to the Photon endpoint."""

    # ------------------------------------------------------------------ sender
    def send_rdma(self, dst: int, local_addr: int, size: int, tag: int = 0):
        """Advertise a send buffer to ``dst``; returns request id (generator).

        The request completes (observe with ``wait``) when the receiver has
        fetched the data and FINed.
        """
        if size <= 0:
            raise SimulationError("send_rdma needs a positive size")
        if tag < 0:
            raise SimulationError("tags must be non-negative")
        req = self.requests.create(RequestKind.SEND_RDMA, dst, size, tag,
                                   self.env.now)
        req.span = self.counters.span("photon.rndv_send", self.env.now,
                                      peer=dst, nbytes=size)
        if dst == self.rank:
            # payload snapshot taken now, so the send completes immediately
            data = self.memory.read_bytes(local_addr, size)
            yield self.env.timeout(self.memory.memcpy_cost_ns(size))
            self._self_rendezvous.append((tag, data, req.rid))
            self.requests.complete(req.rid, self.env.now)
            return req.rid
        peer = self._peer(dst)
        mr = yield from self.rcache.acquire(local_addr, size)
        rid = req.rid
        # the source stays pinned until the receiver has fetched + FINed
        # (or the request failed/was abandoned)
        req.on_settle = lambda: self.rcache.release_async(mr)

        def on_error():
            # the advertisement never reached the peer: no receiver will
            # ever fetch + FIN, so settle the request as failed
            self.counters.add("photon.request_failures")
            self.requests.fail(rid, self.env.now)

        yield from self._post_ring_entry(
            peer, "info",
            lambda seq: InfoEntry(seq=seq, req=rid, tag=tag,
                                  addr=local_addr, size=size, rkey=mr.rkey,
                                  src=self.rank).pack(),
            on_error=on_error)
        self.counters.add("photon.rendezvous_sends")
        return req.rid

    # ------------------------------------------------------------------ receiver
    def _find_info(self, src: int, tag: int) -> Optional[int]:
        for i, entry in enumerate(self.infos):
            if (src == ANY or entry.src == src) and \
                    (tag == ANY or entry.tag == tag):
                return i
        return None

    def _match_info(self, src: int, tag: int) -> Optional[RecvInfo]:
        i = self._find_info(src, tag)
        if i is None:
            return None
        entry = self.infos[i]
        del self.infos[i]
        return RecvInfo(entry)

    def wait_recv_info(self, src: int = ANY, tag: int = ANY,
                       timeout_ns: Optional[int] = None):
        """Poll for a matching buffer advertisement (generator).

        Returns a :class:`RecvInfo`, or None on timeout.
        """
        ok = yield from self._wait_until(
            lambda: self._find_info(src, tag) is not None, timeout_ns)
        return self._match_info(src, tag) if ok else None

    def recv_rdma(self, info: RecvInfo, local_addr: int):
        """Fetch an advertised buffer and FIN the sender (generator).

        Returns the number of bytes received.  RDMA reads are idempotent,
        so a fetch the fabric gave up on is simply reposted (up to
        ``max_op_retries`` extra attempts) before raising.
        """
        span = self.counters.span("photon.rndv_recv", self.env.now,
                                  peer=info.src, nbytes=info.size)
        for _attempt in range(self.config.max_op_retries + 1):
            rid = yield from self.post_os_get(info.src, local_addr, info.size,
                                              info.addr, info.rkey)
            yield from self.wait(rid)
            failed = self.requests.get(rid).failed
            self.free_request(rid)
            if not failed:
                break
            self.counters.add("photon.rendezvous_refetches")
        else:
            if span is not None:
                span.end(self.env.now, status="failed")
            raise SimulationError(
                f"rank {self.rank}: rendezvous fetch from {info.src} failed "
                f"after {self.config.max_op_retries + 1} attempts")
        peer = self._peer(info.src)
        yield from self._post_ring_entry(
            peer, "fin",
            lambda seq: FinEntry(seq=seq, req=info.req).pack())
        if span is not None:
            span.end(self.env.now, retries=_attempt)
        self.counters.add("photon.rendezvous_recvs")
        return info.size

    # ------------------------------------------------------------------ unified
    def send_msg(self, dst: int, data: bytes, tag: int = 0,
                 scratch_addr: Optional[int] = None):
        """Send a message of any size (generator): eager if it fits,
        rendezvous otherwise.

        For the rendezvous path the payload must already live in simulated
        memory; ``scratch_addr`` names a caller-owned staging area it is
        copied into (one send at a time per scratch area).  Returns when
        the payload is deliverable (eager) or fully fetched (rendezvous).
        """
        if len(data) <= self.config.eager_limit:
            yield from self.send_pwc(dst, data, remote_cid=tag)
            return
        if scratch_addr is None:
            raise SimulationError(
                "rendezvous send needs a scratch_addr staging buffer")
        self.memory.write(scratch_addr, data)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(data)))
        rid = yield from self.send_rdma(dst, scratch_addr, len(data), tag)
        yield from self.wait(rid)
        self.free_request(rid)

    def recv_msg(self, src: int = ANY, tag: int = ANY,
                 scratch_addr: Optional[int] = None,
                 timeout_ns: Optional[int] = None):
        """Receive one message (generator): returns (src, tag, payload).

        Matches either an eager message or a rendezvous advertisement,
        whichever arrives first.
        """
        eager_match = (lambda s, c: (src == ANY or s == src)
                       and (tag == ANY or c == tag))

        def find_self_rdv() -> Optional[int]:
            if src not in (ANY, self.rank):
                return None
            for i, (t, _data, _rid) in enumerate(self._self_rendezvous):
                if tag == ANY or t == tag:
                    return i
            return None

        def present() -> bool:
            return (self._find_message(eager_match) is not None
                    or find_self_rdv() is not None
                    or self._find_info(src, tag) is not None)

        ok = yield from self._wait_until(present, timeout_ns)
        if not ok:
            return None
        m = self._pop_message(eager_match)
        if m is not None:
            s, c, data = m
            return (s, c, data)
        i = find_self_rdv()
        if i is not None:
            t, data, _rid = self._self_rendezvous.pop(i)
            return (self.rank, t, data)
        info = self._match_info(src, tag)
        if scratch_addr is None:
            raise SimulationError(
                "rendezvous receive needs a scratch_addr landing buffer")
        yield from self.recv_rdma(info, scratch_addr)
        # owned copy: the scratch landing area is reused by the next receive
        data = self.memory.read_bytes(scratch_addr, info.size)
        yield self.env.timeout(self.memory.memcpy_cost_ns(info.size))
        return (info.src, info.tag, data)
