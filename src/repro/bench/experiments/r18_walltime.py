"""R18 — wall-clock throughput of the simulator itself.

Unlike R1–R17, the numbers here are **host wall-clock** metrics, not
simulated-time metrics: they measure how fast the discrete-event kernel
and the zero-copy payload path execute on the machine running the
reproduction.  The experiment exists so the hot-path optimisations
(memoryview plumbing, Timeout recycling, clean-fabric fast path) have a
regression guard that is independent of the simulated results — those are
pinned bit-for-bit by ``tests/test_determinism_golden.py``.

Two microbenchmarks:

- *bare kernel*: a chain of pure timeouts (one process, no payload) —
  events processed per host second.
- *copy path*: payload bytes pushed through Memory → NIC → wire → Memory
  via Photon PWC puts on a clean two-rank fabric — payload MB moved per
  host second.

Shape checks are deliberately loose (orders of magnitude, ratios) so they
hold on any machine; absolute throughput belongs in BENCH_wallclock.json,
not in a pass/fail gate.
"""

from __future__ import annotations

import time

from ...cluster import build_cluster
from ...photon import photon_init
from ...util.units import KiB, MiB
from ..result import ExperimentResult


def _bare_kernel_events_per_sec(n_events: int):
    """Drain ``n_events`` chained timeouts; return (events/s, events).

    ``events`` is the kernel's fired-event count — the same figure
    ``python -m repro.bench --timing`` records per experiment into
    BENCH_wallclock.json, so the two reports use one events/s definition.
    """
    from ...sim.core import Environment

    env = Environment()

    def chain(env, n):
        for _ in range(n):
            yield env.timeout(10)

    env.process(chain(env, n_events))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    fired = env.events_processed
    return (fired / wall if wall > 0 else float("inf")), fired


def _copy_path_mb_per_sec(msg_size: int, n_msgs: int) -> float:
    """Push ``n_msgs`` PWC puts of ``msg_size`` bytes rank 0 → rank 1;
    return payload MB per host second (wall clock, not simulated)."""
    cl = build_cluster(2, mem_size=max(4 * msg_size, 1 * MiB) + 1 * MiB)
    ph = photon_init(cl)
    src = ph[0].buffer(msg_size)
    dst = ph[1].buffer(msg_size)
    cl[0].memory.write(src.addr, bytes(msg_size))

    def prog(env):
        for i in range(n_msgs):
            yield from ph[0].put_pwc(1, src.addr, msg_size,
                                     dst.addr, dst.rkey, local_cid=i)
            c = yield from ph[0].wait_completion("local", timeout_ns=10 ** 12)
            assert c is not None

    t0 = time.perf_counter()
    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    wall = time.perf_counter() - t0
    total_mb = msg_size * n_msgs / 1e6
    return total_mb / wall if wall > 0 else float("inf")


def run(quick: bool = True) -> ExperimentResult:
    n_events = 50_000 if quick else 400_000
    n_msgs = 30 if quick else 200

    evs, fired = _bare_kernel_events_per_sec(n_events)
    small = _copy_path_mb_per_sec(4 * KiB, n_msgs)
    large = _copy_path_mb_per_sec(1 * MiB, max(4, n_msgs // 8))

    rows = [
        ["bare kernel", f"{evs:,.0f}", "events/s"],
        ["bare kernel", f"{fired:,}", "events fired"],
        ["copy path 4 KiB puts", f"{small:,.1f}", "MB/s"],
        ["copy path 1 MiB puts", f"{large:,.1f}", "MB/s"],
    ]
    checks = {
        # loose, machine-independent floors: even a slow CI box clears
        # these by an order of magnitude with the optimised hot path
        "bare kernel sustains > 50k events/s": evs > 50_000,
        "copy path moves > 1 MB/s of payload (4 KiB msgs)": small > 1.0,
        "large puts amortise per-message overhead (1 MiB > 4 KiB MB/s)":
            large > small,
    }
    return ExperimentResult(
        exp_id="R18",
        title="simulator wall-clock throughput (host time, NOT simulated)",
        headers=["microbenchmark", "rate", "unit"],
        rows=rows,
        checks=checks,
        notes=("Host wall-clock rates — these vary by machine and are a "
               "regression guard for the hot-path optimisations, not a "
               "reconstruction of a paper figure.  Simulated-time results "
               "are pinned by the golden-trace determinism tests."))
