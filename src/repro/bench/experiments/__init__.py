"""Reconstructed experiments R1–R11 (see DESIGN.md §4 for the index).

Each module exposes ``run(quick=True) -> ExperimentResult``.  ``quick``
trims sweep points and repetition counts so the pytest-benchmark suite
stays fast; the CLI (``python -m repro.bench``) runs the full versions.
"""

from . import (
    r1_latency,
    r2_bandwidth,
    r3_msgrate,
    r4_ledger,
    r5_overlap,
    r6_rcache,
    r7_backends,
    r8_parcels,
    r9_stencil,
    r10_bfs,
    r11_collectives,
    r12_eager_threshold,
    r13_gups,
    r14_incast,
    r15_coalescing,
    r16_samplesort,
    r17_faults,
    r18_walltime,
    r19_chaos,
    r20_kvstore,
    r21_snapshots,
    r22_kernel,
    r23_am,
)

ALL = {
    "r1": r1_latency,
    "r2": r2_bandwidth,
    "r3": r3_msgrate,
    "r4": r4_ledger,
    "r5": r5_overlap,
    "r6": r6_rcache,
    "r7": r7_backends,
    "r8": r8_parcels,
    "r9": r9_stencil,
    "r10": r10_bfs,
    "r11": r11_collectives,
    "r12": r12_eager_threshold,
    "r13": r13_gups,
    "r14": r14_incast,
    "r15": r15_coalescing,
    "r16": r16_samplesort,
    "r17": r17_faults,
    "r18": r18_walltime,
    "r19": r19_chaos,
    "r20": r20_kvstore,
    "r21": r21_snapshots,
    "r22": r22_kernel,
    "r23": r23_am,
}

__all__ = ["ALL"] + [f"r{i}_{n}" for i, n in []]
