"""R6 — registration-cost table (pin cost and the registration cache).

Mean put latency over a working set of distinct buffers, three ways:

- *uncached*: registration cache disabled — every operation pins and
  unpins (the naive baseline);
- *cold*: cache enabled, first pass over the working set — every buffer
  misses once;
- *warm*: second pass over the same buffers — pure hits.

Expected shape: warm ≈ raw put latency; cold adds the pin cost once per
buffer; uncached pays pin+unpin on every single operation.  This is the
cost Photon's buffer API amortises for runtimes.

Two further sections stress the cache machinery itself:

- *occupancy sweep*: warm-hit lookup probes per hit at growing cache
  occupancy — the interval index should keep this flat (O(log n) bisect
  plus a bounded candidate probe), not linear in entries;
- *eviction under load*: a working set larger than the cache with many
  operations in flight — eviction of in-use registrations must defer
  (never deregister under an active WR), payloads must arrive intact,
  and the reg/dereg ledger must balance after a flush.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...photon import PhotonConfig, photon_init
from ...photon.rcache import assert_reg_balance
from ..result import ExperimentResult

SIZE = 16384  # 4 pages per buffer


def _alloc_gapped(node, n, size):
    """Page allocations separated by pad bytes so ranges never touch
    (keeps merge-on-miss from collapsing the working set)."""
    addrs = []
    for _ in range(n):
        addrs.append(node.memory.alloc(size, align=4096))
        node.memory.alloc(64)
    return addrs


def _put_pass(ep, bufs, dst_buf, passes: int):
    """Average per-put time over `passes` passes of the working set."""
    env = ep.env
    times = []
    for _ in range(passes):
        t0 = env.now
        for addr in bufs:
            rid = yield from ep.post_os_put(1, addr, SIZE, dst_buf.addr,
                                            dst_buf.rkey)
            yield from ep.wait(rid, timeout_ns=10 ** 12)
            ep.free_request(rid)
        times.append((env.now - t0) / len(bufs))
    return times


def _measure(n_buffers: int, enabled: bool):
    cfg = PhotonConfig(rcache_enabled=enabled,
                       rcache_capacity=max(n_buffers * 2, 16))
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    # working set of *unregistered* buffers (plain allocations)
    bufs = _alloc_gapped(cl[0], n_buffers, SIZE)
    dst = ph[1].buffer(SIZE)
    out = {}

    def prog(env):
        times = yield from _put_pass(ph[0], bufs, dst, passes=2)
        out["cold"], out["warm"] = times[0], times[1]

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    out["hits"] = ph[0].rcache.hits
    out["misses"] = ph[0].rcache.misses
    return out


def _occupancy_probe(occupancy: int) -> float:
    """Fill the cache to ``occupancy`` live entries, then measure lookup
    probes per warm hit over a full pass."""
    cfg = PhotonConfig(rcache_capacity=occupancy * 2)
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    rcache = ph[0].rcache
    bufs = _alloc_gapped(cl[0], occupancy, 4096)
    out = {}

    def prog(env):
        for a in bufs:  # cold pass: fill to `occupancy` entries
            mr = yield from rcache.acquire(a, 4096)
            yield from rcache.release(mr)
        probes0, hits0 = rcache.lookup_probes, rcache.hits
        for a in bufs:  # warm pass: every acquire is a hit
            mr = yield from rcache.acquire(a, 4096)
            yield from rcache.release(mr)
        out["probes_per_hit"] = ((rcache.lookup_probes - probes0)
                                 / (rcache.hits - hits0))
        out["occupancy"] = rcache.size

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    assert out["occupancy"] == occupancy
    return out["probes_per_hit"]


def _eviction_under_load(n_ops: int, capacity: int):
    """Post ``n_ops`` puts from distinct buffers without waiting, with a
    cache far smaller than the in-flight window: evictions must defer."""
    cfg = PhotonConfig(rcache_capacity=capacity)
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    size = 4096
    srcs = _alloc_gapped(cl[0], n_ops, size)
    for i, a in enumerate(srcs):
        cl[0].memory.write(a, bytes([i % 251]) * size)
    dst = ph[1].buffer(size * n_ops)
    out = {}

    def prog(env):
        rids = []
        for i, a in enumerate(srcs):  # all in flight at once
            rid = yield from ph[0].post_os_put(1, a, size,
                                               dst.addr + i * size, dst.rkey)
            rids.append(rid)
        yield from ph[0].wait_all(rids, timeout_ns=10 ** 12)
        for rid in rids:
            ph[0].free_request(rid)
        out["intact"] = all(
            cl[1].memory.read(dst.addr + i * size, size)
            == bytes([i % 251]) * size for i in range(n_ops))
        out["deferred"] = ph[0].rcache.deferred_evictions
        out["peak_mb"] = ph[0].rcache.pinned_bytes_peak / 2 ** 20
        yield env.timeout(10 ** 9)  # drain spawned releases/deregs
        for ep in ph:
            yield from ep.rcache.flush()

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    try:
        assert_reg_balance(cl.counters,
                           [cl[i].context for i in range(cl.n)])
        out["balanced"] = True
    except AssertionError:
        out["balanced"] = False
    return out


def run(quick: bool = True) -> ExperimentResult:
    n_buffers = 8 if quick else 32
    cached = _measure(n_buffers, enabled=True)
    uncached = _measure(n_buffers, enabled=False)
    occupancies = [16, 256] if quick else [16, 256, 2048]
    probes = {n: _occupancy_probe(n) for n in occupancies}
    load = _eviction_under_load(n_ops=16 if quick else 48, capacity=4)
    rows = [
        ["uncached (pin every op)", uncached["cold"] / 1000,
         uncached["warm"] / 1000, uncached["hits"], uncached["misses"]],
        ["rcache cold pass", cached["cold"] / 1000, "-",
         "-", "-"],
        ["rcache warm pass", "-", cached["warm"] / 1000,
         cached["hits"], cached["misses"]],
    ]
    for n in occupancies:
        rows.append([f"warm lookup @ {n} entries (probes/hit)", "-",
                     round(probes[n], 3), "-", "-"])
    rows.append(["eviction under load (deferred evictions)", "-",
                 load["deferred"], "-", "-"])
    checks = {
        "warm (cached) puts are faster than cold puts":
            cached["warm"] < cached["cold"],
        "warm cached puts beat the uncached baseline":
            cached["warm"] < uncached["warm"],
        "cache hit count equals the second-pass put count":
            cached["hits"] == n_buffers,
        "uncached mode never hits":
            uncached["hits"] == 0,
        "pin cost dominates the cold/warm gap (>= 1.3x)":
            cached["cold"] >= 1.3 * cached["warm"],
        "warm-hit lookup cost is flat in occupancy (no linear scan)":
            probes[occupancies[-1]] <= max(2.0, 1.5 * probes[occupancies[0]]),
        "eviction under load defers in-use registrations":
            load["deferred"] > 0,
        "payloads intact across deferred evictions":
            load["intact"],
        "reg/dereg ledger balances after flush (no pin leak)":
            load["balanced"],
    }
    return ExperimentResult(
        exp_id="R6",
        title=f"registration cache: mean 16KiB put latency (us), "
              f"{n_buffers}-buffer working set; lookup scaling + "
              f"eviction under load",
        headers=["configuration", "pass 1 (cold)", "pass 2 (warm)",
                 "hits", "misses"],
        rows=rows,
        checks=checks)
