"""R6 — registration-cost table (pin cost and the registration cache).

Mean put latency over a working set of distinct buffers, three ways:

- *uncached*: registration cache disabled — every operation pins and
  unpins (the naive baseline);
- *cold*: cache enabled, first pass over the working set — every buffer
  misses once;
- *warm*: second pass over the same buffers — pure hits.

Expected shape: warm ≈ raw put latency; cold adds the pin cost once per
buffer; uncached pays pin+unpin on every single operation.  This is the
cost Photon's buffer API amortises for runtimes.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...photon import PhotonConfig, photon_init
from ..result import ExperimentResult

SIZE = 16384  # 4 pages per buffer


def _put_pass(ep, bufs, dst_buf, passes: int):
    """Average per-put time over `passes` passes of the working set."""
    env = ep.env
    times = []
    for _ in range(passes):
        t0 = env.now
        for addr in bufs:
            rid = yield from ep.post_os_put(1, addr, SIZE, dst_buf.addr,
                                            dst_buf.rkey)
            yield from ep.wait(rid, timeout_ns=10 ** 12)
            ep.free_request(rid)
        times.append((env.now - t0) / len(bufs))
    return times


def _measure(n_buffers: int, enabled: bool):
    cfg = PhotonConfig(rcache_enabled=enabled,
                       rcache_capacity=max(n_buffers * 2, 16))
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    # working set of *unregistered* buffers (plain allocations)
    bufs = [cl[0].memory.alloc(SIZE, align=4096) for _ in range(n_buffers)]
    dst = ph[1].buffer(SIZE)
    out = {}

    def prog(env):
        times = yield from _put_pass(ph[0], bufs, dst, passes=2)
        out["cold"], out["warm"] = times[0], times[1]

    p = cl.env.process(prog(cl.env))
    cl.env.run(until=p)
    out["hits"] = ph[0].rcache.hits
    out["misses"] = ph[0].rcache.misses
    return out


def run(quick: bool = True) -> ExperimentResult:
    n_buffers = 8 if quick else 32
    cached = _measure(n_buffers, enabled=True)
    uncached = _measure(n_buffers, enabled=False)
    rows = [
        ["uncached (pin every op)", uncached["cold"] / 1000,
         uncached["warm"] / 1000, uncached["hits"], uncached["misses"]],
        ["rcache cold pass", cached["cold"] / 1000, "-",
         "-", "-"],
        ["rcache warm pass", "-", cached["warm"] / 1000,
         cached["hits"], cached["misses"]],
    ]
    checks = {
        "warm (cached) puts are faster than cold puts":
            cached["warm"] < cached["cold"],
        "warm cached puts beat the uncached baseline":
            cached["warm"] < uncached["warm"],
        "cache hit count equals the second-pass put count":
            cached["hits"] == n_buffers,
        "uncached mode never hits":
            uncached["hits"] == 0,
        "pin cost dominates the cold/warm gap (>= 1.3x)":
            cached["cold"] >= 1.3 * cached["warm"],
    }
    return ExperimentResult(
        exp_id="R6",
        title=f"registration cache: mean 16KiB put latency (us), "
              f"{n_buffers}-buffer working set",
        headers=["configuration", "pass 1 (cold)", "pass 2 (warm)",
                 "hits", "misses"],
        rows=rows,
        checks=checks)
