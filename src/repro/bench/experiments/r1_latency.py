"""R1 — small-message latency (reconstruction of the latency figure).

Half-round-trip latency vs message size for Photon PWC put, Photon eager
send, Photon os_put (origin-observed), minimpi send/recv and minimpi RMA
put+flush, all on the ib-fdr preset.

Expected shape: PWC and the eager send beat two-sided MPI across small
sizes (no matching, no bounce copies); RMA+flush is origin-observed and
pays the full ack round trip; curves converge as serialisation dominates.
"""

from __future__ import annotations

from ...util.fmt import format_size
from ..microbench import (
    pingpong_mpi,
    pingpong_mpi_rma,
    pingpong_photon,
)
from ..result import ExperimentResult

SIZES_QUICK = [8, 64, 512, 4096]
SIZES_FULL = [8, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]


def run(quick: bool = True) -> ExperimentResult:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    reps = 10 if quick else 50
    rows = []
    series = {}
    for size in sizes:
        pwc = pingpong_photon(size, reps=reps, mode="pwc").mean_us
        snd = pingpong_photon(size, reps=reps, mode="send").mean_us
        put = pingpong_photon(size, reps=reps, mode="put").mean_us
        mpi = pingpong_mpi(size, reps=reps).mean_us
        rma = pingpong_mpi_rma(size, reps=reps).mean_us
        series[size] = (pwc, snd, put, mpi, rma)
        rows.append([format_size(size), pwc, snd, put, mpi, rma])

    small = [s for s in sizes if s <= 512]
    checks = {
        "photon PWC beats MPI send/recv at small sizes":
            all(series[s][0] < series[s][3] for s in small),
        "photon eager send beats MPI send/recv at small sizes":
            all(series[s][1] < series[s][3] for s in small),
        "MPI RMA put+flush is the slowest small-message option":
            all(series[s][4] >= max(series[s][0], series[s][1])
                for s in small),
        "latency grows with size for every transport":
            all(series[sizes[-1]][k] > series[sizes[0]][k]
                for k in range(5)),
    }
    return ExperimentResult(
        exp_id="R1",
        title="small-message half-round-trip latency (us), ib-fdr",
        headers=["size", "pwc", "pwc-send", "os_put(origin)",
                 "mpi send/recv", "mpi rma put+flush"],
        rows=rows,
        checks=checks,
        notes=("os_put and RMA columns are origin-observed full completion "
               "times (include the ack round trip); the others are "
               "half-round-trip echoes."))
