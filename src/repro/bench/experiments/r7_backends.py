"""R7 — backend comparison table.

The identical Photon protocol code on every backend: small-message PWC
latency, large-message bandwidth and eager message rate across the verbs
(IB-FDR), verbs-edr (IB-EDR), ugni (Gemini torus, ledger completions),
roce and sw (kernel sockets) backends.

Expected shape: EDR has the highest bandwidth; FDR/EDR/Gemini cluster at
~1-2 us latency with Gemini's shallow per-hop latency competitive at two
ranks; RoCE sits above IB; the sw backend is an order of magnitude worse
across the board — the reason the paper's middleware targets native RDMA.
"""

from __future__ import annotations

from ...photon.backends import backend
from ...sim.core import SimulationError
from ..result import ExperimentResult

from ...cluster import build_cluster
from ...photon import photon_init
from ...util.units import to_gbps


def _latency(b, reps: int) -> float:
    cl = build_cluster(2, params=b.fabric)
    ph = photon_init(cl, b.config)
    bufs = [ep.buffer(64) for ep in ph]
    samples = []

    def side(rank):
        ep = ph[rank]
        other = 1 - rank
        env = cl.env
        for it in range(reps + 3):
            if rank == 0:
                t0 = env.now
                yield from ep.put_pwc(other, bufs[0].addr, 8, bufs[1].addr,
                                      bufs[1].rkey, remote_cid=it)
                c = yield from ep.wait_completion("remote",
                                                  timeout_ns=10 ** 12)
                if it >= 3:
                    samples.append((env.now - t0) / 2)
            else:
                c = yield from ep.wait_completion("remote",
                                                  timeout_ns=10 ** 12)
                yield from ep.put_pwc(other, bufs[1].addr, 8, bufs[0].addr,
                                      bufs[0].rkey, remote_cid=it)

    p0 = cl.env.process(side(0))
    p1 = cl.env.process(side(1))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    return sum(samples) / len(samples) / 1000.0


def _bandwidth(b, size: int = 1 << 20) -> float:
    cl = build_cluster(2, params=b.fabric)
    ph = photon_init(cl, b.config)
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    out = {}

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, 4096, dst.addr, dst.rkey,
                                 local_cid=0)
        yield from ph[0].wait_completion("local", timeout_ns=10 ** 12)
        t0 = env.now
        for i in range(8):
            yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                     local_cid=i + 1)
        for _ in range(8):
            c = yield from ph[0].wait_completion("local", timeout_ns=10 ** 12)
            if c is None:
                raise SimulationError("backend bw stalled")
        out["gbps"] = to_gbps(size * 8, env.now - t0)

    p = cl.env.process(sender(cl.env))
    cl.env.run(until=p)
    return out["gbps"]


def _msgrate(b, count: int) -> float:
    cl = build_cluster(2, params=b.fabric)
    ph = photon_init(cl, b.config)
    out = {}

    def sender(env):
        for i in range(count):
            yield from ph[0].send_pwc(1, b"x" * 16, remote_cid=i)

    def receiver(env):
        m = yield from ph[1].wait_message(timeout_ns=10 ** 12)
        t0 = env.now
        for _ in range(count - 1):
            m = yield from ph[1].wait_message(timeout_ns=10 ** 12)
        out["rate"] = (count - 1) / ((env.now - t0) / 1e9) / 1e6

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    return out["rate"]


def run(quick: bool = True) -> ExperimentResult:
    names = ["verbs", "verbs-edr", "ugni", "roce", "sw"]
    reps = 10 if quick else 40
    count = 200 if quick else 500
    rows = []
    data = {}
    for name in names:
        b = backend(name)
        lat = _latency(b, reps)
        bw = _bandwidth(b)
        rate = _msgrate(b, count)
        data[name] = (lat, bw, rate)
        rows.append([name, lat, bw, rate])

    checks = {
        "EDR delivers the highest bandwidth":
            data["verbs-edr"][1] == max(d[1] for d in data.values()),
        "sw backend latency is >= 3x any RDMA backend":
            data["sw"][0] >= 3 * max(data[n][0] for n in names
                                     if n != "sw"),
        "sw backend has the lowest message rate":
            data["sw"][2] == min(d[2] for d in data.values()),
        "RoCE latency sits above native IB":
            data["roce"][0] > data["verbs"][0],
        "all RDMA backends stay under 3 us small-message latency":
            all(data[n][0] < 3.0 for n in names if n != "sw"),
    }
    return ExperimentResult(
        exp_id="R7",
        title="backend comparison: 8B PWC latency / 1MiB put bw / 16B rate",
        headers=["backend", "latency us", "bandwidth Gbit/s", "Mmsgs/s"],
        rows=rows,
        checks=checks,
        notes="identical protocol code on every backend; only fabric "
              "parameters and completion mechanism differ.")
