"""R5 — communication/computation overlap (reconstruction).

A 1 MiB transfer is launched while the *receiver* computes for T_c before
looking at the network.  One-sided Photon puts land regardless of what the
target CPU does, so total ≈ max(T_c, transfer).  Two-sided rendezvous
cannot move data until the receiver's progress engine answers the RTS, so
total ≈ T_c + transfer.  Overlap%% = how much of the transfer hid behind
the compute.
"""

from __future__ import annotations

from ..microbench import overlap_mpi, overlap_photon
from ..result import ExperimentResult

SIZE = 1 << 20


def _overlap_pct(total: int, base: int, compute: int) -> float:
    """Fraction of the base transfer hidden behind the compute."""
    if compute == 0 or base == 0:
        return 0.0
    hidden = base + compute - total
    return max(0.0, min(1.0, hidden / min(base, compute))) * 100.0


def run(quick: bool = True) -> ExperimentResult:
    base_ph = overlap_photon(SIZE, 0)
    base_mp = overlap_mpi(SIZE, 0)
    fractions = [0.5, 1.0, 2.0] if quick else [0.25, 0.5, 1.0, 1.5, 2.0]
    rows = [["0.0x", base_ph / 1000, base_mp / 1000, 0.0, 0.0]]
    series = {}
    for frac in fractions:
        compute = int(base_ph * frac)
        tot_ph = overlap_photon(SIZE, compute)
        tot_mp = overlap_mpi(SIZE, compute)
        ov_ph = _overlap_pct(tot_ph, base_ph, compute)
        ov_mp = _overlap_pct(tot_mp, base_mp, compute)
        series[frac] = (tot_ph, tot_mp, ov_ph, ov_mp)
        rows.append([f"{frac}x", tot_ph / 1000, tot_mp / 1000, ov_ph, ov_mp])

    full = 1.0
    top = max(fractions)
    checks = {
        "photon hides >=90% of the transfer behind equal-sized compute":
            series[full][2] >= 90.0,
        # MPI overlaps only the RTS handshake, never the data fetch: at
        # large compute the credit from the handshake washes out.
        "two-sided rendezvous hides <=35% at the largest compute":
            series[top][3] <= 35.0,
        "photon total stays ~flat while compute < transfer":
            series[0.5][0] <= base_ph * 1.05,
        "mpi total grows ~additively with compute beyond the handshake":
            series[top][1] >= base_mp + (top - 0.6) * base_ph,
    }
    return ExperimentResult(
        exp_id="R5",
        title="receiver-side overlap, 1 MiB transfer, ib-fdr",
        headers=["compute (x transfer)", "photon total us", "mpi total us",
                 "photon overlap %", "mpi overlap %"],
        rows=rows,
        checks=checks,
        notes="receiver computes first, then calls into the library; "
              "one-sided puts progress during the compute, rendezvous "
              "cannot start until the receiver polls.")
