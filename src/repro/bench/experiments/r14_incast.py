"""R14 — incast congestion and topology sensitivity.

N-1 ranks simultaneously stream a fixed-size put to rank 0.  On the star
topology the victim's downlink is the shared bottleneck, so completion
time grows ~linearly with the number of senders; on the Gemini-style
torus, traffic converges over multiple ejection paths but the single
ejection link still serialises — the experiment quantifies both, a
fabric-model validation the middleware results rest on.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...photon import photon_init
from ...sim.core import SimulationError
from ..result import ExperimentResult

SIZE = 256 * 1024


def _incast(n: int, params: str, topology: str) -> float:
    """Time until the victim saw all n-1 remote completions (us)."""
    cl = build_cluster(n, params=params, topology=topology)
    ph = photon_init(cl)
    dst = ph[0].buffer(SIZE * (n - 1))
    srcs = [ph[r].buffer(SIZE) if r else None for r in range(n)]
    out = {}

    def sender(env, rank):
        yield from ph[rank].put_pwc(
            0, srcs[rank].addr, SIZE, dst.addr + (rank - 1) * SIZE,
            dst.rkey, remote_cid=rank)

    def victim(env):
        t0 = env.now
        got = 0
        while got < n - 1:
            c = yield from ph[0].wait_completion("remote",
                                                 timeout_ns=10 ** 12)
            if c is None:
                raise SimulationError("incast stalled")
            got += 1
        out["elapsed"] = env.now - t0

    procs = [cl.env.process(sender(cl.env, r)) for r in range(1, n)]
    procs.append(cl.env.process(victim(cl.env)))
    cl.env.run(until=cl.env.all_of(procs))
    return out["elapsed"] / 1000.0


def run(quick: bool = True) -> ExperimentResult:
    fanins = [2, 4] if quick else [2, 4, 8]
    rows = []
    star = {}
    torus = {}
    for n in fanins:
        star[n] = _incast(n + 1, "ib-fdr", "star")
        torus[n] = _incast(n + 1, "gemini", "torus2d")
        rows.append([n, star[n], torus[n],
                     star[n] / star[fanins[0]],
                     torus[n] / torus[fanins[0]]])

    first, last = fanins[0], fanins[-1]
    expected_ratio = last / first
    checks = {
        "star incast scales ~linearly with fan-in (shared downlink)":
            0.7 * expected_ratio <= star[last] / star[first]
            <= 1.3 * expected_ratio,
        "torus incast also serialises at the ejection link":
            torus[last] > torus[first] * 1.5,
        "single-sender baseline is bandwidth-bound, not latency-bound":
            star[first] > 30.0,  # 2x256KiB at 54 Gbit/s ~ 78 us
    }
    return ExperimentResult(
        exp_id="R14",
        title=f"incast: time for N senders x {SIZE // 1024}KiB into one "
              "victim (us)",
        headers=["senders", "star/ib-fdr", "torus/gemini",
                 "star scaling", "torus scaling"],
        rows=rows,
        checks=checks,
        notes="scaling columns are normalised to the smallest fan-in; "
              "~N means the victim link is the bottleneck.")
