"""R9 — application: 2-D Jacobi weak scaling (reconstruction).

Fixed rows-per-rank weak scaling of the halo-exchange stencil, Photon
(one-sided halo puts with completion ids) vs minimpi (sendrecv).  Both
variants verify bit-identically against the sequential reference inside
the experiment.

Expected shape: Photon's per-iteration time is lower (halo rows land
without matching or rendezvous) and its communication fraction smaller;
both grow with rank count as the halo chain deepens.
"""

from __future__ import annotations

from ...apps import (
    assemble,
    initial_grid,
    reference_jacobi,
    run_stencil_mpi,
    run_stencil_photon,
)
from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ..result import ExperimentResult

import numpy as np

RANKS_QUICK = [2, 4]
RANKS_FULL = [2, 4, 8]
ROWS_PER_RANK = 16
COLS = 64
ITERS = 8


def _once(transport: str, n: int):
    rows = ROWS_PER_RANK * n
    cl = build_cluster(n, params="ib-fdr")
    if transport == "photon":
        ph = photon_init(cl)
        programs, results = run_stencil_photon(cl, ph, rows, COLS, ITERS)
    else:
        comms = mpi_init(cl)
        programs, results = run_stencil_mpi(cl, comms, rows, COLS, ITERS)
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))
    got = assemble(results, rows, COLS, n)
    want = reference_jacobi(initial_grid(rows, COLS), ITERS)
    correct = bool(np.array_equal(got, want))
    elapsed = max(r.elapsed_ns for r in results)
    comm = max(r.comm_ns for r in results)
    return elapsed / ITERS, comm / max(r.elapsed_ns for r in results), correct


def run(quick: bool = True) -> ExperimentResult:
    ranks = RANKS_QUICK if quick else RANKS_FULL
    rows = []
    series = {}
    ok = True
    for n in ranks:
        per_ph, frac_ph, ok1 = _once("photon", n)
        per_mp, frac_mp, ok2 = _once("mpi", n)
        ok = ok and ok1 and ok2
        series[n] = (per_ph, per_mp, frac_ph, frac_mp)
        rows.append([n, per_ph / 1000, per_mp / 1000, per_mp / per_ph,
                     100 * frac_ph, 100 * frac_mp])

    checks = {
        "both variants verify against the sequential reference": ok,
        "photon per-iteration time beats MPI at every scale":
            all(series[n][0] < series[n][1] for n in ranks),
        "photon communication fraction is lower than MPI's":
            all(series[n][2] < series[n][3] for n in ranks),
    }
    return ExperimentResult(
        exp_id="R9",
        title=f"2-D Jacobi weak scaling ({ROWS_PER_RANK} rows/rank x "
              f"{COLS} cols, {ITERS} iters)",
        headers=["ranks", "photon us/iter", "mpi us/iter", "speedup",
                 "photon comm %", "mpi comm %"],
        rows=rows,
        checks=checks)
