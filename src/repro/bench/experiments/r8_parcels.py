"""R8 — runtime parcel rate (reconstruction of the runtime figure).

The parcel runtime floods parcels from rank 0 to rank 1 over the
Photon-PWC transport vs the MPI-ISIR transport; the metric is the
receiver-observed parcels/second by payload size.

Expected shape: the PWC transport sustains a higher parcel rate at small
and medium payloads (eager ledger delivery with probe dispatch vs
wildcard-irecv matching with bounce copies), converging as payloads grow
bandwidth-bound.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ...runtime import ActionRegistry, build_runtime
from ...sim.core import SimulationError
from ...util.fmt import format_size
from ..result import ExperimentResult

SIZES_QUICK = [64, 1024]
SIZES_FULL = [16, 64, 256, 1024, 4096, 16384]


def _flood(transport: str, size: int, count: int) -> float:
    cl = build_cluster(2, params="ib-fdr")
    registry = ActionRegistry()
    if transport == "photon":
        ph = photon_init(cl)
        rts = build_runtime(cl, registry, "photon", photon=ph,
                            max_parcel=1 << 20)
    else:
        comms = mpi_init(cl)
        rts = build_runtime(cl, registry, "mpi", comms=comms,
                            max_parcel=1 << 20)
    registry.register("work", lambda rt, src, data: None)
    payload = bytes(size)
    out = {}

    def sender(env):
        for _ in range(count):
            yield from rts[0].send(1, "work", payload)

    def receiver(env):
        ok = yield from rts[1].process_n(1, timeout_ns=10 ** 12)
        t0 = env.now
        ok = yield from rts[1].process_n(count - 1, timeout_ns=10 ** 12)
        if not ok:
            raise SimulationError("parcel flood stalled")
        out["elapsed"] = env.now - t0

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    return (count - 1) / (out["elapsed"] / 1e9)


def run(quick: bool = True) -> ExperimentResult:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    count = 200 if quick else 500
    rows = []
    series = {}
    for size in sizes:
        rph = _flood("photon", size, count) / 1e6
        rmp = _flood("mpi", size, count) / 1e6
        series[size] = (rph, rmp)
        rows.append([format_size(size), rph, rmp, rph / rmp])

    checks = {
        "photon transport sustains a higher parcel rate at every size":
            all(series[s][0] > series[s][1] for s in sizes),
        "the gap is largest for the smallest parcels":
            (series[sizes[0]][0] / series[sizes[0]][1])
            >= (series[sizes[-1]][0] / series[sizes[-1]][1]) * 0.95,
        "photon small-parcel rate is at least 1.2x MPI":
            series[sizes[0]][0] / series[sizes[0]][1] >= 1.2,
    }
    return ExperimentResult(
        exp_id="R8",
        title=f"runtime parcel rate (Mparcels/s), {count}-parcel flood",
        headers=["payload", "photon-pwc", "mpi-isir", "ratio"],
        rows=rows,
        checks=checks)
