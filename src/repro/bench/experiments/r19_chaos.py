"""R19 — crash, detection and recovery under chaos orchestration.

A 3-rank cluster runs a ring of PWC puts while the chaos controller
executes a fixed fault schedule: rank 2 fail-stops at 2 ms and restarts
in place at 4 ms.  Every rank runs the heartbeat/phi-accrual health
layer (:mod:`repro.runtime.health`); the photon endpoints and a circuit
breaker consume its death/join callbacks.

The scenario measures the full fault lifecycle from the observability
spans:

- **detection latency** — ``health.detect`` spans on the survivors:
  last heartbeat seen from the victim → DEAD declaration.  With a 50 us
  period and phi_dead = 6 the budget is ``6 * 50 us * ln 10 ~= 690 us``.
- **dead-peer settle** — an op posted *after* the crash but *before*
  detection settles with ``WCStatus.PEER_DEAD`` at detection time,
  instead of burning the full deadline + retry budget (~2.5 ms here).
  A second op posted after detection fast-fails immediately.
- **recovery time** — ``health.outage`` spans: DEAD declaration →
  first heartbeat of the victim's new incarnation after rejoin.

Safety properties are checked by :mod:`repro.chaos.invariants`: no
duplicate delivery despite replay, registration balance across the
crash/restart (the victim's pins die with it; rejoin's cache flush must
restore the books), breaker state-machine legality, and membership
monotonicity on every surviving monitor.
"""

from __future__ import annotations

from ...chaos import (ChaosController, CrashRank, FaultSchedule,
                      RestartRank, check_all)
from ...cluster import build_cluster
from ...photon import PhotonConfig, photon_init
from ...runtime.health import HealthConfig, build_health
from ...runtime.transport import PhotonTransport
from ...sim.core import SimulationError
from ...verbs.enums import WCStatus
from ..result import ExperimentResult

N = 3
VICTIM = 2
SIZE = 4096
WAIT = 10 ** 12

T_CRASH = 2_000_000      # 2 ms
T_RESTART = 4_000_000    # 4 ms

HB_PERIOD = 50_000
PHI_DEAD = 6.0
#: phi-accrual detection budget on a quiet fabric (mean == period)
DETECT_BUDGET_NS = int(PHI_DEAD * HB_PERIOD * 2.302585)
#: what the probe op would burn without a detector: full deadline+retry
RETRY_BUDGET_NS = 6 * 400_000

PROBE_CID = 10_000
FAST_CID = 10_001
SIDE_CID = 10_002
REJOIN_CID = 10_003
BACK_CID = 10_004


def _pattern(seed: int) -> bytes:
    return bytes((seed + i) % 256 for i in range(256)) * (SIZE // 256)


def run_scenario(quick: bool = True) -> dict:
    """Execute the canned crash/restart scenario; returns raw results
    (shared by :func:`run`, the chaos CLI and the test suite)."""
    n_msgs = 6 if quick else 20
    cl = build_cluster(N, "ib-fdr", seed=42, trace=True, spans=True)
    # use_imm off: immediate-mode completions skip target-side dedup, and
    # the no-duplicate-delivery invariant needs the deduped ledger path
    ph = photon_init(cl, PhotonConfig(
        use_imm=False, max_op_retries=5, op_timeout_ns=400_000,
        backoff_base_ns=20_000, backoff_jitter_ns=80_000))
    monitors = build_health(cl, HealthConfig(period_ns=HB_PERIOD,
                                             phi_dead=PHI_DEAD))
    for r in range(N):
        ph[r].attach_health(monitors[r])
    # a breaker on rank 0 rides along purely for its transition log
    tp = PhotonTransport(ph[0])
    tp.attach_health(monitors[0])

    ctrl = ChaosController(
        cl, FaultSchedule([CrashRank(T_CRASH, VICTIM),
                           RestartRank(T_RESTART, VICTIM)]),
        photon=ph, monitors=monitors)
    ctrl.arm()

    bufs = [ph[r].buffer(SIZE) for r in range(N)]
    for r in range(N):
        cl[r].memory.write(bufs[r].addr, _pattern(r))
    scratch = [ph[r].buffer(SIZE) for r in range(N)]

    delivered = []            # (src, cid) pairs for the no-dup invariant
    out = {"phase_a_done": 0}

    def ring_sender(env, rank):
        """Phase A: stop-and-wait puts around the ring (pre-crash)."""
        dst = (rank + 1) % N
        for i in range(n_msgs):
            cid = rank * 1000 + i + 1
            yield from ph[rank].put_pwc(
                dst, bufs[rank].addr, SIZE, scratch[dst].addr,
                scratch[dst].rkey, local_cid=cid, remote_cid=cid)
            c = yield from ph[rank].wait_completion("local",
                                                    timeout_ns=WAIT)
            if c is None or not c.ok:
                raise SimulationError(f"phase A put {cid} failed")
        out["phase_a_done"] += 1

    def ring_receiver(env, rank):
        for _ in range(n_msgs):
            c = yield from ph[rank].wait_completion("remote",
                                                    timeout_ns=WAIT)
            if c is None:
                raise SimulationError(f"phase A receiver {rank} starved")
            delivered.append((rank, c.cid))

    def survivor_driver(env):
        """Phases B and C on rank 0 (sequential: one completion consumer)."""
        # --- phase B: victim is down but not yet detected -------------
        if env.now < T_CRASH + 50_000:
            yield env.timeout(T_CRASH + 50_000 - env.now)
        t_post = env.now
        yield from ph[0].put_pwc(VICTIM, bufs[0].addr, SIZE,
                                 scratch[VICTIM].addr, scratch[VICTIM].rkey,
                                 local_cid=PROBE_CID, remote_cid=PROBE_CID)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["probe_status"] = c.status
        out["probe_settle_ns"] = env.now - t_post
        out["detected_at_settle"] = monitors[0].is_dead(VICTIM)
        # --- post-detection: a fresh op fast-fails at post time -------
        t_post = env.now
        yield from ph[0].put_pwc(VICTIM, bufs[0].addr, SIZE,
                                 scratch[VICTIM].addr, scratch[VICTIM].rkey,
                                 local_cid=FAST_CID, remote_cid=FAST_CID)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["fast_status"] = c.status
        out["fast_settle_ns"] = env.now - t_post
        # --- survivor <-> survivor traffic keeps flowing --------------
        yield from ph[0].put_pwc(1, bufs[0].addr, SIZE, scratch[1].addr,
                                 scratch[1].rkey, local_cid=SIDE_CID,
                                 remote_cid=SIDE_CID)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["side_ok"] = c is not None and c.ok
        # --- phase C: wait for the victim's new incarnation -----------
        while monitors[0].is_dead(VICTIM) or "vic_buf" not in out:
            yield env.timeout(HB_PERIOD)
        yield env.timeout(4 * HB_PERIOD)  # let the re-armed pairing settle
        vic = out["vic_buf"]
        yield from ph[0].put_pwc(VICTIM, bufs[0].addr, SIZE, vic.addr,
                                 vic.rkey, local_cid=REJOIN_CID,
                                 remote_cid=REJOIN_CID)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        out["rejoin_put_ok"] = c is not None and c.ok

    def side_receiver(env):
        """Rank 1 consumes the outage-time survivor put."""
        c = yield from ph[1].wait_completion("remote", timeout_ns=WAIT)
        if c is not None:
            delivered.append((1, c.cid))

    def victim_driver(env):
        """The victim after restart: expose a fresh buffer, receive a
        payload-verified put, and put back to rank 0."""
        if env.now < T_RESTART:
            yield env.timeout(T_RESTART - env.now)
        while not ph[VICTIM].alive:
            yield env.timeout(HB_PERIOD)
        # crash wiped memory; register a *fresh* window (new rkey — the
        # pre-crash scratch rkey died with the old registrations)
        out["vic_buf"] = ph[VICTIM].buffer(SIZE)
        cl[VICTIM].memory.write(out["vic_buf"].addr, b"\x00" * SIZE)
        c = yield from ph[VICTIM].wait_completion("remote", timeout_ns=WAIT)
        if c is not None:
            delivered.append((VICTIM, c.cid))
        out["rejoin_payload_ok"] = (
            cl[VICTIM].memory.read(out["vic_buf"].addr, SIZE)
            == _pattern(0))
        out["t_workload_recovered"] = env.now
        yield from ph[VICTIM].put_pwc(0, out["vic_buf"].addr, SIZE,
                                      scratch[0].addr, scratch[0].rkey,
                                      local_cid=BACK_CID,
                                      remote_cid=BACK_CID)
        c = yield from ph[VICTIM].wait_completion("local", timeout_ns=WAIT)
        out["back_ok"] = c is not None and c.ok

    def back_receiver(env):
        c = yield from ph[0].wait_completion("remote", timeout_ns=WAIT)
        if c is not None:
            delivered.append((0, c.cid))

    env = cl.env
    procs = [env.process(ring_sender(env, r)) for r in range(N)]
    procs += [env.process(ring_receiver(env, r)) for r in range(N)]
    procs += [env.process(survivor_driver(env)),
              env.process(side_receiver(env)),
              env.process(victim_driver(env)),
              env.process(back_receiver(env))]
    env.run(until=env.all_of(procs))

    out.update({
        "cluster": cl, "photon": ph, "monitors": monitors,
        "transport": tp, "controller": ctrl, "delivered": delivered,
        "detect_ns": cl.metrics.span_durations("health.detect"),
        "outage_ns": cl.metrics.span_durations("health.outage"),
    })
    return out


def run(quick: bool = True, scenario: dict = None) -> ExperimentResult:
    r = scenario if scenario is not None else run_scenario(quick)
    cl = r["cluster"]
    detect = r["detect_ns"]
    outage = r["outage_ns"]

    invariants_ok = True
    invariant_msg = "all hold"
    try:
        check_all(cl, delivered=r["delivered"], transports=[r["transport"]],
                  monitors=[r["monitors"][i] for i in range(N)
                            if i != VICTIM])
    except AssertionError as exc:
        invariants_ok = False
        invariant_msg = str(exc)

    rows = [
        ["crash -> detect (us)",
         f"{min(detect) / 1000.0:.1f}" if detect else "-",
         f"{max(detect) / 1000.0:.1f}" if detect else "-"],
        ["detect -> rejoin (us)",
         f"{min(outage) / 1000.0:.1f}" if outage else "-",
         f"{max(outage) / 1000.0:.1f}" if outage else "-"],
        ["pending-op settle (us)", f"{r['probe_settle_ns'] / 1000.0:.1f}",
         f"budget {RETRY_BUDGET_NS / 1000.0:.0f}"],
        ["post-detect fast-fail (us)", f"{r['fast_settle_ns'] / 1000.0:.1f}",
         "-"],
        ["deliveries (deduped)", str(len(r["delivered"])), "-"],
        ["breaker transitions", str(len(r["transport"].breaker_log)), "-"],
    ]
    checks = {
        "both survivors detect the crash": len(detect) == 2,
        "detection latency within 2x phi budget":
            bool(detect) and max(detect) < 2 * DETECT_BUDGET_NS,
        "pending op settles PEER_DEAD well under the retry budget":
            r["probe_status"] is WCStatus.PEER_DEAD
            and r["probe_settle_ns"] < RETRY_BUDGET_NS // 2,
        "post-detection op fails fast (no deadline wait)":
            r["fast_status"] is WCStatus.PEER_DEAD
            and r["fast_settle_ns"] < 100_000,
        "survivor-survivor traffic flows during the outage":
            bool(r.get("side_ok")),
        "victim rejoins and the workload completes":
            bool(r.get("rejoin_put_ok")) and bool(r.get("rejoin_payload_ok"))
            and bool(r.get("back_ok")),
        "recovery bounded by the schedule gap":
            bool(outage)
            and max(outage) < (T_RESTART - T_CRASH) + 1_000_000,
        "invariants: no-dup, reg balance, breaker, membership":
            invariants_ok,
    }
    return ExperimentResult(
        exp_id="R19",
        title="chaos: rank fail-stop at 2ms, restart at 4ms — detection "
              "latency, dead-peer fast-fail, recovery time",
        headers=["metric", "min/value", "max/note"],
        rows=rows,
        checks=checks,
        notes=f"phi-accrual (period {HB_PERIOD // 1000}us, phi_dead "
              f"{PHI_DEAD:g}); invariants: {invariant_msg}")
