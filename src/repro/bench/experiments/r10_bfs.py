"""R10 — application: distributed BFS (reconstruction of the graph figure).

Level-synchronous BFS on a fixed Erdős–Rényi graph, strong scaling over
rank counts: Photon parcels (PWC transport) vs minimpi alltoallv.  Depths
verify against the sequential reference inside the experiment.

Expected shape: the parcel/PWC variant is faster — frontier batches are
many small irregular messages, the regime one-sided eager delivery is
built for — with the advantage persisting across scales.
"""

from __future__ import annotations

from ...apps import (
    make_graph,
    merge_depths,
    reference_depths,
    run_bfs_mpi,
    run_bfs_photon,
)
from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ..result import ExperimentResult

RANKS_QUICK = [2, 4]
RANKS_FULL = [2, 4, 8]


def _once(transport: str, n: int, adj, root: int):
    cl = build_cluster(n, params="ib-fdr")
    if transport == "photon":
        ph = photon_init(cl)
        programs, results = run_bfs_photon(cl, ph, adj, root)
    else:
        comms = mpi_init(cl)
        programs, results = run_bfs_mpi(cl, comms, adj, root)
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))
    elapsed = max(r.elapsed_ns for r in results)
    return elapsed, merge_depths(results)


def run(quick: bool = True) -> ExperimentResult:
    n_vertices = 300 if quick else 1500
    degree = 6.0
    adj = make_graph(n_vertices, degree, seed=11)
    want = reference_depths(adj, 0)
    ranks = RANKS_QUICK if quick else RANKS_FULL
    rows = []
    series = {}
    correct = True
    for n in ranks:
        t_ph, d_ph = _once("photon", n, adj, 0)
        t_mp, d_mp = _once("mpi", n, adj, 0)
        correct = correct and d_ph == want and d_mp == want
        series[n] = (t_ph, t_mp)
        rows.append([n, t_ph / 1e6, t_mp / 1e6, t_mp / t_ph])

    checks = {
        "both variants produce the reference BFS depths": correct,
        "photon parcels beat the alltoallv variant at every scale":
            all(series[n][0] < series[n][1] for n in ranks),
        "speedup is at least 1.1x somewhere":
            any(series[n][1] / series[n][0] >= 1.1 for n in ranks),
    }
    return ExperimentResult(
        exp_id="R10",
        title=f"distributed BFS, ER graph |V|={n_vertices} deg~{degree}",
        headers=["ranks", "photon ms", "mpi ms", "speedup"],
        rows=rows,
        checks=checks)
