"""R23 — active-message invocation: coalesced AM vs per-parcel vs ISIR.

Small-message request/reply throughput and invoke latency for the
runtime's active-message layer (:mod:`repro.runtime.am`), three arms:

- ``am/photon``: one eager PWC parcel per invocation (per-parcel sends);
- ``am/photon+coal``: invocations batched per destination by the
  coalescing transport (Seriema-style invocation coalescing);
- ``am/mpi-isir``: the same invocations over the two-sided
  irecv/isend transport.

A client floods ``count`` 16-byte echo invocations at one server,
pipelined under the AM layer's credit window (credit backpressure is
the only flow control), on a clean and a lossy fabric.  Expected shape:
coalescing multiplies delivered invocation throughput (per-message
overhead amortises across the batch) at a latency cost per invoke,
while the per-parcel PWC arm keeps the lowest p50 — the paper's
small-message argument, now at the RPC layer.  A Monte-Carlo Tree
Search row (4 ranks, fan-out invocations with tiny replies) exercises
the same machinery under an irregular app.
"""

from __future__ import annotations

from collections import deque

from ...apps.mcts import build_mcts, run_mcts
from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ...runtime import ActionRegistry, AmConfig, build_runtime
from ..result import ExperimentResult

PAYLOAD = 16  # bytes per invocation
WINDOW = 32   # invoke credits per destination (pipelining depth)


def _build(arm: str, lossy: bool, seed: int = 11):
    kw = dict(params="ib-fdr", seed=seed)
    if lossy:
        kw.update(link__loss_mode="lossy", link__drop_rate=0.02)
        if arm != "am/mpi-isir":
            # photon recovers drops through its own resend ladder; the
            # two-sided transport has no message-level retry, so it keeps
            # the NIC's link-layer retransmission
            kw["nic__transport_retries"] = 0
    cl = build_cluster(2, **kw)
    reg = ActionRegistry()
    reg.register("echo", lambda rt, src, p: p)
    cfg = AmConfig(credits_per_dest=WINDOW)
    if arm == "am/mpi-isir":
        rts = build_runtime(cl, reg, "mpi", comms=mpi_init(cl),
                            am=True, coalesce=False, am_config=cfg)
    else:
        rts = build_runtime(cl, reg, "photon", photon=photon_init(cl),
                            am=True, coalesce=(arm == "am/photon+coal"),
                            am_config=cfg)
    return cl, rts


def _invoke_flood(arm: str, count: int, lossy: bool) -> dict:
    """Flood the server with pipelined invocations; returns rate +
    latency percentiles + wire-message count."""
    cl, rts = _build(arm, lossy)
    out = {}
    lats = []

    def client(env):
        rt = rts[0]
        t_start = env.now
        pending = deque()
        for _ in range(count):
            t0 = env.now
            fut = yield from rt.invoke(1, "echo", b"x" * PAYLOAD)
            pending.append((fut, t0))
            while pending and pending[0][0].ready:
                _fut, s0 = pending.popleft()
                lats.append(env.now - s0)
        while pending:
            fut, s0 = pending.popleft()
            yield from fut.wait(rt, 30_000_000_000)
            lats.append(env.now - s0)
        out["elapsed"] = env.now - t_start

    def server(env):
        yield from rts[1].process_until(lambda: "elapsed" in out,
                                        60_000_000_000)

    p0 = cl.env.process(client(cl.env))
    p1 = cl.env.process(server(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    lats.sort()
    return {
        "rate_k": count / (out["elapsed"] / 1e9) / 1e3,
        "p50": lats[len(lats) // 2],
        "p99": lats[min(len(lats) - 1, (len(lats) * 99) // 100)],
        "wire": cl.counters.get("nic.tx_msgs"),
        "stale": cl.counters.get("am.stale_replies"),
    }


def _invoke_probe(arm: str, count: int, lossy: bool) -> dict:
    """Unloaded closed-loop (window 1) invoke latency: one invocation in
    flight at a time, so queueing never pollutes the percentile — this is
    the latency floor the flood numbers trade away."""
    cl, rts = _build(arm, lossy, seed=13)
    out = {}
    lats = []

    def client(env):
        rt = rts[0]
        for _ in range(count):
            t0 = env.now
            fut = yield from rt.invoke(1, "echo", b"x" * PAYLOAD)
            yield from fut.wait(rt, 30_000_000_000)
            lats.append(env.now - t0)
        out["done"] = True

    def server(env):
        yield from rts[1].process_until(lambda: "done" in out,
                                        60_000_000_000)

    p0 = cl.env.process(client(cl.env))
    p1 = cl.env.process(server(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    lats.sort()
    return {
        "p50": lats[len(lats) // 2],
        "p99": lats[min(len(lats) - 1, (len(lats) * 99) // 100)],
    }


def _mcts_demo(iters: int, n: int = 4) -> dict:
    """The Seriema-style irregular app on the coalesced AM stack."""
    cl = build_cluster(n, params="ib-fdr", seed=11)
    reg = ActionRegistry()
    shards = build_mcts(reg, n)
    rts = build_runtime(cl, reg, "photon", photon=photon_init(cl),
                        am=True, am_config=AmConfig(credits_per_dest=WINDOW))
    progs, results = run_mcts(cl, rts, shards, iters_per_rank=iters)
    procs = [cl.env.process(p) for p in progs]
    cl.env.run(until=cl.env.all_of(procs))
    invokes = sum(r.invokes for r in results)
    elapsed = max(r.elapsed_ns for r in results)
    root_visits = sum(r.owned.get(0, (0, 0))[0] for r in results)
    return {
        "rate_k": invokes / (elapsed / 1e9) / 1e3,
        "root_visits": root_visits,
        "expected_visits": n * iters,
        "invokes": invokes,
    }


def run(quick: bool = True) -> ExperimentResult:
    count = 300 if quick else 1000
    probe_count = 60 if quick else 200
    mcts_iters = 6 if quick else 20
    arms = ["am/photon", "am/photon+coal", "am/mpi-isir"]
    rows = []
    flood = {}
    probe = {}
    for lossy in (False, True):
        fabric = "lossy" if lossy else "clean"
        for arm in arms:
            f = _invoke_flood(arm, count, lossy)
            p = _invoke_probe(arm, probe_count, lossy)
            flood[(arm, fabric)] = f
            probe[(arm, fabric)] = p
            rows.append([arm, fabric, f["rate_k"], p["p50"], p["p99"],
                         f["wire"]])
    mcts = _mcts_demo(mcts_iters)
    rows.append(["mcts/photon+coal (4 ranks)", "clean", mcts["rate_k"],
                 "-", "-", mcts["invokes"]])

    clean = {a: flood[(a, "clean")] for a in arms}
    lossy_f = {a: flood[(a, "lossy")] for a in arms}
    pclean = {a: probe[(a, "clean")] for a in arms}
    checks = {
        "coalesced AM beats per-parcel sends on throughput (clean)":
            clean["am/photon+coal"]["rate_k"]
            > clean["am/photon"]["rate_k"],
        "coalesced AM beats per-parcel sends on throughput (lossy)":
            lossy_f["am/photon+coal"]["rate_k"]
            > lossy_f["am/photon"]["rate_k"],
        "coalescing cuts wire messages":
            clean["am/photon+coal"]["wire"] < clean["am/photon"]["wire"],
        "per-parcel PWC keeps the lowest unloaded p50 invoke latency":
            pclean["am/photon"]["p50"] <= min(
                pclean["am/photon+coal"]["p50"],
                pclean["am/mpi-isir"]["p50"]),
        "no stale replies on the clean fabric":
            all(clean[a]["stale"] == 0 for a in arms),
        "lossy fabric completes every invocation with bounded p99":
            all(lossy_f[a]["p99"] < 10_000_000 for a in arms),
        "mcts visit accounting is exact (root visits == iterations)":
            mcts["root_visits"] == mcts["expected_visits"],
    }
    return ExperimentResult(
        exp_id="R23",
        title=f"active messages: {count} x {PAYLOAD}B invoke flood "
              f"(window {WINDOW}) + unloaded probe + MCTS demo",
        headers=["arm", "fabric", "Kinv/s", "probe p50 ns", "probe p99 ns",
                 "wire msgs"],
        rows=rows,
        checks=checks,
        notes=["throughput from the windowed flood, latency from an "
               "unloaded window-1 probe: coalescing trades per-invoke "
               "latency for throughput; the per-parcel PWC arm is the "
               "latency floor (paper's small-message claim at the RPC "
               "layer)"])
