"""R4 — ledger-depth ablation (design-choice table).

Message rate and producer stall counts as the eager ring is shrunk or
grown.  Photon's flow control is credit-based on the ledger rings: a
shallow ring forces the sender to spin waiting for credit returns, so
throughput rises with depth until the ring covers the bandwidth-delay
product, then flattens — the sizing rule the design section motivates.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...photon import PhotonConfig, photon_init
from ...sim.core import SimulationError
from ..result import ExperimentResult

DEPTHS_QUICK = [4, 16, 64]
DEPTHS_FULL = [2, 4, 8, 16, 32, 64, 128]


def _flood_rate(slots: int, count: int, size: int = 64) -> tuple:
    """Receiver-observed eager message rate with the given ring depth."""
    cfg = PhotonConfig(eager_slots=slots,
                       completion_entries=max(slots, 4))
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    payload = bytes(size)
    result = {}

    def sender(env):
        for i in range(count):
            yield from ph[0].send_pwc(1, payload, remote_cid=i)

    def receiver(env):
        m = yield from ph[1].wait_message(timeout_ns=10 ** 12)
        t0 = env.now
        got = 1
        while got < count:
            m = yield from ph[1].wait_message(timeout_ns=10 ** 12)
            if m is None:
                raise SimulationError("ledger flood stalled")
            got += 1
        result["elapsed"] = env.now - t0

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    rate = (count - 1) / (result["elapsed"] / 1e9) / 1e6
    stalls = cl.counters.get("photon.eager_stalls")
    credits = cl.counters.get("photon.credit_writes")
    return rate, stalls, credits


def run(quick: bool = True) -> ExperimentResult:
    depths = DEPTHS_QUICK if quick else DEPTHS_FULL
    count = 200 if quick else 600
    rows = []
    series = {}
    for d in depths:
        rate, stalls, credits = _flood_rate(d, count)
        series[d] = (rate, stalls, credits)
        rows.append([d, rate, stalls, credits])

    shallow, deep = depths[0], depths[-1]
    checks = {
        "deeper rings sustain a higher message rate":
            series[deep][0] > series[shallow][0],
        "producer stalls vanish once the ring is deep enough":
            series[deep][1] < series[shallow][1] or series[deep][1] == 0,
        "shallow rings actually exercise backpressure":
            series[shallow][1] > 0,
        "credit writes occur at every depth (flow control active)":
            all(series[d][2] > 0 for d in depths),
    }
    return ExperimentResult(
        exp_id="R4",
        title=f"eager-ledger depth ablation ({count} x 64B flood)",
        headers=["slots", "Mmsgs/s", "producer stalls", "credit writes"],
        rows=rows,
        checks=checks,
        notes="stalls = times the producer found the remote ring full and "
              "had to poll for credit returns.")
