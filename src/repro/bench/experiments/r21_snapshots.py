"""R21 — snapshots under chaos: compaction, crash-restart rejoin, a
live shard move.

The closing piece of the repro.kv story: PR 7 left the store with
unbounded Raft logs behind any laggard, no way to readmit a restarted
replica, and a static key ring.  This experiment drives all three new
mechanisms through one sustained write run and audits the contract:

1. **Bounded logs** — writes run continuously with a small
   ``compact_threshold``; a follower is partitioned long enough for the
   leaders to trim *past* it.  A sampler records the worst retained
   applied suffix ever seen on any live replica; it must stay within
   ``compact_threshold + compact_margin`` (plus an in-flight batch of
   slack mid-run, exactly zero slack at quiescence).
2. **Crash-restart rejoin** — chaos crashes the group-0 leader mid
   burst and restarts it in place; the reseeded replica (empty log, no
   machine) must converge through the InstallSnapshot stream, never by
   replaying a trimmed prefix.  The healed partitioned follower must
   also catch up via a snapshot, since the leader compacted past it.
3. **Live shard move** — while the writers are still running, group 1's
   whole key range is sealed, copied and flipped into group 0
   (:func:`repro.kv.move.move_group`).  In-flight clients see
   ``WRONG_EPOCH``, refetch the ring and retry with the same session
   uids, so the move is invisible in the ack ledger.
4. **Zero acked-write loss** — every acknowledged write uid must be
   present in the state machine of *every* replica of the key's final
   owner group, crash, partition and move notwithstanding.
"""

from __future__ import annotations

from typing import Optional

from ...chaos import (ChaosController, CrashRank, FaultSchedule, HealEvent,
                      PartitionEvent, RestartRank)
from ...chaos.invariants import (InvariantViolation, check_log_bounded,
                                 check_membership_monotonic)
from ...cluster import build_cluster
from ...kv import KVClient, KVConfig, RaftConfig, build_kv, move_group
from ...kv.shard import ST_OK
from ...kv.workload import value_for
from ...photon import photon_init
from ...runtime.health import HealthConfig, build_health
from ..result import ExperimentResult

HB_PERIOD = 50_000
PHI_DEAD = 6.0

N_RANKS = 6
N_GROUPS = 2
RF = 3
VALUE_SIZE = 64
#: small on purpose: trimming must fire many times inside the run
COMPACT_THRESHOLD = 16
COMPACT_MARGIN = 4
#: shorter than the phi-dead budget (~690 us) so the partitioned
#: follower is SUSPECT, never sticky-DEAD — the cut is a gray event the
#: log bound has to survive, not a membership change
PARTITION_NS = 500_000
#: applies can land in one server-loop batch before the snapshot tick
#: fires; the mid-run sampler grants that much grace, quiescence none
SAMPLER_SLACK = 32


def _build(seed: int):
    cl = build_cluster(N_RANKS, "ib-fdr", seed=seed, spans=True)
    ph = photon_init(cl)
    monitors = build_health(cl, HealthConfig(period_ns=HB_PERIOD,
                                             phi_dead=PHI_DEAD))
    cfg = KVConfig(n_groups=N_GROUPS, rf=RF,
                   raft=RaftConfig(compact_threshold=COMPACT_THRESHOLD,
                                   compact_margin=COMPACT_MARGIN))
    nodes = build_kv(cl, ph, cfg, monitors=monitors)
    return cl, ph, monitors, nodes


def _leaders_ready(nodes) -> bool:
    return all(any(n.is_leader(g) for n in nodes) for g in range(N_GROUPS))


def run_chaos_move(quick: bool = True, seed: int = 404,
                   crash: str = "leader") -> dict:
    """Sustained writes + partition + crash/restart + one live move.

    ``crash`` picks the victim: the group-0 ``"leader"`` at schedule
    time, or a ``"follower"`` of group 0 — both must rejoin through a
    snapshot install after restart.
    """
    n_ops = 700 if quick else 1600
    think_ns = 1_000
    cl, ph, monitors, nodes = _build(seed)
    env = cl.env
    # ranks with no replica host the clients (writes always cross the
    # wire, like R20's serving arms)
    free = [r for r in range(N_RANKS)
            if not nodes[r].shard_map.groups_on(r)]
    writers = [KVClient(nodes[free[c % len(free)]], client_id=c + 1)
               for c in range(2)]
    lagger = max(nodes[0].shard_map.replicas(1))   # group-1-only replica
    out = {"victim": None, "move": None, "max_retained": 0}

    def writer(client, wid):
        keys = [f"r21:w{wid}:{i:04d}".encode() for i in range(40)]
        for i in range(n_ops):
            v = value_for(client.client_id, client.seq + 1, VALUE_SIZE)
            yield from client.put(keys[i % len(keys)], v)
            yield env.timeout(think_ns)

    def chaos(env):
        while not _leaders_ready(nodes):
            yield env.timeout(HB_PERIOD)
        t0 = env.now
        group0 = nodes[0].shard_map.replicas(0)
        leader0 = next(n.rank for n in nodes if n.is_leader(0))
        victim = leader0 if crash == "leader" else \
            next(r for r in group0 if r != leader0 and r != lagger)
        out["victim"] = victim
        others = tuple(r for r in range(N_RANKS) if r != lagger)
        sched = FaultSchedule([
            PartitionEvent(t0 + 300_000, (lagger,), others),
            HealEvent(t0 + 300_000 + PARTITION_NS),
            CrashRank(t0 + 1_200_000, victim),
            RestartRank(t0 + 3_600_000, victim),
        ])
        ctrl = ChaosController(cl, sched, photon=ph, monitors=monitors,
                               kv=nodes)
        ctrl.arm()
        out["ctrl"] = ctrl
        out["t0"] = t0

    def sampler(env):
        # worst applied suffix ever retained on any live replica
        while not out.get("writers_done"):
            for node in nodes:
                for g, rn in node.raft.items():
                    if rn.snapshot_fn is None:
                        continue
                    out["max_retained"] = max(
                        out["max_retained"], rn.last_applied - rn.base_index)
            yield env.timeout(HB_PERIOD)

    def mover(env):
        # flip mid-stream, but only after the restart has happened so
        # the move also exercises a freshly rejoined replica
        total = 2 * n_ops
        while (sum(len(c.acked) for c in writers) < (6 * total) // 10
               or out["victim"] is None
               or env.now < out.get("t0", 0) + 4_200_000):
            yield env.timeout(2 * HB_PERIOD)
        out["move"] = yield from move_group(nodes, 1, 0, via_rank=free[0])

    def post_move_probe(env):
        # fresh traffic after the flip must be served by the new owner
        probe = KVClient(nodes[free[-1]], client_id=77)
        ok = 0
        for i in range(20):
            key = f"r21:post:{i:03d}".encode()
            st = yield from probe.put(key, b"post-move-" + bytes([i]))
            st2, val = yield from probe.get(key)
            ok += (st == ST_OK and st2 == ST_OK
                   and val == b"post-move-" + bytes([i]))
        out["post_move_ok"] = ok
        out["probe"] = probe

    def driver(env):
        yield env.process(chaos(env), name="r21.chaos")
        wprocs = [env.process(writer(c, i), name=f"r21.w{i}")
                  for i, c in enumerate(writers)]
        env.process(sampler(env), name="r21.sampler")
        mproc = env.process(mover(env), name="r21.mover")
        yield env.all_of(wprocs)
        out["writers_done"] = True
        yield mproc
        yield from post_move_probe(env)
        # let follower apply loops and the rejoined replica drain
        yield env.timeout(40 * HB_PERIOD)

    done = env.process(driver(env), name="r21.driver")
    env.run(until=done)

    victim = out["victim"]
    acked = [t for c in writers + [out["probe"]] for t in c.acked]
    owners = {}   # final owner group per key (post-flip ring)
    lost = {}
    smap = nodes[0].shard_map
    for (c, s, _op, k, _v) in acked:
        owners.setdefault(k, smap.group_of(k))
    for rank in smap.replicas(0):
        sm = nodes[rank].machines[0]
        lost[rank] = sorted(
            (c, s) for (c, s, _op, k, _v) in acked
            if owners[k] == 0 and (c, s) not in sm.applied_uids)
    victim_installs = sum(rn.snapshot_installs
                          for rn in nodes[victim].raft.values())
    lagger_installs = nodes[lagger].raft[1].snapshot_installs
    log_bounded_final = True
    try:
        check_log_bounded(nodes, slack=0)
    except InvariantViolation:
        log_bounded_final = False
    out.update({
        "cluster": cl, "nodes": nodes, "monitors": monitors,
        "writers": writers, "n_ops": 2 * n_ops,
        "acked": len({(c, s) for (c, s, *_r) in acked}),
        "lost_per_replica": lost,
        "victim_installs": victim_installs,
        "lagger_installs": lagger_installs,
        "log_bounded_final": log_bounded_final,
        "wrong_epoch": sum(c.stats.wrong_epoch for c in writers),
        "map_refreshes": sum(c.stats.map_refreshes for c in writers),
        "snapshot_bytes": sum(
            cl.scope(r).values.get("kv.raft.snapshot_bytes", 0)
            for r in range(N_RANKS)),
        "install_spans": cl.metrics.span_durations("kv.raft.install"),
    })
    return out


def run(quick: bool = True, scenario: Optional[dict] = None) \
        -> ExperimentResult:
    r = scenario if scenario is not None else run_chaos_move(quick)
    move = r["move"] or {}
    bound = COMPACT_THRESHOLD + COMPACT_MARGIN
    installs = r["install_spans"]
    rows = [
        ["writes", r["acked"], f"{r['n_ops']} issued", "-"],
        ["log bound", r["max_retained"],
         f"limit {bound}+{SAMPLER_SLACK} slack", r["log_bounded_final"]],
        ["restart rejoin", r["victim_installs"],
         f"victim r{r['victim']}", "-"],
        ["partition catch-up", r["lagger_installs"], "snapshot installs",
         "-"],
        ["move", move.get("moved_bytes", 0),
         f"epoch {move.get('epoch', 0)}, "
         f"{r['wrong_epoch']} wrong-epoch bounces",
         r.get("post_move_ok", 0)],
        ["install spans", len(installs),
         f"max {max(installs) / 1000.0:.0f}us" if installs else "-", "-"],
    ]
    checks = {
        "every issued write was eventually acked exactly once":
            r["acked"] == r["n_ops"] + 20,  # writers + post-move probes
        "zero acked-write loss on every final-owner replica":
            all(v == [] for v in r["lost_per_replica"].values())
            and len(r["lost_per_replica"]) == RF,
        "restarted replica rejoined via snapshot install":
            r["victim_installs"] >= 1,
        "partitioned follower caught up via snapshot install":
            r["lagger_installs"] >= 1,
        "retained log bounded mid-run (threshold+margin+slack)":
            0 < r["max_retained"] <= bound + SAMPLER_SLACK,
        "retained log bounded at quiescence (no slack)":
            r["log_bounded_final"],
        "live move completed and bumped the epoch":
            move.get("epoch") == 1 and move.get("moved_bytes", 0) > 0,
        "in-flight clients crossed the epoch flip":
            r["wrong_epoch"] >= 1 and r["map_refreshes"] >= 1,
        "post-move traffic serves from the new owner":
            r.get("post_move_ok", 0) == 20,
        "membership stayed monotonic on every monitor":
            _membership_ok(r["monitors"]),
    }
    fo_note = (f"victim r{r['victim']} rejoined with "
               f"{r['victim_installs']} install(s); lagger installs "
               f"{r['lagger_installs']}; move {move.get('moved_bytes', 0)}B "
               f"at epoch {move.get('epoch')}; worst retained log "
               f"{r['max_retained']} (bound {bound})")
    return ExperimentResult(
        exp_id="R21",
        title="repro.kv snapshots under chaos: bounded logs, "
              "crash-restart rejoin via InstallSnapshot, live shard move",
        headers=["phase", "count", "detail", "ok"],
        rows=rows,
        checks=checks,
        notes=fo_note)


def _membership_ok(monitors) -> bool:
    try:
        for mon in monitors:
            check_membership_monotonic(mon)
        return True
    except AssertionError:
        return False
