"""R13 — random remote updates (GUPS) across update mechanisms.

All-to-all random 8-byte updates on 4 ranks through four mechanisms with
identical (deterministic) target streams:

- photon ``os_put`` (windowed one-sided scatter),
- photon ``atomic_fadd`` (true read-modify-write, never loses updates),
- minimpi RMA put + per-window flush,
- minimpi two-sided (owner CPU applies every update).

Expected shape: one-sided puts are fastest (pure NIC path); atomics pay
the responder round trip but remain ahead of two-sided; the two-sided
variant is slowest because every update costs matching + an owner-side
receive.  The atomic variant's correctness invariant (no lost updates)
is checked in-experiment.
"""

from __future__ import annotations

from ...apps import (
    run_gups_mpi_p2p,
    run_gups_mpi_rma,
    run_gups_photon,
    run_gups_photon_atomic,
)
from ...cluster import build_cluster
from ...minimpi import mpi_init, win_allocate
from ...photon import photon_init
from ..result import ExperimentResult

RANKS = 4
SLOTS = 256


def _run_programs(cl, programs):
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))


def run(quick: bool = True) -> ExperimentResult:
    updates = 100 if quick else 400
    rows = []
    rates = {}

    cl = build_cluster(RANKS, params="ib-fdr")
    ph = photon_init(cl)
    programs, results, _ = run_gups_photon(cl, ph, updates, SLOTS)
    _run_programs(cl, programs)
    rates["photon put"] = min(r.updates_per_sec for r in results) / 1e6

    cl = build_cluster(RANKS, params="ib-fdr")
    ph = photon_init(cl)
    programs, results, tables = run_gups_photon_atomic(cl, ph, updates,
                                                       SLOTS)
    _run_programs(cl, programs)
    rates["photon atomic"] = min(r.updates_per_sec for r in results) / 1e6
    landed = sum(cl[r].memory.read_u64(tables[r].addr + s * 8)
                 for r in range(RANKS) for s in range(SLOTS))
    atomics_exact = landed == RANKS * updates

    cl = build_cluster(RANKS, params="ib-fdr")
    comms = mpi_init(cl)
    wins = win_allocate(comms, SLOTS * 8)
    programs, results = run_gups_mpi_rma(cl, comms, wins, updates, SLOTS)
    _run_programs(cl, programs)
    rates["mpi rma put+flush"] = min(r.updates_per_sec
                                     for r in results) / 1e6

    cl = build_cluster(RANKS, params="ib-fdr")
    comms = mpi_init(cl)
    programs, results, _ = run_gups_mpi_p2p(cl, comms, updates, SLOTS)
    _run_programs(cl, programs)
    rates["mpi two-sided"] = min(r.updates_per_sec for r in results) / 1e6

    for name, rate in rates.items():
        rows.append([name, rate])

    checks = {
        "one-sided puts are the fastest mechanism":
            rates["photon put"] == max(rates.values()),
        "atomics beat the two-sided owner-applies variant":
            rates["photon atomic"] > rates["mpi two-sided"],
        "photon puts beat MPI RMA put+flush (epoch overhead)":
            rates["photon put"] > rates["mpi rma put+flush"],
        "atomic updates are never lost (sum == issued)": atomics_exact,
    }
    return ExperimentResult(
        exp_id="R13",
        title=f"random remote updates, {RANKS} ranks x {updates} updates, "
              f"{SLOTS} slots/rank (Mupdates/s, slowest rank)",
        headers=["mechanism", "Mupdates/s"],
        rows=rows,
        checks=checks)
