"""R12 — eager-threshold ablation (design choice called out in DESIGN.md §5).

Sweeps a fixed 4 KiB message across eager limits on *both* stacks:

- Photon: payloads above ``eager_limit`` must use the rendezvous
  advertisement protocol instead of the eager ring;
- minimpi: payloads above ``eager_threshold`` switch from bounce-buffer
  copies to RTS/RGET/FIN.

Expected shape: for a message just *under* the threshold the eager path
wins on latency (no handshake); just *over* it, latency jumps by roughly
one round trip — the protocols cross exactly at the knob, which is why
both systems expose it.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...minimpi import MPIConfig
from ...photon import PhotonConfig, photon_init
from ...sim.core import SimulationError
from ..microbench import pingpong_mpi
from ..result import ExperimentResult

MSG = 4096
LIMITS = [2048, 8192]  # below and above the 4 KiB message


def _photon_latency(eager_limit: int, reps: int) -> float:
    """One-way delivery latency of a 4 KiB message under the limit."""
    cfg = PhotonConfig(eager_limit=eager_limit)
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl, cfg)
    scratch_s = ph[0].buffer(MSG * 2)
    scratch_r = ph[1].buffer(MSG * 2)
    payload = bytes(MSG)
    samples = []

    def sender(env):
        for i in range(reps + 2):
            t0 = env.now
            yield from ph[0].send_msg(1, payload, tag=i,
                                      scratch_addr=scratch_s.addr)
            # wait for the receiver's echo tag
            m = yield from ph[0].wait_message(
                lambda s, c, want=i: c == want, timeout_ns=10 ** 12)
            if m is None:
                raise SimulationError("r12 echo lost")
            if i >= 2:
                samples.append((env.now - t0) / 2)

    def receiver(env):
        for i in range(reps + 2):
            m = yield from ph[1].recv_msg(src=0, tag=i,
                                          scratch_addr=scratch_r.addr,
                                          timeout_ns=10 ** 12)
            if m is None:
                raise SimulationError("r12 recv lost")
            yield from ph[1].send_pwc(0, b"", remote_cid=i)

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    return sum(samples) / len(samples) / 1000.0


def run(quick: bool = True) -> ExperimentResult:
    reps = 8 if quick else 30
    rows = []
    data = {}
    for limit in LIMITS:
        ph_lat = _photon_latency(limit, reps)
        mpi_lat = pingpong_mpi(
            MSG, reps=reps,
            config=MPIConfig(eager_threshold=limit)).mean_us
        mode = "eager" if MSG <= limit else "rendezvous"
        data[limit] = (ph_lat, mpi_lat)
        rows.append([limit, mode, ph_lat, mpi_lat])

    below, above = LIMITS[0], LIMITS[-1]
    checks = {
        "photon: rendezvous path costs more than the eager path":
            data[below][0] > data[above][0],
        "mpi: rendezvous path costs more than the eager path":
            data[below][1] > data[above][1],
        "the jump is at least half a round trip on both stacks":
            (data[below][0] - data[above][0] > 0.5
             and data[below][1] - data[above][1] > 0.5),
    }
    return ExperimentResult(
        exp_id="R12",
        title=f"eager-threshold ablation: {MSG}B message latency (us) "
              "under each limit",
        headers=["eager limit", "protocol used", "photon", "mpi"],
        rows=rows,
        checks=checks,
        notes="the same 4 KiB message, forced through each protocol by "
              "moving the threshold around it.")
