"""R3 — small-message rate (reconstruction of the message-rate figure).

Sustained receiver-observed message rate for back-to-back small messages:
Photon eager PWC sends vs minimpi isend/irecv windows.

Expected shape: Photon sustains a substantially higher rate — delivery is
one ledger write discovered by a memory scan, versus per-message matching,
bounce-buffer copies and request churn on the MPI path.
"""

from __future__ import annotations

from ...util.fmt import format_size
from ..microbench import msgrate_mpi, msgrate_photon
from ..result import ExperimentResult

SIZES_QUICK = [8, 64]
SIZES_FULL = [8, 16, 64, 256, 1024]


def run(quick: bool = True) -> ExperimentResult:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    count = 300 if quick else 1000
    rows = []
    series = {}
    for size in sizes:
        rph = msgrate_photon(size, count=count) / 1e6
        rmp = msgrate_mpi(size, count=count) / 1e6
        series[size] = (rph, rmp)
        rows.append([format_size(size), rph, rmp, rph / rmp])

    checks = {
        "photon message rate exceeds MPI at every size":
            all(series[s][0] > series[s][1] for s in sizes),
        "photon advantage is at least 1.2x for the smallest messages":
            series[sizes[0]][0] / series[sizes[0]][1] >= 1.2,
        "rates do not increase with size":
            all(series[a][0] >= series[b][0] * 0.98
                for a, b in zip(sizes, sizes[1:])),
    }
    return ExperimentResult(
        exp_id="R3",
        title="small-message rate (Mmsgs/s), receiver-observed, ib-fdr",
        headers=["size", "photon", "mpi", "ratio"],
        rows=rows,
        checks=checks)
