"""R2 — streaming bandwidth (reconstruction of the bandwidth figure).

Unidirectional windowed-stream bandwidth vs message size: Photon put
stream vs minimpi isend/irecv stream on ib-fdr (54 Gbit/s link).

Expected shape: Photon leads in the mid range, where MPI's rendezvous
handshake (RTS + matching + RGET) is not yet amortised; both converge to
the link rate for multi-megabyte transfers.
"""

from __future__ import annotations

from ...fabric.params import preset
from ...util.fmt import format_size
from ..microbench import bandwidth_mpi, bandwidth_photon
from ..result import ExperimentResult

SIZES_QUICK = [4096, 65536, 1 << 20]
SIZES_FULL = [1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20]


def run(quick: bool = True) -> ExperimentResult:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    count = 32 if quick else 64
    link = preset("ib-fdr").link.bandwidth_gbps
    rows = []
    series = {}
    for size in sizes:
        gph = bandwidth_photon(size, count=count, window=8)
        gmp = bandwidth_mpi(size, count=count, window=8)
        series[size] = (gph, gmp)
        rows.append([format_size(size), gph, gmp, gph / gmp,
                     100.0 * gph / link])

    mid = [s for s in sizes if 4096 <= s <= 262144]
    big = max(sizes)
    checks = {
        "photon leads in the mid range (rendezvous not amortised)":
            all(series[s][0] > series[s][1] for s in mid),
        "both converge to >=95% of the photon large-message rate":
            series[big][1] >= 0.95 * series[big][0],
        "photon reaches >=90% of the nominal link rate at the top size":
            series[big][0] >= 0.90 * link,
        "bandwidth increases with message size (photon)":
            all(series[a][0] <= series[b][0] * 1.02
                for a, b in zip(sizes, sizes[1:])),
    }
    return ExperimentResult(
        exp_id="R2",
        title="unidirectional stream bandwidth (Gbit/s), window=8, ib-fdr",
        headers=["size", "photon put", "mpi isend", "ratio", "% of link"],
        rows=rows,
        checks=checks)
