"""R16 — application: distributed sample sort (bulk-exchange regime).

Strong scaling of a sample sort whose bucket exchange moves the whole
dataset once: photon rendezvous pulls vs minimpi alltoallv.  Complements
R10's tiny-message regime with the bandwidth-bound one; both variants
verify (global order + multiset preservation) inside the experiment.

Expected shape: photon's direct RDMA pulls avoid the count exchange and
bounce copies, so its exchange step is faster; the advantage shrinks
relative to total time as local sort work dominates.
"""

from __future__ import annotations

from ...apps import (
    make_keys,
    run_samplesort_mpi,
    run_samplesort_photon,
    verify_sorted,
)
from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ..result import ExperimentResult

RANKS_QUICK = [2, 4]
RANKS_FULL = [2, 4, 8]


def _once(transport: str, n: int, inputs):
    cl = build_cluster(n, params="ib-fdr")
    if transport == "photon":
        ph = photon_init(cl)
        programs, results = run_samplesort_photon(cl, ph, inputs)
    else:
        comms = mpi_init(cl)
        programs, results = run_samplesort_mpi(cl, comms, inputs)
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))
    ok = verify_sorted(results, inputs)
    total = max(r.elapsed_ns for r in results)
    exchange = max(r.exchange_ns for r in results)
    return total, exchange, ok


def run(quick: bool = True) -> ExperimentResult:
    total_keys = 20_000 if quick else 80_000
    ranks = RANKS_QUICK if quick else RANKS_FULL
    rows = []
    series = {}
    correct = True
    for n in ranks:
        inputs = make_keys(total_keys, n, seed=3)
        t_ph, x_ph, ok1 = _once("photon", n, inputs)
        t_mp, x_mp, ok2 = _once("mpi", n, inputs)
        correct = correct and ok1 and ok2
        series[n] = (t_ph, t_mp, x_ph, x_mp)
        rows.append([n, t_ph / 1000, t_mp / 1000, x_ph / 1000,
                     x_mp / 1000, x_mp / x_ph])

    checks = {
        "both variants produce a verified global sort": correct,
        "photon's bucket exchange beats alltoallv at every scale":
            all(series[n][2] < series[n][3] for n in ranks),
        "photon total time is never worse than MPI's":
            all(series[n][0] <= series[n][1] * 1.02 for n in ranks),
    }
    return ExperimentResult(
        exp_id="R16",
        title=f"distributed sample sort, {total_keys} uint32 keys",
        headers=["ranks", "photon total us", "mpi total us",
                 "photon exch us", "mpi exch us", "exch speedup"],
        rows=rows,
        checks=checks)
