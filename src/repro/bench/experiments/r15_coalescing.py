"""R15 — parcel-coalescing ablation (runtime extension feature).

Delivered parcel rate for a small-parcel flood over the Photon-PWC
transport, with and without the coalescing layer, across batch sizes.

Expected shape: coalescing multiplies the delivered rate (per-message
overheads amortise over the batch) with diminishing returns as batches
grow; wire-message counts drop proportionally.  This reconstructs the
message-coalescing argument of the AM++/HPX-5 line of work that Photon's
low per-message cost complements.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...photon import photon_init
from ...runtime import CoalescingTransport, PhotonTransport
from ..result import ExperimentResult

PARCEL = 24  # bytes


def _flood(batch: int, count: int) -> tuple:
    """(Mparcels/s, wire messages) for one configuration; batch=1 means
    no coalescing layer."""
    cl = build_cluster(2, params="ib-fdr")
    ph = photon_init(cl)
    tp0 = PhotonTransport(ph[0])
    tp1 = PhotonTransport(ph[1])
    if batch > 1:
        tp0 = CoalescingTransport(tp0, flush_count=batch,
                                  flush_bytes=1 << 16)
        tp1 = CoalescingTransport(tp1, flush_count=batch,
                                  flush_bytes=1 << 16)
    out = {}

    def sender(env):
        for _ in range(count):
            yield from tp0.send(1, b"p" * PARCEL)
        if batch > 1:
            yield from tp0.flush()

    def receiver(env):
        got = 0
        t0 = None
        while got < count:
            raw = yield from tp1.poll()
            if raw is not None:
                if t0 is None:
                    t0 = env.now
                got += 1
            else:
                yield env.timeout(100)
        out["elapsed"] = env.now - t0

    p0 = cl.env.process(sender(cl.env))
    p1 = cl.env.process(receiver(cl.env))
    cl.env.run(until=cl.env.all_of([p0, p1]))
    rate = (count - 1) / (out["elapsed"] / 1e9) / 1e6
    wire = cl.counters.get("nic.tx_msgs")
    return rate, wire


def run(quick: bool = True) -> ExperimentResult:
    batches = [1, 8, 32] if quick else [1, 4, 8, 16, 32, 64]
    count = 300 if quick else 800
    rows = []
    series = {}
    for b in batches:
        rate, wire = _flood(b, count)
        series[b] = (rate, wire)
        rows.append([b if b > 1 else "off", rate, wire,
                     rate / series[batches[0]][0]])

    top = batches[-1]
    mid = batches[len(batches) // 2]
    checks = {
        "coalescing raises the delivered parcel rate >= 2x":
            series[top][0] >= 2.0 * series[1][0],
        "wire-message count drops with batch size":
            series[top][1] < series[mid][1] < series[1][1],
        "diminishing returns: doubling the largest batch helps < 2x":
            series[top][0] < 2.0 * series[mid][0],
    }
    return ExperimentResult(
        exp_id="R15",
        title=f"parcel coalescing: {count} x {PARCEL}B parcel flood",
        headers=["batch", "Mparcels/s", "wire msgs", "speedup vs off"],
        rows=rows,
        checks=checks)
