"""R20 — repro.kv serving benchmark: RPC vs one-sided reads, failover.

The first *tenant* workload: a Raft-replicated, sharded KV store whose
replication and client traffic ride Photon PWC (parcels over eager
sends + completion-ledger probes).  Three questions, one per section:

1. **RDMA vs RPC read arm** — the same Zipf-skewed closed-loop mix is
   served twice: reads answered by the leader under a read lease (RPC
   parcel round-trip) vs. reads done by the client itself with a raw
   ``get_pwc`` against the leader's registered slot table (one wire
   round, zero remote CPU).  The one-sided arm should win median read
   latency — the core claim of the RDMA-vs-RPC line of work the store
   reproduces.
2. **Scaling shape** (full mode) — throughput vs. shard-group count and
   vs. key skew: more groups spread leader load across ranks; theta
   concentrates traffic on one leader.
3. **Failover** — chaos crashes the leader mid write-burst; the
   phi-accrual detector declares it dead, a detection-driven election
   installs a new leader, the client retries onto it (same session
   uids, so replays are exactly-once), and *every acknowledged write
   survives* — checked uid-by-uid against the new leader's state
   machine.
"""

from __future__ import annotations

from typing import Optional

from ...chaos import ChaosController, CrashRank, FaultSchedule
from ...chaos.invariants import check_membership_monotonic
from ...cluster import build_cluster
from ...kv import KVClient, KVConfig, build_kv
from ...kv.workload import WorkloadStats, ZipfKeys, closed_loop, open_loop, \
    value_for
from ...photon import photon_init
from ...runtime.health import HealthConfig, build_health
from ..result import ExperimentResult

HB_PERIOD = 50_000
PHI_DEAD = 6.0
#: phi-accrual detection budget on a quiet fabric (mean == period)
DETECT_BUDGET_NS = int(PHI_DEAD * HB_PERIOD * 2.302585)

VALUE_SIZE = 64
DRAIN = 10 ** 12


def _build(n_ranks: int, n_groups: int, seed: int):
    cl = build_cluster(n_ranks, "ib-fdr", seed=seed, spans=True)
    ph = photon_init(cl)
    monitors = build_health(cl, HealthConfig(period_ns=HB_PERIOD,
                                             phi_dead=PHI_DEAD))
    cfg = KVConfig(n_groups=n_groups, rf=min(3, n_ranks))
    nodes = build_kv(cl, ph, cfg, monitors=monitors)
    return cl, ph, monitors, nodes


def _leaders_ready(nodes, n_groups: int) -> bool:
    return all(any(n.is_leader(g) for n in nodes) for g in range(n_groups))


def run_serving(quick: bool = True, read_mode: str = "rpc",
                n_groups: int = 2, theta: float = 0.99,
                n_ranks: int = 6, open_rate_ops_s: float = 0.0,
                seed: int = 101) -> dict:
    """One serving run; returns the merged WorkloadStats + store state."""
    n_clients = 2 if quick else 4
    ops_per_client = 150 if quick else 400
    n_keys = 48 if quick else 192
    cl, ph, monitors, nodes = _build(n_ranks, n_groups, seed)
    # clients live on replica-free ranks when the placement leaves any:
    # a co-located client's ops skip the wire and would pollute the
    # RDMA-vs-RPC comparison with 0-hop latencies
    free = [r for r in range(n_ranks)
            if not nodes[r].shard_map.groups_on(r)]
    client_ranks = free or list(range(n_ranks))
    stats = WorkloadStats()
    out = {}

    def bench(env):
        # barrier: measurement starts after every group has a leader
        while not _leaders_ready(nodes, n_groups):
            yield env.timeout(HB_PERIOD)
        # preload the key population so gets hit and loc lookups resolve
        loader = KVClient(nodes[0], client_id=1000)
        keys = ZipfKeys(n_keys, 0.0, cl.rng.stream("kv.wl.preload")).keys
        for key in keys:
            yield from loader.put(
                key, value_for(1000, loader.seq + 1, VALUE_SIZE))
        t0 = env.now
        if open_rate_ops_s > 0:
            pool = [KVClient(nodes[client_ranks[c % len(client_ranks)]],
                             client_id=c + 1, read_mode=read_mode)
                    for c in range(n_clients * 4)]
            z = ZipfKeys(n_keys, theta, cl.rng.stream("kv.wl.zipf.open"))
            rng = cl.rng.stream("kv.wl.mix.open")
            duration = ops_per_client * n_clients * int(1e9 / open_rate_ops_s)
            yield from open_loop(env, pool, z, rng, open_rate_ops_s,
                                 duration, stats, value_size=VALUE_SIZE)
        else:
            procs = []
            for c in range(n_clients):
                rank = client_ranks[c % len(client_ranks)]
                client = KVClient(nodes[rank], client_id=c + 1,
                                  read_mode=read_mode)
                z = ZipfKeys(n_keys, theta,
                             cl.rng.stream(f"kv.wl.zipf.{c}"))
                rng = cl.rng.stream(f"kv.wl.mix.{c}")
                procs.append(env.process(
                    closed_loop(env, client, z, rng, ops_per_client, stats,
                                value_size=VALUE_SIZE,
                                scope=cl.scope(rank)),
                    name=f"kv.bench.{c}"))
            yield env.all_of(procs)
        out["bench_ns"] = env.now - t0

    done = cl.env.process(bench(cl.env), name="kv.bench")
    cl.env.run(until=done)
    out.update({
        "cluster": cl, "nodes": nodes, "stats": stats,
        "read_mode": read_mode, "n_groups": n_groups, "theta": theta,
    })
    return out


def run_failover(quick: bool = True, seed: int = 303) -> dict:
    """Crash the leader mid write-burst; account for every ack."""
    n_ops = 240 if quick else 600
    n_ranks = 5
    cl, ph, monitors, nodes = _build(n_ranks, 1, seed)
    group = 0
    out = {"t_new_leader": None, "leader_before": None}

    def burst(env):
        while not _leaders_ready(nodes, 1):
            yield env.timeout(HB_PERIOD)
        out["leader_before"] = next(n.rank for n in nodes
                                    if n.is_leader(group))
        # schedule the crash squarely inside the burst: writes run a
        # few microseconds each, so half the ops land before the axe
        t_crash = env.now + 1_200_000
        out["t_crash"] = t_crash
        ctrl = ChaosController(
            cl, FaultSchedule([CrashRank(t_crash, out["leader_before"])]),
            photon=ph, monitors=monitors)
        ctrl.arm()
        client = KVClient(nodes[n_ranks - 1], client_id=7)
        for i in range(n_ops):
            v = value_for(7, client.seq + 1, VALUE_SIZE)
            yield from client.put(f"fo:{i % 40:04d}".encode(), v)
        out["client"] = client
        # let follower apply loops drain before the uid audit
        yield env.timeout(20 * HB_PERIOD)

    def watch_new_leader(env):
        while out["leader_before"] is None or env.now < out.get("t_crash", 0):
            yield env.timeout(HB_PERIOD // 5)
        victim = out["leader_before"]
        while True:
            for n in nodes:
                if n.rank != victim and n.photon.alive and n.is_leader(group):
                    out["t_new_leader"] = env.now
                    out["new_leader"] = n.rank
                    return
            yield env.timeout(HB_PERIOD // 5)

    env = cl.env
    procs = [env.process(burst(env), name="kv.fo.burst"),
             env.process(watch_new_leader(env), name="kv.fo.watch")]
    env.run(until=env.all_of(procs))

    client = out["client"]
    acked = {(c, s) for (c, s, _op, _k, _v) in client.acked}
    survivors = [n for n in nodes
                 if n.photon.alive and group in n.machines]
    lost = {n.rank: sorted(acked - n.machines[group].applied_uids)
            for n in survivors}
    out.update({
        "cluster": cl, "nodes": nodes, "monitors": monitors,
        "acked": len(acked), "n_ops": n_ops,
        "lost_per_survivor": lost,
        "lost_on_new_leader": lost.get(out.get("new_leader"), ["no-leader"]),
        "failover_ns": (out["t_new_leader"] - out["t_crash"]
                        if out["t_new_leader"] else None),
        "detect_ns": cl.metrics.span_durations("health.detect"),
        "survivor_monitors": [monitors[n.rank] for n in nodes
                              if n.photon.alive],
    })
    return out


def _arm_rows(r: dict) -> list:
    s: WorkloadStats = r["stats"]
    return [[
        r["read_mode"], r["n_groups"], f"{r['theta']:g}",
        s.completed, f"{s.ops_per_sec() / 1e3:.1f}",
        f"{s.pct_us('get', 50):.1f}", f"{s.pct_us('get', 95):.1f}",
        f"{s.pct_us('get', 99):.1f}",
        f"{s.pct_us('put', 50):.1f}", f"{s.pct_us('put', 99):.1f}",
    ]]


def run(quick: bool = True, scenario: Optional[dict] = None) \
        -> ExperimentResult:
    rpc = run_serving(quick, "rpc")
    onesided = run_serving(quick, "onesided")
    rows = _arm_rows(rpc) + _arm_rows(onesided)
    if not quick:
        for n_groups in (1, 4):
            rows += _arm_rows(run_serving(quick, "rpc", n_groups=n_groups,
                                          n_ranks=6, seed=111 + n_groups))
        for theta in (0.0, 1.2):
            rows += _arm_rows(run_serving(quick, "rpc", theta=theta,
                                          seed=131 + int(theta * 10)))
        # open-loop arm: queueing delay counts against the tail
        rows += _arm_rows(run_serving(quick, "rpc",
                                      open_rate_ops_s=2_000_000.0,
                                      seed=151))

    fo = scenario if scenario is not None else run_failover(quick)
    detect = fo["detect_ns"]
    fo_us = fo["failover_ns"] / 1000.0 if fo["failover_ns"] else -1.0
    rows.append(["failover", 1, "-", fo["acked"],
                 f"lost={len(fo['lost_on_new_leader'])}",
                 f"crash->leader {fo_us:.0f}us",
                 f"detect {max(detect) / 1000.0:.0f}us" if detect else "-",
                 "-", "-", "-"])

    membership_ok = True
    try:
        for monitor in fo["survivor_monitors"]:
            check_membership_monotonic(monitor)
    except AssertionError:
        membership_ok = False

    rpc_s, os_s = rpc["stats"], onesided["stats"]
    checks = {
        "rpc arm: every op completed":
            rpc_s.failed == 0 and rpc_s.completed > 0,
        "one-sided arm: every op completed":
            os_s.failed == 0 and os_s.completed > 0,
        "one-sided reads actually used the PWC path":
            _onesided_used(onesided),
        "one-sided median read beats the RPC round-trip":
            os_s.pct_us("get", 50) < rpc_s.pct_us("get", 50),
        "failover: a new leader takes over":
            fo["t_new_leader"] is not None,
        "failover: election within 2x phi budget + election time":
            fo["failover_ns"] is not None
            and fo["failover_ns"] < 2 * DETECT_BUDGET_NS + 500_000,
        "failover: zero acknowledged-write loss on the new leader":
            fo["lost_on_new_leader"] == [],
        "failover: every acked write on every survivor":
            all(v == [] for v in fo["lost_per_survivor"].values()),
        "membership monotonic on surviving monitors": membership_ok,
    }
    return ExperimentResult(
        exp_id="R20",
        title="repro.kv serving: Zipf closed-loop over Raft groups on "
              "Photon PWC — RPC vs one-sided reads, leader failover",
        headers=["arm", "groups", "theta", "ops", "kop/s",
                 "get p50us", "get p95us", "get p99us",
                 "put p50us", "put p99us"],
        rows=rows,
        checks=checks,
        notes=f"phi-accrual period {HB_PERIOD // 1000}us, phi_dead "
              f"{PHI_DEAD:g}; failover: leader r{fo.get('leader_before')}"
              f" -> r{fo.get('new_leader')} in {fo_us:.0f}us; acked "
              f"writes audited uid-by-uid on all survivors")


def _onesided_used(r: dict) -> bool:
    # the serving run drops client handles; infer PWC usage from the
    # photon counters: the one-sided arm must have issued raw gets
    cl = r["cluster"]
    return sum(cl.scope(rank).values.get("photon.pwc_gets", 0)
               for rank in range(cl.n)) > 0
