"""R11 — collectives table: barrier and allreduce latency vs rank count.

PWC-based dissemination barrier / recursive-doubling allreduce (photon)
vs the minimpi implementations of the same algorithms.  Since the
algorithms match, the difference isolates the per-message transport cost.

Expected shape: both scale ~logarithmically with ranks; photon is faster
at every size because each step is a single ledger write instead of a
matched send/recv with bounce copies.
"""

from __future__ import annotations

import numpy as np

from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import photon_init
from ..result import ExperimentResult

RANKS_QUICK = [2, 4, 8]
RANKS_FULL = [2, 4, 8, 16]
REPS = 5


def _barrier(lib: str, n: int) -> float:
    cl = build_cluster(n, params="ib-fdr")
    if lib == "photon":
        eps = photon_init(cl)
    else:
        eps = mpi_init(cl)
    times = []

    def body(rank):
        env = cl.env
        ep = eps[rank]
        yield from ep.barrier()  # warm up
        t0 = env.now
        for _ in range(REPS):
            yield from ep.barrier()
        if rank == 0:
            times.append((env.now - t0) / REPS)

    procs = [cl.env.process(body(r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    return times[0] / 1000.0


def _allreduce(lib: str, n: int, elems: int) -> float:
    cl = build_cluster(n, params="ib-fdr")
    if lib == "photon":
        eps = photon_init(cl)
    else:
        eps = mpi_init(cl)
    times = []

    def body(rank):
        env = cl.env
        ep = eps[rank]
        arr = np.full(elems, float(rank))
        out = yield from ep.allreduce(arr, "sum")  # warm up
        t0 = env.now
        for _ in range(REPS):
            out = yield from ep.allreduce(arr, "sum")
        if rank == 0:
            times.append((env.now - t0) / REPS)
        expected = float(sum(range(n)))
        assert float(out[0]) == expected

    procs = [cl.env.process(body(r)) for r in range(n)]
    cl.env.run(until=cl.env.all_of(procs))
    return times[0] / 1000.0


def run(quick: bool = True) -> ExperimentResult:
    ranks = RANKS_QUICK if quick else RANKS_FULL
    elems = 128  # 1 KiB of float64
    rows = []
    series = {}
    for n in ranks:
        b_ph = _barrier("photon", n)
        b_mp = _barrier("mpi", n)
        a_ph = _allreduce("photon", n, elems)
        a_mp = _allreduce("mpi", n, elems)
        series[n] = (b_ph, b_mp, a_ph, a_mp)
        rows.append([n, b_ph, b_mp, a_ph, a_mp])

    first, last = ranks[0], ranks[-1]
    checks = {
        "photon barrier beats MPI barrier at every rank count":
            all(series[n][0] < series[n][1] for n in ranks),
        "photon allreduce beats MPI allreduce at every rank count":
            all(series[n][2] < series[n][3] for n in ranks),
        "barrier latency grows sublinearly (log-ish) with ranks":
            series[last][0] < series[first][0] * (last / first),
    }
    return ExperimentResult(
        exp_id="R11",
        title="collectives latency (us): barrier and 1KiB allreduce",
        headers=["ranks", "photon barrier", "mpi barrier",
                 "photon allreduce", "mpi allreduce"],
        rows=rows,
        checks=checks,
        notes="same algorithms (dissemination / recursive doubling) on "
              "both transports; the delta is per-message cost.")
