"""R22 — event-kernel microbenchmark: calendar queue vs reference heap.

Host wall-clock throughput (events per second) of the two scheduler
backends on the two workload shapes that motivated the calendar queue:

- *empty-timeout churn*: many processes doing nothing but short timeout
  yields — the pure scheduling overhead path (Timeout freelist, bucket
  insert/pop) with no model code in the way.
- *bursty link transit*: back-to-back chunk bursts through a two-hop
  :class:`~repro.fabric.link.Link` path — the batched-transit fast path
  (burst drain, arithmetic exit times, raw delivery timers) plus the
  saturated-queue fallback when the burst overruns the inbox.

Both backends must process the *same* events to the *same* final clock
(that equivalence is pinned property-style in
``tests/test_sim_calendar.py``); here it doubles as a shape check while
the rates quantify the win.  Rates are host-machine dependent — exact
numbers belong in BENCH_wallclock.json, the checks are loose floors.
"""

from __future__ import annotations

import time

from ...fabric.link import Chunk, Link
from ...fabric.params import LinkParams
from ...sim.core import Environment
from ...util.units import KiB
from ..result import ExperimentResult


def _build_churn(env: Environment, n_procs: int, steps: int) -> None:
    # a small prime spread of delays keeps many distinct timestamps live
    # (the calendar's bucket heap earns its keep) with frequent ties
    def proc(delay: int):
        for _ in range(steps):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(proc(10 + (i % 7) * 13), name=f"churn{i}")


def _build_bursts(env: Environment, bursts: int, burst_len: int) -> None:
    params = LinkParams(bandwidth_gbps=16.0, latency_ns=500, mtu=4096)
    first = Link(env, params, "hop0")
    second = Link(env, params, "hop1")
    second.sink = lambda chunk: None

    def producer():
        for _ in range(bursts):
            # one back-to-back burst (overruns the inbox: exercises both
            # the batched drain and the parked-producer admission path)
            for _ in range(burst_len):
                chunk = Chunk(msg=None, offset=0, size=1 * KiB,
                              wire_bytes=1 * KiB + 30, is_first=True,
                              is_last=True, path=[first, second])
                first.inbox.put_discard(chunk)
            yield env.timeout(200_000)

    env.process(producer(), name="bursts")


def _measure(build, queue: str):
    env = Environment(queue=queue)
    build(env)
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    rate = env.events_processed / wall if wall > 0 else float("inf")
    return env.events_processed, env.now, rate


def run(quick: bool = True) -> ExperimentResult:
    n_procs = 64
    steps = 400 if quick else 4000
    bursts = 40 if quick else 400
    burst_len = 64

    rows = []
    checks = {}
    for label, build in (
            ("empty-timeout churn",
             lambda env: _build_churn(env, n_procs, steps)),
            ("bursty link transit",
             lambda env: _build_bursts(env, bursts, burst_len))):
        heap_events, heap_now, heap_rate = _measure(build, "heap")
        cal_events, cal_now, cal_rate = _measure(build, "calendar")
        speedup = cal_rate / heap_rate if heap_rate else float("inf")
        rows.append([label, "heap", f"{heap_events:,}",
                     f"{heap_rate:,.0f}", ""])
        rows.append([label, "calendar", f"{cal_events:,}",
                     f"{cal_rate:,.0f}", f"{speedup:.2f}x"])
        checks[f"{label}: backends process identical event counts"] = \
            heap_events == cal_events
        checks[f"{label}: backends end at the same simulated clock"] = \
            heap_now == cal_now
        # loose floor: the calendar queue must at least hold its own
        # against the heap (it wins by 1.2-2x on the reference machine,
        # but CI boxes are noisy — regressions show up in the timing gate)
        checks[f"{label}: calendar within noise of heap or faster"] = \
            speedup > 0.7
        checks[f"{label}: kernel sustains > 50k events/s"] = \
            min(heap_rate, cal_rate) > 50_000

    return ExperimentResult(
        exp_id="R22",
        title="event-kernel backends: calendar queue vs heap (host time)",
        headers=["workload", "backend", "events", "events/s", "speedup"],
        rows=rows,
        checks=checks,
        notes=("Host wall-clock rates (machine dependent).  Byte-identical "
               "firing order across backends is asserted property-style in "
               "tests/test_sim_calendar.py; the counts/clock checks here "
               "re-verify it on these workloads."))
