"""R17 — goodput and tail latency under real message loss.

A 2-rank transfer stream (64 KiB messages) runs over the lossy fabric at
chunk-loss probabilities {0, 1e-4, 1e-3, 1e-2}.  Two recovery stacks are
compared:

- **photon**: PWC puts with local+remote completion ids, recovered by
  Photon's reliability layer (deadline + exponential backoff +
  idempotent replay, dedup at the target ledger).
- **minimpi**: the same bytes as rendezvous send/recv.  Lost control
  messages are re-sent, lost RDMA fetches reposted, by the engine's
  matching error path.

The NIC's own transport-level ARQ is disabled (``transport_retries=0``)
so every chunk drop surfaces to the middleware — the recovery machinery
under test.  With ARQ at its default depth the same experiment shows
near-zero middleware retries: the fabric hides the loss and only the
goodput/tail degradation remains.

Reported per loss rate: goodput (Gbit/s, stop-and-wait — each message is
waited to completion before the next) and p99 end-to-end completion
latency (us).  Expected shape: goodput degrades monotonically with loss
while every payload still arrives intact; the p99 tail grows much faster
than the median because most messages see no loss at all and the unlucky
ones pay whole retry round-trips.
"""

from __future__ import annotations

from ...cluster import build_cluster
from ...minimpi import mpi_init
from ...photon import PhotonConfig, photon_init
from ...sim.core import SimulationError
from ...util.stats import percentile
from ..result import ExperimentResult

SIZE = 64 * 1024
WAIT = 10 ** 12

LOSS_RATES_FULL = [0.0, 1e-4, 1e-3, 1e-2]
LOSS_RATES_QUICK = [0.0, 1e-3, 1e-2]


def _lossy_cluster(n: int, loss: float, seed: int = 7):
    # NIC-level ARQ off: the middleware recovery paths (Photon replay,
    # minimpi resend/refetch) are the subject under test, so every chunk
    # drop is surfaced to them instead of being absorbed by the fabric
    return build_cluster(n, params="ib-fdr", seed=seed,
                         link__loss_mode="lossy", link__drop_rate=loss,
                         nic__transport_retries=0)


def _photon_stream(loss: float, n_msgs: int):
    """(goodput Gbit/s, p99 us, op_retries) for a 64KiB PWC put stream."""
    cl = _lossy_cluster(2, loss)
    # deep retry budget: at these loss rates everything must eventually
    # complete; the cost shows up as goodput/latency, not as failures
    ph = photon_init(cl, PhotonConfig(max_op_retries=5))
    src = ph[0].buffer(SIZE)
    dst = ph[1].buffer(SIZE)
    cl[0].memory.write(src.addr, bytes(range(256)) * (SIZE // 256))
    samples = []
    out = {}

    def sender(env):
        t0 = env.now
        for i in range(n_msgs):
            t_op = env.now
            yield from ph[0].put_pwc(1, src.addr, SIZE, dst.addr, dst.rkey,
                                     local_cid=i + 1, remote_cid=i + 1)
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            if c is None or not c.ok:
                raise SimulationError(f"put {i} failed under loss {loss}")
            samples.append(env.now - t_op)
        out["elapsed"] = env.now - t0

    def receiver(env):
        for _ in range(n_msgs):
            c = yield from ph[1].wait_completion("remote", timeout_ns=WAIT)
            if c is None:
                raise SimulationError("receiver starved")

    procs = [cl.env.process(sender(cl.env)),
             cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    if cl[1].memory.read(dst.addr, SIZE) != bytes(range(256)) * (SIZE // 256):
        raise SimulationError("payload corrupted under loss")
    goodput = (n_msgs * SIZE * 8) / out["elapsed"]  # bits/ns == Gbit/s
    return goodput, percentile(samples, 99.0) / 1000.0, \
        cl.counters.get("photon.op_retries")


def _mpi_stream(loss: float, n_msgs: int):
    """(goodput Gbit/s, p99 us) for the same stream over minimpi."""
    cl = _lossy_cluster(2, loss)
    mm = mpi_init(cl)
    src = cl[0].memory.alloc(SIZE)
    dst = cl[1].memory.alloc(SIZE)
    cl[0].memory.write(src, bytes(range(256)) * (SIZE // 256))
    samples = []
    out = {}

    def sender(env):
        t0 = env.now
        for i in range(n_msgs):
            t_op = env.now
            req = yield from mm[0].isend(src, SIZE, 1, tag=i)
            ok = yield from mm[0].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi send {i} failed under {loss}")
            samples.append(env.now - t_op)
        out["elapsed"] = env.now - t0

    def receiver(env):
        for i in range(n_msgs):
            req = yield from mm[1].irecv(dst, SIZE, src=0, tag=i)
            ok = yield from mm[1].engine.wait(req, timeout_ns=WAIT)
            if not ok or req.failed:
                raise SimulationError(f"mpi recv {i} failed under {loss}")

    procs = [cl.env.process(sender(cl.env)),
             cl.env.process(receiver(cl.env))]
    cl.env.run(until=cl.env.all_of(procs))
    goodput = (n_msgs * SIZE * 8) / out["elapsed"]
    return goodput, percentile(samples, 99.0) / 1000.0


def run(quick: bool = True) -> ExperimentResult:
    losses = LOSS_RATES_QUICK if quick else LOSS_RATES_FULL
    n_msgs = 20 if quick else 100
    rows = []
    series = {}
    for loss in losses:
        ph_good, ph_p99, retries = _photon_stream(loss, n_msgs)
        mpi_good, mpi_p99 = _mpi_stream(loss, n_msgs)
        series[loss] = (ph_good, ph_p99, retries, mpi_good, mpi_p99)
        rows.append([f"{loss:g}", ph_good, ph_p99, retries,
                     mpi_good, mpi_p99])

    clean, worst = losses[0], losses[-1]
    checks = {
        "photon goodput degrades monotonically with loss":
            all(series[a][0] >= series[b][0] * 0.999
                for a, b in zip(losses, losses[1:])),
        "loss fattens the photon p99 tail":
            series[worst][1] > series[clean][1],
        "no retries on the clean fabric":
            series[clean][2] == 0,
        "mpi survives loss too (error path works end to end)":
            series[worst][3] > 0,
        "heavy loss costs photon at least 10% goodput":
            series[worst][0] < series[clean][0] * 0.9,
    }
    return ExperimentResult(
        exp_id="R17",
        title=f"fault domain: {SIZE // 1024}KiB stream goodput/p99 vs "
              "chunk-loss probability, ib-fdr lossy",
        headers=["loss", "pwc Gbit/s", "pwc p99 us", "photon retries",
                 "mpi Gbit/s", "mpi p99 us"],
        rows=rows,
        checks=checks,
        notes="stop-and-wait goodput (each message waited to completion); "
              "NIC ARQ disabled so every drop reaches the middleware "
              "recovery paths.")
