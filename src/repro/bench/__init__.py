"""Benchmark harness: microbench primitives and experiments R1-R11."""

from .microbench import (
    LatencyStats,
    bandwidth_mpi,
    bandwidth_photon,
    msgrate_mpi,
    msgrate_photon,
    overlap_mpi,
    overlap_photon,
    pingpong_mpi,
    pingpong_mpi_rma,
    pingpong_photon,
)
from .result import ExperimentResult

__all__ = [
    "LatencyStats", "ExperimentResult",
    "bandwidth_mpi", "bandwidth_photon",
    "msgrate_mpi", "msgrate_photon",
    "overlap_mpi", "overlap_photon",
    "pingpong_mpi", "pingpong_mpi_rma", "pingpong_photon",
]
