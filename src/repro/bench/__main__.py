"""CLI: regenerate the experiment tables.

Usage::

    python -m repro.bench            # run everything, quick mode
    python -m repro.bench --full     # full sweeps (slower)
    python -m repro.bench --smoke    # tiny CI subset, quick mode
    python -m repro.bench r1 r5      # selected experiments
    python -m repro.bench --markdown out.md   # write EXPERIMENTS-style md
    python -m repro.bench --smoke --timing    # wall-clock medians ->
                                              #   BENCH_wallclock.json
    python -m repro.bench --smoke --profile   # cProfile, top-25 cumulative
    python -m repro.bench --stats stats.json --trace-out trace.jsonl
                                   # observability artifacts from an
                                   # instrumented lossy demo workload
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from .experiments import ALL

#: fast, representative subset for CI: a latency microbench, the
#: registration-cache checks (incl. the pin-leak balance), a fabric
#: validation, the fault-domain sweep, the KV serving + failover tenant
#: run, the KV snapshot/restart/live-move chaos run, and the
#: active-message invocation comparison
SMOKE = ["r1", "r6", "r14", "r17", "r20", "r21", "r23"]

#: median host wall time of ``--smoke`` on the reference machine *before*
#: the hot-path overhaul (zero-copy payloads, Timeout recycling, clean-
#: fabric fast path).  Kept so BENCH_wallclock.json always reports the
#: speedup against the same pre-optimisation anchor; the anchor covers
#: exactly the experiments below, so later additions to SMOKE don't
#: skew the comparison.
PRE_OPT_SMOKE_BASELINE_S = 4.271
PRE_OPT_SMOKE_IDS = ("r1", "r6", "r14", "r17")


def _run_timed(wanted, full: bool, repeats: int):
    """Run each experiment ``repeats`` times; return (results, timings).

    ``results`` holds the last run's ExperimentResult per experiment (all
    repeats produce identical simulated output — the kernel is
    deterministic); ``timings`` maps id -> {"runs": [...], "median_s": m,
    "events": n, "events_per_sec": n/m}.  ``events`` is the number of
    kernel events the experiment fires (identical on every repeat), so
    events/s is the headline simulator-throughput figure: it normalises
    the wall clock by the simulated load and stays comparable when
    experiments grow or shrink.
    """
    from ..sim.core import total_events_processed

    results = {}
    timings = {}
    for key in wanted:
        module = ALL[key]
        runs = []
        events = 0
        for _ in range(repeats):
            e0 = total_events_processed()
            t0 = time.perf_counter()
            results[key] = module.run(quick=not full)
            runs.append(time.perf_counter() - t0)
            events = total_events_processed() - e0
        median = statistics.median(runs)
        timings[key] = {"runs": [round(r, 4) for r in runs],
                        "median_s": round(median, 4),
                        "events": events,
                        "events_per_sec": (round(events / median)
                                           if median > 0 else None)}
    return results, timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (r1..r23); default: all")
    parser.add_argument("--list", action="store_true", dest="list_exps",
                        help="list registered experiments with one-line "
                             "descriptions and exit")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps instead of quick mode")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the CI smoke subset {SMOKE}")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as markdown")
    parser.add_argument("--timing", action="store_true",
                        help="repeat each experiment and record per-"
                             "experiment wall-clock medians in "
                             "BENCH_wallclock.json")
    parser.add_argument("--timing-repeats", type=int, default=3,
                        metavar="K", help="repeats per experiment for "
                                          "--timing (default 3)")
    parser.add_argument("--timing-out", default="BENCH_wallclock.json",
                        metavar="PATH", help="where --timing writes its "
                                             "report (default: repo root)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 25 "
                             "functions by cumulative time")
    parser.add_argument("--stats", metavar="PATH",
                        help="run the instrumented observability demo "
                             "(spans + tracing on a lossy fabric) and "
                             "write the merged per-rank stats snapshot")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="with --stats (or alone): also write the "
                             "JSONL trace/span export of the demo run")
    args = parser.parse_args(argv)

    if args.list_exps:
        for key in sorted(ALL, key=lambda k: int(k[1:])):
            doc = (ALL[key].__doc__ or "").strip().splitlines()
            line = doc[0].strip() if doc else "(no description)"
            smoke = " [smoke]" if key in SMOKE else ""
            print(f"  {key:>4}  {line}{smoke}")
        print(f"{len(ALL)} experiments; smoke subset: {', '.join(SMOKE)}")
        return 0

    if args.stats or args.trace_out:
        # observability artifacts come from a dedicated instrumented run,
        # not from the (trace-off) benchmark experiments
        from ..obs import report as obs_report
        obs_argv = []
        if args.stats:
            obs_argv += ["--json", args.stats]
        if args.trace_out:
            obs_argv += ["--trace", args.trace_out]
        rc = obs_report.main(obs_argv)
        if rc or not (args.experiments or args.smoke or args.full
                      or args.timing or args.profile or args.markdown):
            return rc

    if args.smoke and args.full:
        parser.error("--smoke and --full are mutually exclusive")
    wanted = args.experiments or (SMOKE if args.smoke else list(ALL))
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        parser.error(f"unknown experiments {unknown}; known: {sorted(ALL)}")

    if args.profile:
        import cProfile
        import pstats
        prof = cProfile.Profile()
        prof.enable()
        results = {k: ALL[k].run(quick=not args.full) for k in wanted}
        prof.disable()
        pstats.Stats(prof).sort_stats("cumulative").print_stats(25)
        timings = None
    elif args.timing:
        results, timings = _run_timed(wanted, args.full, args.timing_repeats)
    else:
        results = {}
        timings = None
        for key in wanted:
            t0 = time.time()
            results[key] = ALL[key].run(quick=not args.full)
            wall = time.time() - t0
            print(results[key].render())
            print(f"  (host wall time {wall:.1f}s)")
            print()

    failed = []
    for key in wanted:
        if not results[key].all_checks_pass:
            failed.append((key, results[key].failed_checks()))

    if timings is not None:
        total = round(sum(t["median_s"] for t in timings.values()), 4)
        total_events = sum(t["events"] for t in timings.values())
        report = {
            "mode": ("smoke" if args.smoke
                     else "full" if args.full else "quick"),
            "experiments": timings,
            "total_median_s": total,
            "total_events": total_events,
            "events_per_sec": (round(total_events / total)
                               if total else None),
            "repeats": args.timing_repeats,
        }
        if args.smoke:
            anchor = round(sum(t["median_s"] for k, t in timings.items()
                               if k in PRE_OPT_SMOKE_IDS), 4)
            report["pre_optimisation_smoke_baseline_s"] = \
                PRE_OPT_SMOKE_BASELINE_S
            report["speedup_vs_pre_optimisation"] = round(
                PRE_OPT_SMOKE_BASELINE_S / anchor, 2) if anchor else None
        with open(args.timing_out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        for key, t in timings.items():
            print(f"  {key}: median {t['median_s']:.3f}s over "
                  f"{len(t['runs'])} runs, {t['events']:,} events "
                  f"({t['events_per_sec']:,}/s)")
        print(f"total (sum of medians): {total:.3f}s, "
              f"{total_events:,} events "
              f"({report['events_per_sec']:,}/s) -> {args.timing_out}")

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("# Experiment results\n\n")
            for key in wanted:
                fh.write(results[key].to_markdown())
                fh.write("\n")
        print(f"wrote {args.markdown}")

    if failed:
        print("SHAPE CHECK FAILURES:")
        for key, names in failed:
            for n in names:
                print(f"  {key}: {n}")
        return 1
    print(f"all shape checks passed across {len(results)} experiments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
