"""CLI: regenerate the experiment tables.

Usage::

    python -m repro.bench            # run everything, quick mode
    python -m repro.bench --full     # full sweeps (slower)
    python -m repro.bench --smoke    # tiny CI subset, quick mode
    python -m repro.bench r1 r5      # selected experiments
    python -m repro.bench --markdown out.md   # write EXPERIMENTS-style md
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL

#: fast, representative subset for CI: a latency microbench, the
#: registration-cache checks (incl. the pin-leak balance), a fabric
#: validation, and the fault-domain sweep
SMOKE = ["r1", "r6", "r14", "r17"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (r1..r17); default: all")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps instead of quick mode")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the CI smoke subset {SMOKE}")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as markdown")
    args = parser.parse_args(argv)

    if args.smoke and args.full:
        parser.error("--smoke and --full are mutually exclusive")
    wanted = args.experiments or (SMOKE if args.smoke else list(ALL))
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        parser.error(f"unknown experiments {unknown}; known: {sorted(ALL)}")

    results = []
    failed = []
    for key in wanted:
        module = ALL[key]
        t0 = time.time()
        result = module.run(quick=not args.full)
        wall = time.time() - t0
        results.append(result)
        print(result.render())
        print(f"  (host wall time {wall:.1f}s)")
        print()
        if not result.all_checks_pass:
            failed.append((key, result.failed_checks()))

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("# Experiment results\n\n")
            for r in results:
                fh.write(r.to_markdown())
                fh.write("\n")
        print(f"wrote {args.markdown}")

    if failed:
        print("SHAPE CHECK FAILURES:")
        for key, names in failed:
            for n in names:
                print(f"  {key}: {n}")
        return 1
    print(f"all shape checks passed across {len(results)} experiments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
