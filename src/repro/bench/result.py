"""Experiment result container: table + shape checks.

Every reconstructed experiment returns one of these; the benchmark suite
asserts the checks and the CLI renders the tables into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..util.fmt import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one table/figure of the paper)."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    #: named shape assertions ("who wins / where the crossover falls")
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        out = [format_table(self.headers, self.rows,
                            title=f"[{self.exp_id}] {self.title}")]
        if self.notes:
            out.append(f"note: {self.notes}")
        for name, ok in self.checks.items():
            out.append(f"  check {'PASS' if ok else 'FAIL'}: {name}")
        return "\n".join(out)

    def to_markdown(self) -> str:
        lines = [f"### {self.exp_id} — {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            cells = []
            for x in row:
                if isinstance(x, float):
                    cells.append(f"{x:.3f}" if abs(x) < 1000 else f"{x:.0f}")
                else:
                    cells.append(str(x))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        if self.notes:
            lines.append(f"*{self.notes}*")
            lines.append("")
        for name, ok in self.checks.items():
            lines.append(f"- {'✅' if ok else '❌'} {name}")
        lines.append("")
        return "\n".join(lines)
