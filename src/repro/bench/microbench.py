"""Microbenchmark primitives: latency, bandwidth, message rate, overlap.

Each driver builds a fresh two-rank (or n-rank) cluster, runs the workload
SPMD in simulated time and returns *simulated-time* metrics.  Drivers come
in Photon and minimpi flavours with identical traffic patterns, mirroring
the osu-microbenchmark shapes the paper's microbenchmark figures use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import Cluster, build_cluster
from ..minimpi import MPIConfig, mpi_init, win_allocate
from ..photon import PhotonConfig, photon_init
from ..sim.core import SimulationError
from ..util.units import to_gbps

__all__ = [
    "LatencyStats",
    "pingpong_photon", "pingpong_mpi", "pingpong_mpi_rma",
    "bandwidth_photon", "bandwidth_mpi",
    "msgrate_photon", "msgrate_mpi",
    "overlap_photon", "overlap_mpi",
]

WAIT = 500_000_000_000  # generous simulated deadline


@dataclass
class LatencyStats:
    """Half-round-trip latencies in ns."""

    samples: List[int]

    @property
    def mean_ns(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0

    @property
    def median_us(self) -> float:
        from ..util.stats import median
        return median(self.samples) / 1000.0

    @property
    def p99_us(self) -> float:
        from ..util.stats import percentile
        return percentile(self.samples, 99.0) / 1000.0

    @property
    def min_us(self) -> float:
        return min(self.samples) / 1000.0


def _run(cl: Cluster, programs) -> List:
    procs = [cl.env.process(p) for p in programs]
    cl.env.run(until=cl.env.all_of(procs))
    return [p.value for p in procs]


# ---------------------------------------------------------------- latency


def pingpong_photon(size: int, reps: int = 50, warmup: int = 5,
                    mode: str = "pwc",
                    config: Optional[PhotonConfig] = None,
                    params="ib-fdr", seed: int = 0) -> LatencyStats:
    """Photon ping-pong; ``mode``: "pwc" (put w/ remote completion),
    "put" (request-tracked os_put + wait, origin-observed), or "send"
    (eager ledger message)."""
    cl = build_cluster(2, params=params, seed=seed)
    ph = photon_init(cl, config)
    bufs = [ep.buffer(max(size, 8) * 2) for ep in ph]
    payload = bytes((i * 7) & 0xFF for i in range(size))
    cl[0].memory.write(bufs[0].addr, payload)
    samples: List[int] = []

    if mode == "put":
        # origin-observed: post_os_put + wait, no echo (osu_put-style);
        # samples are full completion times, not halved round trips.
        def origin(env):
            ep = ph[0]
            for it in range(warmup + reps):
                t0 = env.now
                rid = yield from ep.post_os_put(1, bufs[0].addr, size,
                                                bufs[1].addr, bufs[1].rkey)
                ok = yield from ep.wait(rid, timeout_ns=WAIT)
                if not ok:
                    raise SimulationError("os_put wait timed out")
                ep.free_request(rid)
                if it >= warmup:
                    samples.append(env.now - t0)

        _run(cl, [origin(cl.env)])
        return LatencyStats(samples)

    def side(rank: int):
        ep = ph[rank]
        other = 1 - rank
        env = cl.env
        for it in range(warmup + reps):
            if rank == 0:
                t0 = env.now
                yield from _photon_shot(ep, other, bufs, size, mode, it)
                yield from _photon_await(ep, other, bufs, size, mode, it)
                if it >= warmup:
                    samples.append((env.now - t0) // 2)
            else:
                yield from _photon_await(ep, other, bufs, size, mode, it)
                yield from _photon_shot(ep, other, bufs, size, mode, it)

    _run(cl, [side(0), side(1)])
    if size and mode != "put":
        got = cl[1].memory.read(bufs[1].addr, size)
        if got != payload:
            raise SimulationError("pingpong payload corrupted")
    return LatencyStats(samples)


def _photon_shot(ep, other, bufs, size, mode, it):
    if mode == "pwc":
        yield from ep.put_pwc(other, bufs[ep.rank].addr, size,
                              bufs[other].addr, bufs[other].rkey,
                              remote_cid=it)
    elif mode == "send":
        data = ep.memory.read(bufs[ep.rank].addr, size)
        yield from ep.send_pwc(other, data, remote_cid=it)
    else:
        raise SimulationError(f"unknown photon pingpong mode {mode!r}")


def _photon_await(ep, other, bufs, size, mode, it):
    if mode == "pwc":
        c = yield from ep.wait_completion("remote", timeout_ns=WAIT)
        if c is None or c.cid != it:
            raise SimulationError(f"pwc pingpong lost completion at {it}")
    elif mode == "send":
        m = yield from ep.wait_message(lambda s, c: c == it,
                                       timeout_ns=WAIT)
        if m is None:
            raise SimulationError(f"send pingpong lost message at {it}")
        if size:
            ep.memory.write(bufs[ep.rank].addr, m[2])


def pingpong_mpi(size: int, reps: int = 50, warmup: int = 5,
                 config: Optional[MPIConfig] = None,
                 params="ib-fdr", seed: int = 0) -> LatencyStats:
    """minimpi send/recv ping-pong (eager or rendezvous by size)."""
    cl = build_cluster(2, params=params, seed=seed)
    comms = mpi_init(cl, config)
    bufs = [cl[r].memory.alloc(max(size, 8) * 2) for r in range(2)]
    payload = bytes((i * 7) & 0xFF for i in range(size))
    cl[0].memory.write(bufs[0], payload)
    samples: List[int] = []

    def side(rank: int):
        comm = comms[rank]
        other = 1 - rank
        env = cl.env
        for it in range(warmup + reps):
            if rank == 0:
                t0 = env.now
                yield from comm.send(bufs[0], size, other, tag=it)
                yield from comm.recv(bufs[0], max(size, 8), other, tag=it)
                if it >= warmup:
                    samples.append((env.now - t0) // 2)
            else:
                yield from comm.recv(bufs[1], max(size, 8), other, tag=it)
                yield from comm.send(bufs[1], size, other, tag=it)

    _run(cl, [side(0), side(1)])
    if size:
        got = cl[1].memory.read(bufs[1], size)
        if got != payload:
            raise SimulationError("mpi pingpong payload corrupted")
    return LatencyStats(samples)


def pingpong_mpi_rma(size: int, reps: int = 50, warmup: int = 5,
                     params="ib-fdr", seed: int = 0) -> LatencyStats:
    """MPI-3 RMA put+flush latency (origin-observed, osu_put_latency-like)."""
    cl = build_cluster(2, params=params, seed=seed)
    comms = mpi_init(cl)
    wins = win_allocate(comms, max(size, 8))
    src = cl[0].memory.alloc(max(size, 8))
    samples: List[int] = []

    def origin(env):
        for it in range(warmup + reps):
            t0 = env.now
            yield from wins[0].put(src, size, rank=1)
            yield from wins[0].flush()
            if it >= warmup:
                samples.append(env.now - t0)

    _run(cl, [origin(cl.env)])
    return LatencyStats(samples)


# ---------------------------------------------------------------- bandwidth


def bandwidth_photon(size: int, count: int = 64, window: int = 16,
                     config: Optional[PhotonConfig] = None,
                     params="ib-fdr", seed: int = 0) -> float:
    """Unidirectional streaming put bandwidth, Gbit/s (osu_bw shape)."""
    cl = build_cluster(2, params=params, seed=seed,
                       mem_size=max(64, 4 * size * window // (1 << 20) + 64)
                       * (1 << 20))
    ph = photon_init(cl, config)
    src = ph[0].buffer(size * window)
    dst = ph[1].buffer(size * window)
    result = {}

    def sender(env):
        # warm the pipe + registrations
        yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                 local_cid=0)
        c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
        t0 = env.now
        done = 0
        inflight = 0
        issued = 0
        while done < count:
            while issued < count and inflight < window:
                off = (issued % window) * size
                yield from ph[0].put_pwc(1, src.addr + off, size,
                                         dst.addr + off, dst.rkey,
                                         local_cid=issued + 1)
                issued += 1
                inflight += 1
            c = yield from ph[0].wait_completion("local", timeout_ns=WAIT)
            if c is None:
                raise SimulationError("bandwidth stream stalled")
            done += 1
            inflight -= 1
        result["gbps"] = to_gbps(size * count, env.now - t0)

    _run(cl, [sender(cl.env)])
    return result["gbps"]


def bandwidth_mpi(size: int, count: int = 64, window: int = 16,
                  config: Optional[MPIConfig] = None,
                  params="ib-fdr", seed: int = 0) -> float:
    """Unidirectional isend/irecv streaming bandwidth, Gbit/s."""
    cl = build_cluster(2, params=params, seed=seed,
                       mem_size=max(64, 4 * size * window // (1 << 20) + 64)
                       * (1 << 20))
    comms = mpi_init(cl, config)
    src = cl[0].memory.alloc(size * window)
    dst = cl[1].memory.alloc(size * window)
    result = {}

    def sender(env):
        yield from comms[0].send(src, size, 1, tag=9999)
        t0 = env.now
        issued = 0
        reqs = []
        while issued < count:
            while issued < count and len(reqs) < window:
                off = (issued % window) * size
                r = yield from comms[0].isend(src + off, size, 1, tag=issued)
                reqs.append(r)
                issued += 1
            # wait for the oldest to retire (keeps the window full)
            yield from comms[0].wait(reqs.pop(0))
        yield from comms[0].waitall(reqs)
        # final handshake: all data at the receiver
        yield from comms[0].recv(src, 8, src=1, tag=100_000)
        result["elapsed"] = env.now - t0

    def receiver(env):
        yield from comms[1].recv(dst, size, 0, tag=9999)
        reqs = []
        for i in range(count):
            off = (i % window) * size
            r = yield from comms[1].irecv(dst + off, size, 0, tag=i)
            reqs.append(r)
            if len(reqs) >= window:
                yield from comms[1].wait(reqs.pop(0))
        yield from comms[1].waitall(reqs)
        yield from comms[1].send(dst, 8, 0, tag=100_000)

    _run(cl, [sender(cl.env), receiver(cl.env)])
    return to_gbps(size * count, result["elapsed"])


# ---------------------------------------------------------------- msg rate


def msgrate_photon(size: int = 16, count: int = 500, window: int = 64,
                   config: Optional[PhotonConfig] = None,
                   params="ib-fdr", seed: int = 0) -> float:
    """Small-message injection rate via send_pwc, messages/second."""
    cl = build_cluster(2, params=params, seed=seed)
    ph = photon_init(cl, config)
    payload = bytes(size)
    result = {}

    def sender(env):
        yield from ph[0].send_pwc(1, payload, remote_cid=1 << 33)
        t0 = env.now
        for i in range(count):
            yield from ph[0].send_pwc(1, payload, remote_cid=i)
        result["send_done"] = env.now - t0

    def receiver(env):
        m = yield from ph[1].wait_message(timeout_ns=WAIT)
        t0 = env.now
        got = 0
        while got < count:
            m = yield from ph[1].wait_message(timeout_ns=WAIT)
            if m is None:
                raise SimulationError("msgrate receiver stalled")
            got += 1
        result["recv_elapsed"] = env.now - t0

    _run(cl, [sender(cl.env), receiver(cl.env)])
    return count / (result["recv_elapsed"] / 1e9)


def msgrate_mpi(size: int = 16, count: int = 500, window: int = 64,
                config: Optional[MPIConfig] = None,
                params="ib-fdr", seed: int = 0) -> float:
    """Small-message rate via isend/irecv windows, messages/second."""
    cl = build_cluster(2, params=params, seed=seed)
    comms = mpi_init(cl, config)
    src = cl[0].memory.alloc(max(size, 8))
    dst = cl[1].memory.alloc(max(size, 8) * window)
    result = {}

    def sender(env):
        yield from comms[0].send(src, size, 1, tag=999_999)
        reqs = []
        for i in range(count):
            r = yield from comms[0].isend(src, size, 1, tag=7)
            reqs.append(r)
            if len(reqs) >= window:
                yield from comms[0].wait(reqs.pop(0))
        yield from comms[0].waitall(reqs)

    def receiver(env):
        yield from comms[1].recv(dst, max(size, 8), 0, tag=999_999)
        t0 = env.now
        reqs = []
        done = 0
        for i in range(count):
            off = (i % window) * max(size, 8)
            r = yield from comms[1].irecv(dst + off, max(size, 8), 0, tag=7)
            reqs.append(r)
            if len(reqs) >= window:
                yield from comms[1].wait(reqs.pop(0))
                done += 1
        yield from comms[1].waitall(reqs)
        result["recv_elapsed"] = env.now - t0

    _run(cl, [sender(cl.env), receiver(cl.env)])
    return count / (result["recv_elapsed"] / 1e9)


# ---------------------------------------------------------------- overlap


def overlap_photon(size: int, compute_ns: int,
                   params="ib-fdr", seed: int = 0) -> int:
    """Receiver-side completion time when the receiver computes first.

    Sender puts ``size`` bytes at t≈0 (one-sided, pre-exposed buffer);
    receiver computes for ``compute_ns`` then waits for the completion.
    Returns the receiver's total time.  One-sided transfers progress
    during the compute, so total ≈ max(compute, transfer).
    """
    cl = build_cluster(2, params=params, seed=seed,
                       mem_size=max(64 * (1 << 20), 4 * size))
    ph = photon_init(cl)
    src = ph[0].buffer(size)
    dst = ph[1].buffer(size)
    result = {}

    def sender(env):
        yield from ph[0].put_pwc(1, src.addr, size, dst.addr, dst.rkey,
                                 remote_cid=1)

    def receiver(env):
        t0 = env.now
        yield env.timeout(compute_ns)  # busy computing: no progress calls
        c = yield from ph[1].wait_completion("remote", timeout_ns=WAIT)
        if c is None:
            raise SimulationError("overlap receiver stalled")
        result["total"] = env.now - t0

    _run(cl, [sender(cl.env), receiver(cl.env)])
    return result["total"]


def overlap_mpi(size: int, compute_ns: int,
                config: Optional[MPIConfig] = None,
                params="ib-fdr", seed: int = 0) -> int:
    """Two-sided counterpart: irecv posted, compute, then wait.

    For rendezvous sizes the transfer cannot start until the receiver's
    progress engine sees the RTS — i.e. after the compute — so total ≈
    compute + transfer.
    """
    cl = build_cluster(2, params=params, seed=seed,
                       mem_size=max(64 * (1 << 20), 4 * size))
    comms = mpi_init(cl, config)
    src = cl[0].memory.alloc(size)
    dst = cl[1].memory.alloc(size)
    result = {}

    def sender(env):
        yield from comms[0].send(src, size, 1, tag=1)

    def receiver(env):
        t0 = env.now
        req = yield from comms[1].irecv(dst, size, 0, tag=1)
        yield env.timeout(compute_ns)  # busy computing: no progress calls
        yield from comms[1].wait(req)
        result["total"] = env.now - t0

    _run(cl, [sender(cl.env), receiver(cl.env)])
    return result["total"]
