"""KV client: leader discovery, redirects, retries, two read arms.

A :class:`KVClient` lives on some rank and talks to the store through
that rank's :class:`~repro.kv.store.KVNode` hub (responses are delivered
by the node's server loop, requests go straight onto the shared parcel
transport — concurrent senders per rank are a supported pattern
everywhere in this repo).

Write path: the client hashes the key to a group, sends the command to
its best guess for the group's leader, and follows ``NotLeader``
redirects / times out onto the next replica.  Retries reuse the same
``(client_id, seq)`` uid, so the session layer in the state machine
makes them exactly-once even when the original attempt committed before
the leader died.  Every OK/CAS-fail/miss write response is recorded in
``self.acked`` — the failover invariant checker replays that list
against the surviving replicas.

Read paths (the RDMA-vs-RPC comparison axis):

* ``rpc``: a parcel round-trip served by the leader from local state
  under a read lease (no log write, still linearizable — the lease is
  sized under the phi-accrual detection bound and gated behind the
  Raft §8 current-term barrier, see DESIGN.md §10).
* ``onesided``: resolve ``key → (leader, addr, rkey, slot)`` once via a
  ``loc`` RPC, then read the slot with a raw ``get_pwc`` — one wire
  round, zero remote CPU.  This arm is **relaxed consistency, not
  linearizable**: a deposed-but-alive leader keeps a live slot table
  (updated at follower apply lag), and a raw remote read cannot see
  that leadership moved.  Staleness is *bounded*, not eliminated: a
  cached location older than ``loc_ttl_ns`` is revalidated in the
  background (stale-while-revalidate — the triggering read keeps the
  arm's one-round latency) through the redirect-following RPC path,
  the server refuses loc requests once its lease lapses (so a deposed
  leader stops re-confirming its own table and the stale entry is
  dropped within one refresh), and the slot-header version gives
  per-key monotonic reads within a session (a version that goes
  backwards marks the replica stale — fall back, drop the cache).  A
  crashed leader, absent/oversize slot, or version regression falls
  back to the authoritative RPC path.  That consistency gap *is* the
  RDMA-vs-RPC trade-off experiment R20 measures.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .shard import (Command, OP_CAS, OP_DELETE, OP_PUT, ST_CAS_FAIL,
                    ST_MISS, ST_OK, encode_command)
from .store import (ACT_REQ, KVNode, REQ_LOC, REQ_READ, REQ_SNAP, REQ_WRITE,
                    RESP_FAIL, RESP_NO_LEASE, RESP_NOT_LEADER,
                    RESP_WRONG_EPOCH, SLOT_OVERSIZE, SLOT_PRESENT, _SLOT,
                    pack_request, unpack_loc)
from ..runtime.transport import PeerDownError

__all__ = ["KVClient", "ClientStats"]

#: base for client-local get_pwc completion ids — far above the cid
#: ranges used by transports (PARCEL_TAG) and experiment drivers
_CID_BASE = (1 << 52) + 11


class ClientStats:
    """Counters one client accumulates (cheap, no obs spans here)."""

    __slots__ = ("redirects", "timeouts", "lease_retries", "loc_lookups",
                 "onesided_reads", "onesided_fallbacks", "rpc_reads",
                 "writes", "failures", "wrong_epoch", "map_refreshes")

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self.__slots__}


class KVClient:
    """One logical client session (unique id, monotonically growing seq)."""

    def __init__(self, node: KVNode, client_id: int,
                 read_mode: str = "rpc", timeout_ns: int = 2_000_000,
                 poll_ns: int = 2_000, max_attempts: int = 24,
                 loc_ttl_ns: int = 400_000):
        if read_mode not in ("rpc", "onesided"):
            raise ValueError(f"unknown read_mode {read_mode!r}")
        self.node = node
        self.env = node.env
        self.photon = node.photon
        self.client_id = client_id
        self.read_mode = read_mode
        self.timeout_ns = timeout_ns
        self.poll_ns = poll_ns
        self.max_attempts = max_attempts
        #: one-sided location cache lifetime — bounds how long reads can
        #: keep targeting a deposed-but-alive leader before a background
        #: revalidation (refused by lease-less servers) drops the entry
        self.loc_ttl_ns = loc_ttl_ns
        self.seq = 0
        self.stats = ClientStats()
        #: immutable epoch-stamped ring snapshot this client routes by;
        #: every request carries ``_view.epoch`` and a WRONG_EPOCH answer
        #: (shard moved, or sealed mid-move) refetches it
        self._view = node.shard_map.freeze()
        #: group -> believed leader rank
        self._leader: Dict[int, int] = {}
        #: key -> (leader, slot addr, rkey, slot_size, resolved_at_ns)
        self._loc: Dict[bytes, Tuple[int, int, int, int, int]] = {}
        #: key -> highest slot version this session has observed; a
        #: one-sided read below it is a stale replica (monotonic reads)
        self._seen_ver: Dict[bytes, int] = {}
        #: keys with a background loc refresh in flight (dedup)
        self._refreshing: set = set()
        #: every acknowledged mutation: (client, seq, op, key, value) —
        #: the failover checker asserts these survive leader crashes
        self.acked: List[Tuple[int, int, int, bytes, bytes]] = []
        self._scratch = node.photon.buffer(node.config.slot_size)
        self._cid = _CID_BASE + client_id * (1 << 20)

    # -------------------------------------------------------------- writes
    def put(self, key: bytes, value: bytes):
        """Replicated put (generator).  Returns the ST_* status."""
        status, _ = yield from self._write(OP_PUT, key, value, b"")
        return status

    def cas(self, key: bytes, expected: bytes, value: bytes):
        """Compare-and-swap (generator).  Returns ``(status, witness)``
        where witness is the conflicting current value on CAS_FAIL."""
        return (yield from self._write(OP_CAS, key, value, expected))

    def delete(self, key: bytes):
        """Replicated delete (generator).  Returns the ST_* status."""
        status, _ = yield from self._write(OP_DELETE, key, b"", b"")
        return status

    def _write(self, op: int, key: bytes, value: bytes, expected: bytes):
        self.seq += 1
        seq = self.seq
        cmd = Command(op=op, client=self.client_id, seq=seq, key=key,
                      value=value, expected=expected)
        status, resp = yield from self._rpc(REQ_WRITE, encode_command(cmd),
                                            seq, key=key)
        if status in (ST_OK, ST_MISS, ST_CAS_FAIL):
            # the command reached the state machine => it is durable on a
            # commit majority, whatever the outcome code says
            self.acked.append((self.client_id, seq, op, key, value))
            self.stats.writes += 1
        else:
            self.stats.failures += 1
        return status, resp

    # --------------------------------------------------------------- reads
    def get(self, key: bytes):
        """Read (generator).  Returns ``(status, value)`` via the arm
        selected at construction time.  ``rpc`` is linearizable;
        ``onesided`` is a relaxed read — bounded staleness (location
        cache TTL + replica apply lag) with per-key monotonic reads in
        this session, see the module docstring."""
        if self.read_mode == "onesided":
            return (yield from self._get_onesided(key))
        return (yield from self._get_rpc(key))

    def _get_rpc(self, key: bytes):
        self.seq += 1
        seq = self.seq
        status, value = yield from self._rpc(
            REQ_READ, struct.pack("<H", len(key)) + key, seq, key=key)
        if status in (ST_OK, ST_MISS):
            self.stats.rpc_reads += 1
        else:
            self.stats.failures += 1
        return status, value

    def _get_onesided(self, key: bytes):
        loc = self._loc.get(key)
        if loc is not None and self.env.now - loc[4] > self.loc_ttl_ns:
            # stale-while-revalidate: serve this read from the cached
            # location (keeping the arm's one-wire-round latency) and
            # re-resolve in the background through the redirect-following
            # RPC path — the server refuses loc requests once its lease
            # lapses, so a location pointing at a deposed leader stops
            # being re-confirmed and gets dropped within one refresh
            self._refresh_loc(key)
        if loc is None:
            loc = yield from self._resolve_loc(key)
            if loc is None:
                # unknown key (or leaderless window): authoritative answer
                # comes from the lease path
                return (yield from self._get_rpc(key))
        leader, addr, rkey, slot_size, _resolved_at = loc
        self._cid += 1
        cid = self._cid
        try:
            yield from self.photon.get_pwc(
                leader, self._scratch.addr, slot_size, addr, rkey,
                local_cid=cid)
        except PeerDownError:
            comp = None
        else:
            comp = yield from self._wait_local(cid)
        if comp is None or not comp.ok:
            # leader died or moved: drop what we believed about it
            self._loc.pop(key, None)
            self._leader.clear()
            self.stats.onesided_fallbacks += 1
            return (yield from self._get_rpc(key))
        version, length, flags = _SLOT.unpack_from(
            self.photon.memory.read(self._scratch.addr, _SLOT.size), 0)
        if version < self._seen_ver.get(key, 0):
            # versions are assigned in committed-log order, identically
            # on every replica: seeing one go backwards means this slot
            # table lags a replica we already read — stale, fall back
            self._loc.pop(key, None)
            self._leader.clear()
            self.stats.onesided_fallbacks += 1
            return (yield from self._get_rpc(key))
        if flags & SLOT_OVERSIZE or not flags & SLOT_PRESENT:
            # deleted key or value too large for the slot: fall back so
            # the answer is authoritative (slot says nothing about keys
            # written after our loc snapshot on other nodes)
            self._loc.pop(key, None)
            self.stats.onesided_fallbacks += 1
            return (yield from self._get_rpc(key))
        self._seen_ver[key] = version
        value = self.photon.memory.read_bytes(
            self._scratch.addr + _SLOT.size, length)
        self.stats.onesided_reads += 1
        return ST_OK, value

    def _resolve_loc(self, key: bytes):
        self.seq += 1
        seq = self.seq
        status, raw = yield from self._rpc(
            REQ_LOC, struct.pack("<H", len(key)) + key, seq, key=key)
        self.stats.loc_lookups += 1
        if status != ST_OK:
            return None
        leader, _slot, slot_size, addr, rkey = unpack_loc(raw)
        loc = (leader, addr, rkey, slot_size, self.env.now)
        self._loc[key] = loc
        return loc

    def _refresh_loc(self, key: bytes) -> None:
        """Spawn a background re-resolution of ``key``'s location.

        At most one refresh per key is in flight; a refresh that fails
        (leaderless window, unknown key, deposed leader answering
        ``RESP_NO_LEASE``) drops the cached location so the next read
        takes the authoritative RPC path instead of a possibly-stale
        one-sided read.
        """
        if key in self._refreshing:
            return
        self._refreshing.add(key)

        def worker():
            try:
                fresh = yield from self._resolve_loc(key)
                if fresh is None:
                    self._loc.pop(key, None)
            finally:
                self._refreshing.discard(key)

        self.env.process(worker(),
                         name=f"kv.client{self.client_id}.locrefresh")

    def _wait_local(self, cid: int):
        """Wait for *our* local completion; requeue other processes'."""
        deadline = self.env.now + self.timeout_ns
        while self.env.now < deadline:
            remaining = deadline - self.env.now
            comp = yield from self.photon.wait_completion(
                "local", timeout_ns=min(remaining, self.timeout_ns))
            if comp is None:
                return None
            if comp.cid == cid:
                return comp
            self.photon.local_cids.append((comp.cid, comp.status))
            yield self.env.timeout(self.poll_ns)
        return None

    # ----------------------------------------------------------- transport
    def _refresh_view(self) -> None:
        self._view = self.node.shard_map.freeze()
        self.stats.map_refreshes += 1

    def _rpc(self, kind: int, body: bytes, seq: int, key: bytes = None,
             group: int = None):
        """Send to the believed leader, follow redirects, retry on
        timeout.  Returns ``(status, value)`` with RESP_FAIL on give-up.

        Routing: ``key`` requests hash through this client's frozen ring
        view and re-route after a WRONG_EPOCH refetch; ``group`` pins an
        explicit target (admin ops) and only the stamped epoch refreshes.
        """
        g = group if group is not None else self._view.group_of(key)
        replicas = self.node.shard_map.replicas(g)
        dst = self._leader.get(g, replicas[0])
        fallback = 0
        redirects = 0
        # leaderless windows (bootstrap, failover) last an election
        # timeout or more: back off exponentially instead of burning the
        # attempt budget at poll speed
        backoff = self.poll_ns * 8
        for _attempt in range(self.max_attempts):
            payload = pack_request(kind, self.client_id, seq, g,
                                   self._view.epoch, body)
            sent = True
            try:
                yield from self.node.runtime.send(dst, ACT_REQ, payload)
            except PeerDownError:
                sent = False
            answer = None
            if sent:
                answer = yield from self._await(seq)
            if answer is None:
                # dead/laggy replica: rotate through the replica set
                self.stats.timeouts += sent
                fallback += 1
                dst = replicas[fallback % len(replicas)]
                self._leader.pop(g, None)
                continue
            status, hint, value = answer
            if status == RESP_NOT_LEADER:
                self.stats.redirects += 1
                redirects += 1
                followed_hint = hint >= 0 and hint != dst
                if followed_hint:
                    dst = hint
                else:
                    fallback += 1
                    dst = replicas[fallback % len(replicas)]
                # one fresh hint is followed for free (the common
                # steady-state redirect); after that, or with no usable
                # hint, back off — mid-election the replicas' stale
                # leader views can bounce a request between each other
                # at wire speed and burn the whole attempt budget in
                # less than a leaderless window
                if not followed_hint or redirects >= 2:
                    yield self.env.timeout(backoff)
                    backoff = min(backoff * 2, 400_000)
                continue
            if status == RESP_NO_LEASE:
                self.stats.lease_retries += 1
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, 400_000)
                continue
            if status == RESP_WRONG_EPOCH:
                # the ring moved under us (or the range is sealed while
                # a move is in flight): refetch the map, re-route, retry.
                # Pre-flip sealed rejections return the *same* epoch, so
                # this degenerates to a plain backoff until the flip —
                # which is exactly the intended client behaviour.
                self.stats.wrong_epoch += 1
                self._refresh_view()
                if group is None:
                    new_g = self._view.group_of(key)
                    if new_g != g:
                        g = new_g
                        replicas = self.node.shard_map.replicas(g)
                        fallback = 0
                        dst = self._leader.get(g, replicas[0])
                        # dropped keys' cached one-sided locations now
                        # point at the old owner — invalidate this one
                        if key is not None:
                            self._loc.pop(key, None)
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, 400_000)
                continue
            self._leader[g] = dst
            return status, value
        return RESP_FAIL, b""

    def _await(self, seq: int):
        """Poll the hub for our response until the per-attempt timeout."""
        hub = self.node.hub
        key = (self.client_id, seq)
        deadline = self.env.now + self.timeout_ns
        while key not in hub:
            if self.env.now >= deadline:
                return None
            yield self.env.timeout(self.poll_ns)
        status, hint, value, _arrived = hub.pop(key)
        return status, hint, value

    # ------------------------------------------------------- resharding ops
    def admin_cmd(self, group: int, op: int, value: bytes = b""):
        """Replicated admin command (OP_SEAL / OP_MERGE / OP_PURGE) at an
        explicit group (generator).  Returns the ST_* status.  Admin
        commands ride the same session layer as data writes, so retries
        after a redirect or crash stay exactly-once."""
        self.seq += 1
        seq = self.seq
        cmd = Command(op=op, client=self.client_id, seq=seq, key=b"",
                      value=value)
        status, _ = yield from self._rpc(REQ_WRITE, encode_command(cmd),
                                         seq, group=group)
        return status

    def pull_snapshot(self, group: int):
        """Fetch a sealed group's serialized machine (generator).
        Returns the blob, or None while unsealed / leaderless."""
        self.seq += 1
        seq = self.seq
        status, blob = yield from self._rpc(REQ_SNAP, b"", seq, group=group)
        return blob if status == ST_OK else None
