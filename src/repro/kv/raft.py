"""A minimal deterministic Raft core for one replication group.

This module is *pure protocol logic*: a :class:`RaftNode` never touches
the event loop, the fabric or the photon endpoint directly.  It consumes
three inputs — the current simulated time, decoded peer messages, and
tick calls — and produces outgoing messages into an outbox the caller
(:class:`repro.kv.store.KVNode`) drains onto the wire.  That keeps the
consensus state machine unit-testable without a cluster and keeps every
byte of Raft traffic on the caller's transport, which in this repo means
Photon PWC eager sends surfaced by completion-ledger probes (see
DESIGN.md §10 for the exact slot mapping).

Faithfulness notes (what is and isn't modelled):

- terms, leader election, log replication, commit-on-majority and the
  current-term commit restriction are the real algorithm;
- election scheduling is *deterministic*: timeouts draw jitter from a
  named RNG stream (``kv.raft.g<group>.r<rank>``), and the failure
  detector (:mod:`repro.runtime.health`) short-circuits the conservative
  timeout when it declares the known leader dead — detection-driven
  elections are the point of riding the health layer;
- persistence is not modelled: a crashed replica loses its volatile
  state, but the caller may reseed a *fresh* node into the same group
  (``repro.chaos`` restart events do exactly that) — the newcomer
  rejoins through the InstallSnapshot flow below;
- compaction is **snapshot-based**: once the applied prefix exceeds
  ``compact_threshold`` the node serializes its state machine (through
  the caller-installed :attr:`RaftNode.snapshot_fn`), records the
  snapshot at ``last_applied``, and trims the log past *every* laggard,
  keeping only ``compact_margin`` recent entries.  A follower whose
  ``next_index`` falls below ``base_index`` is caught up by streaming
  the snapshot in ``snapshot_chunk``-byte pieces (``MSG_SNAP``), one
  chunk outstanding per peer with the heartbeat period as the
  retransmit timer — the same self-clocking discipline as
  AppendEntries.  A slow, gray or partitioned follower therefore never
  stalls trimming, and a restarted replica converges from an empty log.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.core import SimulationError
from .shard import CodecError

__all__ = ["RaftConfig", "RaftNode", "RaftMsg", "encode_msg", "decode_msg",
           "FOLLOWER", "CANDIDATE", "LEADER",
           "MSG_VOTE_REQ", "MSG_VOTE_REPLY", "MSG_APPEND", "MSG_APPEND_REPLY",
           "MSG_SNAP", "MSG_SNAP_REPLY"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

MSG_VOTE_REQ = 1
MSG_VOTE_REPLY = 2
MSG_APPEND = 3
MSG_APPEND_REPLY = 4
MSG_SNAP = 5         # one InstallSnapshot chunk
MSG_SNAP_REPLY = 6   # follower's receive-progress ack

#: type u8, group u16, term u64, src u16
_HDR = struct.Struct("<BHQH")
#: RequestVote body: last_log_index u64, last_log_term u64
_RV = struct.Struct("<QQ")
#: VoteReply body: granted u8
_RVR = struct.Struct("<B")
#: AppendEntries body: prev_index, prev_term, commit, sent_ns u64s; n u16
_AE = struct.Struct("<QQQQH")
#: AppendReply body: success u8, match_index u64, sent_ns u64 (echoed).
#: On failure ``match_index`` carries the follower's last_index as a
#: conflict hint so the leader can jump next_index down in one round
#: (and reach the snapshot path fast for a freshly restarted replica).
_AER = struct.Struct("<BQQ")
#: per-entry frame: term u64, length u32
_ENTRY = struct.Struct("<QI")
#: InstallSnapshot chunk: snap_index, snap_term, offset, total, sent_ns
#: u64s; chunk_len u32, done u8 — chunk bytes follow
_SNAP = struct.Struct("<QQQQQIB")
#: InstallSnapshot reply: snap_index, next_offset, sent_ns u64s
_SNAPR = struct.Struct("<QQQ")


@dataclass(frozen=True)
class RaftMsg:
    """One decoded Raft message (any of the six kinds)."""

    kind: int
    group: int
    term: int
    src: int
    # RequestVote
    last_log_index: int = 0
    last_log_term: int = 0
    # VoteReply
    granted: bool = False
    # AppendEntries
    prev_index: int = 0
    prev_term: int = 0
    commit: int = 0
    sent_ns: int = 0
    entries: Tuple[Tuple[int, bytes], ...] = ()
    # AppendReply
    success: bool = False
    match_index: int = 0
    # InstallSnapshot chunk / reply
    snap_index: int = 0
    snap_term: int = 0
    offset: int = 0
    total: int = 0
    done: bool = False
    chunk: bytes = b""
    next_offset: int = 0


def encode_msg(msg: RaftMsg) -> bytes:
    head = _HDR.pack(msg.kind, msg.group, msg.term, msg.src)
    if msg.kind == MSG_VOTE_REQ:
        return head + _RV.pack(msg.last_log_index, msg.last_log_term)
    if msg.kind == MSG_VOTE_REPLY:
        return head + _RVR.pack(1 if msg.granted else 0)
    if msg.kind == MSG_APPEND:
        parts = [head, _AE.pack(msg.prev_index, msg.prev_term, msg.commit,
                                msg.sent_ns, len(msg.entries))]
        for term, cmd in msg.entries:
            parts.append(_ENTRY.pack(term, len(cmd)))
            parts.append(cmd)
        return b"".join(parts)
    if msg.kind == MSG_APPEND_REPLY:
        return head + _AER.pack(1 if msg.success else 0, msg.match_index,
                                msg.sent_ns)
    if msg.kind == MSG_SNAP:
        return (head + _SNAP.pack(msg.snap_index, msg.snap_term, msg.offset,
                                  msg.total, msg.sent_ns, len(msg.chunk),
                                  1 if msg.done else 0)
                + msg.chunk)
    if msg.kind == MSG_SNAP_REPLY:
        return head + _SNAPR.pack(msg.snap_index, msg.next_offset, msg.sent_ns)
    raise SimulationError(f"unknown raft message kind {msg.kind}")


def _expect(raw: bytes, size: int, what: str) -> None:
    if len(raw) != size:
        raise CodecError(f"{what}: frame is {len(raw)} bytes, expected {size}")


def decode_msg(raw: bytes) -> RaftMsg:
    """Decode one Raft frame, validating every declared length.

    A truncated or corrupt frame raises :class:`CodecError` instead of
    silently mis-splitting entries — the store drops and counts it.
    """
    if len(raw) < _HDR.size:
        raise CodecError(f"raft frame truncated: {len(raw)} < {_HDR.size}")
    kind, group, term, src = _HDR.unpack_from(raw, 0)
    off = _HDR.size
    if kind == MSG_VOTE_REQ:
        _expect(raw, _HDR.size + _RV.size, "vote request")
        last_idx, last_term = _RV.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, last_log_index=last_idx,
                       last_log_term=last_term)
    if kind == MSG_VOTE_REPLY:
        _expect(raw, _HDR.size + _RVR.size, "vote reply")
        (granted,) = _RVR.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, granted=bool(granted))
    if kind == MSG_APPEND:
        if len(raw) < off + _AE.size:
            raise CodecError("append frame truncated before body")
        prev_idx, prev_term, commit, sent_ns, n = _AE.unpack_from(raw, off)
        off += _AE.size
        entries = []
        for _ in range(n):
            if off + _ENTRY.size > len(raw):
                raise CodecError(
                    f"append frame truncated at entry {len(entries)}/{n}")
            eterm, elen = _ENTRY.unpack_from(raw, off)
            off += _ENTRY.size
            if off + elen > len(raw):
                raise CodecError(
                    f"append entry {len(entries)} declares {elen} bytes, "
                    f"only {len(raw) - off} remain")
            entries.append((eterm, raw[off:off + elen]))
            off += elen
        if off != len(raw):
            raise CodecError(
                f"append frame has {len(raw) - off} trailing bytes")
        return RaftMsg(kind, group, term, src, prev_index=prev_idx,
                       prev_term=prev_term, commit=commit, sent_ns=sent_ns,
                       entries=tuple(entries))
    if kind == MSG_APPEND_REPLY:
        _expect(raw, _HDR.size + _AER.size, "append reply")
        success, match, sent_ns = _AER.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, success=bool(success),
                       match_index=match, sent_ns=sent_ns)
    if kind == MSG_SNAP:
        if len(raw) < off + _SNAP.size:
            raise CodecError("snapshot chunk truncated before body")
        (snap_idx, snap_term, offset, total, sent_ns,
         clen, done) = _SNAP.unpack_from(raw, off)
        off += _SNAP.size
        if len(raw) != off + clen:
            raise CodecError(
                f"snapshot chunk declares {clen} bytes, frame has "
                f"{len(raw) - off}")
        return RaftMsg(kind, group, term, src, snap_index=snap_idx,
                       snap_term=snap_term, offset=offset, total=total,
                       sent_ns=sent_ns, done=bool(done),
                       chunk=raw[off:off + clen])
    if kind == MSG_SNAP_REPLY:
        _expect(raw, _HDR.size + _SNAPR.size, "snapshot reply")
        snap_idx, next_off, sent_ns = _SNAPR.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, snap_index=snap_idx,
                       next_offset=next_off, sent_ns=sent_ns)
    raise CodecError(f"unknown raft message kind {kind}")


@dataclass(frozen=True)
class RaftConfig:
    """Consensus timing (all values in simulated ns)."""

    #: leader AppendEntries (heartbeat) period
    heartbeat_ns: int = 100_000
    #: base follower election timeout (no AE from a leader for this long)
    election_timeout_ns: int = 1_200_000
    #: uniform jitter added to every armed election timeout
    election_jitter_ns: int = 400_000
    #: extra timeout per replica-slot index — staggers the bootstrap
    #: election so replica 0 normally wins the first term uncontested
    election_stagger_ns: int = 300_000
    #: delay before a detection-driven election fires once the failure
    #: detector declares the known leader dead (plus jitter); short —
    #: detection already waited out the phi budget
    fast_election_ns: int = 50_000
    #: read-lease window granted by a majority-acked heartbeat round,
    #: measured from the round's *send* time.  Must stay below the
    #: minimum time a new leader could be elected in (detection bound +
    #: fast_election_ns) or a deposed leader could serve stale reads.
    lease_ns: int = 400_000
    #: max log entries shipped per AppendEntries message
    max_entries_per_ae: int = 16
    #: applied entries accumulated before the node snapshots and trims
    compact_threshold: int = 256
    #: recent entries *kept* below the snapshot point when trimming, so
    #: a slightly-lagging follower still catches up over AppendEntries
    #: and only a deeply-behind (or restarted) one needs a full install.
    #: Must stay below compact_threshold or trimming never fires.
    compact_margin: int = 64
    #: bytes of snapshot shipped per MSG_SNAP chunk
    snapshot_chunk: int = 4096

    def validate(self) -> None:
        for name in ("heartbeat_ns", "election_timeout_ns",
                     "election_jitter_ns", "fast_election_ns", "lease_ns",
                     "max_entries_per_ae", "compact_threshold",
                     "snapshot_chunk"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.election_stagger_ns < 0:
            raise ValueError("election_stagger_ns must be >= 0")
        if self.compact_margin < 0:
            raise ValueError("compact_margin must be >= 0")
        if self.compact_margin >= self.compact_threshold:
            raise ValueError(
                "compact_margin must be below compact_threshold "
                "(otherwise trimming never fires)")
        if self.heartbeat_ns >= self.election_timeout_ns:
            raise ValueError("heartbeat_ns must be below election_timeout_ns")


class RaftNode:
    """One replica's consensus state for one group (pure logic, no I/O).

    The caller owns the clock and the wire: it feeds ``now`` into
    :meth:`tick` / :meth:`on_message`, drains :attr:`outbox` (a list of
    ``(dst_rank, raw_bytes)``) after every call, applies the entries
    :meth:`take_applied` returns, and tells the node about failure-
    detector verdicts via :meth:`on_peer_dead`.
    """

    def __init__(self, group: int, rank: int, replicas: List[int],
                 config: RaftConfig, rng, now: int = 0):
        if rank not in replicas:
            raise SimulationError(
                f"rank {rank} is not a replica of group {group}: {replicas}")
        config.validate()
        self.group = group
        self.rank = rank
        self.replicas = list(replicas)
        self.config = config
        self._rng = rng
        self.role = FOLLOWER
        self.term = 0
        self.voted_for: Optional[int] = None
        self.leader: Optional[int] = None
        #: log[i] = (term, command); global index = base_index + 1 + i
        self.log: List[Tuple[int, bytes]] = []
        #: index of the last compacted-away entry (0 = nothing discarded)
        self.base_index = 0
        self.base_term = 0
        self.commit_index = 0
        self.last_applied = 0
        # leader volatile state
        self.next_index: Dict[int, int] = {}
        self.match_index: Dict[int, int] = {}
        #: send time of the newest AE round each peer has acked (lease)
        self._ack_round: Dict[int, int] = {}
        #: send time of the unacked AE to each peer (0 = none in flight).
        #: One outstanding AE per peer, retransmitted after a heartbeat
        #: period — the self-clocking that keeps replication traffic
        #: proportional to progress instead of ping-ponging at wire speed
        self._inflight: Dict[int, int] = {}
        self._votes: set = set()
        self._dead_peers: set = set()
        #: (dst, raw) messages the caller must put on the wire
        self.outbox: List[Tuple[int, bytes]] = []
        self._applied_out: List[Tuple[int, bytes]] = []  # (index, command)
        self._hb_due = now
        self._slot = self.replicas.index(rank)
        self.election_due = now + self._election_delay(bootstrap=True)
        # --- snapshot state -------------------------------------------
        #: caller-installed serializer for the applied state machine;
        #: None disarms snapshotting entirely (pure-logic tests).  The
        #: store sets this to its KVStateMachine's serialize.
        self.snapshot_fn: Optional[Callable[[], bytes]] = None
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.snapshot_blob = b""
        #: leader: per-peer in-progress snapshot transfer — the blob is
        #: referenced here so a newer snapshot taken mid-transfer cannot
        #: shift the offsets under an in-flight stream
        self._snap_xfer: Dict[int, Dict[str, object]] = {}
        #: follower: chunk accumulator for the incoming install
        self._snap_in: Optional[Dict[str, object]] = None
        #: installed snapshots for the caller: (index, term, blob, t_start)
        self._installed_out: List[Tuple[int, int, bytes, int]] = []
        # counters the store mirrors into obs
        self.elections_started = 0
        self.terms_led: List[int] = []
        self.compactions = 0
        self.snapshots_taken = 0
        self.snapshot_installs = 0
        self.snapshot_chunks_sent = 0
        self.snapshot_bytes_sent = 0

    # ------------------------------------------------------------ log access
    @property
    def last_index(self) -> int:
        return self.base_index + len(self.log)

    def term_at(self, index: int) -> int:
        """Term of ``index`` (0 for the empty prefix)."""
        if index == self.base_index:
            return self.base_term
        if index < self.base_index or index > self.last_index:
            raise SimulationError(
                f"g{self.group} r{self.rank}: term_at({index}) outside "
                f"({self.base_index}, {self.last_index}]")
        return self.log[index - self.base_index - 1][0]

    def entry_at(self, index: int) -> Tuple[int, bytes]:
        if index <= self.base_index or index > self.last_index:
            raise SimulationError(
                f"g{self.group} r{self.rank}: entry {index} compacted or "
                f"missing (base {self.base_index}, last {self.last_index})")
        return self.log[index - self.base_index - 1]

    # ------------------------------------------------------------- timing
    def _jitter(self) -> int:
        return int(self._rng.integers(0, self.config.election_jitter_ns))

    def _election_delay(self, bootstrap: bool = False,
                        fast: bool = False) -> int:
        if fast:
            return self.config.fast_election_ns + self._jitter()
        base = self.config.election_timeout_ns + self._jitter()
        if bootstrap:
            base += self._slot * self.config.election_stagger_ns
        return base

    def _reset_election_timer(self, now: int) -> None:
        self.election_due = now + self._election_delay()

    # ------------------------------------------------------------- role flips
    def _become_follower(self, term: int, now: int,
                         leader: Optional[int] = None) -> None:
        stepped_down = self.role == LEADER
        if term > self.term:
            self.term = term
            self.voted_for = None
        self.role = FOLLOWER
        self.leader = leader
        self._votes.clear()
        if stepped_down:
            self.next_index.clear()
            self.match_index.clear()
            self._ack_round.clear()
            self._snap_xfer.clear()
        self._reset_election_timer(now)

    def _become_leader(self, now: int) -> None:
        self.role = LEADER
        self.leader = self.rank
        self.terms_led.append(self.term)
        nxt = self.last_index + 1
        self.next_index = {p: nxt for p in self.replicas if p != self.rank}
        self.match_index = {p: 0 for p in self.replicas if p != self.rank}
        self._ack_round = {p: 0 for p in self.replicas if p != self.rank}
        self._inflight = {p: 0 for p in self.replicas if p != self.rank}
        self._snap_xfer = {}
        # committing an entry of the *current* term is what lets the
        # commit index advance over inherited entries — standard no-op
        self.log.append((self.term, b""))
        self._hb_due = now  # first AE round goes out on the next tick
        self.election_due = now + (1 << 62)  # leaders don't time out
        if len(self.replicas) == 1:
            self._advance_commit()  # a majority of one: commit in place

    # ------------------------------------------------------------- client API
    def propose(self, command: bytes, now: int) -> Optional[int]:
        """Append a client command; returns its log index (leader only)."""
        if self.role != LEADER:
            return None
        self.log.append((self.term, bytes(command)))
        index = self.last_index
        # ship immediately instead of waiting out the heartbeat period
        self._hb_due = now
        if len(self.replicas) == 1:
            self._advance_commit()
        return index

    def lease_valid(self, now: int) -> bool:
        """True while this leader's majority read-lease covers ``now``.

        The lease extends ``lease_ns`` past the send time of the newest
        AE round a *majority* (including self, implicitly current) has
        *successfully* acked — the classic leader-lease construction,
        conservative because the send time predates every ack.  Rejected
        AEs (log-mismatch replies during conflict repair) do not extend
        the lease: they prove liveness, not that this leader's log is
        the one the follower agrees on.

        This is only the *timing* half of read safety; the *log* half is
        :meth:`read_barrier_ok` — both must hold before a local read.
        """
        if self.role != LEADER:
            return False
        if len(self.replicas) == 1:
            return True
        rounds = sorted((self._ack_round.get(p, 0)
                         for p in self.replicas if p != self.rank),
                        reverse=True)
        # self counts toward the majority; need majority-1 peer acks
        need = len(self.replicas) // 2
        newest_majority_round = rounds[need - 1] if need else now
        return now < newest_majority_round + self.config.lease_ns

    def read_barrier_ok(self) -> bool:
        """Raft §8 leader-read barrier: local reads are safe only once
        this leader has *committed an entry of its own term* (the no-op
        appended on election) and applied everything up to it.

        A freshly elected leader can hold a valid lease while its
        commit/applied state still lags writes the previous leader
        acknowledged; until the current-term no-op commits — which by
        the Log Matching property forces the whole inherited prefix in —
        answering from local state could serve a stale read.
        """
        return (self.term_at(self.commit_index) == self.term
                and self.last_applied >= self.commit_index
                and not self._applied_out)

    # ------------------------------------------------------------- detector
    def on_peer_dead(self, peer: int, now: int) -> None:
        """Failure-detector verdict: short-circuit the election timeout
        when the *known leader* dies; remember the death for compaction."""
        if peer == self.rank or peer not in self.replicas:
            return
        self._dead_peers.add(peer)
        if self.role != LEADER and peer == self.leader:
            self.leader = None
            due = now + self._election_delay(fast=True)
            if due < self.election_due:
                self.election_due = due

    def on_peer_join(self, peer: int) -> None:
        self._dead_peers.discard(peer)

    # ------------------------------------------------------------- tick
    def tick(self, now: int) -> None:
        """Advance timers: elections for followers, AE rounds for leaders,
        and — for every role — snapshot the applied prefix once it grows
        past ``compact_threshold`` (followers compact their own logs too;
        a replica must never depend on its leader to bound its memory)."""
        if (self.snapshot_fn is not None and self.snapshot_due()):
            self.take_snapshot(self.snapshot_fn())
        if self.role == LEADER:
            if now >= self._hb_due:
                self._send_append_round(now)
                self._hb_due = now + self.config.heartbeat_ns
            return
        if now >= self.election_due:
            self._start_election(now)

    def _start_election(self, now: int) -> None:
        self.role = CANDIDATE
        self.term += 1
        self.voted_for = self.rank
        self.leader = None
        self._votes = {self.rank}
        self.elections_started += 1
        self._reset_election_timer(now)
        if self._has_majority():
            self._become_leader(now)
            return
        msg = RaftMsg(MSG_VOTE_REQ, self.group, self.term, self.rank,
                      last_log_index=self.last_index,
                      last_log_term=self.term_at(self.last_index))
        raw = encode_msg(msg)
        for peer in self.replicas:
            if peer != self.rank:
                self.outbox.append((peer, raw))

    def _has_majority(self) -> bool:
        return len(self._votes) * 2 > len(self.replicas)

    # ------------------------------------------------------------- AE send
    def _send_append_round(self, now: int) -> None:
        commit = self.commit_index
        for peer in self.replicas:
            if peer == self.rank:
                continue
            xfer = self._snap_xfer.get(peer)
            if xfer is not None:
                # snapshot stream in progress: heartbeat period doubles
                # as the chunk retransmit timer, exactly like AE
                if now >= xfer["sent_ns"] + self.config.heartbeat_ns:
                    self._send_snap_chunk(peer, now)
                continue
            nxt = self.next_index[peer]
            prev = nxt - 1
            if prev < self.base_index:
                if self.snapshot_blob or self.snapshot_index:
                    # peer needs entries we compacted away: stream the
                    # snapshot instead of AppendEntries
                    self._start_snap_xfer(peer, now)
                    continue
                # no snapshot taken yet (manual compact() only): clamp
                self.next_index[peer] = self.base_index + 1
                prev = self.base_index
                nxt = prev + 1
            inflight = self._inflight.get(peer, 0)
            if inflight and now < inflight + self.config.heartbeat_ns:
                continue  # one AE outstanding; heartbeat = retransmit timer
            entries = []
            idx = nxt
            while (idx <= self.last_index
                   and len(entries) < self.config.max_entries_per_ae):
                entries.append(self.entry_at(idx))
                idx += 1
            msg = RaftMsg(MSG_APPEND, self.group, self.term, self.rank,
                          prev_index=prev, prev_term=self.term_at(prev),
                          commit=min(commit, prev + len(entries)),
                          sent_ns=now, entries=tuple(entries))
            self.outbox.append((peer, encode_msg(msg)))
            self._inflight[peer] = now

    # ------------------------------------------------------------- snapshot tx
    def _start_snap_xfer(self, peer: int, now: int) -> None:
        self._snap_xfer[peer] = {
            "index": self.snapshot_index,
            "term": self.snapshot_term,
            "blob": self.snapshot_blob,
            "offset": 0,
            "sent_ns": 0,
        }
        self._inflight[peer] = 0  # the AE slot is idle during the stream
        self._send_snap_chunk(peer, now)

    def _send_snap_chunk(self, peer: int, now: int) -> None:
        xfer = self._snap_xfer[peer]
        blob: bytes = xfer["blob"]  # type: ignore[assignment]
        off = int(xfer["offset"])
        chunk = blob[off:off + self.config.snapshot_chunk]
        done = off + len(chunk) >= len(blob)
        msg = RaftMsg(MSG_SNAP, self.group, self.term, self.rank,
                      snap_index=int(xfer["index"]),
                      snap_term=int(xfer["term"]),
                      offset=off, total=len(blob), sent_ns=now,
                      done=done, chunk=chunk)
        self.outbox.append((peer, encode_msg(msg)))
        xfer["sent_ns"] = now
        self.snapshot_chunks_sent += 1
        self.snapshot_bytes_sent += len(chunk)

    # ------------------------------------------------------------- receive
    def on_message(self, msg: RaftMsg, now: int) -> None:
        if msg.group != self.group:
            raise SimulationError(
                f"group {self.group} got message for group {msg.group}")
        if msg.term > self.term:
            self._become_follower(
                msg.term, now,
                leader=(msg.src if msg.kind in (MSG_APPEND, MSG_SNAP)
                        else None))
        if msg.kind == MSG_VOTE_REQ:
            self._on_vote_req(msg, now)
        elif msg.kind == MSG_VOTE_REPLY:
            self._on_vote_reply(msg, now)
        elif msg.kind == MSG_APPEND:
            self._on_append(msg, now)
        elif msg.kind == MSG_APPEND_REPLY:
            self._on_append_reply(msg, now)
        elif msg.kind == MSG_SNAP:
            self._on_snap(msg, now)
        elif msg.kind == MSG_SNAP_REPLY:
            self._on_snap_reply(msg, now)
        else:
            raise SimulationError(f"unknown raft message kind {msg.kind}")

    def _on_vote_req(self, msg: RaftMsg, now: int) -> None:
        up_to_date = (
            msg.last_log_term > self.term_at(self.last_index)
            or (msg.last_log_term == self.term_at(self.last_index)
                and msg.last_log_index >= self.last_index))
        grant = (msg.term >= self.term
                 and self.voted_for in (None, msg.src)
                 and self.role != LEADER
                 and up_to_date)
        if grant:
            self.voted_for = msg.src
            self._reset_election_timer(now)
        reply = RaftMsg(MSG_VOTE_REPLY, self.group, self.term, self.rank,
                        granted=grant)
        self.outbox.append((msg.src, encode_msg(reply)))

    def _on_vote_reply(self, msg: RaftMsg, now: int) -> None:
        if self.role != CANDIDATE or msg.term != self.term or not msg.granted:
            return
        self._votes.add(msg.src)
        if self._has_majority():
            self._become_leader(now)

    def _on_append(self, msg: RaftMsg, now: int) -> None:
        if msg.term < self.term:
            reply = RaftMsg(MSG_APPEND_REPLY, self.group, self.term,
                            self.rank, success=False,
                            match_index=0, sent_ns=msg.sent_ns)
            self.outbox.append((msg.src, encode_msg(reply)))
            return
        # a current-term AE is the leader asserting itself
        self._become_follower(msg.term, now, leader=msg.src)
        ok = (msg.prev_index <= self.last_index
              and msg.prev_index >= self.base_index
              and self.term_at(msg.prev_index) == msg.prev_term)
        match = 0
        if ok:
            idx = msg.prev_index
            for eterm, cmd in msg.entries:
                idx += 1
                if idx <= self.last_index:
                    if self.term_at(idx) == eterm:
                        continue  # already have it
                    # conflict: drop the divergent suffix
                    del self.log[idx - self.base_index - 1:]
                self.log.append((eterm, cmd))
            match = msg.prev_index + len(msg.entries)
            if msg.commit > self.commit_index:
                self.commit_index = min(msg.commit, self.last_index)
            self._advance_applied()
        else:
            # conflict hint: our last_index lets the leader jump its
            # next_index down in one round instead of decrementing —
            # a restarted (empty-log) follower reaches the snapshot
            # path immediately instead of after O(log) retries
            match = self.last_index
        reply = RaftMsg(MSG_APPEND_REPLY, self.group, self.term, self.rank,
                        success=ok, match_index=match, sent_ns=msg.sent_ns)
        self.outbox.append((msg.src, encode_msg(reply)))

    def _on_append_reply(self, msg: RaftMsg, now: int) -> None:
        if self.role != LEADER or msg.term != self.term:
            return
        if msg.src not in self.next_index:
            return
        # a reply is *current* only if it answers the outstanding AE;
        # stale replies (already superseded) must not drive scheduling,
        # or a deep reply backlog turns into a send storm
        inflight = self._inflight.get(msg.src, 0)
        current = bool(inflight) and msg.sent_ns >= inflight
        if current:
            self._inflight[msg.src] = 0
        if not msg.success:
            if current:
                # decrement-and-retry conflict resolution, bounded below
                # by the follower's hinted last_index (+1) so a deeply
                # behind or freshly restarted peer is reached in one
                # round; if that lands at or below base_index the next
                # send round streams the snapshot instead
                self.next_index[msg.src] = max(
                    self.base_index, 1,
                    min(self.next_index[msg.src] - 1, msg.match_index + 1))
                self._hb_due = now
            return
        # only a *successful* ack extends the lease: a log-mismatch
        # reply proves the peer is alive, not that it follows this log —
        # counting it would let a conflict-repairing new leader serve
        # reads from a state machine missing the old leader's commits
        if msg.sent_ns > self._ack_round.get(msg.src, 0):
            self._ack_round[msg.src] = msg.sent_ns
        if msg.match_index > self.match_index[msg.src]:
            self.match_index[msg.src] = msg.match_index
        self.next_index[msg.src] = max(self.next_index[msg.src],
                                       msg.match_index + 1)
        self._advance_commit()
        if current and self.next_index[msg.src] <= self.last_index:
            self._hb_due = now  # more to ship: next tick, don't wait

    # ------------------------------------------------------- snapshot rx
    def _on_snap(self, msg: RaftMsg, now: int) -> None:
        if msg.term < self.term:
            # stale leader: the reply's term makes it step down
            reply = RaftMsg(MSG_SNAP_REPLY, self.group, self.term, self.rank,
                            snap_index=msg.snap_index, next_offset=0,
                            sent_ns=msg.sent_ns)
            self.outbox.append((msg.src, encode_msg(reply)))
            return
        # a current-term snapshot stream is the leader asserting itself
        self._become_follower(msg.term, now, leader=msg.src)
        if msg.snap_index <= self.last_applied:
            # we already cover this snapshot: fast-forward the stream so
            # the leader flips back to AppendEntries
            next_off = msg.total
        else:
            acc = self._snap_in
            if acc is None or acc["index"] != msg.snap_index:
                acc = self._snap_in = {"index": msg.snap_index,
                                       "term": msg.snap_term,
                                       "total": msg.total,
                                       "buf": bytearray(),
                                       "t_start": now}
            buf: bytearray = acc["buf"]  # type: ignore[assignment]
            if msg.offset == len(buf):
                buf.extend(msg.chunk)
            # any other offset: duplicate or hole — re-ack our progress
            next_off = len(buf)
            if msg.done and next_off >= msg.total:
                self._install_snapshot(msg.snap_index, msg.snap_term,
                                       bytes(buf), int(acc["t_start"]))
                self._snap_in = None
        reply = RaftMsg(MSG_SNAP_REPLY, self.group, self.term, self.rank,
                        snap_index=msg.snap_index, next_offset=next_off,
                        sent_ns=msg.sent_ns)
        self.outbox.append((msg.src, encode_msg(reply)))

    def _install_snapshot(self, index: int, term: int, blob: bytes,
                          t_start: int) -> None:
        """Adopt a complete snapshot: reset the log around it and hand
        the blob to the caller (the store swaps its state machine in)."""
        if index <= self.last_index and self.base_index < index \
                and self.term_at(index) == term:
            # snapshot is a prefix of our log: keep the newer suffix
            del self.log[:index - self.base_index]
        else:
            self.log.clear()
            self.commit_index = index
        self.base_index = index
        self.base_term = term
        self.commit_index = max(self.commit_index, index)
        self.last_applied = index
        self._applied_out.clear()
        self.snapshot_index = index
        self.snapshot_term = term
        self.snapshot_blob = blob
        self.snapshot_installs += 1
        self._installed_out.append((index, term, blob, t_start))

    def _on_snap_reply(self, msg: RaftMsg, now: int) -> None:
        if self.role != LEADER or msg.term != self.term:
            return
        xfer = self._snap_xfer.get(msg.src)
        if xfer is None or msg.snap_index != xfer["index"]:
            return
        blob: bytes = xfer["blob"]  # type: ignore[assignment]
        if msg.next_offset >= len(blob):
            # transfer complete: the peer now covers snap_index
            del self._snap_xfer[msg.src]
            if msg.snap_index > self.match_index.get(msg.src, 0):
                self.match_index[msg.src] = msg.snap_index
            self.next_index[msg.src] = msg.snap_index + 1
            if msg.sent_ns > self._ack_round.get(msg.src, 0):
                self._ack_round[msg.src] = msg.sent_ns
            self._advance_commit()
            self._hb_due = now  # resume AppendEntries immediately
            return
        xfer["offset"] = msg.next_offset
        self._send_snap_chunk(msg.src, now)

    # ------------------------------------------------------------- commit
    def _advance_commit(self) -> None:
        """Majority-match rule, restricted to current-term entries."""
        for idx in range(self.last_index, self.commit_index, -1):
            if self.term_at(idx) != self.term:
                break
            votes = 1 + sum(1 for p, m in self.match_index.items()
                            if m >= idx)
            if votes * 2 > len(self.replicas):
                self.commit_index = idx
                break
        self._advance_applied()

    def _advance_applied(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            term, cmd = self.entry_at(self.last_applied)
            if cmd:  # skip leader no-ops
                self._applied_out.append((self.last_applied, cmd))

    def take_applied(self) -> List[Tuple[int, bytes]]:
        """Newly committed (index, command) pairs since the last call."""
        out = self._applied_out
        if not out:
            return out  # callers only iterate: the empty list is safe to share
        self._applied_out = []
        return out

    # ------------------------------------------------------------- compaction
    def snapshot_due(self) -> bool:
        """True once the applied prefix has outgrown ``compact_threshold``
        and every applied entry has been drained by the caller (the
        state machine is exactly at ``last_applied``, so serializing it
        now yields a consistent snapshot)."""
        return (self.last_applied - self.base_index
                >= self.config.compact_threshold
                and not self._applied_out)

    def take_snapshot(self, blob: bytes) -> int:
        """Record ``blob`` as the state at ``last_applied`` and trim the
        log past every laggard, retaining only ``compact_margin`` recent
        entries.  Returns the number of entries discarded.

        This is the hole-closing move: trimming no longer waits for any
        follower's ``match_index`` — a slow, gray or partitioned peer
        (or one the detector missed) cannot pin the log.  Whoever falls
        below the new ``base_index`` is caught up with this snapshot.
        """
        if self._applied_out:
            raise SimulationError(
                f"g{self.group} r{self.rank}: snapshot requested with "
                f"{len(self._applied_out)} undrained applied entries")
        self.snapshot_index = self.last_applied
        self.snapshot_term = self.term_at(self.last_applied)
        self.snapshot_blob = bytes(blob)
        self.snapshots_taken += 1
        return self.compact(self.last_applied - self.config.compact_margin)

    def take_installed(self) -> List[Tuple[int, int, bytes, int]]:
        """Snapshots installed since the last call, oldest first, as
        ``(index, term, blob, t_start_ns)`` — the caller must replace
        its state machine with the deserialized blob."""
        out = self._installed_out
        if not out:
            return out  # see take_applied
        self._installed_out = []
        return out

    def compact(self, upto: int) -> int:
        """Discard log entries ``<= upto`` (bounded by last_applied).

        Returns the number of entries discarded.  Normal operation goes
        through :meth:`take_snapshot`; calling this directly is only
        safe when no follower will ever need the discarded prefix.
        """
        upto = min(upto, self.last_applied)
        if upto <= self.base_index:
            return 0
        dropped = upto - self.base_index
        self.base_term = self.term_at(upto)
        del self.log[:dropped]
        self.base_index = upto
        self.compactions += 1
        return dropped

    # ------------------------------------------------------------- snapshot
    def stats(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "role": self.role,
            "term": self.term,
            "leader": self.leader,
            "last_index": self.last_index,
            "commit_index": self.commit_index,
            "last_applied": self.last_applied,
            "base_index": self.base_index,
            "log_entries": len(self.log),
            "elections_started": self.elections_started,
            "terms_led": list(self.terms_led),
            "compactions": self.compactions,
            "snapshot_index": self.snapshot_index,
            "snapshot_bytes": len(self.snapshot_blob),
            "snapshots_taken": self.snapshots_taken,
            "snapshot_installs": self.snapshot_installs,
            "snapshot_chunks_sent": self.snapshot_chunks_sent,
            "snapshot_bytes_sent": self.snapshot_bytes_sent,
        }
