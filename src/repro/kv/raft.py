"""A minimal deterministic Raft core for one replication group.

This module is *pure protocol logic*: a :class:`RaftNode` never touches
the event loop, the fabric or the photon endpoint directly.  It consumes
three inputs — the current simulated time, decoded peer messages, and
tick calls — and produces outgoing messages into an outbox the caller
(:class:`repro.kv.store.KVNode`) drains onto the wire.  That keeps the
consensus state machine unit-testable without a cluster and keeps every
byte of Raft traffic on the caller's transport, which in this repo means
Photon PWC eager sends surfaced by completion-ledger probes (see
DESIGN.md §10 for the exact slot mapping).

Faithfulness notes (what is and isn't modelled):

- terms, leader election, log replication, commit-on-majority and the
  current-term commit restriction are the real algorithm;
- election scheduling is *deterministic*: timeouts draw jitter from a
  named RNG stream (``kv.raft.g<group>.r<rank>``), and the failure
  detector (:mod:`repro.runtime.health`) short-circuits the conservative
  timeout when it declares the known leader dead — detection-driven
  elections are the point of riding the health layer;
- persistence is not modelled: a crashed replica stays down (fail-stop)
  unless the caller explicitly reseeds it.  The experiments never
  restart a Raft replica into the same group;
- compaction is the snapshot-free stub the paper-scale experiments
  need: an applied prefix is discarded only once every live follower's
  ``match_index`` has passed it, so no follower can ever need a
  discarded entry and no snapshot transfer mechanism is required.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.core import SimulationError

__all__ = ["RaftConfig", "RaftNode", "RaftMsg", "encode_msg", "decode_msg",
           "FOLLOWER", "CANDIDATE", "LEADER",
           "MSG_VOTE_REQ", "MSG_VOTE_REPLY", "MSG_APPEND", "MSG_APPEND_REPLY"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

MSG_VOTE_REQ = 1
MSG_VOTE_REPLY = 2
MSG_APPEND = 3
MSG_APPEND_REPLY = 4

#: type u8, group u16, term u64, src u16
_HDR = struct.Struct("<BHQH")
#: RequestVote body: last_log_index u64, last_log_term u64
_RV = struct.Struct("<QQ")
#: VoteReply body: granted u8
_RVR = struct.Struct("<B")
#: AppendEntries body: prev_index, prev_term, commit, sent_ns u64s; n u16
_AE = struct.Struct("<QQQQH")
#: AppendReply body: success u8, match_index u64, sent_ns u64 (echoed)
_AER = struct.Struct("<BQQ")
#: per-entry frame: term u64, length u32
_ENTRY = struct.Struct("<QI")


@dataclass(frozen=True)
class RaftMsg:
    """One decoded Raft message (any of the four kinds)."""

    kind: int
    group: int
    term: int
    src: int
    # RequestVote
    last_log_index: int = 0
    last_log_term: int = 0
    # VoteReply
    granted: bool = False
    # AppendEntries
    prev_index: int = 0
    prev_term: int = 0
    commit: int = 0
    sent_ns: int = 0
    entries: Tuple[Tuple[int, bytes], ...] = ()
    # AppendReply
    success: bool = False
    match_index: int = 0


def encode_msg(msg: RaftMsg) -> bytes:
    head = _HDR.pack(msg.kind, msg.group, msg.term, msg.src)
    if msg.kind == MSG_VOTE_REQ:
        return head + _RV.pack(msg.last_log_index, msg.last_log_term)
    if msg.kind == MSG_VOTE_REPLY:
        return head + _RVR.pack(1 if msg.granted else 0)
    if msg.kind == MSG_APPEND:
        parts = [head, _AE.pack(msg.prev_index, msg.prev_term, msg.commit,
                                msg.sent_ns, len(msg.entries))]
        for term, cmd in msg.entries:
            parts.append(_ENTRY.pack(term, len(cmd)))
            parts.append(cmd)
        return b"".join(parts)
    if msg.kind == MSG_APPEND_REPLY:
        return head + _AER.pack(1 if msg.success else 0, msg.match_index,
                                msg.sent_ns)
    raise SimulationError(f"unknown raft message kind {msg.kind}")


def decode_msg(raw: bytes) -> RaftMsg:
    kind, group, term, src = _HDR.unpack_from(raw, 0)
    off = _HDR.size
    if kind == MSG_VOTE_REQ:
        last_idx, last_term = _RV.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, last_log_index=last_idx,
                       last_log_term=last_term)
    if kind == MSG_VOTE_REPLY:
        (granted,) = _RVR.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, granted=bool(granted))
    if kind == MSG_APPEND:
        prev_idx, prev_term, commit, sent_ns, n = _AE.unpack_from(raw, off)
        off += _AE.size
        entries = []
        for _ in range(n):
            eterm, elen = _ENTRY.unpack_from(raw, off)
            off += _ENTRY.size
            entries.append((eterm, raw[off:off + elen]))
            off += elen
        return RaftMsg(kind, group, term, src, prev_index=prev_idx,
                       prev_term=prev_term, commit=commit, sent_ns=sent_ns,
                       entries=tuple(entries))
    if kind == MSG_APPEND_REPLY:
        success, match, sent_ns = _AER.unpack_from(raw, off)
        return RaftMsg(kind, group, term, src, success=bool(success),
                       match_index=match, sent_ns=sent_ns)
    raise SimulationError(f"unknown raft message kind {kind}")


@dataclass(frozen=True)
class RaftConfig:
    """Consensus timing (all values in simulated ns)."""

    #: leader AppendEntries (heartbeat) period
    heartbeat_ns: int = 100_000
    #: base follower election timeout (no AE from a leader for this long)
    election_timeout_ns: int = 1_200_000
    #: uniform jitter added to every armed election timeout
    election_jitter_ns: int = 400_000
    #: extra timeout per replica-slot index — staggers the bootstrap
    #: election so replica 0 normally wins the first term uncontested
    election_stagger_ns: int = 300_000
    #: delay before a detection-driven election fires once the failure
    #: detector declares the known leader dead (plus jitter); short —
    #: detection already waited out the phi budget
    fast_election_ns: int = 50_000
    #: read-lease window granted by a majority-acked heartbeat round,
    #: measured from the round's *send* time.  Must stay below the
    #: minimum time a new leader could be elected in (detection bound +
    #: fast_election_ns) or a deposed leader could serve stale reads.
    lease_ns: int = 400_000
    #: max log entries shipped per AppendEntries message
    max_entries_per_ae: int = 16
    #: applied entries retained before the compaction stub trims the log
    compact_threshold: int = 256

    def validate(self) -> None:
        for name in ("heartbeat_ns", "election_timeout_ns",
                     "election_jitter_ns", "fast_election_ns", "lease_ns",
                     "max_entries_per_ae", "compact_threshold"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.election_stagger_ns < 0:
            raise ValueError("election_stagger_ns must be >= 0")
        if self.heartbeat_ns >= self.election_timeout_ns:
            raise ValueError("heartbeat_ns must be below election_timeout_ns")


class RaftNode:
    """One replica's consensus state for one group (pure logic, no I/O).

    The caller owns the clock and the wire: it feeds ``now`` into
    :meth:`tick` / :meth:`on_message`, drains :attr:`outbox` (a list of
    ``(dst_rank, raw_bytes)``) after every call, applies the entries
    :meth:`take_applied` returns, and tells the node about failure-
    detector verdicts via :meth:`on_peer_dead`.
    """

    def __init__(self, group: int, rank: int, replicas: List[int],
                 config: RaftConfig, rng, now: int = 0):
        if rank not in replicas:
            raise SimulationError(
                f"rank {rank} is not a replica of group {group}: {replicas}")
        config.validate()
        self.group = group
        self.rank = rank
        self.replicas = list(replicas)
        self.config = config
        self._rng = rng
        self.role = FOLLOWER
        self.term = 0
        self.voted_for: Optional[int] = None
        self.leader: Optional[int] = None
        #: log[i] = (term, command); global index = base_index + 1 + i
        self.log: List[Tuple[int, bytes]] = []
        #: index of the last compacted-away entry (0 = nothing discarded)
        self.base_index = 0
        self.base_term = 0
        self.commit_index = 0
        self.last_applied = 0
        # leader volatile state
        self.next_index: Dict[int, int] = {}
        self.match_index: Dict[int, int] = {}
        #: send time of the newest AE round each peer has acked (lease)
        self._ack_round: Dict[int, int] = {}
        #: send time of the unacked AE to each peer (0 = none in flight).
        #: One outstanding AE per peer, retransmitted after a heartbeat
        #: period — the self-clocking that keeps replication traffic
        #: proportional to progress instead of ping-ponging at wire speed
        self._inflight: Dict[int, int] = {}
        self._votes: set = set()
        self._dead_peers: set = set()
        #: (dst, raw) messages the caller must put on the wire
        self.outbox: List[Tuple[int, bytes]] = []
        self._applied_out: List[Tuple[int, bytes]] = []  # (index, command)
        self._hb_due = now
        self._slot = self.replicas.index(rank)
        self.election_due = now + self._election_delay(bootstrap=True)
        # counters the store mirrors into obs
        self.elections_started = 0
        self.terms_led: List[int] = []
        self.compactions = 0

    # ------------------------------------------------------------ log access
    @property
    def last_index(self) -> int:
        return self.base_index + len(self.log)

    def term_at(self, index: int) -> int:
        """Term of ``index`` (0 for the empty prefix)."""
        if index == self.base_index:
            return self.base_term
        if index < self.base_index or index > self.last_index:
            raise SimulationError(
                f"g{self.group} r{self.rank}: term_at({index}) outside "
                f"({self.base_index}, {self.last_index}]")
        return self.log[index - self.base_index - 1][0]

    def entry_at(self, index: int) -> Tuple[int, bytes]:
        if index <= self.base_index or index > self.last_index:
            raise SimulationError(
                f"g{self.group} r{self.rank}: entry {index} compacted or "
                f"missing (base {self.base_index}, last {self.last_index})")
        return self.log[index - self.base_index - 1]

    # ------------------------------------------------------------- timing
    def _jitter(self) -> int:
        return int(self._rng.integers(0, self.config.election_jitter_ns))

    def _election_delay(self, bootstrap: bool = False,
                        fast: bool = False) -> int:
        if fast:
            return self.config.fast_election_ns + self._jitter()
        base = self.config.election_timeout_ns + self._jitter()
        if bootstrap:
            base += self._slot * self.config.election_stagger_ns
        return base

    def _reset_election_timer(self, now: int) -> None:
        self.election_due = now + self._election_delay()

    # ------------------------------------------------------------- role flips
    def _become_follower(self, term: int, now: int,
                         leader: Optional[int] = None) -> None:
        stepped_down = self.role == LEADER
        if term > self.term:
            self.term = term
            self.voted_for = None
        self.role = FOLLOWER
        self.leader = leader
        self._votes.clear()
        if stepped_down:
            self.next_index.clear()
            self.match_index.clear()
            self._ack_round.clear()
        self._reset_election_timer(now)

    def _become_leader(self, now: int) -> None:
        self.role = LEADER
        self.leader = self.rank
        self.terms_led.append(self.term)
        nxt = self.last_index + 1
        self.next_index = {p: nxt for p in self.replicas if p != self.rank}
        self.match_index = {p: 0 for p in self.replicas if p != self.rank}
        self._ack_round = {p: 0 for p in self.replicas if p != self.rank}
        self._inflight = {p: 0 for p in self.replicas if p != self.rank}
        # committing an entry of the *current* term is what lets the
        # commit index advance over inherited entries — standard no-op
        self.log.append((self.term, b""))
        self._hb_due = now  # first AE round goes out on the next tick
        self.election_due = now + (1 << 62)  # leaders don't time out
        if len(self.replicas) == 1:
            self._advance_commit()  # a majority of one: commit in place

    # ------------------------------------------------------------- client API
    def propose(self, command: bytes, now: int) -> Optional[int]:
        """Append a client command; returns its log index (leader only)."""
        if self.role != LEADER:
            return None
        self.log.append((self.term, bytes(command)))
        index = self.last_index
        # ship immediately instead of waiting out the heartbeat period
        self._hb_due = now
        if len(self.replicas) == 1:
            self._advance_commit()
            self._maybe_compact()
        return index

    def lease_valid(self, now: int) -> bool:
        """True while this leader's majority read-lease covers ``now``.

        The lease extends ``lease_ns`` past the send time of the newest
        AE round a *majority* (including self, implicitly current) has
        *successfully* acked — the classic leader-lease construction,
        conservative because the send time predates every ack.  Rejected
        AEs (log-mismatch replies during conflict repair) do not extend
        the lease: they prove liveness, not that this leader's log is
        the one the follower agrees on.

        This is only the *timing* half of read safety; the *log* half is
        :meth:`read_barrier_ok` — both must hold before a local read.
        """
        if self.role != LEADER:
            return False
        if len(self.replicas) == 1:
            return True
        rounds = sorted((self._ack_round.get(p, 0)
                         for p in self.replicas if p != self.rank),
                        reverse=True)
        # self counts toward the majority; need majority-1 peer acks
        need = len(self.replicas) // 2
        newest_majority_round = rounds[need - 1] if need else now
        return now < newest_majority_round + self.config.lease_ns

    def read_barrier_ok(self) -> bool:
        """Raft §8 leader-read barrier: local reads are safe only once
        this leader has *committed an entry of its own term* (the no-op
        appended on election) and applied everything up to it.

        A freshly elected leader can hold a valid lease while its
        commit/applied state still lags writes the previous leader
        acknowledged; until the current-term no-op commits — which by
        the Log Matching property forces the whole inherited prefix in —
        answering from local state could serve a stale read.
        """
        return (self.term_at(self.commit_index) == self.term
                and self.last_applied >= self.commit_index
                and not self._applied_out)

    # ------------------------------------------------------------- detector
    def on_peer_dead(self, peer: int, now: int) -> None:
        """Failure-detector verdict: short-circuit the election timeout
        when the *known leader* dies; remember the death for compaction."""
        if peer == self.rank or peer not in self.replicas:
            return
        self._dead_peers.add(peer)
        if self.role != LEADER and peer == self.leader:
            self.leader = None
            due = now + self._election_delay(fast=True)
            if due < self.election_due:
                self.election_due = due

    def on_peer_join(self, peer: int) -> None:
        self._dead_peers.discard(peer)

    # ------------------------------------------------------------- tick
    def tick(self, now: int) -> None:
        """Advance timers: elections for followers, AE rounds for leaders."""
        if self.role == LEADER:
            if now >= self._hb_due:
                self._send_append_round(now)
                self._hb_due = now + self.config.heartbeat_ns
            return
        if now >= self.election_due:
            self._start_election(now)

    def _start_election(self, now: int) -> None:
        self.role = CANDIDATE
        self.term += 1
        self.voted_for = self.rank
        self.leader = None
        self._votes = {self.rank}
        self.elections_started += 1
        self._reset_election_timer(now)
        if self._has_majority():
            self._become_leader(now)
            return
        msg = RaftMsg(MSG_VOTE_REQ, self.group, self.term, self.rank,
                      last_log_index=self.last_index,
                      last_log_term=self.term_at(self.last_index))
        raw = encode_msg(msg)
        for peer in self.replicas:
            if peer != self.rank:
                self.outbox.append((peer, raw))

    def _has_majority(self) -> bool:
        return len(self._votes) * 2 > len(self.replicas)

    # ------------------------------------------------------------- AE send
    def _send_append_round(self, now: int) -> None:
        commit = self.commit_index
        for peer in self.replicas:
            if peer == self.rank:
                continue
            inflight = self._inflight.get(peer, 0)
            if inflight and now < inflight + self.config.heartbeat_ns:
                continue  # one AE outstanding; heartbeat = retransmit timer
            nxt = self.next_index[peer]
            prev = nxt - 1
            if prev < self.base_index:
                # compaction never outruns live matches; a dead peer can
                # fall behind the base, but we stop shipping to it anyway
                self.next_index[peer] = self.base_index + 1
                prev = self.base_index
                nxt = prev + 1
            entries = []
            idx = nxt
            while (idx <= self.last_index
                   and len(entries) < self.config.max_entries_per_ae):
                entries.append(self.entry_at(idx))
                idx += 1
            msg = RaftMsg(MSG_APPEND, self.group, self.term, self.rank,
                          prev_index=prev, prev_term=self.term_at(prev),
                          commit=min(commit, prev + len(entries)),
                          sent_ns=now, entries=tuple(entries))
            self.outbox.append((peer, encode_msg(msg)))
            self._inflight[peer] = now

    # ------------------------------------------------------------- receive
    def on_message(self, msg: RaftMsg, now: int) -> None:
        if msg.group != self.group:
            raise SimulationError(
                f"group {self.group} got message for group {msg.group}")
        if msg.term > self.term:
            self._become_follower(msg.term, now,
                                  leader=(msg.src if msg.kind == MSG_APPEND
                                          else None))
        if msg.kind == MSG_VOTE_REQ:
            self._on_vote_req(msg, now)
        elif msg.kind == MSG_VOTE_REPLY:
            self._on_vote_reply(msg, now)
        elif msg.kind == MSG_APPEND:
            self._on_append(msg, now)
        elif msg.kind == MSG_APPEND_REPLY:
            self._on_append_reply(msg, now)
        else:
            raise SimulationError(f"unknown raft message kind {msg.kind}")

    def _on_vote_req(self, msg: RaftMsg, now: int) -> None:
        up_to_date = (
            msg.last_log_term > self.term_at(self.last_index)
            or (msg.last_log_term == self.term_at(self.last_index)
                and msg.last_log_index >= self.last_index))
        grant = (msg.term >= self.term
                 and self.voted_for in (None, msg.src)
                 and self.role != LEADER
                 and up_to_date)
        if grant:
            self.voted_for = msg.src
            self._reset_election_timer(now)
        reply = RaftMsg(MSG_VOTE_REPLY, self.group, self.term, self.rank,
                        granted=grant)
        self.outbox.append((msg.src, encode_msg(reply)))

    def _on_vote_reply(self, msg: RaftMsg, now: int) -> None:
        if self.role != CANDIDATE or msg.term != self.term or not msg.granted:
            return
        self._votes.add(msg.src)
        if self._has_majority():
            self._become_leader(now)

    def _on_append(self, msg: RaftMsg, now: int) -> None:
        if msg.term < self.term:
            reply = RaftMsg(MSG_APPEND_REPLY, self.group, self.term,
                            self.rank, success=False,
                            match_index=0, sent_ns=msg.sent_ns)
            self.outbox.append((msg.src, encode_msg(reply)))
            return
        # a current-term AE is the leader asserting itself
        self._become_follower(msg.term, now, leader=msg.src)
        ok = (msg.prev_index <= self.last_index
              and msg.prev_index >= self.base_index
              and self.term_at(msg.prev_index) == msg.prev_term)
        match = 0
        if ok:
            idx = msg.prev_index
            for eterm, cmd in msg.entries:
                idx += 1
                if idx <= self.last_index:
                    if self.term_at(idx) == eterm:
                        continue  # already have it
                    # conflict: drop the divergent suffix
                    del self.log[idx - self.base_index - 1:]
                self.log.append((eterm, cmd))
            match = msg.prev_index + len(msg.entries)
            if msg.commit > self.commit_index:
                self.commit_index = min(msg.commit, self.last_index)
            self._advance_applied()
        reply = RaftMsg(MSG_APPEND_REPLY, self.group, self.term, self.rank,
                        success=ok, match_index=match, sent_ns=msg.sent_ns)
        self.outbox.append((msg.src, encode_msg(reply)))

    def _on_append_reply(self, msg: RaftMsg, now: int) -> None:
        if self.role != LEADER or msg.term != self.term:
            return
        if msg.src not in self.next_index:
            return
        # a reply is *current* only if it answers the outstanding AE;
        # stale replies (already superseded) must not drive scheduling,
        # or a deep reply backlog turns into a send storm
        inflight = self._inflight.get(msg.src, 0)
        current = bool(inflight) and msg.sent_ns >= inflight
        if current:
            self._inflight[msg.src] = 0
        if not msg.success:
            if current:
                # decrement-and-retry conflict resolution
                self.next_index[msg.src] = max(self.base_index + 1,
                                               self.next_index[msg.src] - 1)
                self._hb_due = now
            return
        # only a *successful* ack extends the lease: a log-mismatch
        # reply proves the peer is alive, not that it follows this log —
        # counting it would let a conflict-repairing new leader serve
        # reads from a state machine missing the old leader's commits
        if msg.sent_ns > self._ack_round.get(msg.src, 0):
            self._ack_round[msg.src] = msg.sent_ns
        if msg.match_index > self.match_index[msg.src]:
            self.match_index[msg.src] = msg.match_index
        self.next_index[msg.src] = max(self.next_index[msg.src],
                                       msg.match_index + 1)
        self._advance_commit()
        if current and self.next_index[msg.src] <= self.last_index:
            self._hb_due = now  # more to ship: next tick, don't wait
        self._maybe_compact()

    # ------------------------------------------------------------- commit
    def _advance_commit(self) -> None:
        """Majority-match rule, restricted to current-term entries."""
        for idx in range(self.last_index, self.commit_index, -1):
            if self.term_at(idx) != self.term:
                break
            votes = 1 + sum(1 for p, m in self.match_index.items()
                            if m >= idx)
            if votes * 2 > len(self.replicas):
                self.commit_index = idx
                break
        self._advance_applied()

    def _advance_applied(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            term, cmd = self.entry_at(self.last_applied)
            if cmd:  # skip leader no-ops
                self._applied_out.append((self.last_applied, cmd))

    def take_applied(self) -> List[Tuple[int, bytes]]:
        """Newly committed (index, command) pairs since the last call."""
        out = self._applied_out
        self._applied_out = []
        return out

    # ------------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        """Snapshot-free compaction stub: trim the applied prefix that
        every *live* follower has already matched (a dead replica never
        rejoins its group under the fail-stop model, so its stale
        match_index must not pin the log forever)."""
        if self.last_applied - self.base_index < self.config.compact_threshold:
            return
        live_matches = [m for p, m in self.match_index.items()
                        if p not in self._dead_peers]
        safe = min([self.last_applied] + live_matches)
        if safe <= self.base_index:
            return
        self.compact(safe)

    def compact(self, upto: int) -> int:
        """Discard log entries ``<= upto`` (bounded by last_applied).

        Returns the number of entries discarded.  Followers call this
        freely for their own applied prefix; leaders go through
        :meth:`_maybe_compact` so no live follower is left behind.
        """
        upto = min(upto, self.last_applied)
        if upto <= self.base_index:
            return 0
        dropped = upto - self.base_index
        self.base_term = self.term_at(upto)
        del self.log[:dropped]
        self.base_index = upto
        self.compactions += 1
        return dropped

    # ------------------------------------------------------------- snapshot
    def stats(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "role": self.role,
            "term": self.term,
            "leader": self.leader,
            "last_index": self.last_index,
            "commit_index": self.commit_index,
            "last_applied": self.last_applied,
            "base_index": self.base_index,
            "log_entries": len(self.log),
            "elections_started": self.elections_started,
            "terms_led": list(self.terms_led),
            "compactions": self.compactions,
        }
