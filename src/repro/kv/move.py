"""Live shard moves: hand one group's key range to another group.

A move re-homes *keys*, not replicas: the source group's Raft keeps
running (sealed, then purged), the destination group absorbs the range.
The sequence is the classic seal → copy → flip → purge hand-off, with
every step that mutates replicated state going through the groups' own
Raft logs so all replicas of each group converge on the same view:

1. **Seal** — an ``OP_SEAL`` command is committed at the source.  From
   its apply point the range is frozen deterministically on every source
   replica: new data writes bounce with ``RESP_WRONG_EPOCH`` (clients
   back off and retry — their retries land at the destination after the
   flip, and the session layer keeps them exactly-once), while reads
   keep serving the frozen state, which stays correct until the flip.
2. **Copy** — the mover pulls the sealed machine (``REQ_SNAP``, leader +
   read barrier, i.e. the state at exactly the seal point, client
   sessions included) and commits it at the destination as an
   ``OP_MERGE`` command.  The blob rides the ordinary parcel transport;
   oversized bodies take the rendezvous path automatically.
3. **Flip** — :meth:`ShardMap.reassign` relabels the source's ring
   points to the destination and bumps the epoch.  Metadata-only and
   instantaneous for servers; clients discover it through
   ``WRONG_EPOCH`` redirects and refetch the ring.
4. **Purge** — an ``OP_PURGE`` command clears the source replicas' data,
   sessions and slot tables, unsealing the (now empty) group.

Failure model: the mover is an ordinary client — every step is a
retried, session-deduped RPC, so a leader crash mid-move stalls the move
until the group re-elects, never corrupts it.  The only non-replicated
step is the flip; it happens strictly after the merge commit is applied
at the destination leader, so the new owner can serve the moment any
client learns the new epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.core import SimulationError
from .client import KVClient
from .shard import OP_MERGE, OP_PURGE, OP_SEAL, ST_OK
from .store import KVNode

__all__ = ["move_group", "MoveError"]

#: client-id base for movers — above the workload ranges so the mover's
#: session never collides with a data client
_MOVER_ID_BASE = 900_000


class MoveError(SimulationError):
    """A move step failed permanently (exhausted retries)."""


def move_group(nodes: List[KVNode], src_group: int, dst_group: int,
               via_rank: int = 0, mover_id: Optional[int] = None,
               timeout_ns: int = 2_000_000) -> Dict[str, int]:
    """Generator: migrate ``src_group``'s key range into ``dst_group``.

    Runs as a sim process on ``via_rank``'s node (the mover is a normal
    KV client there).  Returns a report dict; raises :class:`MoveError`
    if any replicated step exhausts its retries — in that case nothing
    visible changed unless the seal committed, and a sealed-but-unmoved
    group simply keeps serving reads until a later move retry.
    """
    node = nodes[via_rank]
    if src_group == dst_group:
        raise MoveError("cannot move a group onto itself")
    env = node.env
    t0 = env.now
    admin = KVClient(node, client_id=(mover_id if mover_id is not None
                                      else _MOVER_ID_BASE + src_group),
                     timeout_ns=timeout_ns)

    status = yield from admin.admin_cmd(src_group, OP_SEAL)
    if status != ST_OK:
        raise MoveError(f"seal of group {src_group} failed: status {status}")

    blob = yield from admin.pull_snapshot(src_group)
    if blob is None:
        raise MoveError(f"snapshot pull from sealed group {src_group} failed")

    status = yield from admin.admin_cmd(dst_group, OP_MERGE, blob)
    if status != ST_OK:
        raise MoveError(
            f"merge into group {dst_group} failed: status {status}")

    # the flip: relabel the ring, bump the epoch.  Every server checks
    # requests against this shared map; clients refetch on WRONG_EPOCH.
    epoch = node.shard_map.reassign(src_group, dst_group)

    status = yield from admin.admin_cmd(src_group, OP_PURGE)
    if status != ST_OK:
        raise MoveError(f"purge of group {src_group} failed: status {status}")

    return {
        "src_group": src_group,
        "dst_group": dst_group,
        "epoch": epoch,
        "moved_bytes": len(blob),
        "duration_ns": env.now - t0,
        "mover_redirects": admin.stats.redirects,
        "mover_retries": admin.stats.timeouts + admin.stats.lease_retries,
    }
