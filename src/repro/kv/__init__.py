"""``repro.kv`` — a Raft-replicated, sharded KV store over Photon PWC.

The first real *tenant* of the middleware stack: replication log and
client traffic ride runtime parcels (Photon PWC eager sends +
completion-ledger probes), one-sided reads go straight through
``get_pwc``, failover is driven by the phi-accrual health layer, and
chaos schedules make leader crashes a testable event.

Entry points: :func:`build_kv` wires one :class:`KVNode` per rank over a
cluster + photon endpoints; :class:`KVClient` is the session handle;
``workload`` has the Zipf closed/open-loop drivers.  See docs/API.md
(`repro.kv`) and DESIGN.md §10.

Importing this package arms nothing: no processes, no RNG draws, no
photon traffic — golden traces stay bit-identical until a node is built
and started.
"""

from .client import ClientStats, KVClient
from .move import MoveError, move_group
from .raft import (CANDIDATE, FOLLOWER, LEADER, RaftConfig, RaftMsg,
                   RaftNode, decode_msg, encode_msg)
from .shard import (CodecError, Command, KVStateMachine, OP_CAS, OP_DELETE,
                    OP_MERGE, OP_NOOP, OP_PURGE, OP_PUT, OP_SEAL, RingView,
                    ShardMap, ST_CAS_FAIL, ST_MISS, ST_OK, ST_SEALED,
                    decode_command, encode_command, snapshot_keys)
from .store import KVConfig, KVNode, build_kv
from .workload import (WorkloadStats, ZipfKeys, closed_loop, open_loop,
                       value_for)

__all__ = [
    "FOLLOWER", "CANDIDATE", "LEADER",
    "RaftConfig", "RaftMsg", "RaftNode", "encode_msg", "decode_msg",
    "ShardMap", "RingView", "KVStateMachine", "Command", "encode_command",
    "decode_command", "snapshot_keys", "CodecError",
    "OP_NOOP", "OP_PUT", "OP_CAS", "OP_DELETE",
    "OP_SEAL", "OP_MERGE", "OP_PURGE",
    "ST_OK", "ST_MISS", "ST_CAS_FAIL", "ST_SEALED",
    "KVConfig", "KVNode", "build_kv",
    "KVClient", "ClientStats",
    "ZipfKeys", "WorkloadStats", "closed_loop", "open_loop", "value_for",
    "move_group", "MoveError",
]
