"""Sharding and the per-shard KV state machine.

``repro.kv`` splits the key space over N independent Raft groups.  The
key → group mapping is a consistent-hash ring (each group owns
``vnodes`` points on a 64-bit ring, a key lands on the first point
clockwise of its hash), so growing the group count moves only ``1/N`` of
the keys — the property that matters once the store is resharded between
experiment sweeps.  The group → replica-set mapping is a simple stride
over the rank space (group ``g`` lives on ranks ``g, g+1, .., g+rf-1``
mod n), which keeps leaders spread across ranks.

:class:`KVStateMachine` is the deterministic command interpreter every
replica of a group runs over the committed log: put / cas / delete (and
the leader's no-ops are filtered out before they get here).  Client
sessions get exactly-once application: each command carries a
``(client_id, seq)`` uid, replays of an already-applied seq return the
retained first result instead of re-executing — that is what makes a
client retry after a redirect or leader crash safe.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.core import SimulationError

__all__ = ["ShardMap", "KVStateMachine", "Command", "encode_command",
           "decode_command", "OP_NOOP", "OP_PUT", "OP_CAS", "OP_DELETE",
           "ST_OK", "ST_MISS", "ST_CAS_FAIL"]

OP_NOOP = 0
OP_PUT = 1
OP_CAS = 3
OP_DELETE = 4

#: state-machine result codes (shared with the client protocol)
ST_OK = 0
ST_MISS = 1
ST_CAS_FAIL = 2

#: op u8, client u32, seq u64, klen u16, vlen u32, elen u32
_CMD = struct.Struct("<BIQHII")


@dataclass(frozen=True)
class Command:
    """One replicated state-machine command."""

    op: int
    client: int
    seq: int
    key: bytes
    value: bytes = b""
    expected: bytes = b""  # CAS comparand

    @property
    def uid(self) -> Tuple[int, int]:
        return (self.client, self.seq)


def encode_command(cmd: Command) -> bytes:
    return (_CMD.pack(cmd.op, cmd.client, cmd.seq, len(cmd.key),
                      len(cmd.value), len(cmd.expected))
            + cmd.key + cmd.value + cmd.expected)


def decode_command(raw: bytes) -> Command:
    op, client, seq, klen, vlen, elen = _CMD.unpack_from(raw, 0)
    off = _CMD.size
    key = raw[off:off + klen]
    off += klen
    value = raw[off:off + vlen]
    off += vlen
    expected = raw[off:off + elen]
    return Command(op=op, client=client, seq=seq, key=key, value=value,
                   expected=expected)


def _ring_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "little")


class ShardMap:
    """Consistent-hash key → group ring plus the replica placement."""

    def __init__(self, n_groups: int, n_ranks: int, rf: int = 3,
                 vnodes: int = 64):
        if n_groups < 1:
            raise SimulationError("need at least one shard group")
        if not 1 <= rf <= n_ranks:
            raise SimulationError(
                f"replication factor {rf} does not fit {n_ranks} ranks")
        self.n_groups = n_groups
        self.n_ranks = n_ranks
        self.rf = rf
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for g in range(n_groups):
            for v in range(vnodes):
                points.append((_ring_hash(f"shard{g}:{v}".encode()), g))
        points.sort()
        self._ring_keys = [h for h, _ in points]
        self._ring_groups = [g for _, g in points]

    def group_of(self, key: bytes) -> int:
        """The Raft group that owns ``key`` (first ring point clockwise)."""
        h = _ring_hash(bytes(key))
        i = bisect.bisect_right(self._ring_keys, h)
        if i == len(self._ring_keys):
            i = 0
        return self._ring_groups[i]

    def replicas(self, group: int) -> List[int]:
        """Replica ranks for ``group`` (stride placement, leader-spread)."""
        if not 0 <= group < self.n_groups:
            raise SimulationError(f"no such group {group}")
        return [(group + i) % self.n_ranks for i in range(self.rf)]

    def groups_on(self, rank: int) -> List[int]:
        """Groups that place a replica on ``rank``."""
        return [g for g in range(self.n_groups)
                if rank in self.replicas(g)]

    def key_distribution(self, keys) -> Dict[int, int]:
        """How many of ``keys`` land on each group (balance diagnostics)."""
        counts = {g: 0 for g in range(self.n_groups)}
        for key in keys:
            counts[self.group_of(key)] += 1
        return counts


class KVStateMachine:
    """Deterministic KV interpreter with exactly-once client sessions."""

    def __init__(self, group: int):
        self.group = group
        self.data: Dict[bytes, bytes] = {}
        self.version: Dict[bytes, int] = {}
        #: per-client session: newest applied seq and its retained result
        self._session_seq: Dict[int, int] = {}
        self._session_result: Dict[int, Tuple[int, bytes]] = {}
        #: every uid ever applied — the acked-write survival checker reads
        #: this (bounded by the workload size, not the key space)
        self.applied_uids: Set[Tuple[int, int]] = set()
        self.ops_applied = 0
        self.dup_skips = 0

    def is_duplicate(self, cmd: Command) -> bool:
        return self._session_seq.get(cmd.client, -1) >= cmd.seq

    def retained_result(self, cmd: Command) -> Optional[Tuple[int, bytes]]:
        """The first-application result for a replayed session seq (None
        when the replay is older than the retained newest)."""
        if self._session_seq.get(cmd.client, -1) == cmd.seq:
            return self._session_result.get(cmd.client)
        return None

    def apply(self, cmd: Command) -> Tuple[int, bytes]:
        """Apply one committed command; returns ``(status, value)``.

        Replays (same client, seq <= newest applied) are not re-executed:
        the retained result is returned so the caller can still answer
        the client.
        """
        if cmd.op == OP_NOOP:
            return (ST_OK, b"")
        if self.is_duplicate(cmd):
            self.dup_skips += 1
            return self.retained_result(cmd) or (ST_OK, b"")
        if cmd.op == OP_PUT:
            self.data[cmd.key] = cmd.value
            self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
            result = (ST_OK, b"")
        elif cmd.op == OP_CAS:
            current = self.data.get(cmd.key)
            if current is not None and current == cmd.expected:
                self.data[cmd.key] = cmd.value
                self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
                result = (ST_OK, b"")
            elif current is None:
                result = (ST_MISS, b"")
            else:
                result = (ST_CAS_FAIL, current)
        elif cmd.op == OP_DELETE:
            existed = self.data.pop(cmd.key, None)
            if existed is not None:
                self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
            result = (ST_OK if existed is not None else ST_MISS, b"")
        else:
            raise SimulationError(f"unknown kv op {cmd.op}")
        self._session_seq[cmd.client] = cmd.seq
        self._session_result[cmd.client] = result
        self.applied_uids.add(cmd.uid)
        self.ops_applied += 1
        return result

    def get(self, key: bytes) -> Optional[bytes]:
        return self.data.get(key)

    def stats(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "keys": len(self.data),
            "ops_applied": self.ops_applied,
            "dup_skips": self.dup_skips,
            "sessions": len(self._session_seq),
        }
